//! Theorem 6: loop-fixpoint behaviour over the combined lattice.
//!
//! Measures wall-clock time of the loop analysis on the Theorem 6 program
//! family for the component domains and the logical product; the
//! per-domain iteration counts (the quantity Theorem 6 actually bounds)
//! are printed by `paper_eval thm6`.

use cai_bench::thm6_family;
use cai_core::LogicalProduct;
use cai_interp::{herbrand_view, parse_program, Analyzer};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fixpoint(c: &mut Criterion) {
    let vocab = Vocab::standard();
    let mut group = c.benchmark_group("fixpoint");
    group.sample_size(10);
    for &k in &[1usize, 2, 3] {
        let p = parse_program(&vocab, &thm6_family(k)).expect("family parses");
        group.bench_with_input(BenchmarkId::new("affine_eq", k), &k, |b, _| {
            let d = AffineEq::new();
            b.iter(|| Analyzer::new(&d).run(&p))
        });
        group.bench_with_input(BenchmarkId::new("uf", k), &k, |b, _| {
            let d = UfDomain::new();
            b.iter(|| Analyzer::new(&d).with_view(herbrand_view).run(&p))
        });
        group.bench_with_input(BenchmarkId::new("logical", k), &k, |b, _| {
            let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
            b.iter(|| Analyzer::new(&d).run(&p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixpoint);
criterion_main!(benches);
