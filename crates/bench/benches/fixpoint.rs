//! Theorem 6: loop-fixpoint behaviour over the combined lattice.
//!
//! Measures wall-clock time of the loop analysis on the Theorem 6 program
//! family for the component domains and the logical product; the
//! per-domain iteration counts (the quantity Theorem 6 actually bounds)
//! are printed by `paper_eval thm6`.

use cai_bench::{thm6_family, time_case};
use cai_core::LogicalProduct;
use cai_interp::{herbrand_view, parse_program, Analyzer};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

const SAMPLES: usize = 10;

fn main() {
    let vocab = Vocab::standard();
    for &k in &[1usize, 2, 3] {
        let p = parse_program(&vocab, &thm6_family(k)).expect("family parses");
        let d = AffineEq::new();
        time_case("fixpoint", &format!("affine_eq/{k}"), SAMPLES, || {
            Analyzer::new(&d).run(&p)
        });
        let d = UfDomain::new();
        time_case("fixpoint", &format!("uf/{k}"), SAMPLES, || {
            Analyzer::new(&d).with_view(herbrand_view).run(&p)
        });
        let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        time_case("fixpoint", &format!("logical/{k}"), SAMPLES, || {
            Analyzer::new(&d).run(&p)
        });
    }
}
