//! §4.4 of the paper: the cost of the combined join operator.
//!
//! The paper bounds `T_{J_{L1⋈L2}}(n)` by the component joins on inputs of
//! size `n²` (the pair variables) plus one combined quantification. This
//! bench measures `J` for the component domains and for their logical
//! product over the same randomly generated inputs, across input sizes, so
//! the growth *shape* (combined ≈ components at quadratic size) can be
//! compared against the claim.

use cai_bench::{time_case, ConjGen};
use cai_core::{AbstractDomain, LogicalProduct, ReducedProduct};
use cai_linarith::AffineEq;
use cai_uf::UfDomain;

const SAMPLES: usize = 20;

fn main() {
    for &n in &[2usize, 4, 6, 8] {
        // Pure linear inputs for the component domain.
        let mut gen = ConjGen::new(1000 + n as u64, n);
        let (la_a, la_b) = gen.join_pair(n, 2, false);
        let lin = AffineEq::new();
        let (ea, eb) = (lin.from_conj(&la_a), lin.from_conj(&la_b));
        time_case("join", &format!("affine_eq/{n}"), SAMPLES, || {
            lin.join(&ea, &eb)
        });

        // Mixed inputs for UF (arithmetic leaves become opaque) and both
        // products.
        let (mx_a, mx_b) = gen.join_pair(n, 2, true);
        let uf = UfDomain::new();
        let (ua, ub) = (
            uf.from_conj(&strip_to_uf(&mx_a)),
            uf.from_conj(&strip_to_uf(&mx_b)),
        );
        time_case("join", &format!("uf/{n}"), SAMPLES, || uf.join(&ua, &ub));

        let reduced = ReducedProduct::new(AffineEq::new(), UfDomain::new());
        let (ra, rb) = (reduced.from_conj(&mx_a), reduced.from_conj(&mx_b));
        time_case("join", &format!("reduced_product/{n}"), SAMPLES, || {
            reduced.join(&ra, &rb)
        });

        // The logical join runs the components on a quadratic pair-variable
        // extension (§4.4), so its absolute cost grows fast with the number
        // of alien subterms; keep the sweep modest.
        if n <= 6 {
            let logical = LogicalProduct::new(AffineEq::new(), UfDomain::new());
            time_case("join", &format!("logical_product/{n}"), SAMPLES, || {
                logical.join(&mx_a, &mx_b)
            });
        }
    }
}

/// Keeps only the atoms the UF signature fully owns (a fair standalone
/// workload for the component domain).
fn strip_to_uf(c: &cai_term::Conj) -> cai_term::Conj {
    let sig = cai_term::Sig::single(cai_term::TheoryTag::UF);
    c.iter().filter(|a| sig.owns_atom(a)).cloned().collect()
}
