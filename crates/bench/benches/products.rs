//! The §7 experiment the paper proposes: compare the *cost* of analyzing
//! programs over the direct, reduced, and logical products (their relative
//! precision is established by the Figure 1 reproduction; see
//! `paper_eval compare`).

use cai_bench::{fig1_family, time_case, FIG1};
use cai_core::{LogicalProduct, ReducedProduct};
use cai_interp::{herbrand_view, parse_program, Analyzer};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

const SAMPLES: usize = 10;

fn main() {
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, FIG1).expect("figure 1 parses");

    {
        let d = AffineEq::new();
        time_case("fig1_analysis", "linear_equalities", SAMPLES, || {
            Analyzer::new(&d).run(&p)
        });
    }
    {
        let d = UfDomain::new();
        time_case("fig1_analysis", "uninterpreted_fns", SAMPLES, || {
            Analyzer::new(&d).with_view(herbrand_view).run(&p)
        });
    }
    {
        let d = ReducedProduct::new(AffineEq::new(), UfDomain::new());
        time_case("fig1_analysis", "reduced_product", SAMPLES, || {
            Analyzer::new(&d).run(&p)
        });
    }
    {
        let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        time_case("fig1_analysis", "logical_product", SAMPLES, || {
            Analyzer::new(&d).run(&p)
        });
    }

    for &k in &[1usize, 2, 3] {
        let p = parse_program(&vocab, &fig1_family(k)).expect("family parses");
        let d = ReducedProduct::new(AffineEq::new(), UfDomain::new());
        time_case("product_scaling", &format!("reduced/{k}"), SAMPLES, || {
            Analyzer::new(&d).run(&p)
        });
        let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        time_case("product_scaling", &format!("logical/{k}"), SAMPLES, || {
            Analyzer::new(&d).run(&p)
        });
    }
}
