//! The §7 experiment the paper proposes: compare the *cost* of analyzing
//! programs over the direct, reduced, and logical products (their relative
//! precision is established by the Figure 1 reproduction; see
//! `paper_eval compare`).

use cai_bench::{fig1_family, FIG1};
use cai_core::{LogicalProduct, ReducedProduct};
use cai_interp::{herbrand_view, parse_program, Analyzer};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig1(c: &mut Criterion) {
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, FIG1).expect("figure 1 parses");
    let mut group = c.benchmark_group("fig1_analysis");
    group.sample_size(10);

    group.bench_function("linear_equalities", |b| {
        let d = AffineEq::new();
        b.iter(|| Analyzer::new(&d).run(&p))
    });
    group.bench_function("uninterpreted_fns", |b| {
        let d = UfDomain::new();
        b.iter(|| Analyzer::new(&d).with_view(herbrand_view).run(&p))
    });
    group.bench_function("reduced_product", |b| {
        let d = ReducedProduct::new(AffineEq::new(), UfDomain::new());
        b.iter(|| Analyzer::new(&d).run(&p))
    });
    group.bench_function("logical_product", |b| {
        let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        b.iter(|| Analyzer::new(&d).run(&p))
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let vocab = Vocab::standard();
    let mut group = c.benchmark_group("product_scaling");
    group.sample_size(10);
    for &k in &[1usize, 2, 3] {
        let p = parse_program(&vocab, &fig1_family(k)).expect("family parses");
        group.bench_with_input(BenchmarkId::new("reduced", k), &k, |b, _| {
            let d = ReducedProduct::new(AffineEq::new(), UfDomain::new());
            b.iter(|| Analyzer::new(&d).run(&p))
        });
        group.bench_with_input(BenchmarkId::new("logical", k), &k, |b, _| {
            let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
            b.iter(|| Analyzer::new(&d).run(&p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1, bench_scaling);
criterion_main!(benches);
