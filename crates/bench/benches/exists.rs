//! §4.4 of the paper: the cost of the combined existential-quantification
//! operator `Q_{L1⋈L2}` versus the component `Q_L`s, across input sizes.
//!
//! The paper's bound is `T_Q(n) = O(T_{Q1}(n) + T_{Q2}(n) + n·T_{Alt} +
//! n·T_J)` — near-linear overhead on top of the components plus the
//! `QSaturation` passes.

use cai_bench::{time_case, ConjGen};
use cai_core::{AbstractDomain, LogicalProduct};
use cai_linarith::AffineEq;
use cai_term::{Var, VarSet};
use cai_uf::UfDomain;

const SAMPLES: usize = 20;

fn main() {
    for &n in &[2usize, 4, 6, 8] {
        let mut gen = ConjGen::new(2000 + n as u64, n);
        let elim: VarSet = (0..n / 2).map(|i| Var::named(&format!("w{i}"))).collect();

        let la = gen.conj(n, 2, false);
        let lin = AffineEq::new();
        let ea = lin.from_conj(&la);
        time_case("exists", &format!("affine_eq/{n}"), SAMPLES, || {
            lin.exists(&ea, &elim)
        });

        let mixed = gen.conj(n, 2, true);
        let uf = UfDomain::new();
        let sig = cai_term::Sig::single(cai_term::TheoryTag::UF);
        let uf_only: cai_term::Conj = mixed.iter().filter(|a| sig.owns_atom(a)).cloned().collect();
        let eu = uf.from_conj(&uf_only);
        time_case("exists", &format!("uf/{n}"), SAMPLES, || {
            uf.exists(&eu, &elim)
        });

        let logical = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        time_case("exists", &format!("logical_product/{n}"), SAMPLES, || {
            logical.exists(&mixed, &elim)
        });
    }
}
