//! §4.4 of the paper: the cost of the combined existential-quantification
//! operator `Q_{L1⋈L2}` versus the component `Q_L`s, across input sizes.
//!
//! The paper's bound is `T_Q(n) = O(T_{Q1}(n) + T_{Q2}(n) + n·T_{Alt} +
//! n·T_J)` — near-linear overhead on top of the components plus the
//! `QSaturation` passes.

use cai_bench::ConjGen;
use cai_core::{AbstractDomain, LogicalProduct};
use cai_linarith::AffineEq;
use cai_term::{Var, VarSet};
use cai_uf::UfDomain;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_exists(c: &mut Criterion) {
    let mut group = c.benchmark_group("exists");
    for &n in &[2usize, 4, 6, 8] {
        let mut gen = ConjGen::new(2000 + n as u64, n);
        let elim: VarSet = (0..n / 2).map(|i| Var::named(&format!("w{i}"))).collect();

        let la = gen.conj(n, 2, false);
        let lin = AffineEq::new();
        let ea = lin.from_conj(&la);
        group.bench_with_input(BenchmarkId::new("affine_eq", n), &n, |bch, _| {
            bch.iter(|| lin.exists(&ea, &elim))
        });

        let mixed = gen.conj(n, 2, true);
        let uf = UfDomain::new();
        let sig = cai_term::Sig::single(cai_term::TheoryTag::UF);
        let uf_only: cai_term::Conj =
            mixed.iter().filter(|a| sig.owns_atom(a)).cloned().collect();
        let eu = uf.from_conj(&uf_only);
        group.bench_with_input(BenchmarkId::new("uf", n), &n, |bch, _| {
            bch.iter(|| uf.exists(&eu, &elim))
        });

        let logical = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        group.bench_with_input(BenchmarkId::new("logical_product", n), &n, |bch, _| {
            bch.iter(|| logical.exists(&mixed, &elim))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_exists
}
criterion_main!(benches);
