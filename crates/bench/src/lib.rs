//! Workload generators and the paper's example programs, shared by the
//! benchmarks and the `paper_eval` reproduction binary.

pub mod args;

pub use args::Args;

use cai_num::SplitMix64;
use cai_term::parse::Vocab;
use cai_term::{Atom, Conj, Term, Var};
use std::fmt::Write as _;

/// The Figure 1 program source (the paper's motivating example).
pub const FIG1: &str = "
    a1 := 0; a2 := 0;
    b1 := 1; b2 := F(1);
    c1 := 2; c2 := 2;
    d1 := 3; d2 := F(4);
    while (b1 < b2) {
        a1 := a1 + 1; a2 := a2 + 2;
        b1 := F(b1);  b2 := F(b2);
        c1 := F(2*c1 - c2); c2 := F(c2);
        d1 := F(1 + d1); d2 := F(d2 + 1);
    }
    assert(a2 = 2*a1);
    assert(b2 = F(b1));
    assert(c2 = c1);
    assert(d2 = F(d1 + 1));
";

/// The Figure 4 program source (strict vs. plain logical product).
pub const FIG4: &str = "
    if (a < b) {
        x := F(a + 1);
        y := a;
    } else {
        x := F(b + 1);
        y := b;
    }
    assert(x = F(y + 1));
    assert(F(a) + F(b) = F(y) + F(a + b - y));
";

/// The Figure 8 program source (non-disjoint theories).
pub const FIG8: &str = "
    x := *;
    assume(even(x));
    assume(positive(x));
    x := x - 1;
    assert(odd(x));
    assert(positive(x));
";

/// The Theorem 6 program family: `k` linear counters and `k` UF-updated
/// variables inside one loop.
pub fn thm6_family(k: usize) -> String {
    let mut src = String::new();
    for i in 0..k {
        let _ = writeln!(src, "a{i} := {i}; u{i} := F(a{i} + {i});");
    }
    src.push_str("while (*) {\n");
    for i in 0..k {
        let _ = writeln!(src, "  a{i} := a{i} + {}; u{i} := F(u{i} + 1);", i + 1);
    }
    src.push_str("}\nassert(a0 = a0);\n");
    src
}

/// A Figure 1-shaped program scaled to `k` groups of four variables, used
/// by the product-comparison benchmarks. Every generated assertion is
/// valid; group `i` exercises the same four phenomena as Figure 1.
pub fn fig1_family(k: usize) -> String {
    let mut init = String::new();
    let mut body = String::new();
    let mut asserts = String::new();
    for i in 0..k {
        let _ = writeln!(
            init,
            "a{i} := 0; s{i} := 0; b{i} := 1; t{i} := F({});",
            1 + i
        );
        let _ = writeln!(
            body,
            "  a{i} := a{i} + 1; s{i} := s{i} + 2; b{i} := F(b{i} + {i}); t{i} := F(t{i} + {i});"
        );
        let _ = writeln!(asserts, "assert(s{i} = 2*a{i});");
    }
    format!("{init}while (*) {{\n{body}}}\n{asserts}")
}

/// Minimal timing harness for the `harness = false` benchmarks (the
/// workspace builds offline with no external crates, so no Criterion):
/// runs `f` through a few warm-up rounds, then `samples` timed rounds, and
/// prints the median per-call time in nanoseconds.
pub fn time_case<T>(group: &str, name: &str, samples: usize, mut f: impl FnMut() -> T) {
    const WARMUP: usize = 3;
    for _ in 0..WARMUP {
        std::hint::black_box(f());
    }
    let mut times: Vec<u128> = (0..samples.max(1))
        .map(|_| {
            let start = std::time::Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!(
        "{group}/{name}: median {median} ns ({} samples)",
        times.len()
    );
}

/// Deterministic random mixed terms over `w0..w{n_vars-1}`.
pub struct ConjGen {
    vocab: Vocab,
    rng: SplitMix64,
    n_vars: usize,
}

impl ConjGen {
    /// Creates a generator with a fixed seed (reproducible workloads).
    pub fn new(seed: u64, n_vars: usize) -> ConjGen {
        let vocab = Vocab::standard();
        // Pre-register the function symbols at fixed arities.
        vocab.function("F", 1).expect("fresh vocab");
        vocab.function("G", 2).expect("fresh vocab");
        ConjGen {
            vocab,
            rng: SplitMix64::new(seed),
            n_vars,
        }
    }

    /// The vocabulary used for generated symbols.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    fn var(&mut self) -> Term {
        let i = self.rng.below(self.n_vars as u64);
        Term::var(Var::named(&format!("w{i}")))
    }

    /// A random term with the given depth budget. `mixed` permits both
    /// arithmetic and UF constructors; otherwise only arithmetic.
    pub fn term(&mut self, depth: usize, mixed: bool) -> Term {
        if depth == 0 {
            return if self.rng.ratio(7, 10) {
                self.var()
            } else {
                Term::int(self.rng.range_i64(-4, 5))
            };
        }
        let choice = self.rng.below(if mixed { 4 } else { 2 });
        match choice {
            0 => Term::add(&self.term(depth - 1, mixed), &self.term(depth - 1, mixed)),
            1 => Term::sub(&self.term(depth - 1, mixed), &self.term(depth - 1, mixed)),
            2 => {
                let f = self.vocab.function("F", 1).expect("registered");
                Term::app(f, vec![self.term(depth - 1, mixed)])
            }
            _ => {
                let g = self.vocab.function("G", 2).expect("registered");
                Term::app(
                    g,
                    vec![self.term(depth - 1, mixed), self.term(depth - 1, mixed)],
                )
            }
        }
    }

    /// A random conjunction of `n_atoms` equalities.
    pub fn conj(&mut self, n_atoms: usize, depth: usize, mixed: bool) -> Conj {
        (0..n_atoms)
            .map(|_| Atom::eq(self.term(depth, mixed), self.term(depth, mixed)))
            .collect()
    }

    /// A pair of *compatible* conjunctions for join benchmarks: both extend
    /// a common base, so the join is non-trivial.
    pub fn join_pair(&mut self, n_atoms: usize, depth: usize, mixed: bool) -> (Conj, Conj) {
        let base = self.conj(n_atoms / 2 + 1, depth, mixed);
        let mut a = base.clone();
        a.extend_from(&self.conj(n_atoms / 2 + 1, depth, mixed));
        let mut b = base;
        b.extend_from(&self.conj(n_atoms / 2 + 1, depth, mixed));
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_interp::parse_program;

    #[test]
    fn generators_are_deterministic() {
        let mut g1 = ConjGen::new(7, 4);
        let mut g2 = ConjGen::new(7, 4);
        assert_eq!(g1.conj(3, 2, true), g2.conj(3, 2, true));
    }

    #[test]
    fn families_parse() {
        let vocab = Vocab::standard();
        for k in 1..4 {
            parse_program(&vocab, &thm6_family(k)).unwrap();
            parse_program(&vocab, &fig1_family(k)).unwrap();
        }
        parse_program(&vocab, FIG1).unwrap();
        parse_program(&vocab, FIG4).unwrap();
        parse_program(&vocab, FIG8).unwrap();
    }

    #[test]
    fn generated_conjs_are_wellformed() {
        let mut g = ConjGen::new(42, 4);
        for _ in 0..10 {
            let c = g.conj(4, 3, true);
            assert!(c.len() <= 4);
            for atom in &c {
                assert!(!atom.args().is_empty());
            }
        }
    }
}
