//! Regenerates every figure and quantitative claim of *Combining Abstract
//! Interpreters* (Gulwani & Tiwari, PLDI 2006).
//!
//! ```sh
//! cargo run --release -p cai-bench --bin paper_eval            # everything
//! cargo run --release -p cai-bench --bin paper_eval -- fig1    # one item
//! ```
//!
//! Items: fig1 fig2 fig3 fig4 fig6 fig7 fig8 thm6 sec5 complexity compare
//!
//! `--deadline-ms N` runs the whole fig1 family under a wall-clock
//! [`Budget`] and prints the resulting `DegradationReport` — the
//! anytime-analysis preset.
//!
//! `--join-stats` re-analyzes the fig1 family with the logical product's
//! split cache on vs. off, checks the results are bit-identical, prints
//! both tick totals and the cache counters, and exits nonzero unless the
//! cache hit and saved ticks. Two further legs ride along: an
//! incremental-edit workload (a conjunction grows one atom per step) that
//! must score sub-structural *partial* hits and spend fewer saturation
//! rounds than the whole-conjunction memo alone, and a driver leg that
//! pins cached vs. uncached bit-identity at 1/2/4 threads over one shared
//! split cache.
//!
//! `--budget-policy` runs the canonical widening-loss loop under the
//! flat vs. the adaptive [`BudgetPolicy`]: the adaptive run's bounded
//! narrowing pass must recover the upper bound widening discarded
//! (strictly more verified assertions, narrowed exit ⊑ widened exit) —
//! including when the main fuel pool is starved — or the run exits
//! nonzero.
//!
//! `--blame` runs the canonical widening-loss loop under the precision
//! provenance layer: the flat-policy run's lost `x <= 100` bound must be
//! attributed (via the differential report) to the loop's widening site,
//! or the run exits nonzero.
//!
//! `--obs-report` dumps the global `cai-obs` counter registry after the
//! selected items have run. Purely additive: it changes no result.

use cai_bench::{args::write_trace_out, fig1_family, thm6_family, Args, ConjGen, FIG1, FIG4, FIG8};
use cai_core::reduce::{EncodeMode, UnaryEncoder};
use cai_core::{
    no_saturate, AbstractDomain, Budget, BudgetPolicy, CacheConfig, LogicalProduct, Precision,
    ReducedProduct, SplitCache,
};
use cai_driver::{Driver, ModuleAnalysis};
use cai_interp::{herbrand_view, parse_module, parse_program, Analyzer, Program};
use cai_linarith::{AffineEq, Polyhedra};
use cai_numeric::{ParityDomain, SignDomain};
use cai_term::parse::Vocab;
use cai_term::{alien_terms, purify, Sig, TheoryTag, Var, VarSet};
use cai_uf::UfDomain;
use std::time::{Duration, Instant};

fn main() {
    let mut args = Args::parse();
    let trace_out = args.opt_str("--trace-out");
    if trace_out.is_some() {
        cai_obs::trace::set_enabled(true);
    }
    let obs_report = args.flag("--obs-report");
    let deadline_ms = args.opt_value::<u64>("--deadline-ms");
    let join = args.flag("--join-stats");
    let policy = args.flag("--budget-policy");
    let blame_flag = args.flag("--blame");
    let ran_mode = deadline_ms.is_some() || join || policy || blame_flag;
    if let Some(ms) = deadline_ms {
        deadline(ms);
    }
    if join {
        join_stats();
    }
    if policy {
        budget_policy();
    }
    if blame_flag {
        blame();
    }

    let items = args.rest();
    if !ran_mode || !items.is_empty() {
        let all = items.is_empty() || items.iter().any(|a| a == "all");
        let want = |name: &str| all || items.iter().any(|a| a == name);
        if want("fig1") {
            fig1();
        }
        if want("fig2") {
            fig2();
        }
        if want("fig3") {
            fig3();
        }
        if want("fig4") {
            fig4();
        }
        if want("fig6") {
            fig6();
        }
        if want("fig7") {
            fig7();
        }
        if want("fig8") {
            fig8();
        }
        if want("thm6") {
            thm6();
        }
        if want("sec5") {
            sec5();
        }
        if want("complexity") {
            complexity();
        }
        if want("compare") {
            compare();
        }
    }
    if obs_report {
        println!("\nobs report:");
        println!("{}", cai_obs::global().snapshot());
    }
    if let Some(path) = trace_out {
        write_trace_out(&path);
    }
}

/// Anytime preset: analyze the fig1 family under a wall-clock budget.
/// Every domain transformer sees the same deadline, so whichever loop is
/// mid-flight when it passes degrades (soundly, toward ⊤) instead of
/// running to convergence; the report says exactly where precision went.
fn deadline(ms: u64) {
    header(&format!(
        "--deadline-ms {ms} — anytime analysis under a wall-clock budget"
    ));
    let budget = Budget::deadline(Duration::from_millis(ms));
    let vocab = Vocab::standard();
    for k in 1..=8usize {
        let p = parse_program(&vocab, &fig1_family(k)).expect("family parses");
        let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        let analysis = Analyzer::new(&d).with_budget(budget.clone()).run(&p);
        let ok = analysis.assertions.iter().filter(|a| a.verified).count();
        println!(
            "k={k}: {ok}/{} verified{}",
            analysis.assertions.len(),
            if analysis.diverged { " (diverged)" } else { "" }
        );
        if budget.is_exhausted() {
            println!("deadline passed during k={k}; stopping the sweep");
            break;
        }
    }
    // The budgeted saturation domains share the same wall clock.
    let d = LogicalProduct::new(
        ParityDomain::new().with_budget(budget.clone()),
        SignDomain::new().with_budget(budget.clone()),
    );
    let p = parse_program(&vocab, FIG8).expect("figure 8 parses");
    let analysis = Analyzer::new(&d).with_budget(budget.clone()).run(&p);
    println!(
        "fig8 under the same budget: {}/{} verified",
        analysis.assertions.iter().filter(|a| a.verified).count(),
        analysis.assertions.len()
    );

    let report = budget.report();
    println!("degradation report:");
    println!("  degraded : {}", report.degraded);
    println!("  exhausted: {}", report.exhausted);
    println!("  fuel     : {} ticks spent", report.fuel_spent);
    for ev in &report.events {
        println!("  event    : [{}] {}", ev.site, ev.detail);
    }
    if report.dropped_events > 0 {
        println!("  (+{} events dropped)", report.dropped_events);
    }
    if report.events.is_empty() {
        println!("  (no degradation events — the deadline was generous)");
    }
}

/// `--budget-policy`: the narrowing-recovery report. The canonical
/// widening-loss loop (`x` counts to 100; widening extrapolates the
/// upper bound away) is analyzed under the flat and the adaptive
/// policy; the adaptive run's bounded descending pass must recover
/// `x <= 100` without ever dipping below the widened invariant's
/// soundness bracket, with or without fuel pressure on the main pool.
fn budget_policy() {
    header("--budget-policy — post-widening narrowing recovery");
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "x := 0;
         while (x < 100) { x := x + 1; }
         assert(x >= 100);
         assert(0 <= x);
         assert(x <= 100);",
    )
    .expect("counter loop parses");
    let d = Polyhedra::new();

    let flat = Analyzer::new(&d).run(&p);
    let adaptive = Analyzer::new(&d)
        .with_policy(BudgetPolicy::adaptive())
        .run(&p);
    let show = |name: &str, a: &cai_interp::Analysis<_>| {
        println!(
            "{name:>9}: {}/{} verified   narrow rounds {}, loops recovered {}",
            a.verified_count(),
            a.assertions.len(),
            a.stats.narrow_rounds,
            a.stats.narrow_recoveries
        );
    };
    show("flat", &flat);
    show("adaptive", &adaptive);

    if !d.le(&adaptive.exit, &flat.exit) {
        eprintln!("--budget-policy: narrowed exit escaped the widened bracket (unsound)");
        std::process::exit(1);
    }
    if adaptive.verified_count() <= flat.verified_count() || adaptive.stats.narrow_recoveries == 0 {
        eprintln!("--budget-policy: the narrowing pass failed to recover precision");
        std::process::exit(1);
    }

    // Fuel pressure: the ascending fixpoint is cut short by exhaustion,
    // yet the recovery slice (independent fuel) still narrows.
    let starved = Analyzer::new(&d)
        .with_budget(Budget::fuel(40))
        .with_policy(BudgetPolicy::adaptive())
        .run(&p);
    show("starved", &starved);
    if !d.le(&starved.exit, &flat.exit) {
        eprintln!("--budget-policy: starved narrowing escaped the widened bracket (unsound)");
        std::process::exit(1);
    }
    if starved.verified_count() <= flat.verified_count() {
        eprintln!("--budget-policy: recovery must survive a starved main pool");
        std::process::exit(1);
    }
    println!("recovery OK: narrowed \u{2291} widened, strictly more assertions verified");
}

/// `--blame`: precision provenance on the canonical widening-loss loop.
/// The flat-policy run widens `x <= 100` away and never narrows; the
/// blame layer records the loss and the differential report attributes
/// the flat-vs-adaptive assertion delta to the loop's widening site.
fn blame() {
    use cai_obs::provenance;
    header("--blame — precision provenance on the canonical widening loss");
    let vocab = Vocab::standard();
    let m = parse_module(
        &vocab,
        "proc main(n) {
             x := 0;
             while (x < 100) { x := x + 1; }
             assert(x >= 100);
             assert(x <= 100);
             ret := x;
         }",
    )
    .expect("counter loop parses");
    let driver = || Driver::new(|_: &Budget| Polyhedra::new());

    provenance::set_enabled(true);
    let _ = provenance::drain();
    let flat = driver().analyze(&m);
    let flat_tab = provenance::drain();
    let adaptive = driver().budget_policy(BudgetPolicy::adaptive()).analyze(&m);
    let adaptive_tab = provenance::drain();
    provenance::set_enabled(false);

    println!("flat-policy blame table:");
    print!("{flat_tab}");
    let diff = cai_driver::differential(
        "adaptive policy",
        (&adaptive, &adaptive_tab),
        "flat policy",
        (&flat, &flat_tab),
    );
    print!("{diff}");
    if diff.is_empty() {
        eprintln!("--blame: expected the flat run to lose an assertion to the adaptive run");
        std::process::exit(1);
    }
    let cause = diff.regressions[0].causes.first();
    if cause.map(|c| c.site) != Some("analyzer/while") {
        eprintln!("--blame: expected the widening site to be blamed first, got {cause:?}");
        std::process::exit(1);
    }
    println!("blame OK: the lost bound is attributed to the loop's widening site");
}

/// `--join-stats`: the split cache + batched elimination report. Each
/// fig1-family program is analyzed twice per product (the second pass is
/// the warmed re-analysis the interprocedural driver performs), cache on
/// vs. off. The cache must be semantically invisible — identical verdicts
/// and exit states — while measurably cutting budget ticks.
fn join_stats() {
    header("--join-stats — split-cache effect on the fig1 family");
    let vocab = Vocab::standard();
    let mut failed = false;
    let mut total_hits = 0u64;
    let mut total_cached_ticks = 0u64;
    let mut total_uncached_ticks = 0u64;
    println!(
        "{:<4} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "k", "ticks (on)", "ticks (off)", "hits", "misses", "identical?"
    );
    for k in 1..=3usize {
        let p = parse_program(&vocab, &fig1_family(k)).expect("family parses");
        let run = |d: LogicalProduct<AffineEq, UfDomain>| {
            let analyzer = Analyzer::new(&d);
            let first = analyzer.run(&p);
            let second = analyzer.run(&p);
            let flags: Vec<bool> = second.assertions.iter().map(|a| a.verified).collect();
            let same_rounds = first.exit == second.exit;
            (
                flags,
                second.exit,
                d.budget().spent(),
                d.stats().snapshot(),
                same_rounds,
            )
        };
        let product = || LogicalProduct::new(AffineEq::new(), UfDomain::new());
        let (va, ea, ticks_on, stats, stable) =
            run(product().with_cache_config(&CacheConfig::default()));
        let (vb, eb, ticks_off, _, _) = run(product().with_cache_config(&CacheConfig::disabled()));
        // The pre-redesign builder must be an exact alias of the unified
        // config (old-API vs. new-API bit-identity).
        let (vc, ec, _, _, _) =
            run(product().with_split_cache_capacity(cai_core::DEFAULT_SPLIT_CACHE_CAPACITY));
        let identical = va == vb && ea == eb && stable && vc == va && ec == ea;
        failed |= !identical;
        total_hits += stats.cache_hits;
        total_cached_ticks += ticks_on;
        total_uncached_ticks += ticks_off;
        println!(
            "{:<4} {:>12} {:>12} {:>8} {:>8} {:>10}",
            k,
            ticks_on,
            ticks_off,
            stats.cache_hits,
            stats.cache_misses,
            if identical { "yes" } else { "NO" }
        );
        println!("     {stats}");
    }
    println!(
        "totals: {total_cached_ticks} ticks with cache, {total_uncached_ticks} without, \
         {total_hits} hits"
    );
    if failed {
        eprintln!("--join-stats: the cache changed an analysis result");
        std::process::exit(1);
    }
    if total_hits == 0 {
        eprintln!("--join-stats: the warmed re-analysis never hit the cache");
        std::process::exit(1);
    }
    if total_cached_ticks >= total_uncached_ticks {
        eprintln!(
            "--join-stats: no tick reduction \
             ({total_cached_ticks} cached vs {total_uncached_ticks} uncached)"
        );
        std::process::exit(1);
    }
    incremental_edit(&vocab);
    driver_identity(&vocab);
}

/// The incremental-edit leg: a conjunction grows one atom per step — the
/// shape re-analysis of an edited procedure produces. The sub-structural
/// memo must answer the grown conjunctions by resuming from the cached
/// subset (partial hits > 0) and run strictly fewer NO-saturation rounds
/// than the whole-conjunction memo alone, while results stay bit-identical
/// across uncached / whole-only / sub-structural configurations.
fn incremental_edit(vocab: &Vocab) {
    println!("\nincremental-edit workload (one new conjunct per step):");
    // Two interleaved mixed-theory chains from a shared root. Deriving
    // `b_i = c_i` takes one NO-saturation round per theory alternation, so
    // a from-scratch split of the grown conjunction costs rounds
    // proportional to its depth — exactly what resuming from the cached
    // one-atom-smaller base avoids.
    let atoms: Vec<String> = {
        let mut v = vec!["b0 = 0".to_string(), "c0 = 0".to_string()];
        for i in 1..=3usize {
            v.push(format!("a{i} = F(b{})", i - 1));
            v.push(format!("d{i} = F(c{})", i - 1));
            v.push(format!("b{i} = a{i} + 1"));
            v.push(format!("c{i} = d{i} + 1"));
        }
        v
    };
    let grown = |k: usize| {
        vocab
            .parse_conj(&atoms[..k].join(" & "))
            .expect("grown conjunction parses")
    };
    let other = vocab
        .parse_conj("w = F(b0 + 5)")
        .expect("other side parses");
    let run = |cfg: &CacheConfig| {
        let d = LogicalProduct::new(AffineEq::new(), UfDomain::new()).with_cache_config(cfg);
        let results: Vec<String> = (2..=atoms.len())
            .map(|k| d.join(&grown(k), &other).to_string())
            .collect();
        (results, d.budget().spent(), d.stats().snapshot())
    };
    let (r_off, t_off, _) = run(&CacheConfig::disabled());
    let (r_whole, t_whole, s_whole) = run(&CacheConfig::whole_only());
    let (r_sub, t_sub, s_sub) = run(&CacheConfig::default());
    println!("  ticks: uncached {t_off}, whole-conjunction {t_whole}, sub-structural {t_sub}");
    println!(
        "  whole-conjunction: saturation rounds={} {s_whole}",
        s_whole.saturation_rounds
    );
    println!(
        "  sub-structural   : saturation rounds={} partial-hit rate={:.1}% {s_sub}",
        s_sub.saturation_rounds,
        100.0 * s_sub.cache_partial_hit_rate()
    );
    if r_off != r_whole || r_off != r_sub {
        eprintln!("--join-stats: incremental-edit results differ across cache configs");
        std::process::exit(1);
    }
    if s_sub.cache_partial_hits == 0 {
        eprintln!("--join-stats: the sub-structural memo never scored a partial hit");
        std::process::exit(1);
    }
    if s_sub.saturation_rounds >= s_whole.saturation_rounds {
        eprintln!(
            "--join-stats: sub-structural memo saved no saturation rounds ({} vs {})",
            s_sub.saturation_rounds, s_whole.saturation_rounds
        );
        std::process::exit(1);
    }
}

/// The driver leg: one shared split cache (clones share) serves 1-, 2- and
/// 4-thread batch runs; every cached run must be bit-identical to the
/// others and to the fully uncached baseline.
fn driver_identity(vocab: &Vocab) {
    println!("\ndriver leg (cached vs uncached, shared split cache, 1/2/4 threads):");
    let mut src = String::new();
    for i in 0..6 {
        let _ = std::fmt::Write::write_fmt(
            &mut src,
            format_args!(
                "proc p{i}(a) {{
                     x := a + {i};
                     y := F(x);
                     while (*) {{ x := x + 1; y := F(x); }}
                     assert(y = F(x));
                     ret := x;
                 }}\n"
            ),
        );
    }
    let m = parse_module(vocab, &src).expect("driver-leg module parses");
    let run_fp = |a: &ModuleAnalysis| -> String {
        let mut s = String::new();
        for r in a {
            let verdicts: Vec<bool> = r.assertions.iter().map(|o| o.verified).collect();
            let _ = std::fmt::Write::write_fmt(
                &mut s,
                format_args!("{} | {} | {verdicts:?}\n", r.name, r.summary),
            );
        }
        s
    };
    let baseline = run_fp(
        &Driver::new(|_: &Budget| {
            LogicalProduct::new(AffineEq::new(), UfDomain::new())
                .with_cache_config(&CacheConfig::disabled())
        })
        .threads(1)
        .analyze(&m),
    );
    let shared = SplitCache::with_config(&CacheConfig::default());
    for threads in [1usize, 2, 4] {
        let cache = shared.clone();
        let a = Driver::new(move |_: &Budget| {
            LogicalProduct::new(AffineEq::new(), UfDomain::new()).with_split_cache(cache.clone())
        })
        .threads(threads)
        .analyze(&m);
        let identical = run_fp(&a) == baseline;
        println!(
            "  {threads} thread(s): {}",
            if identical {
                "identical to uncached baseline"
            } else {
                "MISMATCH"
            }
        );
        if !identical {
            eprintln!("--join-stats: cached driver run diverged from the uncached baseline");
            std::process::exit(1);
        }
    }
    println!("  shared-cache stats: {}", shared.stats());
}

fn header(title: &str) {
    println!("\n{}\n{}", title, "=".repeat(title.len()));
}

fn verdicts<D: AbstractDomain>(d: &D, p: &Program, herbrand: bool) -> Vec<bool> {
    let analyzer = if herbrand {
        Analyzer::new(d).with_view(herbrand_view)
    } else {
        Analyzer::new(d)
    };
    analyzer
        .run(p)
        .assertions
        .iter()
        .map(|a| a.verified)
        .collect()
}

fn show(verdicts: &[bool]) -> String {
    let marks: Vec<&str> = verdicts
        .iter()
        .map(|v| if *v { "yes" } else { "-" })
        .collect();
    format!(
        "{:<28} ({} verified)",
        marks.join("  "),
        verdicts.iter().filter(|v| **v).count()
    )
}

fn fig1() {
    header("Figure 1 — precision of direct vs. reduced vs. logical product");
    println!("paper claim: 1 / 1 / 2 / 3 / 4 assertions verified");
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, FIG1).expect("figure 1 parses");
    let lin = verdicts(&AffineEq::new(), &p, false);
    println!("linear equalities alone : {}", show(&lin));
    let uf = verdicts(&UfDomain::new(), &p, true);
    println!("uninterpreted fns alone : {}", show(&uf));
    let direct: Vec<bool> = lin.iter().zip(&uf).map(|(a, b)| *a || *b).collect();
    println!("direct product          : {}", show(&direct));
    let reduced = ReducedProduct::new(AffineEq::new(), UfDomain::new());
    println!(
        "reduced product         : {}",
        show(&verdicts(&reduced, &p, false))
    );
    let logical = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    println!(
        "logical product         : {}",
        show(&verdicts(&logical, &p, false))
    );
}

fn fig2() {
    header("Figure 2 — Purify and NOSaturation");
    let vocab = Vocab::standard();
    let e = vocab
        .parse_conj("x3 <= F(2*x2 - x1) & x3 >= x1 & x1 = F(x1) & x2 = F(F(x1))")
        .expect("figure 2 parses");
    println!("E  = {e}");
    let lin = Sig::single(TheoryTag::LINARITH);
    let uf = Sig::single(TheoryTag::UF);
    let aliens = alien_terms(&e, &lin, &uf);
    let shown: Vec<String> = aliens.iter().map(|t| t.to_string()).collect();
    println!("AlienTerms(E) = {{{}}}", shown.join(", "));
    let p = purify(&e, &lin, &uf);
    println!("V  = {:?}", p.fresh);
    println!("E1 = {}", p.left);
    println!("E2 = {}", p.right);
    let d1 = Polyhedra::new();
    let d2 = UfDomain::new();
    let s = no_saturate(&d1, d1.from_conj(&p.left), &d2, d2.from_conj(&p.right));
    println!("NOSaturation shares: {:?}", s.equalities);
    println!("E1' = {}", s.left);
    println!("E2' = {}", s.right);
}

fn fig3() {
    header("Figure 3 — the union theory is not a lattice; J in L1 ⋈ L2");
    println!("paper claim: J(x=a ∧ y=b, x=b ∧ y=a) = (x + y = a + b)");
    let vocab = Vocab::standard();
    let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    let e1 = vocab.parse_conj("x = a & y = b").expect("parses");
    let e2 = vocab.parse_conj("x = b & y = a").expect("parses");
    let j = d.join(&e1, &e2);
    println!("computed: J = {j}");
}

fn fig4() {
    header("Figure 4 — strict logical product vs. logical product");
    println!("paper claim: assertion 1 verified, assertion 2 not");
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, FIG4).expect("figure 4 parses");
    let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    let got = verdicts(&d, &p, false);
    println!("computed: {}", show(&got));
}

fn fig6() {
    header("Figure 6 — the combined join algorithm, worked example");
    println!("paper claim: J(u=F(w) ∧ w=v+1, u=F(u) ∧ v=F(u)−1) = (u = F(v+1))");
    let vocab = Vocab::standard();
    let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    let el = vocab.parse_conj("u = F(w) & w = v + 1").expect("parses");
    let er = vocab.parse_conj("u = F(u) & v = F(u) - 1").expect("parses");
    let j = d.join(&el, &er);
    println!("computed: J = {j}");
}

fn fig7() {
    header("Figure 7 — the combined quantification algorithm, worked example");
    println!("paper claim: Q(x≤y ∧ y≤u ∧ x=F(F(1+y)) ∧ v=F(y+1), {{x,y}}) = (F(v) ≤ u)");
    let vocab = Vocab::standard();
    let d = LogicalProduct::new(Polyhedra::new(), UfDomain::new());
    let e = vocab
        .parse_conj("x <= y & y <= u & x = F(F(1 + y)) & v = F(y + 1)")
        .expect("parses");
    let elim: VarSet = [Var::named("x"), Var::named("y")].into_iter().collect();
    let q = d.exists(&e, &elim);
    println!("computed: Q = {q}");
}

fn fig8() {
    header("Figure 8 — non-disjoint theories: sound but incomplete");
    println!("paper claim: combination yields odd(x), most precise is odd(x) ∧ positive(x)");
    let vocab = Vocab::standard();
    let d = LogicalProduct::new(ParityDomain::new(), SignDomain::new());
    assert_eq!(d.precision(), Precision::HeuristicNonDisjoint);
    println!("precision classification: {:?}", d.precision());
    let p = parse_program(&vocab, FIG8).expect("figure 8 parses");
    let got = verdicts(&d, &p, false);
    println!(
        "computed: odd(x) {} / positive(x) {}",
        if got[0] { "verified" } else { "MISSED" },
        if got[1] {
            "UNEXPECTEDLY VERIFIED"
        } else {
            "not verified (as predicted)"
        }
    );
}

fn thm6() {
    header("Theorem 6 — fixpoint iterations over the combined lattice");
    println!("paper claim: H_combined ≤ H_L1 + H_L2 + |AlienTerms|");
    println!(
        "{:<4} {:>8} {:>6} {:>10} {:>8} {:>18}",
        "k", "affine", "uf", "combined", "aliens", "bound respected?"
    );
    let vocab = Vocab::standard();
    for k in 1..=4 {
        let p = parse_program(&vocab, &thm6_family(k)).expect("family parses");
        let lin: usize = Analyzer::new(&AffineEq::new())
            .run(&p)
            .loop_iterations
            .iter()
            .sum();
        let uf: usize = Analyzer::new(&UfDomain::new())
            .with_view(herbrand_view)
            .run(&p)
            .loop_iterations
            .iter()
            .sum();
        let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        let analysis = Analyzer::new(&d).run(&p);
        let combined: usize = analysis.loop_iterations.iter().sum();
        let aliens = alien_terms(
            &analysis.exit,
            &Sig::single(TheoryTag::LINARITH),
            &Sig::single(TheoryTag::UF),
        )
        .len();
        println!(
            "{:<4} {:>8} {:>6} {:>10} {:>8} {:>18}",
            k,
            lin,
            uf,
            combined,
            aliens,
            if combined <= lin + uf + aliens + 1 {
                "yes"
            } else {
                "NO"
            }
        );
    }
}

fn sec5() {
    header("Section 5 — reductions to unary-UF ⋈ linear arithmetic");
    let vocab = Vocab::standard();
    let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
    for src in ["Gc(a, b)", "Gc(b, a)", "Gc(Gc(a, b), c)"] {
        let t = vocab.parse_term(src).expect("parses");
        println!("M({src}) = {}", enc.encode_term(&t));
    }
    let mut enc2 = UnaryEncoder::new(EncodeMode::MultiArity);
    for src in ["H(a, b, c)", "H(c, b, a)"] {
        let t = vocab.parse_term(src).expect("parses");
        println!("M({src}) = {}", enc2.encode_term(&t));
    }
    // Program-level check: commutativity proved through the reduction.
    let p = parse_program(&vocab, "x := Gc(p, q); y := Gc(q, p); assert(x = y);").expect("parses");
    let mut enc3 = UnaryEncoder::new(EncodeMode::Commutative);
    let encoded = p.map_terms(&mut |t| enc3.encode_term(t));
    let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    let got = verdicts(&d, &encoded, false);
    println!(
        "commutativity assertion through the reduction: {}",
        show(&got)
    );
}

fn complexity() {
    header("§4.4 — measured cost of combined operators (µs, medians of 3)");
    println!(
        "{:<6} {:>12} {:>12} {:>14} {:>12} {:>14}",
        "n", "J_affine", "J_uf", "J_logical", "Q_affine", "Q_logical"
    );
    for &n in &[2usize, 3, 4, 6] {
        let mut gen = ConjGen::new(5000 + n as u64, n);
        let lin = AffineEq::new();
        let uf = UfDomain::new();
        let logical = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        let (la, lb) = gen.join_pair(n, 2, false);
        let (ea, eb) = (lin.from_conj(&la), lin.from_conj(&lb));
        let (ma, mb) = gen.join_pair(n, 2, true);
        let sig = Sig::single(TheoryTag::UF);
        let ua = uf.from_conj(&ma.iter().filter(|a| sig.owns_atom(a)).cloned().collect());
        let ub = uf.from_conj(&mb.iter().filter(|a| sig.owns_atom(a)).cloned().collect());
        let elim: VarSet = (0..n / 2).map(|i| Var::named(&format!("w{i}"))).collect();

        let t_jl = median_us(|| {
            lin.join(&ea, &eb);
        });
        let t_ju = median_us(|| {
            uf.join(&ua, &ub);
        });
        let t_jc = median_us(|| {
            logical.join(&ma, &mb);
        });
        let t_ql = median_us(|| {
            lin.exists(&ea, &elim);
        });
        let t_qc = median_us(|| {
            logical.exists(&ma, &elim);
        });
        println!(
            "{:<6} {:>12.1} {:>12.1} {:>14.1} {:>12.1} {:>14.1}",
            n, t_jl, t_ju, t_jc, t_ql, t_qc
        );
    }
    println!("(criterion benches: cargo bench -p cai-bench)");
}

fn median_us(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[1]
}

fn compare() {
    header("§7 — cost & precision: direct vs. reduced vs. logical (fig1 family)");
    println!(
        "{:<4} {:>10} {:>12} {:>12} | {:>8} {:>8} {:>8}",
        "k", "direct ms", "reduced ms", "logical ms", "dir ok", "red ok", "log ok"
    );
    let vocab = Vocab::standard();
    for k in 1..=3usize {
        let p = parse_program(&vocab, &fig1_family(k)).expect("family parses");
        let t0 = Instant::now();
        let lin = verdicts(&AffineEq::new(), &p, false);
        let uf = verdicts(&UfDomain::new(), &p, true);
        let direct_ok = lin.iter().zip(&uf).filter(|(a, b)| **a || **b).count();
        let t_direct = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let reduced = ReducedProduct::new(AffineEq::new(), UfDomain::new());
        let red = verdicts(&reduced, &p, false);
        let t_reduced = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let logical = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        let log = verdicts(&logical, &p, false);
        let t_logical = t0.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:<4} {:>10.1} {:>12.1} {:>12.1} | {:>8} {:>8} {:>8}",
            k,
            t_direct,
            t_reduced,
            t_logical,
            direct_ok,
            red.iter().filter(|v| **v).count(),
            log.iter().filter(|v| **v).count(),
        );
    }
}
