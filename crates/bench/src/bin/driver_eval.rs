//! Benchmarks the interprocedural driver (`cai-driver`): parallel
//! speedup over independent procedures and warm-cache incremental
//! re-analysis.
//!
//! ```sh
//! cargo run --release -p cai-bench --bin driver_eval                    # defaults
//! cargo run --release -p cai-bench --bin driver_eval -- --procs 64 --threads 8
//! cargo run --release -p cai-bench --bin driver_eval -- --smoke         # quick CI check
//! cargo run --release -p cai-bench --bin driver_eval -- --ctx-stats     # context-sensitivity report
//! ```
//!
//! `--ctx-stats` runs a benchmark whose callee reassigns its formal —
//! invisible to context-insensitive summaries — and asserts the
//! entry-keyed analysis is never less precise (and strictly more precise
//! there), printing context and cache counters.

use cai_core::{AbstractDomain, Budget, LogicalProduct};
use cai_driver::{Driver, ModuleAnalysis, Summary, SummaryCache};
use cai_interp::{parse_module, Module};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;
use std::time::Instant;

type Product = LogicalProduct<AffineEq, UfDomain>;

fn product_driver() -> Driver<Product, impl Fn(&Budget) -> Product + Sync> {
    Driver::new(|_: &Budget| LogicalProduct::new(AffineEq::new(), UfDomain::new()))
}

/// A batch of `n` independent procedures, each with a loop and alien
/// (mixed-theory) terms so the per-procedure fixpoint does real work.
/// `p0_variant` perturbs only the first procedure's constant, modelling
/// a single-procedure edit.
fn batch_module(n: usize, p0_variant: usize) -> Module {
    let mut src = String::new();
    for i in 0..n {
        let k = if i == 0 { 7 + p0_variant } else { i % 7 };
        src.push_str(&format!(
            "proc p{i}(a) {{
                 x := a + {k};
                 y := F(x);
                 z := F(y - 1);
                 while (*) {{
                     x := x + 1;
                     y := F(x);
                     z := z + 2;
                 }}
                 assert(y = F(x));
                 ret := x;
             }}\n"
        ));
    }
    parse_module(&Vocab::standard(), &src).expect("generated module parses")
}

/// A module whose callee reassigns its formal, so the context-insensitive
/// summary of `step` collapses to `true` (the exit constraint ranges over
/// *stable* formals only) while entry-keyed specialization recovers
/// `ret = k + 1` at each constant-argument call site.
fn ctx_module(n: usize) -> Module {
    let mut src = String::from(
        "proc step(a) {
             a := a + 1;
             ret := a;
         }\n",
    );
    for i in 0..n {
        src.push_str(&format!(
            "proc use{i}(b) {{
                 x := call step({i});
                 y := call step(x);
                 assert(y = {});
                 ret := y + b;
             }}\n",
            i + 2
        ));
    }
    parse_module(&Vocab::standard(), &src).expect("generated module parses")
}

/// Exit-fact order: `a ⊑ b` under the product domain (None = ⊥).
fn exit_le(d: &Product, a: &Summary, b: &Summary) -> bool {
    match (&a.exit, &b.exit) {
        (None, _) => true,
        (Some(ca), None) => d.is_bottom(&d.from_conj(ca)),
        (Some(ca), Some(cb)) => d.le(&d.from_conj(ca), &d.from_conj(cb)),
    }
}

fn time_ms(mut f: impl FnMut() -> ModuleAnalysis) -> (f64, ModuleAnalysis) {
    let t = Instant::now();
    let a = f();
    (t.elapsed().as_secs_f64() * 1e3, a)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let ctx_stats = args.iter().any(|a| a == "--ctx-stats");
    let procs = flag_value("--procs", if smoke { 32 } else { 64 });
    let threads = flag_value("--threads", 4);
    let reps = if smoke { 1 } else { 3 };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("driver_eval: {procs} independent procedures, {threads} threads, {cpus} CPU(s)");
    let m = batch_module(procs, 0);

    // --- parallel speedup -------------------------------------------------
    let best = |t: usize| {
        (0..reps)
            .map(|_| time_ms(|| product_driver().threads(t).analyze(&m)).0)
            .fold(f64::INFINITY, f64::min)
    };
    let t_seq = best(1);
    let t_par = best(threads);
    let speedup = t_seq / t_par;
    println!("  1 thread : {t_seq:>8.1} ms");
    println!("  {threads} threads: {t_par:>8.1} ms   (speedup {speedup:.2}x)");

    // Determinism check rides along: the parallel schedule must produce
    // bit-identical summaries and verdicts.
    let seq = product_driver().threads(1).analyze(&m);
    let par = product_driver().threads(threads).analyze(&m);
    let identical = seq.reports.iter().zip(par.reports.iter()).all(|(a, b)| {
        a.summary == b.summary
            && a.summary.to_string() == b.summary.to_string()
            && a.assertions.iter().map(|o| o.verified).collect::<Vec<_>>()
                == b.assertions.iter().map(|o| o.verified).collect::<Vec<_>>()
    });
    println!(
        "  determinism (1 vs {threads} threads): {}",
        if identical { "identical" } else { "MISMATCH" }
    );

    // --- warm-cache incremental re-analysis -------------------------------
    let driver = product_driver().threads(threads);
    let mut cache = SummaryCache::new();
    let (t_cold, cold) = time_ms(|| driver.analyze_with_cache(&m, &mut cache));
    let (t_warm, warm) = time_ms(|| driver.analyze_with_cache(&m, &mut cache));
    println!(
        "  cold cache: {t_cold:>8.1} ms   {{reused: {}, recomputed: {}}}",
        cold.reused, cold.recomputed
    );
    println!(
        "  warm cache: {t_warm:>8.1} ms   {{reused: {}, recomputed: {}}}   (speedup {:.1}x)",
        warm.reused,
        warm.recomputed,
        t_cold / t_warm.max(1e-6)
    );

    // Edit one procedure: only its dirty cone (here, itself) recomputes.
    let edited = batch_module(procs, 1);
    let (t_edit, inc) = time_ms(|| driver.analyze_with_cache(&edited, &mut cache));
    println!(
        "  edit one procedure: {t_edit:>8.1} ms   {{reused: {}, recomputed: {}}}",
        inc.reused, inc.recomputed
    );

    // --- context sensitivity ---------------------------------------------
    if ctx_stats {
        let callers = 4;
        let cm = ctx_module(callers);
        let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        let mut cache = SummaryCache::new();
        let (t_sens, sens) = time_ms(|| {
            product_driver()
                .threads(threads)
                .analyze_with_cache(&cm, &mut cache)
        });
        let (t_insens, insens) = time_ms(|| product_driver().context_cap(0).analyze(&cm));

        // Hard guarantee: context-sensitive exit facts are ⊑ the
        // insensitive ones on every procedure, strictly below on the
        // reassigned-formal benchmark.
        let mut strictly_better = 0usize;
        for (s, i) in sens.iter().zip(&insens) {
            assert_eq!(s.name, i.name);
            assert!(
                exit_le(&d, &s.summary, &i.summary),
                "context-sensitive summary of `{}` must be at least as precise",
                s.name
            );
            if !exit_le(&d, &i.summary, &s.summary) {
                strictly_better += 1;
            }
        }
        println!("  ctx benchmark ({callers} constant-argument callers of a reassigning callee):");
        println!(
            "    sensitive  : {t_sens:>6.1} ms   verified {}/{}   strictly more precise on {} proc(s)",
            sens.verified_count(),
            callers,
            strictly_better
        );
        println!(
            "    insensitive: {t_insens:>6.1} ms   verified {}/{}",
            insens.verified_count(),
            callers
        );
        println!("    ctx stats  : {}", sens.ctx);
        println!("    cache stats: {}", cache.stats());
        // Determinism of the context-sensitive schedule across thread
        // counts rides along.
        let s1 = product_driver().threads(1).analyze(&cm);
        let s4 = product_driver().threads(4).analyze(&cm);
        let ctx_identical = s1
            .iter()
            .zip(&s4)
            .all(|(a, b)| a.summary == b.summary && a.summary.to_string() == b.summary.to_string());
        println!(
            "    determinism (1 vs 4 threads): {}",
            if ctx_identical {
                "identical"
            } else {
                "MISMATCH"
            }
        );
        assert!(
            ctx_identical,
            "context-sensitive schedule must be deterministic"
        );
        assert!(
            strictly_better > 0,
            "entry-keyed summaries must be strictly more precise on the ctx benchmark"
        );
        assert!(
            sens.verified_count() > insens.verified_count(),
            "context sensitivity must verify more assertions on the ctx benchmark"
        );
    }

    if smoke {
        assert!(identical, "parallel schedule must be deterministic");
        if cpus >= threads {
            assert!(
                speedup >= 1.5,
                "expected >=1.5x speedup with {threads} threads on {cpus} CPUs, got {speedup:.2}x"
            );
        } else {
            println!("  (only {cpus} CPU(s) — wall-clock speedup not measurable here)");
        }
        assert_eq!(warm.recomputed, 0, "warm cache must reuse everything");
        assert_eq!(warm.reused, procs);
        assert_eq!(
            (inc.reused, inc.recomputed),
            (procs - 1, 1),
            "a one-procedure edit must recompute exactly that procedure"
        );
        println!("driver_eval smoke OK");
    }
}
