//! Benchmarks the interprocedural driver (`cai-driver`): parallel
//! speedup over independent procedures and warm-cache incremental
//! re-analysis.
//!
//! ```sh
//! cargo run --release -p cai-bench --bin driver_eval                    # defaults
//! cargo run --release -p cai-bench --bin driver_eval -- --procs 64 --threads 8
//! cargo run --release -p cai-bench --bin driver_eval -- --smoke         # quick CI check
//! ```

use cai_core::{Budget, LogicalProduct};
use cai_driver::{Driver, ModuleAnalysis, SummaryCache};
use cai_interp::{parse_module, Module};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;
use std::time::Instant;

type Product = LogicalProduct<AffineEq, UfDomain>;

fn product_driver() -> Driver<Product, impl Fn(&Budget) -> Product + Sync> {
    Driver::new(|_: &Budget| LogicalProduct::new(AffineEq::new(), UfDomain::new()))
}

/// A batch of `n` independent procedures, each with a loop and alien
/// (mixed-theory) terms so the per-procedure fixpoint does real work.
/// `p0_variant` perturbs only the first procedure's constant, modelling
/// a single-procedure edit.
fn batch_module(n: usize, p0_variant: usize) -> Module {
    let mut src = String::new();
    for i in 0..n {
        let k = if i == 0 { 7 + p0_variant } else { i % 7 };
        src.push_str(&format!(
            "proc p{i}(a) {{
                 x := a + {k};
                 y := F(x);
                 z := F(y - 1);
                 while (*) {{
                     x := x + 1;
                     y := F(x);
                     z := z + 2;
                 }}
                 assert(y = F(x));
                 ret := x;
             }}\n"
        ));
    }
    parse_module(&Vocab::standard(), &src).expect("generated module parses")
}

fn time_ms(mut f: impl FnMut() -> ModuleAnalysis) -> (f64, ModuleAnalysis) {
    let t = Instant::now();
    let a = f();
    (t.elapsed().as_secs_f64() * 1e3, a)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let procs = flag_value("--procs", if smoke { 32 } else { 64 });
    let threads = flag_value("--threads", 4);
    let reps = if smoke { 1 } else { 3 };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("driver_eval: {procs} independent procedures, {threads} threads, {cpus} CPU(s)");
    let m = batch_module(procs, 0);

    // --- parallel speedup -------------------------------------------------
    let best = |t: usize| {
        (0..reps)
            .map(|_| time_ms(|| product_driver().threads(t).analyze(&m)).0)
            .fold(f64::INFINITY, f64::min)
    };
    let t_seq = best(1);
    let t_par = best(threads);
    let speedup = t_seq / t_par;
    println!("  1 thread : {t_seq:>8.1} ms");
    println!("  {threads} threads: {t_par:>8.1} ms   (speedup {speedup:.2}x)");

    // Determinism check rides along: the parallel schedule must produce
    // bit-identical summaries and verdicts.
    let seq = product_driver().threads(1).analyze(&m);
    let par = product_driver().threads(threads).analyze(&m);
    let identical = seq.reports.iter().zip(par.reports.iter()).all(|(a, b)| {
        a.summary == b.summary
            && a.summary.to_string() == b.summary.to_string()
            && a.assertions.iter().map(|o| o.verified).collect::<Vec<_>>()
                == b.assertions.iter().map(|o| o.verified).collect::<Vec<_>>()
    });
    println!(
        "  determinism (1 vs {threads} threads): {}",
        if identical { "identical" } else { "MISMATCH" }
    );

    // --- warm-cache incremental re-analysis -------------------------------
    let driver = product_driver().threads(threads);
    let mut cache = SummaryCache::new();
    let (t_cold, cold) = time_ms(|| driver.analyze_with_cache(&m, &mut cache));
    let (t_warm, warm) = time_ms(|| driver.analyze_with_cache(&m, &mut cache));
    println!(
        "  cold cache: {t_cold:>8.1} ms   {{reused: {}, recomputed: {}}}",
        cold.reused, cold.recomputed
    );
    println!(
        "  warm cache: {t_warm:>8.1} ms   {{reused: {}, recomputed: {}}}   (speedup {:.1}x)",
        warm.reused,
        warm.recomputed,
        t_cold / t_warm.max(1e-6)
    );

    // Edit one procedure: only its dirty cone (here, itself) recomputes.
    let edited = batch_module(procs, 1);
    let (t_edit, inc) = time_ms(|| driver.analyze_with_cache(&edited, &mut cache));
    println!(
        "  edit one procedure: {t_edit:>8.1} ms   {{reused: {}, recomputed: {}}}",
        inc.reused, inc.recomputed
    );

    if smoke {
        assert!(identical, "parallel schedule must be deterministic");
        if cpus >= threads {
            assert!(
                speedup >= 1.5,
                "expected >=1.5x speedup with {threads} threads on {cpus} CPUs, got {speedup:.2}x"
            );
        } else {
            println!("  (only {cpus} CPU(s) — wall-clock speedup not measurable here)");
        }
        assert_eq!(warm.recomputed, 0, "warm cache must reuse everything");
        assert_eq!(warm.reused, procs);
        assert_eq!(
            (inc.reused, inc.recomputed),
            (procs - 1, 1),
            "a one-procedure edit must recompute exactly that procedure"
        );
        println!("driver_eval smoke OK");
    }
}
