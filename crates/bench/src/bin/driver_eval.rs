//! Benchmarks the interprocedural driver (`cai-driver`): parallel
//! speedup over independent procedures and warm-cache incremental
//! re-analysis.
//!
//! ```sh
//! cargo run --release -p cai-bench --bin driver_eval                    # defaults
//! cargo run --release -p cai-bench --bin driver_eval -- --procs 64 --threads 8
//! cargo run --release -p cai-bench --bin driver_eval -- --smoke         # quick CI check
//! cargo run --release -p cai-bench --bin driver_eval -- --ctx-stats     # context-sensitivity report
//! cargo run --release -p cai-bench --bin driver_eval -- --chaos         # supervised fault drill
//! cargo run --release -p cai-bench --bin driver_eval -- --obs-report    # counter registry dump
//! cargo run --release -p cai-bench --bin driver_eval -- --trace-out prof.json  # Chrome trace
//! cargo run --release -p cai-bench --bin driver_eval -- --blame        # provenance drill
//! cargo run --release -p cai-bench --bin driver_eval -- --blame-out blame.json # + JSON export
//! ```
//!
//! `--ctx-stats` runs a benchmark whose callee reassigns its formal —
//! invisible to context-insensitive summaries — and asserts the
//! entry-keyed analysis is never less precise (and strictly more precise
//! there), printing context and cache counters.
//!
//! `--obs-report` prints the global `cai-obs` counter registry at exit
//! (plus the run's shared join stats under `core/join/…`); `--trace-out
//! FILE` enables the span tracer and writes a Chrome `trace_event` JSON
//! profile loadable in `chrome://tracing` or Perfetto. Neither changes
//! any analysis result.
//!
//! `--chaos` wraps every job's domain in a seeded fault injector
//! (`--chaos-seed N`, default 7) that panics mid-operation, then asserts
//! the supervised driver survives: the batch completes with no abort,
//! caught panics / retries / quarantines are reported, quarantined
//! procedures pin to the sound ⊤ summary, and the outcome is
//! bit-identical across 1 vs `--threads` threads.
//!
//! `--budget-policy` runs the adaptive-budget drill: a mixed-size batch
//! under a fuel pool calibrated so equal (flat) shares starve the big
//! procedure while size-proportional (adaptive) shares feed everyone.
//! Asserts the adaptive run is per-procedure no less precise than the
//! flat one (strictly better on the starved procedure), that narrowing
//! recovers the widened loop bound, and that the same drill survives a
//! chaos-wrapped domain with no abort, bit-identically across threads.
//!
//! `--blame` (and `--blame-out FILE`, which also writes the JSON export)
//! runs the precision-provenance drill: the calibrated budget-policy
//! workload plus a context-cap leg and a chaos leg under the blame
//! layer, printing the ranked loss tables and the flat-vs-adaptive
//! differential attribution ("assert N in `big` lost <= … at big/loop#0
//! (analyzer/while) under flat policy"). Asserts ≥4 loss kinds are
//! covered, the export is bit-identical at 1/2/4 threads, and results
//! are unchanged with the layer off.

use cai_bench::{
    args::{write_blame_out, write_trace_out},
    Args,
};
use cai_core::{
    AbstractDomain, Budget, BudgetPolicy, ChaosConfig, ChaosDomain, JoinStats, LogicalProduct,
};
use cai_driver::{Driver, ModuleAnalysis, Summary, SummaryCache};
use cai_interp::{parse_module, Module};
use cai_linarith::AffineEq;
use cai_linarith::Polyhedra;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;
use std::time::Instant;

type Product = LogicalProduct<AffineEq, UfDomain>;

fn product_driver() -> Driver<Product, impl Fn(&Budget) -> Product + Sync> {
    Driver::new(|_: &Budget| LogicalProduct::new(AffineEq::new(), UfDomain::new()))
}

/// Like [`product_driver`], but every job's product shares `stats`, so
/// one `--obs-report` line set aggregates the whole batch.
fn product_driver_with(stats: &JoinStats) -> Driver<Product, impl Fn(&Budget) -> Product + Sync> {
    let stats = stats.clone();
    Driver::new(move |_: &Budget| {
        LogicalProduct::new(AffineEq::new(), UfDomain::new()).with_stats(stats.clone())
    })
}

/// A batch of `n` independent procedures, each with a loop and alien
/// (mixed-theory) terms so the per-procedure fixpoint does real work.
/// `p0_variant` perturbs only the first procedure's constant, modelling
/// a single-procedure edit.
fn batch_module(n: usize, p0_variant: usize) -> Module {
    let mut src = String::new();
    for i in 0..n {
        let k = if i == 0 { 7 + p0_variant } else { i % 7 };
        src.push_str(&format!(
            "proc p{i}(a) {{
                 x := a + {k};
                 y := F(x);
                 z := F(y - 1);
                 while (*) {{
                     x := x + 1;
                     y := F(x);
                     z := z + 2;
                 }}
                 assert(y = F(x));
                 ret := x;
             }}\n"
        ));
    }
    parse_module(&Vocab::standard(), &src).expect("generated module parses")
}

/// A module whose callee reassigns its formal, so the context-insensitive
/// summary of `step` collapses to `true` (the exit constraint ranges over
/// *stable* formals only) while entry-keyed specialization recovers
/// `ret = k + 1` at each constant-argument call site.
fn ctx_module(n: usize) -> Module {
    let mut src = String::from(
        "proc step(a) {
             a := a + 1;
             ret := a;
         }\n",
    );
    for i in 0..n {
        src.push_str(&format!(
            "proc use{i}(b) {{
                 x := call step({i});
                 y := call step(x);
                 assert(y = {});
                 ret := y + b;
             }}\n",
            i + 2
        ));
    }
    parse_module(&Vocab::standard(), &src).expect("generated module parses")
}

/// Exit-fact order: `a ⊑ b` under the product domain (None = ⊥).
fn exit_le(d: &Product, a: &Summary, b: &Summary) -> bool {
    match (&a.exit, &b.exit) {
        (None, _) => true,
        (Some(ca), None) => d.is_bottom(&d.from_conj(ca)),
        (Some(ca), Some(cb)) => d.le(&d.from_conj(ca), &d.from_conj(cb)),
    }
}

fn time_ms(mut f: impl FnMut() -> ModuleAnalysis) -> (f64, ModuleAnalysis) {
    let t = Instant::now();
    let a = f();
    (t.elapsed().as_secs_f64() * 1e3, a)
}

/// One comparable line per observable fact of a run, for the chaos
/// determinism check (summaries, verdicts, flags, supervision counters,
/// incident log).
fn run_fingerprint(a: &ModuleAnalysis) -> String {
    let mut s = String::new();
    for r in a {
        let verdicts: Vec<bool> = r.assertions.iter().map(|o| o.verified).collect();
        s.push_str(&format!(
            "{} | {} | {verdicts:?} | diverged={} quarantined={}\n",
            r.name, r.summary, r.diverged, r.quarantined
        ));
    }
    s.push_str(&format!("sup={:?}\n", a.supervision));
    for i in &a.degradation.incidents {
        s.push_str(&format!(
            "{} `{}` attempt {}\n",
            i.kind, i.subject, i.attempt
        ));
    }
    s
}

/// `--chaos`: run the standard batch under an injector that panics with
/// probability `panic_permille`/1000 per abstract operation, supervised.
/// Two phases: a gentle rate where caught panics are absorbed (retried
/// or quarantined), and a harsh zero-retry pass where procedures
/// quarantine to the sound ⊤ summary. Rates escalate deterministically
/// until each phase's fault actually fires for the given seed. Both
/// phases must finish with no abort, bit-identically across 1 vs
/// `threads` threads.
fn chaos_drill(procs: usize, threads: usize, seed: u64, panic_permille: u32) {
    let m = batch_module(procs, 0);
    let chaos_driver = |rate: u32| {
        Driver::new(move |b: &Budget| {
            ChaosDomain::new(LogicalProduct::new(AffineEq::new(), UfDomain::new()), seed)
                .with_config(ChaosConfig {
                    panic_permille: rate,
                    ..ChaosConfig::quiet()
                })
                .with_budget(b.clone())
        })
    };
    let check_deterministic = |par: &ModuleAnalysis, mk: &dyn Fn() -> ModuleAnalysis| {
        let seq = mk();
        let identical = run_fingerprint(&seq) == run_fingerprint(par);
        println!(
            "    determinism (1 vs {threads} threads): {}",
            if identical { "identical" } else { "MISMATCH" }
        );
        assert!(
            identical,
            "supervised chaos run must be schedule-independent"
        );
    };
    println!("  chaos drill: seed {seed}, {procs} procedures");

    // --- phase 1: transient faults, absorbed by retry ---------------------
    // The whole run is a deterministic function of (seed, rate), so if the
    // starting rate happens to fire nothing for this seed, escalate — the
    // drill must demonstrate survived faults, not a lucky fault-free run.
    let mut rate = panic_permille.max(1);
    let (mut t1, mut gentle) = time_ms(|| chaos_driver(rate).threads(threads).analyze(&m));
    while gentle.supervision.panics_caught == 0 && rate < 1000 {
        rate = (rate * 2).min(1000);
        (t1, gentle) = time_ms(|| chaos_driver(rate).threads(threads).analyze(&m));
    }
    let sup = gentle.supervision;
    println!("    [{rate}permille panics, retries on]");
    println!("      completed in {t1:>6.1} ms with no abort; survived faults: {sup}");
    assert!(
        sup.panics_caught > 0,
        "the drill must actually inject panics (none fired at seed {seed} up to {rate}permille)"
    );
    assert!(
        sup.recovered + sup.quarantined > 0,
        "every caught panic ends in recovery or quarantine"
    );
    check_deterministic(&gentle, &|| chaos_driver(rate).threads(1).analyze(&m));

    // --- phase 2: persistent faults, quarantined to ⊤ ---------------------
    // Zero retries: the first caught panic quarantines. Escalate the same
    // way until the seed actually forces a quarantine.
    let mut harsh = (rate * 20).max(40);
    let (mut t2, mut q) = time_ms(|| {
        chaos_driver(harsh)
            .max_retries(0)
            .threads(threads)
            .analyze(&m)
    });
    while q.quarantined_count() == 0 && harsh < 1000 {
        harsh = (harsh * 2).min(1000);
        (t2, q) = time_ms(|| {
            chaos_driver(harsh)
                .max_retries(0)
                .threads(threads)
                .analyze(&m)
        });
    }
    let sup = q.supervision;
    println!("    [{harsh}permille panics, retries off]");
    println!("      completed in {t2:>6.1} ms with no abort; survived faults: {sup}");
    println!(
        "      quarantined procedures: {} (each pinned to the sound top summary)",
        q.quarantined_count()
    );
    // Quarantined procedures must report exactly ⊤ — never a stale or
    // partial iterate from the crashed attempt.
    for r in &q {
        if r.quarantined {
            assert!(
                r.summary.entry.is_empty() && r.summary.exit.as_ref().is_some_and(|c| c.is_empty()),
                "quarantined `{}` must report the top summary, got `{}`",
                r.name,
                r.summary
            );
        }
    }
    assert!(q.quarantined_count() > 0, "the harsh rate must quarantine");
    assert_eq!(
        sup.quarantined as usize,
        q.quarantined_count(),
        "supervision counter and per-procedure reports must agree"
    );
    check_deterministic(&q, &|| {
        chaos_driver(harsh).max_retries(0).threads(1).analyze(&m)
    });
    println!("  chaos drill OK");
}

/// `a ⊑ b` on exit constraints under a polyhedra domain (None = ⊥).
fn poly_exit_le(d: &Polyhedra, a: &Summary, b: &Summary) -> bool {
    match (&a.exit, &b.exit) {
        (None, _) => true,
        (Some(ca), None) => d.is_bottom(&d.from_conj(ca)),
        (Some(ca), Some(cb)) => d.le(&d.from_conj(ca), &d.from_conj(cb)),
    }
}

/// The `--budget-policy` workload: one loop-heavy procedure beside many
/// trivial ones — the shape where equal fuel shares starve the big
/// procedure while size-proportional shares feed everyone.
fn mixed_module(smalls: usize) -> Module {
    let mut src = String::new();
    for i in 0..smalls {
        src.push_str(&format!(
            "proc small{i}(a) {{ y := a + {i}; assert(y >= a); ret := y; }}\n"
        ));
    }
    src.push_str(
        "proc big(n) {
             x := 0;
             s := 0;
             while (x < 60) { x := x + 1; s := s + 2; }
             assert(x >= 60);
             assert(x <= 60);
             ret := s;
         }",
    );
    parse_module(&Vocab::standard(), &src).expect("generated module parses")
}

/// `--budget-policy`: the adaptive-budget drill (see the module docs).
fn budget_policy_drill(threads: usize, seed: u64) {
    println!("  budget-policy drill: size-proportional slices + narrowing recovery");
    let smalls = 6usize;
    let m = mixed_module(smalls);
    let jobs = (smalls + 1) as u64;
    let poly_driver = || Driver::new(|_: &Budget| Polyhedra::new());

    // Calibrate the pool from what the procedures actually cost (spent
    // fuel is tracked even under an unlimited budget): the proportional
    // big-share just covers the big procedure, so the equal share
    // provably starves it.
    let single = |name: &str| {
        parse_module(&Vocab::standard(), &m.get(name).expect("proc").to_string())
            .expect("single parses")
    };
    let cost_big = poly_driver()
        .budget_policy(BudgetPolicy::adaptive())
        .analyze(&single("big"))
        .degradation
        .fuel_spent;
    let policy = BudgetPolicy::adaptive();
    let weight = |name: &str| policy.job_weight(&m.get(name).expect("proc").measures(), 0);
    let total_w = weight("big") + smalls as u64 * weight("small0");
    let fuel = (cost_big * total_w).div_ceil(weight("big")) + jobs;
    assert!(
        fuel / jobs < cost_big,
        "calibration: the flat share must starve the big procedure"
    );

    let flat = poly_driver()
        .threads(threads)
        .with_budget(Budget::fuel(fuel))
        .analyze(&m);
    let adaptive = poly_driver()
        .threads(threads)
        .with_budget(Budget::fuel(fuel))
        .budget_policy(BudgetPolicy::adaptive())
        .analyze(&m);
    println!(
        "    fuel {fuel}: flat verified {}/{} (exhausted: {}), adaptive verified {}/{}",
        flat.verified_count(),
        smalls + 2,
        flat.degradation.exhausted,
        adaptive.verified_count(),
        smalls + 2,
    );

    // Per procedure, adaptive ⊑ flat — strictly better on `big`, whose
    // loop the flat share cut short and whose widened bound the
    // narrowing pass then recovered.
    let d = Polyhedra::new();
    for (a, f) in adaptive.reports.iter().zip(flat.reports.iter()) {
        assert_eq!(a.name, f.name);
        assert!(
            poly_exit_le(&d, &a.summary, &f.summary),
            "adaptive summary of `{}` must be at least as precise as flat",
            a.name
        );
    }
    let a_big = &adaptive.report("big").expect("big").summary;
    let f_big = &flat.report("big").expect("big").summary;
    assert!(
        !poly_exit_le(&d, f_big, a_big),
        "adaptive must be strictly more precise on the starved procedure"
    );
    assert!(
        adaptive.verified_count() > flat.verified_count(),
        "adaptive must verify strictly more assertions on this workload"
    );
    println!("    precision: adaptive \u{2291} flat per procedure, strict on `big`");

    // The same drill under an injected-fault domain: the batch must
    // complete with no abort and be bit-identical across thread counts.
    let chaos_adaptive = |rate: u32, t: usize| {
        Driver::new(move |b: &Budget| {
            ChaosDomain::new(Polyhedra::new(), seed)
                .with_config(ChaosConfig {
                    panic_permille: rate,
                    ..ChaosConfig::quiet()
                })
                .with_budget(b.clone())
        })
        .threads(t)
        .with_budget(Budget::fuel(fuel))
        .budget_policy(BudgetPolicy::adaptive())
        .analyze(&m)
    };
    let mut rate = 2u32;
    let mut faulted = chaos_adaptive(rate, threads);
    while faulted.supervision.panics_caught == 0 && rate < 1000 {
        rate = (rate * 2).min(1000);
        faulted = chaos_adaptive(rate, threads);
    }
    println!(
        "    chaos ({rate}permille panics): no abort; survived faults: {}",
        faulted.supervision
    );
    assert!(
        faulted.supervision.panics_caught > 0,
        "the chaos leg must actually inject faults (seed {seed})"
    );
    let identical = run_fingerprint(&faulted) == run_fingerprint(&chaos_adaptive(rate, 1));
    println!(
        "    determinism (1 vs {threads} threads): {}",
        if identical { "identical" } else { "MISMATCH" }
    );
    assert!(identical, "adaptive chaos run must be schedule-independent");
    println!("  budget-policy drill OK");
}

/// `--blame` / `--blame-out FILE`: the precision-provenance drill.
///
/// Runs four legs of the calibrated workloads under the blame layer —
/// the starved **flat** and the **adaptive** budget-policy legs on the
/// mixed module, a **context** leg whose per-procedure cap overflows,
/// and a **chaos** leg whose base domain injects panics and defective
/// Alternate operators — then checks:
///
/// - the drained tables cover at least four [`LossKind`]s;
/// - differential attribution pins the flat-vs-adaptive assertion delta
///   on the starved widening site (`analyzer/while` inside `big`);
/// - the exported JSON is bit-identical at 1, 2 and 4 threads;
/// - analysis results are bit-identical with the layer on and off.
fn blame_drill(threads: usize, seed: u64, out: Option<&str>) {
    use cai_driver::{differential, DifferentialReport};
    use cai_obs::provenance::{self, BlameTable};

    println!("  blame drill: precision provenance + differential attribution");
    let smalls = 6usize;
    let m = mixed_module(smalls);
    let jobs = (smalls + 1) as u64;
    let poly_driver = || Driver::new(|_: &Budget| Polyhedra::new());

    // Fuel calibration (same arithmetic as the budget-policy drill)
    // runs before the layer is enabled, so it cannot pollute a table.
    let single = |name: &str| {
        parse_module(&Vocab::standard(), &m.get(name).expect("proc").to_string())
            .expect("single parses")
    };
    let cost_big = poly_driver()
        .budget_policy(BudgetPolicy::adaptive())
        .analyze(&single("big"))
        .degradation
        .fuel_spent;
    let policy = BudgetPolicy::adaptive();
    let weight = |name: &str| policy.job_weight(&m.get(name).expect("proc").measures(), 0);
    let total_w = weight("big") + smalls as u64 * weight("small0");
    let fuel = (cost_big * total_w).div_ceil(weight("big")) + jobs;
    assert!(
        fuel / jobs < cost_big,
        "calibration: the flat share must starve the big procedure"
    );

    // --- leg runners: each drains the table its run produced ---------
    let run_flat = |t: usize| {
        let mut cache = SummaryCache::new();
        let a = poly_driver()
            .threads(t)
            .with_budget(Budget::fuel(fuel))
            .analyze_with_cache(&m, &mut cache);
        (a, provenance::drain())
    };
    let run_adaptive = |t: usize| {
        let a = poly_driver()
            .threads(t)
            .with_budget(Budget::fuel(fuel))
            .budget_policy(BudgetPolicy::adaptive())
            .analyze(&m);
        (a, provenance::drain())
    };
    let cm = ctx_module(4);
    let run_ctx = |t: usize| {
        let a = product_driver().context_cap(1).threads(t).analyze(&cm);
        (a, provenance::drain())
    };
    let bm = batch_module(12, 0);
    let run_chaos = |panic: u32, brk: u32, t: usize| {
        let mut cache = SummaryCache::new();
        let a = Driver::new(move |b: &Budget| {
            // The *base* domain misbehaves, so the product's runtime
            // Alternate-contract check (and its `alternate-skipped`
            // blame event) actually fires.
            LogicalProduct::new(
                ChaosDomain::new(AffineEq::new(), seed)
                    .with_config(ChaosConfig {
                        panic_permille: panic,
                        break_alternate_permille: brk,
                        ..ChaosConfig::quiet()
                    })
                    .with_budget(b.clone()),
                UfDomain::new(),
            )
        })
        .max_retries(0)
        .threads(t)
        .analyze_with_cache(&bm, &mut cache);
        (a, provenance::drain())
    };

    provenance::set_enabled(true);
    let _ = provenance::drain();

    // Escalate the chaos rates deterministically until the seed forces
    // both a quarantine and a rejected defective Alternate — the drill
    // must demonstrate those kinds, not a lucky fault-free run.
    let mut panic_rate = 4u32;
    let mut brk = 100u32;
    let (mut chaos_probe, mut chaos_tab) = run_chaos(panic_rate, brk, threads);
    while (chaos_probe.quarantined_count() == 0
        || !chaos_tab.kinds().contains(&"alternate-skipped"))
        && (panic_rate < 1000 || brk < 1000)
    {
        if chaos_probe.quarantined_count() == 0 {
            panic_rate = (panic_rate * 2).min(1000);
        }
        if !chaos_tab.kinds().contains(&"alternate-skipped") {
            brk = (brk * 2).min(1000);
        }
        (chaos_probe, chaos_tab) = run_chaos(panic_rate, brk, threads);
    }
    assert!(
        chaos_probe.quarantined_count() > 0,
        "the chaos leg must quarantine (seed {seed})"
    );
    println!("    chaos rates: {panic_rate}permille panics, {brk}permille defective alternates");

    // One full pass = all four legs; returns the export JSON plus the
    // pieces the assertions below need.
    let full_pass = |t: usize| -> (String, DifferentialReport, BlameTable, Vec<&'static str>) {
        let (flat, flat_tab) = run_flat(t);
        let (adaptive, adaptive_tab) = run_adaptive(t);
        let (_ctx, ctx_tab) = run_ctx(t);
        let (_chaos, chaos_tab) = run_chaos(panic_rate, brk, t);
        let diff = differential(
            "adaptive policy",
            (&adaptive, &adaptive_tab),
            "flat policy",
            (&flat, &flat_tab),
        );
        let mut kinds: Vec<&'static str> = [&flat_tab, &adaptive_tab, &ctx_tab, &chaos_tab]
            .iter()
            .flat_map(|tab| tab.kinds())
            .collect();
        kinds.sort_unstable();
        kinds.dedup();
        let kind_list = kinds
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(",");
        let json = format!(
            r#"{{"legs":{{"flat":{},"adaptive":{},"context":{},"chaos":{}}},"kinds":[{kind_list}],"differential":{}}}"#,
            flat_tab.to_json(),
            adaptive_tab.to_json(),
            ctx_tab.to_json(),
            chaos_tab.to_json(),
            diff.to_json(),
        );
        (json, diff, flat_tab, kinds)
    };

    let (json, diff, flat_tab, kinds) = full_pass(threads);
    println!("    loss kinds covered: {}", kinds.join(", "));
    assert!(
        kinds.len() >= 4,
        "the drill must cover at least 4 loss kinds, got {kinds:?}"
    );
    for required in ["widen", "budget-degrade", "quarantine", "ctx-cap-overflow"] {
        assert!(kinds.contains(&required), "missing loss kind `{required}`");
    }

    println!("    flat-policy blame table (top 5):");
    for (i, e) in flat_tab.top(5).iter().enumerate() {
        println!("      #{} {e}", i + 1);
    }
    print!("{}", indent(&diff.to_string(), "    "));
    assert!(
        !diff.is_empty(),
        "the flat leg must lose at least one assertion to the adaptive leg"
    );
    let first = &diff.regressions[0];
    assert_eq!(first.proc, "big", "the starved procedure regresses first");
    let top_cause = first.causes.first().expect("a regression has causes");
    assert_eq!(
        top_cause.site, "analyzer/while",
        "differential attribution must name the starved widening site first, got {top_cause:?}"
    );

    // --- schedule independence: identical export at 1/2/4 threads -----
    let identical = [1usize, 2, 4].iter().all(|&t| full_pass(t).0 == json);
    println!(
        "    determinism (blame JSON at 1/2/4 threads): {}",
        if identical { "identical" } else { "MISMATCH" }
    );
    assert!(identical, "blame export must be schedule-independent");

    // --- the layer observes, never steers: off == on, bit for bit -----
    let (flat_on, _) = run_flat(threads);
    provenance::set_enabled(false);
    let (flat_off, off_tab) = run_flat(threads);
    provenance::set_enabled(true);
    assert!(off_tab.is_empty(), "a disabled layer must record nothing");
    let transparent = run_fingerprint(&flat_on) == run_fingerprint(&flat_off);
    println!(
        "    transparency (provenance on vs off): {}",
        if transparent {
            "bit-identical"
        } else {
            "MISMATCH"
        }
    );
    assert!(transparent, "the blame layer must not change any result");

    provenance::set_enabled(false);
    let _ = provenance::drain();
    if let Some(path) = out {
        write_blame_out(path, &json);
    }
    println!("  blame drill OK");
}

/// Prefixes every non-empty line of `s` (for nesting a report's Display).
fn indent(s: &str, pad: &str) -> String {
    s.lines()
        .map(|l| {
            if l.is_empty() {
                String::from("\n")
            } else {
                format!("{pad}{l}\n")
            }
        })
        .collect()
}

fn main() {
    let mut args = Args::parse();
    let smoke = args.flag("--smoke");
    let ctx_stats = args.flag("--ctx-stats");
    let chaos = args.flag("--chaos");
    let budget_policy = args.flag("--budget-policy");
    let blame = args.flag("--blame");
    let blame_out = args.opt_str("--blame-out");
    let obs_report = args.flag("--obs-report");
    let trace_out = args.opt_str("--trace-out");
    if trace_out.is_some() {
        cai_obs::trace::set_enabled(true);
    }
    let procs = args.value_or("--procs", if smoke { 32usize } else { 64 });
    let threads = args.value_or("--threads", 4usize);
    let chaos_seed = args.value_or("--chaos-seed", 7u64);
    let chaos_panic = args.value_or("--chaos-panic", 2u32);
    let reps = if smoke { 1 } else { 3 };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("driver_eval: {procs} independent procedures, {threads} threads, {cpus} CPU(s)");
    let m = batch_module(procs, 0);
    let join_stats = JoinStats::new();

    // --- parallel speedup -------------------------------------------------
    let best = |t: usize| {
        (0..reps)
            .map(|_| time_ms(|| product_driver_with(&join_stats).threads(t).analyze(&m)).0)
            .fold(f64::INFINITY, f64::min)
    };
    let t_seq = best(1);
    let t_par = best(threads);
    let speedup = t_seq / t_par;
    println!("  1 thread : {t_seq:>8.1} ms");
    println!("  {threads} threads: {t_par:>8.1} ms   (speedup {speedup:.2}x)");

    // Determinism check rides along: the parallel schedule must produce
    // bit-identical summaries and verdicts.
    let seq = product_driver_with(&join_stats).threads(1).analyze(&m);
    let par = product_driver_with(&join_stats)
        .threads(threads)
        .analyze(&m);
    let identical = seq.reports.iter().zip(par.reports.iter()).all(|(a, b)| {
        a.summary == b.summary
            && a.summary.to_string() == b.summary.to_string()
            && a.assertions.iter().map(|o| o.verified).collect::<Vec<_>>()
                == b.assertions.iter().map(|o| o.verified).collect::<Vec<_>>()
    });
    println!(
        "  determinism (1 vs {threads} threads): {}",
        if identical { "identical" } else { "MISMATCH" }
    );

    // --- warm-cache incremental re-analysis -------------------------------
    let driver = product_driver_with(&join_stats).threads(threads);
    let mut cache = SummaryCache::new();
    let (t_cold, cold) = time_ms(|| driver.analyze_with_cache(&m, &mut cache));
    let (t_warm, warm) = time_ms(|| driver.analyze_with_cache(&m, &mut cache));
    println!(
        "  cold cache: {t_cold:>8.1} ms   {{reused: {}, recomputed: {}}}",
        cold.reused, cold.recomputed
    );
    println!(
        "  warm cache: {t_warm:>8.1} ms   {{reused: {}, recomputed: {}}}   (speedup {:.1}x)",
        warm.reused,
        warm.recomputed,
        t_cold / t_warm.max(1e-6)
    );

    // Edit one procedure: only its dirty cone (here, itself) recomputes.
    let edited = batch_module(procs, 1);
    let (t_edit, inc) = time_ms(|| driver.analyze_with_cache(&edited, &mut cache));
    println!(
        "  edit one procedure: {t_edit:>8.1} ms   {{reused: {}, recomputed: {}}}",
        inc.reused, inc.recomputed
    );

    // --- context sensitivity ---------------------------------------------
    if ctx_stats {
        let callers = 4;
        let cm = ctx_module(callers);
        let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        let mut cache = SummaryCache::new();
        let (t_sens, sens) = time_ms(|| {
            product_driver()
                .threads(threads)
                .analyze_with_cache(&cm, &mut cache)
        });
        let (t_insens, insens) = time_ms(|| product_driver().context_cap(0).analyze(&cm));

        // Hard guarantee: context-sensitive exit facts are ⊑ the
        // insensitive ones on every procedure, strictly below on the
        // reassigned-formal benchmark.
        let mut strictly_better = 0usize;
        for (s, i) in sens.iter().zip(&insens) {
            assert_eq!(s.name, i.name);
            assert!(
                exit_le(&d, &s.summary, &i.summary),
                "context-sensitive summary of `{}` must be at least as precise",
                s.name
            );
            if !exit_le(&d, &i.summary, &s.summary) {
                strictly_better += 1;
            }
        }
        println!("  ctx benchmark ({callers} constant-argument callers of a reassigning callee):");
        println!(
            "    sensitive  : {t_sens:>6.1} ms   verified {}/{}   strictly more precise on {} proc(s)",
            sens.verified_count(),
            callers,
            strictly_better
        );
        println!(
            "    insensitive: {t_insens:>6.1} ms   verified {}/{}",
            insens.verified_count(),
            callers
        );
        println!("    ctx stats  : {}", sens.ctx);
        println!("    cache stats: {}", cache.stats());
        // Determinism of the context-sensitive schedule across thread
        // counts rides along.
        let s1 = product_driver().threads(1).analyze(&cm);
        let s4 = product_driver().threads(4).analyze(&cm);
        let ctx_identical = s1
            .iter()
            .zip(&s4)
            .all(|(a, b)| a.summary == b.summary && a.summary.to_string() == b.summary.to_string());
        println!(
            "    determinism (1 vs 4 threads): {}",
            if ctx_identical {
                "identical"
            } else {
                "MISMATCH"
            }
        );
        assert!(
            ctx_identical,
            "context-sensitive schedule must be deterministic"
        );
        assert!(
            strictly_better > 0,
            "entry-keyed summaries must be strictly more precise on the ctx benchmark"
        );
        assert!(
            sens.verified_count() > insens.verified_count(),
            "context sensitivity must verify more assertions on the ctx benchmark"
        );
    }

    // --- supervised fault drill ------------------------------------------
    if chaos {
        chaos_drill(procs, threads, chaos_seed, chaos_panic);
    }

    // --- adaptive budget policy + narrowing recovery ----------------------
    if budget_policy {
        budget_policy_drill(threads, chaos_seed);
    }

    // --- precision provenance + differential attribution ------------------
    if blame || blame_out.is_some() {
        blame_drill(threads, chaos_seed, blame_out.as_deref());
    }

    if smoke {
        assert!(identical, "parallel schedule must be deterministic");
        if cpus >= threads {
            assert!(
                speedup >= 1.5,
                "expected >=1.5x speedup with {threads} threads on {cpus} CPUs, got {speedup:.2}x"
            );
        } else {
            println!("  (only {cpus} CPU(s) — wall-clock speedup not measurable here)");
        }
        assert_eq!(warm.recomputed, 0, "warm cache must reuse everything");
        assert_eq!(warm.reused, procs);
        assert_eq!(
            (inc.reused, inc.recomputed),
            (procs - 1, 1),
            "a one-procedure edit must recompute exactly that procedure"
        );
        println!("driver_eval smoke OK");
    }

    // --- observability exports (report + trace last, so they see it all) --
    if obs_report {
        // Register the capped-merge drop counters so a clean run reports
        // them as explicit zeroes rather than omitting the lines.
        cai_obs::counter!("core/budget/events-dropped");
        cai_obs::counter!("core/budget/incidents-dropped");
        let mut snap = cai_obs::global().snapshot();
        join_stats.export_into(&mut snap, "core/join");
        println!("\nobs report:");
        println!("{snap}");
    }
    if let Some(path) = trace_out {
        write_trace_out(&path);
    }
}
