//! Shared CLI argument parsing for the `cai-bench` binaries.
//!
//! `paper_eval` and `driver_eval` each grew a copy-pasted positional
//! scanner (`position` + `get(i + 1)` + `parse().ok()`), with subtly
//! different error behavior. This module is that scanner, once: an
//! [`Args`] view over the raw argv whose accessors *consume* matched
//! arguments, so a binary pulls its flags and treats whatever remains as
//! positional items. A flag that is present but carries a missing or
//! unparseable value is a hard usage error (exit 2) in both binaries.

use std::str::FromStr;

/// The unconsumed command-line arguments of a bench binary.
#[derive(Clone, Debug)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// The process arguments, program name skipped.
    #[must_use]
    pub fn parse() -> Args {
        Args::from_vec(std::env::args().skip(1).collect())
    }

    /// A view over an explicit argument vector (tests).
    #[must_use]
    pub fn from_vec(raw: Vec<String>) -> Args {
        Args { raw }
    }

    /// Consumes a boolean flag; true if it was present.
    pub fn flag(&mut self, name: &str) -> bool {
        match self.raw.iter().position(|a| a == name) {
            Some(i) => {
                self.raw.remove(i);
                true
            }
            None => false,
        }
    }

    /// Consumes `name` and its value. `None` when the flag is absent; a
    /// usage error (exit 2) when it is present without a parseable value.
    pub fn opt_value<T: FromStr>(&mut self, name: &str) -> Option<T> {
        let i = self.raw.iter().position(|a| a == name)?;
        let parsed = self.raw.get(i + 1).and_then(|v| v.parse().ok());
        match parsed {
            Some(v) => {
                self.raw.drain(i..=i + 1);
                Some(v)
            }
            None => {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            }
        }
    }

    /// Consumes `name` and its value, falling back to `default` when the
    /// flag is absent.
    pub fn value_or<T: FromStr>(&mut self, name: &str, default: T) -> T {
        self.opt_value(name).unwrap_or(default)
    }

    /// Consumes `name` and its string value (no parsing beyond presence).
    pub fn opt_str(&mut self, name: &str) -> Option<String> {
        self.opt_value::<String>(name)
    }

    /// Whether every argument has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Whether an unconsumed positional argument equals `name`.
    #[must_use]
    pub fn has(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// The remaining (positional) arguments.
    #[must_use]
    pub fn rest(self) -> Vec<String> {
        self.raw
    }
}

/// Drains the span tracer into a Chrome `trace_event` JSON file — the
/// shared tail of every binary's `--trace-out FILE` flag. Exits 1 when the
/// file cannot be written (a requested artifact silently missing is worse
/// than a failed run).
pub fn write_trace_out(path: &str) {
    let trace = cai_obs::trace::drain();
    match std::fs::write(path, trace.to_chrome_json()) {
        Ok(()) => println!(
            "wrote {} trace event(s) to {path} (dropped {})",
            trace.events.len(),
            trace.dropped
        ),
        Err(e) => {
            eprintln!("failed to write trace to {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Writes the `--blame-out FILE` JSON artifact — the shared tail of the
/// blame drills, mirroring [`write_trace_out`]. Exits 1 when the file
/// cannot be written.
pub fn write_blame_out(path: &str, json: &str) {
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote blame report to {path}"),
        Err(e) => {
            eprintln!("failed to write blame report to {path}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::from_vec(v.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn flags_consume_and_leave_positionals() {
        let mut a = args(&["fig1", "--obs-report", "--threads", "4", "fig2"]);
        assert!(a.flag("--obs-report"));
        assert!(!a.flag("--obs-report"));
        assert_eq!(a.value_or("--threads", 1usize), 4);
        assert_eq!(a.value_or("--procs", 64usize), 64);
        assert!(a.opt_str("--trace-out").is_none());
        assert!(a.has("fig1"));
        assert_eq!(a.rest(), vec!["fig1".to_string(), "fig2".to_string()]);
    }

    #[test]
    fn opt_value_absent_is_none() {
        let mut a = args(&[]);
        assert_eq!(a.opt_value::<u64>("--deadline-ms"), None);
        assert!(a.is_empty());
    }
}
