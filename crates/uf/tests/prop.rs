//! Property-based tests for the uninterpreted-functions domain,
//! cross-checked against a reference congruence closure.

use cai_core::AbstractDomain;
use cai_term::{Atom, Conj, FnSym, Term, Var, VarSet};
use cai_uf::{EGraph, UfDomain};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum RTerm {
    Var(u8),
    F(Box<RTerm>),
    G(Box<RTerm>, Box<RTerm>),
}

impl RTerm {
    fn to_term(&self) -> Term {
        match self {
            RTerm::Var(i) => Term::var(Var::named(&format!("u{}", i % 4))),
            RTerm::F(a) => Term::app(FnSym::uf("F", 1), vec![a.to_term()]),
            RTerm::G(a, b) => {
                Term::app(FnSym::uf("G", 2), vec![a.to_term(), b.to_term()])
            }
        }
    }
}

fn rterm() -> impl Strategy<Value = RTerm> {
    let leaf = (0u8..4).prop_map(RTerm::Var);
    leaf.prop_recursive(3, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| RTerm::F(Box::new(a))),
            (inner.clone(), inner).prop_map(|(a, b)| RTerm::G(Box::new(a), Box::new(b))),
        ]
    })
}

fn eq_system() -> impl Strategy<Value = Vec<(RTerm, RTerm)>> {
    proptest::collection::vec((rterm(), rterm()), 1..5)
}

fn build(eqs: &[(RTerm, RTerm)]) -> Conj {
    eqs.iter()
        .map(|(s, t)| Atom::eq(s.to_term(), t.to_term()))
        .collect()
}

/// Reference implication check via a fresh congruence closure.
fn reference_implies(eqs: &Conj, s: &Term, t: &Term) -> bool {
    let mut g = EGraph::new();
    for atom in eqs {
        let Atom::Eq(a, b) = atom else { unreachable!() };
        g.assert_eq(a, b);
    }
    g.proves_eq(s, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The canonical element presentation is equivalent to the input: it
    /// implies and is implied by the original equalities.
    #[test]
    fn canonicalization_preserves_meaning(eqs in eq_system()) {
        let d = UfDomain::new();
        let c = build(&eqs);
        let e = d.from_conj(&c);
        // Input atoms follow from the canonical form ...
        for atom in &c {
            prop_assert!(d.implies_atom(&e, atom), "{e} !=> {atom}");
        }
        // ... and the canonical atoms follow from the input.
        for atom in &d.to_conj(&e) {
            let Atom::Eq(s, t) = atom else { unreachable!() };
            prop_assert!(reference_implies(&c, s, t), "{c} !=> {atom}");
        }
    }

    /// Join soundness: every joined equality holds in both inputs.
    #[test]
    fn join_is_sound(a in eq_system(), b in eq_system()) {
        let d = UfDomain::new();
        let (ca, cb) = (build(&a), build(&b));
        let (ea, eb) = (d.from_conj(&ca), d.from_conj(&cb));
        let j = d.join(&ea, &eb);
        for atom in &d.to_conj(&j) {
            let Atom::Eq(s, t) = atom else { unreachable!() };
            prop_assert!(reference_implies(&ca, s, t), "left misses {atom}");
            prop_assert!(reference_implies(&cb, s, t), "right misses {atom}");
        }
    }

    /// Join upper bound in the lattice order.
    #[test]
    fn join_dominates(a in eq_system(), b in eq_system()) {
        let d = UfDomain::new();
        let (ea, eb) = (d.from_conj(&build(&a)), d.from_conj(&build(&b)));
        let j = d.join(&ea, &eb);
        prop_assert!(d.le(&ea, &j));
        prop_assert!(d.le(&eb, &j));
    }

    /// Join of an element with itself is equivalent to the element.
    #[test]
    fn join_idempotent(a in eq_system()) {
        let d = UfDomain::new();
        let e = d.from_conj(&build(&a));
        let j = d.join(&e, &e);
        prop_assert!(d.equal_elems(&j, &e), "join(e,e) = {j} vs {e}");
    }

    /// Quantification: result avoids the variable and is implied.
    #[test]
    fn exists_sound(a in eq_system(), which in 0u8..4) {
        let d = UfDomain::new();
        let c = build(&a);
        let e = d.from_conj(&c);
        let v = Var::named(&format!("u{which}"));
        let elim: VarSet = [v].into_iter().collect();
        let q = d.exists(&e, &elim);
        prop_assert!(!q.vars().contains(&v));
        for atom in &d.to_conj(&q) {
            let Atom::Eq(s, t) = atom else { unreachable!() };
            prop_assert!(reference_implies(&c, s, t));
        }
    }

    /// Alternate's contract: implied and avoid-free.
    #[test]
    fn alternate_contract(a in eq_system(), which in 0u8..4, avoid_ix in 0u8..4) {
        let d = UfDomain::new();
        let c = build(&a);
        let e = d.from_conj(&c);
        let y = Var::named(&format!("u{which}"));
        let avoid: VarSet = [Var::named(&format!("u{avoid_ix}"))].into_iter().collect();
        if let Some(t) = d.alternate(&e, y, &avoid) {
            prop_assert!(!t.vars().contains(&y), "{t} mentions {y}");
            for v in &avoid {
                prop_assert!(!t.vars().contains(v), "{t} mentions avoided {v}");
            }
            prop_assert!(reference_implies(&c, &Term::var(y), &t));
        }
    }

    /// Congruence closure agrees with itself under input permutation.
    #[test]
    fn order_independence(a in eq_system()) {
        let d = UfDomain::new();
        let c = build(&a);
        let mut rev: Vec<Atom> = c.iter().cloned().collect();
        rev.reverse();
        let e1 = d.from_conj(&c);
        let e2 = d.from_conj(&rev.into_iter().collect());
        prop_assert!(d.equal_elems(&e1, &e2));
    }
}
