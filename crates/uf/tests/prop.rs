//! Property-based tests for the uninterpreted-functions domain,
//! cross-checked against a reference congruence closure.
//!
//! Random equality systems are generated from the in-tree deterministic
//! [`SplitMix64`] stream (the workspace builds offline, with no external
//! test crates); each test runs a fixed set of seeded cases.

use cai_core::AbstractDomain;
use cai_num::SplitMix64;
use cai_term::{Atom, Conj, FnSym, Term, Var, VarSet};
use cai_uf::{EGraph, UfDomain};

const CASES: usize = 64;

/// A random UF term over `u0..u3` with the given depth budget.
fn rand_term(g: &mut SplitMix64, depth: usize) -> Term {
    if depth == 0 || g.ratio(2, 5) {
        return Term::var(Var::named(&format!("u{}", g.below(4))));
    }
    if g.ratio(1, 2) {
        Term::app(FnSym::uf("F", 1), vec![rand_term(g, depth - 1)])
    } else {
        Term::app(
            FnSym::uf("G", 2),
            vec![rand_term(g, depth - 1), rand_term(g, depth - 1)],
        )
    }
}

fn eq_system(g: &mut SplitMix64) -> Conj {
    (0..1 + g.below(4))
        .map(|_| Atom::eq(rand_term(g, 3), rand_term(g, 3)))
        .collect()
}

/// Reference implication check via a fresh congruence closure.
fn reference_implies(eqs: &Conj, s: &Term, t: &Term) -> bool {
    let mut g = EGraph::new();
    for atom in eqs {
        let Atom::Eq(a, b) = atom else { unreachable!() };
        g.assert_eq(a, b);
    }
    g.proves_eq(s, t)
}

/// The canonical element presentation is equivalent to the input: it
/// implies and is implied by the original equalities.
#[test]
fn canonicalization_preserves_meaning() {
    let mut g = SplitMix64::new(0xC001);
    for _ in 0..CASES {
        let d = UfDomain::new();
        let c = eq_system(&mut g);
        let e = d.from_conj(&c);
        // Input atoms follow from the canonical form ...
        for atom in &c {
            assert!(d.implies_atom(&e, atom), "{e} !=> {atom}");
        }
        // ... and the canonical atoms follow from the input.
        for atom in &d.to_conj(&e) {
            let Atom::Eq(s, t) = atom else { unreachable!() };
            assert!(reference_implies(&c, s, t), "{c} !=> {atom}");
        }
    }
}

/// Join soundness: every joined equality holds in both inputs.
#[test]
fn join_is_sound() {
    let mut g = SplitMix64::new(0xC002);
    for _ in 0..CASES {
        let d = UfDomain::new();
        let (ca, cb) = (eq_system(&mut g), eq_system(&mut g));
        let (ea, eb) = (d.from_conj(&ca), d.from_conj(&cb));
        let j = d.join(&ea, &eb);
        for atom in &d.to_conj(&j) {
            let Atom::Eq(s, t) = atom else { unreachable!() };
            assert!(reference_implies(&ca, s, t), "left misses {atom}");
            assert!(reference_implies(&cb, s, t), "right misses {atom}");
        }
    }
}

/// Join upper bound in the lattice order.
#[test]
fn join_dominates() {
    let mut g = SplitMix64::new(0xC003);
    for _ in 0..CASES {
        let d = UfDomain::new();
        let (ea, eb) = (
            d.from_conj(&eq_system(&mut g)),
            d.from_conj(&eq_system(&mut g)),
        );
        let j = d.join(&ea, &eb);
        assert!(d.le(&ea, &j));
        assert!(d.le(&eb, &j));
    }
}

/// Join of an element with itself is equivalent to the element.
#[test]
fn join_idempotent() {
    let mut g = SplitMix64::new(0xC004);
    for _ in 0..CASES {
        let d = UfDomain::new();
        let e = d.from_conj(&eq_system(&mut g));
        let j = d.join(&e, &e);
        assert!(d.equal_elems(&j, &e), "join(e,e) = {j} vs {e}");
    }
}

/// Quantification: result avoids the variable and is implied.
#[test]
fn exists_sound() {
    let mut g = SplitMix64::new(0xC005);
    for _ in 0..CASES {
        let d = UfDomain::new();
        let c = eq_system(&mut g);
        let e = d.from_conj(&c);
        let v = Var::named(&format!("u{}", g.below(4)));
        let elim: VarSet = [v].into_iter().collect();
        let q = d.exists(&e, &elim);
        assert!(!q.vars().contains(&v));
        for atom in &d.to_conj(&q) {
            let Atom::Eq(s, t) = atom else { unreachable!() };
            assert!(reference_implies(&c, s, t));
        }
    }
}

/// Alternate's contract: implied and avoid-free.
#[test]
fn alternate_contract() {
    let mut g = SplitMix64::new(0xC006);
    for _ in 0..CASES {
        let d = UfDomain::new();
        let c = eq_system(&mut g);
        let e = d.from_conj(&c);
        let y = Var::named(&format!("u{}", g.below(4)));
        let avoid: VarSet = [Var::named(&format!("u{}", g.below(4)))]
            .into_iter()
            .collect();
        if let Some(t) = d.alternate(&e, y, &avoid) {
            assert!(!t.vars().contains(&y), "{t} mentions {y}");
            for v in &avoid {
                assert!(!t.vars().contains(v), "{t} mentions avoided {v}");
            }
            assert!(reference_implies(&c, &Term::var(y), &t));
        }
    }
}

/// Congruence closure agrees with itself under input permutation.
#[test]
fn order_independence() {
    let mut g = SplitMix64::new(0xC007);
    for _ in 0..CASES {
        let d = UfDomain::new();
        let c = eq_system(&mut g);
        let mut rev: Vec<Atom> = c.iter().cloned().collect();
        rev.reverse();
        let e1 = d.from_conj(&c);
        let e2 = d.from_conj(&rev.into_iter().collect());
        assert!(d.equal_elems(&e1, &e2));
    }
}
