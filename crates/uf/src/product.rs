//! The join of uninterpreted-function abstractions via the product-graph
//! construction (Gulwani, Tiwari & Necula, FST&TCS 2004 — reference [15]
//! of the paper).
//!
//! The equalities implied by *both* inputs are exactly the pairs of terms
//! mapping to the same pair `(class in G1, class in G2)`. The product
//! graph materializes the reachable pairs and a finite generating set of
//! their defining equations — including equations over terms that occur in
//! *neither* input, such as `x = F(y)` from `x = F(a) ∧ y = a` joined with
//! `x = F(b) ∧ y = b`.

use crate::egraph::{EGraph, NodeId, NodeKey};
use cai_term::{FnSym, Term, Var, VarSet};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A node of the product graph: a pair of class roots.
type PairId = usize;

#[derive(Default)]
struct ProductGraph {
    pairs: Vec<(NodeId, NodeId)>,
    index: HashMap<(NodeId, NodeId), PairId>,
    vars: Vec<BTreeSet<Var>>,
    defs: Vec<BTreeSet<(FnSym, Vec<PairId>)>>,
    /// Pairs indexed by their first component (for argument enumeration).
    by_left: HashMap<NodeId, Vec<PairId>>,
}

impl ProductGraph {
    fn intern(&mut self, p: (NodeId, NodeId)) -> (PairId, bool) {
        if let Some(&id) = self.index.get(&p) {
            return (id, false);
        }
        let id = self.pairs.len();
        self.pairs.push(p);
        self.index.insert(p, id);
        self.vars.push(BTreeSet::new());
        self.defs.push(BTreeSet::new());
        self.by_left.entry(p.0).or_default().push(id);
        (id, true)
    }
}

/// An upper bound on the argument-assignment combinations explored per
/// application node per round; prevents pathological blow-ups on highly
/// ambiguous graphs while remaining exact on the paper's workloads.
const MAX_COMBOS: usize = 4096;

/// Computes a generating set of the equalities implied by both closures.
///
/// `vars` is the set of variables the result may mention (typically the
/// union of both elements' variables); `max_size` bounds representative
/// terms as in [`EGraph::representatives`].
pub fn join_equalities(
    g1: &mut EGraph,
    g2: &mut EGraph,
    vars: &VarSet,
    max_size: usize,
) -> Vec<(Term, Term)> {
    // Both graphs must know every variable.
    for &v in vars {
        g1.add(&Term::var(v));
        g2.add(&Term::var(v));
    }
    let mut pg = ProductGraph::default();
    // Seed with variable pairs.
    for &v in vars {
        let n1 = g1.find(g1.var_node(v).expect("added above"));
        let n2 = g2.find(g2.var_node(v).expect("added above"));
        let (id, _) = pg.intern((n1, n2));
        pg.vars[id].insert(v);
    }
    // Also seed opaque leaves present in both graphs.
    let leaves: Vec<(Term, NodeId)> = g1
        .node_ids()
        .filter_map(|id| match g1.key(id) {
            NodeKey::Leaf(t) => Some((t.clone(), g1.find(id))),
            _ => None,
        })
        .collect();
    for (t, r1) in leaves {
        let n2 = g2.add(&t);
        let r2 = g2.find(n2);
        pg.intern((r1, r2));
    }
    // Saturate: a G1 application whose argument classes all pair with
    // existing product nodes, and whose G2 counterpart exists, induces a
    // product node with a definition.
    loop {
        let mut changed = false;
        for id in g1.node_ids() {
            let NodeKey::App(f, args) = g1.key(id).clone() else {
                continue;
            };
            let c1 = g1.find(id);
            let arg_roots: Vec<NodeId> = args.iter().map(|&a| g1.find(a)).collect();
            // Enumerate assignments of product nodes to the arguments.
            let choices: Vec<Vec<PairId>> = arg_roots
                .iter()
                .map(|r| pg.by_left.get(r).cloned().unwrap_or_default())
                .collect();
            if choices.iter().any(Vec::is_empty) {
                continue;
            }
            let total: usize = choices.iter().map(Vec::len).product();
            if total > MAX_COMBOS {
                continue;
            }
            let mut combo = vec![0usize; choices.len()];
            'combos: loop {
                let pair_args: Vec<PairId> =
                    combo.iter().zip(&choices).map(|(&i, c)| c[i]).collect();
                let right_args: Vec<NodeId> =
                    pair_args.iter().map(|&p| g2.find(pg.pairs[p].1)).collect();
                if let Some(m) = g2.lookup_app(f, &right_args) {
                    let c2 = g2.find(m);
                    let (pid, fresh) = pg.intern((c1, c2));
                    if pg.defs[pid].insert((f, pair_args)) || fresh {
                        changed = true;
                    }
                }
                // Advance the mixed-radix counter.
                for i in 0..combo.len() {
                    combo[i] += 1;
                    if combo[i] < choices[i].len() {
                        continue 'combos;
                    }
                    combo[i] = 0;
                }
                break;
            }
        }
        if !changed {
            break;
        }
    }
    // Representatives per product node: least fixpoint, smallest term.
    let mut rep: BTreeMap<PairId, Term> = BTreeMap::new();
    for (id, vs) in pg.vars.iter().enumerate() {
        if let Some(v) = vs.iter().next() {
            rep.insert(id, Term::var(*v));
        }
    }
    for (id, p) in pg.pairs.iter().enumerate() {
        if let NodeKey::Leaf(t) = g1.key(find_leaf(g1, p.0)) {
            rep.entry(id).or_insert_with(|| t.clone());
        }
    }
    loop {
        let mut changed = false;
        for id in 0..pg.pairs.len() {
            for (f, children) in pg.defs[id].clone() {
                let mut child_terms = Vec::with_capacity(children.len());
                let mut ok = true;
                for c in &children {
                    match rep.get(c) {
                        Some(t) => child_terms.push(t.clone()),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let t = Term::app(f, child_terms);
                if t.size() > max_size {
                    continue;
                }
                let better = match rep.get(&id) {
                    Some(cur) => {
                        let (ts, cs) = (t.size(), cur.size());
                        ts < cs || (ts == cs && t < *cur)
                    }
                    None => true,
                };
                if better {
                    rep.insert(id, t);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Emit: variable members equal the representative; each definition
    // with representable children yields rep = f(child-reps).
    let mut out: BTreeSet<(Term, Term)> = BTreeSet::new();
    for id in 0..pg.pairs.len() {
        let Some(r) = rep.get(&id) else {
            continue;
        };
        for &v in &pg.vars[id] {
            let t = Term::var(v);
            if &t != r {
                out.insert((t, r.clone()));
            }
        }
        for (f, children) in &pg.defs[id] {
            let mut child_terms = Vec::with_capacity(children.len());
            let mut ok = true;
            for c in children {
                match rep.get(c) {
                    Some(t) => child_terms.push(t.clone()),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let t = Term::app(*f, child_terms);
            if t.size() <= max_size && &t != r {
                out.insert((r.clone(), t));
            }
        }
    }
    out.into_iter().collect()
}

/// Finds a member node of class `root` that is a leaf, or returns `root`.
fn find_leaf(g: &EGraph, root: NodeId) -> NodeId {
    g.node_ids()
        .find(|&id| g.find(id) == root && matches!(g.key(id), NodeKey::Leaf(_)))
        .unwrap_or(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_term::parse::Vocab;

    fn graph(eqs: &[(&str, &str)]) -> EGraph {
        let vocab = Vocab::standard();
        let mut g = EGraph::new();
        for (s, t) in eqs {
            g.assert_eq(&vocab.parse_term(s).unwrap(), &vocab.parse_term(t).unwrap());
        }
        g
    }

    fn joined(e1: &[(&str, &str)], e2: &[(&str, &str)], vars: &[&str]) -> Vec<String> {
        let mut g1 = graph(e1);
        let mut g2 = graph(e2);
        let vs: VarSet = vars.iter().map(|v| Var::named(v)).collect();
        join_equalities(&mut g1, &mut g2, &vs, 64)
            .into_iter()
            .map(|(a, b)| format!("{a} = {b}"))
            .collect()
    }

    #[test]
    fn common_equalities_survive() {
        let eqs = joined(
            &[("x", "F(a)"), ("y", "x")],
            &[("x", "F(a)"), ("y", "x")],
            &["x", "y", "a"],
        );
        assert!(
            eqs.contains(&"x = y".to_owned()) || eqs.contains(&"y = x".to_owned()),
            "{eqs:?}"
        );
        assert!(eqs.iter().any(|e| e.contains("F(a)")), "{eqs:?}");
    }

    #[test]
    fn differing_equalities_dropped() {
        let eqs = joined(&[("x", "y")], &[("x", "z")], &["x", "y", "z"]);
        assert!(eqs.is_empty(), "{eqs:?}");
    }

    #[test]
    fn fresh_term_discovered() {
        // The classic example: x = F(a) & y = a joined with x = F(b) & y = b
        // implies x = F(y), a term occurring in neither input.
        let eqs = joined(
            &[("x", "F(a)"), ("y", "a")],
            &[("x", "F(b)"), ("y", "b")],
            &["x", "y"],
        );
        assert!(eqs.contains(&"x = F(y)".to_owned()), "{eqs:?}");
    }

    #[test]
    fn nested_fresh_terms() {
        // x = F(F(a)) & y = a  vs  x = F(F(b)) & y = b  =>  x = F(F(y)).
        let eqs = joined(
            &[("x", "F(F(a))"), ("y", "a")],
            &[("x", "F(F(b))"), ("y", "b")],
            &["x", "y"],
        );
        assert!(eqs.contains(&"x = F(F(y))".to_owned()), "{eqs:?}");
    }

    #[test]
    fn join_with_self_is_identity_closure() {
        let e = [("x", "F(y)"), ("z", "G(x, y)")];
        let eqs = joined(&e, &e, &["x", "y", "z"]);
        // The generating set must regenerate both input equalities.
        let vocab = Vocab::standard();
        let mut g = EGraph::new();
        for eq in &eqs {
            let (s, t) = eq.split_once(" = ").unwrap();
            g.assert_eq(&vocab.parse_term(s).unwrap(), &vocab.parse_term(t).unwrap());
        }
        assert!(g.proves_eq(
            &vocab.parse_term("x").unwrap(),
            &vocab.parse_term("F(y)").unwrap()
        ));
        assert!(g.proves_eq(
            &vocab.parse_term("z").unwrap(),
            &vocab.parse_term("G(F(y), y)").unwrap()
        ));
    }

    #[test]
    fn binary_functions_pair_argumentwise() {
        let eqs = joined(
            &[("x", "G(a, c)"), ("y", "a"), ("z", "c")],
            &[("x", "G(b, d)"), ("y", "b"), ("z", "d")],
            &["x", "y", "z"],
        );
        assert!(eqs.contains(&"x = G(y, z)".to_owned()), "{eqs:?}");
    }
}
