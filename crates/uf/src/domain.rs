//! The uninterpreted-functions abstract domain (global value numbering /
//! Herbrand equivalences — references [11, 12, 15] of the paper).

use crate::egraph::EGraph;
use crate::product::join_equalities;
use cai_core::{AbstractDomain, Budget, Partition, TheoryProps};
use cai_term::{Atom, Conj, Sig, Term, TheoryTag, Var, VarSet};
use std::fmt;

/// An element of the UF domain: a finite conjunction of equalities between
/// uninterpreted-function terms, kept in a canonical generating form, or
/// an explicit bottom.
///
/// Conjunctions of equations over uninterpreted functions are always
/// satisfiable, so bottom only arises by propagation from a sibling domain
/// during Nelson–Oppen saturation.
#[derive(Clone, PartialEq, Debug)]
pub struct UfElem {
    /// `None` is bottom; otherwise the canonical equalities.
    eqs: Option<Vec<(Term, Term)>>,
}

impl UfElem {
    /// The top element.
    pub fn top() -> UfElem {
        UfElem {
            eqs: Some(Vec::new()),
        }
    }

    /// The bottom element.
    pub fn bottom() -> UfElem {
        UfElem { eqs: None }
    }

    /// Returns `true` if this is bottom.
    pub fn is_bottom(&self) -> bool {
        self.eqs.is_none()
    }

    /// The canonical equalities (empty for bottom).
    pub fn equalities(&self) -> &[(Term, Term)] {
        self.eqs.as_deref().unwrap_or(&[])
    }

    /// The variables mentioned.
    pub fn vars(&self) -> VarSet {
        let mut out = VarSet::new();
        for (s, t) in self.equalities() {
            s.collect_vars(&mut out);
            t.collect_vars(&mut out);
        }
        out
    }

    /// Rebuilds the congruence closure of the element.
    pub fn closure(&self) -> EGraph {
        let mut g = EGraph::new();
        for (s, t) in self.equalities() {
            g.assert_eq(s, t);
        }
        g
    }

    fn from_pairs(pairs: Vec<(Term, Term)>, max_size: usize, budget: &Budget) -> UfElem {
        // Canonicalize: close, then emit the generating set with every
        // variable anchored.
        let mut g = EGraph::new();
        for (s, t) in &pairs {
            g.assert_eq(s, t);
        }
        let all = |_: Var| true;
        UfElem {
            eqs: Some(g.emit_equalities_budgeted(&all, max_size, budget)),
        }
    }
}

impl fmt::Display for UfElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.eqs {
            None => f.write_str("false"),
            Some(eqs) if eqs.is_empty() => f.write_str("true"),
            Some(eqs) => {
                for (i, (s, t)) in eqs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" & ")?;
                    }
                    write!(f, "{s} = {t}")?;
                }
                Ok(())
            }
        }
    }
}

/// The uninterpreted-functions abstract domain.
///
/// - implication and `VE_T` are congruence closure,
/// - `Q_L` erases variables via `V`-free minimal representatives
///   (Gulwani & Necula, SAS 2004),
/// - the join is the product-graph construction of \[15\], which discovers
///   equalities over terms occurring in neither input (`x = F(y)` from
///   Figure 4's branches), and
/// - `Alternate_T` reads a representative off the congruence-closed
///   e-graph.
///
/// ```
/// use cai_core::AbstractDomain;
/// use cai_uf::UfDomain;
/// use cai_term::parse::Vocab;
///
/// let vocab = Vocab::standard();
/// let d = UfDomain::new();
/// let e = d.from_conj(&vocab.parse_conj("x = F(a) & y = F(b) & a = b")?);
/// assert!(d.implies_atom(&e, &vocab.parse_atom("x = y")?));
/// # Ok::<(), cai_term::parse::ParseError>(())
/// ```
#[derive(Clone, Debug)]
pub struct UfDomain {
    /// Bound on representative term size (see
    /// [`EGraph::representatives`]); defaults to 64.
    max_term_size: usize,
    budget: Budget,
}

impl UfDomain {
    /// Creates the domain with the default term-size bound and an
    /// unlimited budget.
    pub fn new() -> UfDomain {
        UfDomain {
            max_term_size: 64,
            budget: Budget::unlimited(),
        }
    }

    /// Creates the domain with a custom bound on representative term size.
    pub fn with_max_term_size(max_term_size: usize) -> UfDomain {
        UfDomain {
            max_term_size,
            budget: Budget::unlimited(),
        }
    }

    /// Governs every operation of this domain by `budget` (clone the one
    /// budget shared across the whole analysis).
    pub fn with_budget(mut self, budget: Budget) -> UfDomain {
        self.budget = budget;
        self
    }

    /// The governing budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Extracts the equality's sides; non-`Eq` atoms are outside the UF
    /// signature (the products filter by signature, so this only fires on
    /// misuse) and are reported via the degradation log, not a panic.
    fn atom_sides<'a>(&self, atom: &'a Atom, site: &'static str) -> Option<(&'a Term, &'a Term)> {
        match atom {
            Atom::Eq(s, t) => Some((s, t)),
            _ => {
                self.budget
                    .degrade(site, format!("atom `{atom}` outside the UF signature"));
                None
            }
        }
    }
}

impl Default for UfDomain {
    fn default() -> UfDomain {
        UfDomain::new()
    }
}

impl AbstractDomain for UfDomain {
    type Elem = UfElem;

    fn sig(&self) -> Sig {
        Sig::single(TheoryTag::UF)
    }

    fn props(&self) -> TheoryProps {
        TheoryProps::nelson_oppen()
    }

    fn top(&self) -> UfElem {
        UfElem::top()
    }

    fn bottom(&self) -> UfElem {
        UfElem::bottom()
    }

    fn is_bottom(&self, e: &UfElem) -> bool {
        e.is_bottom()
    }

    fn meet_atom(&self, e: &UfElem, atom: &Atom) -> UfElem {
        let Some((s, t)) = self.atom_sides(atom, "uf/meet_atom") else {
            // Sound: `e` alone over-approximates `e ∧ atom`.
            return e.clone();
        };
        if e.is_bottom() {
            return UfElem::bottom();
        }
        let mut pairs: Vec<(Term, Term)> = e.equalities().to_vec();
        pairs.push((s.clone(), t.clone()));
        UfElem::from_pairs(pairs, self.max_term_size, &self.budget)
    }

    fn meet_all(&self, e: &UfElem, atoms: &[Atom]) -> UfElem {
        if e.is_bottom() {
            return UfElem::bottom();
        }
        let mut pairs: Vec<(Term, Term)> = e.equalities().to_vec();
        for atom in atoms {
            let Some((s, t)) = self.atom_sides(atom, "uf/meet_all") else {
                continue;
            };
            pairs.push((s.clone(), t.clone()));
        }
        UfElem::from_pairs(pairs, self.max_term_size, &self.budget)
    }

    fn implies_atom(&self, e: &UfElem, atom: &Atom) -> bool {
        let Some((s, t)) = self.atom_sides(atom, "uf/implies_atom") else {
            return false; // "unknown" is always sound
        };
        if e.is_bottom() {
            return true;
        }
        e.closure().proves_eq(s, t)
    }

    fn join(&self, a: &UfElem, b: &UfElem) -> UfElem {
        if a.is_bottom() {
            return b.clone();
        }
        if b.is_bottom() {
            return a.clone();
        }
        // The product-graph construction is quadratic in the inputs —
        // charge for it up front and fall back to ⊤ (a sound upper bound
        // of any join) once the budget is gone.
        let cost = (1 + a.equalities().len() as u64) * (1 + b.equalities().len() as u64);
        if !self.budget.tick(cost) {
            self.budget
                .degrade("uf/join", "returned top instead of the product graph");
            return UfElem::top();
        }
        let mut g1 = a.closure();
        let mut g2 = b.closure();
        let mut vars = a.vars();
        vars.extend(b.vars());
        let eqs = join_equalities(&mut g1, &mut g2, &vars, self.max_term_size);
        UfElem::from_pairs(eqs, self.max_term_size, &self.budget)
    }

    fn exists(&self, e: &UfElem, vars: &VarSet) -> UfElem {
        if e.is_bottom() {
            return UfElem::bottom();
        }
        let g = e.closure();
        let anchor = |v: Var| !vars.contains(&v);
        UfElem {
            eqs: Some(g.emit_equalities_budgeted(&anchor, self.max_term_size, &self.budget)),
        }
    }

    fn var_equalities(&self, e: &UfElem) -> Partition {
        let mut p = Partition::new();
        if e.is_bottom() {
            return p;
        }
        let g = e.closure();
        let mut by_root: std::collections::BTreeMap<usize, Var> = std::collections::BTreeMap::new();
        for (v, id) in g.vars() {
            let root = g.find(id);
            match by_root.get(&root) {
                Some(&first) => {
                    p.union(first, v);
                }
                None => {
                    by_root.insert(root, v);
                }
            }
        }
        p
    }

    fn alternate(&self, e: &UfElem, y: Var, avoid: &VarSet) -> Option<Term> {
        if e.is_bottom() {
            return None;
        }
        let mut g = e.closure();
        let yid = g.add(&Term::var(y));
        let root = g.find(yid);
        let anchor = |v: Var| v != y && !avoid.contains(&v);
        let reps = g.representatives_budgeted(&anchor, self.max_term_size, &self.budget);
        reps.get(&root).cloned()
    }

    fn alternates(
        &self,
        e: &UfElem,
        targets: &VarSet,
        avoid: &VarSet,
    ) -> std::collections::BTreeMap<Var, Term> {
        if e.is_bottom() {
            return std::collections::BTreeMap::new();
        }
        // One closure + one representative pass serves every target
        // (`targets ⊆ avoid`, so each target's own name is excluded).
        let mut g = e.closure();
        let roots: Vec<(Var, usize)> = targets
            .iter()
            .map(|&y| {
                let id = g.add(&Term::var(y));
                (y, id)
            })
            .collect();
        let anchor = |v: Var| !avoid.contains(&v);
        let reps = g.representatives_budgeted(&anchor, self.max_term_size, &self.budget);
        roots
            .into_iter()
            .filter_map(|(y, id)| reps.get(&g.find(id)).map(|t| (y, t.clone())))
            .collect()
    }

    fn to_conj(&self, e: &UfElem) -> Conj {
        if e.is_bottom() {
            return Conj::of(Atom::eq(Term::int(0), Term::int(1)));
        }
        e.equalities()
            .iter()
            .map(|(s, t)| Atom::eq(s.clone(), t.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_term::parse::Vocab;

    fn d() -> UfDomain {
        UfDomain::new()
    }

    fn elem(src: &str) -> UfElem {
        let v = Vocab::standard();
        d().from_conj(&v.parse_conj(src).unwrap())
    }

    fn atom(src: &str) -> Atom {
        Vocab::standard().parse_atom(src).unwrap()
    }

    #[test]
    fn congruence_implication() {
        let e = elem("x = F(a) & y = F(b) & a = b");
        assert!(d().implies_atom(&e, &atom("x = y")));
        assert!(!d().implies_atom(&e, &atom("x = a")));
    }

    #[test]
    fn figure4_join() {
        // Branch 1: x = F(a + 1)... handled at product level; the pure UF
        // shadow is x = F(a') & y = a' vs x = F(b') & y = b'.
        let a = elem("x = F(a1) & y = a1");
        let b = elem("x = F(b1) & y = b1");
        let j = d().join(&a, &b);
        assert!(d().implies_atom(&j, &atom("x = F(y)")), "join = {j}");
    }

    #[test]
    fn exists_erases_and_keeps() {
        let e = elem("x = F(u) & y = F(u)");
        let vs: VarSet = [Var::named("u")].into_iter().collect();
        let q = d().exists(&e, &vs);
        assert!(d().implies_atom(&q, &atom("x = y")));
        assert!(!q.vars().contains(&Var::named("u")));
        assert!(!d().implies_atom(&q, &atom("x = F(u)")));
    }

    #[test]
    fn alternate_reads_representative() {
        let e = elem("y = F(G(a, b))");
        let avoid: VarSet = VarSet::new();
        let t = d().alternate(&e, Var::named("y"), &avoid).unwrap();
        assert_eq!(t.to_string(), "F(G(a, b))");
        // Avoiding a blocks that representative.
        let avoid: VarSet = [Var::named("a")].into_iter().collect();
        assert!(d().alternate(&e, Var::named("y"), &avoid).is_none());
    }

    #[test]
    fn var_equalities_are_classes() {
        let e = elem("x = F(a) & y = F(a) & z = G(x, x)");
        let p = d().var_equalities(&e);
        assert!(p.same(Var::named("x"), Var::named("y")));
        assert!(!p.same(Var::named("x"), Var::named("z")));
    }

    #[test]
    fn meet_accumulates() {
        let e = elem("x = F(a)");
        let e2 = d().meet_atom(&e, &atom("a = b"));
        assert!(d().implies_atom(&e2, &atom("x = F(b)")));
    }

    #[test]
    fn join_self_is_equivalent() {
        let e = elem("x = F(y) & z = G(x, y)");
        let j = d().join(&e, &e);
        for (s, t) in e.equalities() {
            assert!(
                d().implies_atom(&j, &Atom::eq(s.clone(), t.clone())),
                "lost {s} = {t}"
            );
        }
        for (s, t) in j.equalities() {
            assert!(d().implies_atom(&e, &Atom::eq(s.clone(), t.clone())));
        }
    }

    #[test]
    fn bottom_propagates() {
        assert!(d().is_bottom(&UfElem::bottom()));
        assert!(d().implies_atom(&UfElem::bottom(), &atom("x = y")));
        let j = d().join(&UfElem::bottom(), &elem("x = F(y)"));
        assert!(d().implies_atom(&j, &atom("x = F(y)")));
    }

    #[test]
    fn cyclic_equalities_are_stable() {
        let e = elem("x = F(x)");
        assert!(d().implies_atom(&e, &atom("x = F(F(F(x)))")));
        let j = d().join(&e, &e);
        assert!(d().implies_atom(&j, &atom("x = F(x)")), "join = {j}");
    }
}
