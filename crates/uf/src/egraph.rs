//! A congruence-closure e-graph over uninterpreted-function terms.
//!
//! This is the workhorse of the UF domain: deciding implied equalities
//! (`VE_T` and the implication check are congruence closure), extracting
//! `V`-free representatives (for `Q_L` and `Alternate_T`), and providing
//! the per-class term inventory that the product-based join consumes.

use cai_core::Budget;
use cai_term::{FnSym, Term, TermKind, Var};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Index of an e-node.
pub type NodeId = usize;

/// What an e-node is.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum NodeKey {
    /// A variable leaf.
    Var(Var),
    /// An application; children are *original* node ids (canonicalize with
    /// [`EGraph::find`] before comparing).
    App(FnSym, Vec<NodeId>),
    /// An opaque non-UF leaf (e.g. a purified constant that leaked in).
    /// Structurally equal leaves share a node; no axioms apply.
    Leaf(Term),
}

/// The canonical signature used for hash-consing and congruence detection.
type Sig = (FnSym, Vec<NodeId>);

/// A congruence-closure e-graph.
///
/// ```
/// use cai_uf::EGraph;
/// use cai_term::parse::Vocab;
///
/// let vocab = Vocab::standard();
/// let mut g = EGraph::new();
/// let fx = g.add(&vocab.parse_term("F(x)")?);
/// let fy = g.add(&vocab.parse_term("F(y)")?);
/// assert_ne!(g.find(fx), g.find(fy));
/// let (x, y) = (g.add(&vocab.parse_term("x")?), g.add(&vocab.parse_term("y")?));
/// g.merge(x, y);
/// assert_eq!(g.find(fx), g.find(fy)); // congruence
/// # Ok::<(), cai_term::parse::ParseError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct EGraph {
    parent: Vec<NodeId>,
    rank: Vec<u32>,
    keys: Vec<NodeKey>,
    /// For each *root*, the app nodes that use a member of its class as an
    /// argument (moved to the winner on union).
    uses: Vec<Vec<NodeId>>,
    /// Canonical app signature → representative node. Entries go stale
    /// after unions but stale keys (mentioning absorbed roots) can never
    /// collide with a current canonical signature.
    memo: HashMap<Sig, NodeId>,
    var_nodes: HashMap<Var, NodeId>,
    leaf_nodes: HashMap<Term, NodeId>,
}

impl EGraph {
    /// An empty e-graph.
    pub fn new() -> EGraph {
        EGraph::default()
    }

    /// The number of e-nodes.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn new_node(&mut self, key: NodeKey) -> NodeId {
        let id = self.keys.len();
        self.keys.push(key);
        self.parent.push(id);
        self.rank.push(0);
        self.uses.push(Vec::new());
        id
    }

    /// The canonical representative of `id`'s class.
    pub fn find(&self, mut id: NodeId) -> NodeId {
        while self.parent[id] != id {
            id = self.parent[id];
        }
        id
    }

    /// Adds a term, returning its node. Purely structural: no merging.
    pub fn add(&mut self, t: &Term) -> NodeId {
        match t.kind() {
            TermKind::Var(v) => {
                if let Some(&id) = self.var_nodes.get(v) {
                    return id;
                }
                let id = self.new_node(NodeKey::Var(*v));
                self.var_nodes.insert(*v, id);
                id
            }
            TermKind::App(f, args) => {
                let ids: Vec<NodeId> = args.iter().map(|a| self.add(a)).collect();
                self.add_app(*f, ids)
            }
            TermKind::Lin(_) => {
                if let Some(&id) = self.leaf_nodes.get(t) {
                    return id;
                }
                let id = self.new_node(NodeKey::Leaf(t.clone()));
                self.leaf_nodes.insert(t.clone(), id);
                id
            }
        }
    }

    /// Adds an application over existing nodes (hash-consed).
    pub fn add_app(&mut self, f: FnSym, args: Vec<NodeId>) -> NodeId {
        let sig: Sig = (f, args.iter().map(|&a| self.find(a)).collect());
        if let Some(&id) = self.memo.get(&sig) {
            return id;
        }
        let id = self.new_node(NodeKey::App(f, args));
        for &a in &sig.1 {
            let root = self.find(a);
            self.uses[root].push(id);
        }
        self.memo.insert(sig, id);
        id
    }

    /// Looks up an application by canonical argument classes *without*
    /// creating it.
    pub fn lookup_app(&self, f: FnSym, canonical_args: &[NodeId]) -> Option<NodeId> {
        self.memo.get(&(f, canonical_args.to_vec())).copied()
    }

    /// The current canonical signature of an app node.
    fn signature(&self, id: NodeId) -> Option<Sig> {
        match &self.keys[id] {
            NodeKey::App(f, args) => Some((*f, args.iter().map(|&a| self.find(a)).collect())),
            _ => None,
        }
    }

    /// Merges the classes of `a` and `b` and restores congruence closure.
    pub fn merge(&mut self, a: NodeId, b: NodeId) {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                continue;
            }
            let (winner, loser) = if self.rank[ra] >= self.rank[rb] {
                (ra, rb)
            } else {
                (rb, ra)
            };
            if self.rank[winner] == self.rank[loser] {
                self.rank[winner] += 1;
            }
            self.parent[loser] = winner;
            cai_obs::counter!("uf/egraph/merges").incr();
            // Re-canonicalize every user of the absorbed class; congruent
            // pairs feed back into the worklist.
            let moved = std::mem::take(&mut self.uses[loser]);
            cai_obs::counter!("uf/egraph/rebuilds").add(moved.len() as u64);
            for u in &moved {
                // `uses` only ever receives app nodes (see `add_app`), so a
                // non-app entry has no signature and nothing to re-canon.
                let Some(sig) = self.signature(*u) else {
                    continue;
                };
                match self.memo.get(&sig) {
                    Some(&v) => {
                        if self.find(v) != self.find(*u) {
                            cai_obs::counter!("uf/egraph/congruence-merges").incr();
                            work.push((*u, v));
                        }
                    }
                    None => {
                        self.memo.insert(sig, *u);
                    }
                }
            }
            self.uses[winner].extend(moved);
        }
    }

    /// Adds both terms and merges their classes.
    pub fn assert_eq(&mut self, s: &Term, t: &Term) {
        let a = self.add(s);
        let b = self.add(t);
        self.merge(a, b);
    }

    /// Adds both terms and reports whether the closure equates them.
    pub fn proves_eq(&mut self, s: &Term, t: &Term) -> bool {
        let a = self.add(s);
        let b = self.add(t);
        self.find(a) == self.find(b)
    }

    /// The node of a variable, if present.
    pub fn var_node(&self, v: Var) -> Option<NodeId> {
        self.var_nodes.get(&v).copied()
    }

    /// All variables in the graph with their nodes.
    pub fn vars(&self) -> impl Iterator<Item = (Var, NodeId)> + '_ {
        self.var_nodes.iter().map(|(&v, &id)| (v, id))
    }

    /// The key of a node.
    pub fn key(&self, id: NodeId) -> &NodeKey {
        &self.keys[id]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> std::ops::Range<NodeId> {
        0..self.keys.len()
    }

    /// Groups node ids by class root.
    pub fn classes(&self) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut out: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for id in 0..self.keys.len() {
            out.entry(self.find(id)).or_default().push(id);
        }
        out
    }

    /// Computes, for each class root, a minimal term representative using
    /// only variables accepted by `anchor` (plus opaque leaves). Classes
    /// with no such representative are absent from the result.
    ///
    /// Minimality is by term size, then display string (for determinism).
    /// Representatives larger than `max_size` are discarded, which bounds
    /// the computation on cyclic e-graphs (e.g. `x = F(x)` with `x`
    /// excluded).
    pub fn representatives(
        &self,
        anchor: &dyn Fn(Var) -> bool,
        max_size: usize,
    ) -> BTreeMap<NodeId, Term> {
        self.representatives_budgeted(anchor, max_size, &Budget::unlimited())
    }

    /// [`EGraph::representatives`] governed by a [`Budget`]: each fixpoint
    /// round ticks in proportion to the node count. On exhaustion the map
    /// computed so far is returned — classes still missing a representative
    /// simply stay absent, so callers emit *fewer* equalities (a weaker,
    /// still sound element).
    pub fn representatives_budgeted(
        &self,
        anchor: &dyn Fn(Var) -> bool,
        max_size: usize,
        budget: &Budget,
    ) -> BTreeMap<NodeId, Term> {
        let mut rep: BTreeMap<NodeId, Term> = BTreeMap::new();
        // Seed with anchored variables and leaves.
        for id in 0..self.keys.len() {
            let root = self.find(id);
            let cand = match &self.keys[id] {
                NodeKey::Var(v) if anchor(*v) => Some(Term::var(*v)),
                NodeKey::Leaf(t) => Some(t.clone()),
                _ => None,
            };
            if let Some(t) = cand {
                consider(&mut rep, root, t);
            }
        }
        // Least fixpoint over app nodes.
        loop {
            if !budget.tick(1 + self.keys.len() as u64) {
                budget.degrade(
                    "egraph/representatives",
                    "returned partial representative map",
                );
                return rep;
            }
            let mut changed = false;
            for id in 0..self.keys.len() {
                let NodeKey::App(f, args) = &self.keys[id] else {
                    continue;
                };
                let root = self.find(id);
                let mut child_terms = Vec::with_capacity(args.len());
                let mut ok = true;
                for &a in args {
                    match rep.get(&self.find(a)) {
                        Some(t) => child_terms.push(t.clone()),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let t = Term::app(*f, child_terms);
                if t.size() <= max_size && consider(&mut rep, root, t) {
                    changed = true;
                }
            }
            if !changed {
                return rep;
            }
        }
    }

    /// Emits a canonical generating set of equalities for the closure,
    /// restricted to terms whose variables satisfy `anchor`.
    ///
    /// For every class with a representative: each anchored variable member
    /// equals the representative, and each app member with representable
    /// arguments yields `rep = f(arg-reps)`. Congruence closure of the
    /// result regenerates every representable equality of the input.
    pub fn emit_equalities(
        &self,
        anchor: &dyn Fn(Var) -> bool,
        max_size: usize,
    ) -> Vec<(Term, Term)> {
        self.emit_equalities_budgeted(anchor, max_size, &Budget::unlimited())
    }

    /// [`EGraph::emit_equalities`] governed by a [`Budget`]; exhaustion
    /// yields a generating set for a *subset* of the representable
    /// equalities (weaker, still sound — see
    /// [`EGraph::representatives_budgeted`]).
    pub fn emit_equalities_budgeted(
        &self,
        anchor: &dyn Fn(Var) -> bool,
        max_size: usize,
        budget: &Budget,
    ) -> Vec<(Term, Term)> {
        let rep = self.representatives_budgeted(anchor, max_size, budget);
        let mut out: BTreeSet<(Term, Term)> = BTreeSet::new();
        for id in 0..self.keys.len() {
            let root = self.find(id);
            let Some(r) = rep.get(&root) else {
                continue;
            };
            match &self.keys[id] {
                NodeKey::Var(v) if anchor(*v) => {
                    let t = Term::var(*v);
                    if &t != r {
                        out.insert((t, r.clone()));
                    }
                }
                NodeKey::Var(_) => {}
                NodeKey::Leaf(t) => {
                    if t != r {
                        out.insert((t.clone(), r.clone()));
                    }
                }
                NodeKey::App(f, args) => {
                    let mut child_terms = Vec::with_capacity(args.len());
                    let mut ok = true;
                    for &a in args {
                        match rep.get(&self.find(a)) {
                            Some(t) => child_terms.push(t.clone()),
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    let t = Term::app(*f, child_terms);
                    if t.size() <= max_size && &t != r {
                        out.insert((r.clone(), t));
                    }
                }
            }
        }
        out.into_iter().collect()
    }
}

fn consider(rep: &mut BTreeMap<NodeId, Term>, root: NodeId, cand: Term) -> bool {
    match rep.get(&root) {
        Some(cur) => {
            // Size first; the display string only breaks ties (it is
            // expensive to compute, so avoid it on the common path).
            let (cs, ns) = (cur.size(), cand.size());
            if cs < ns || (cs == ns && *cur <= cand) {
                false
            } else {
                rep.insert(root, cand);
                true
            }
        }
        None => {
            rep.insert(root, cand);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_term::parse::Vocab;

    fn graph(eqs: &[(&str, &str)]) -> EGraph {
        let vocab = Vocab::standard();
        let mut g = EGraph::new();
        for (s, t) in eqs {
            let s = vocab.parse_term(s).unwrap();
            let t = vocab.parse_term(t).unwrap();
            g.assert_eq(&s, &t);
        }
        g
    }

    fn proves(g: &mut EGraph, s: &str, t: &str) -> bool {
        let vocab = Vocab::standard();
        let s = vocab.parse_term(s).unwrap();
        let t = vocab.parse_term(t).unwrap();
        g.proves_eq(&s, &t)
    }

    #[test]
    fn congruence_basic() {
        let mut g = graph(&[("x", "y")]);
        assert!(proves(&mut g, "F(x)", "F(y)"));
        assert!(!proves(&mut g, "F(x)", "G(y)"));
    }

    #[test]
    fn congruence_nested() {
        let mut g = graph(&[("a", "b")]);
        assert!(proves(&mut g, "F(F(F(a)))", "F(F(F(b)))"));
    }

    #[test]
    fn transitivity_through_apps() {
        // x = F(a), y = F(b), a = b  =>  x = y.
        let mut g = graph(&[("x", "F(a)"), ("y", "F(b)"), ("a", "b")]);
        assert!(proves(&mut g, "x", "y"));
    }

    #[test]
    fn upward_closure_after_late_merge() {
        // Add F(a), F(b) first, merge a = b later: congruence must fire.
        let vocab = Vocab::standard();
        let mut g = EGraph::new();
        let fa = g.add(&vocab.parse_term("F(a)").unwrap());
        let fb = g.add(&vocab.parse_term("F(b)").unwrap());
        let gfa = g.add(&vocab.parse_term("G(F(a), a)").unwrap());
        let gfb = g.add(&vocab.parse_term("G(F(b), b)").unwrap());
        assert_ne!(g.find(fa), g.find(fb));
        g.assert_eq(
            &vocab.parse_term("a").unwrap(),
            &vocab.parse_term("b").unwrap(),
        );
        assert_eq!(g.find(fa), g.find(fb));
        assert_eq!(g.find(gfa), g.find(gfb));
    }

    #[test]
    fn representatives_prefer_small_anchored_terms() {
        let g = graph(&[("x", "F(u)"), ("u", "v")]);
        let all = |_: Var| true;
        let reps = g.representatives(&all, 64);
        // Every class has a rep; x's class rep is the variable x.
        let xid = g.var_node(Var::named("x")).unwrap();
        assert_eq!(reps[&g.find(xid)].to_string(), "x");
    }

    #[test]
    fn representatives_respect_anchor() {
        // x = F(u): erasing u, the class of u has no representative, but
        // x's class keeps x.
        let g = graph(&[("x", "F(u)")]);
        let anchor = |v: Var| v != Var::named("u");
        let reps = g.representatives(&anchor, 64);
        let uid = g.var_node(Var::named("u")).unwrap();
        assert!(!reps.contains_key(&g.find(uid)));
        let xid = g.var_node(Var::named("x")).unwrap();
        assert_eq!(reps[&g.find(xid)].to_string(), "x");
    }

    #[test]
    fn self_loop_representable_via_var() {
        // x = F(x): rep of the class is x; emission includes x = F(x).
        let g = graph(&[("x", "F(x)")]);
        let all = |_: Var| true;
        let eqs = g.emit_equalities(&all, 64);
        let shown: Vec<String> = eqs.iter().map(|(a, b)| format!("{a} = {b}")).collect();
        assert!(shown.contains(&"x = F(x)".to_owned()), "{shown:?}");
    }

    #[test]
    fn erased_cycle_unrepresentable() {
        // u = F(u) with u erased: no finite representative, nothing emitted.
        let g = graph(&[("u", "F(u)")]);
        let anchor = |v: Var| v != Var::named("u");
        assert!(g.emit_equalities(&anchor, 64).is_empty());
    }

    #[test]
    fn emission_regenerates_closure() {
        let g = graph(&[("x", "F(a)"), ("y", "F(b)"), ("a", "b"), ("z", "G(x, y)")]);
        let all = |_: Var| true;
        let eqs = g.emit_equalities(&all, 64);
        let mut g2 = EGraph::new();
        for (s, t) in &eqs {
            g2.assert_eq(s, t);
        }
        assert!(proves(&mut g2, "x", "y"));
        assert!(proves(&mut g2, "z", "G(y, x)"));
    }

    #[test]
    fn quantification_keeps_derived_equalities() {
        // x = F(u), y = F(u): erasing u keeps x = y.
        let g = graph(&[("x", "F(u)"), ("y", "F(u)")]);
        let anchor = |v: Var| v != Var::named("u");
        let eqs = g.emit_equalities(&anchor, 64);
        let mut g2 = EGraph::new();
        for (s, t) in &eqs {
            g2.assert_eq(s, t);
        }
        assert!(proves(&mut g2, "x", "y"));
        // And u is gone from every emitted term.
        for (s, t) in &eqs {
            assert!(!s.vars().contains(&Var::named("u")));
            assert!(!t.vars().contains(&Var::named("u")));
        }
    }

    #[test]
    fn opaque_leaves_are_structural() {
        let vocab = Vocab::standard();
        let mut g = EGraph::new();
        let a = g.add(&vocab.parse_term("F(x + y)").unwrap());
        let b = g.add(&vocab.parse_term("F(y + x)").unwrap());
        // Normalized linear layer makes these the same leaf.
        assert_eq!(g.find(a), g.find(b));
    }
}
