//! The uninterpreted-functions abstract domain (Herbrand equivalences /
//! global value numbering) for the `cai` workspace.
//!
//! Implements the logical lattice over the theory of uninterpreted
//! functions (§2 of *Combining Abstract Interpreters*): congruence-closure
//! [`EGraph`]s decide implication and implied variable equalities; the
//! join is the product-graph construction of Gulwani–Tiwari–Necula \[15\];
//! existential quantification erases variables via minimal `V`-free
//! representatives (Gulwani & Necula, SAS 2004 \[12\]).

mod domain;
mod egraph;
mod product;

pub use domain::{UfDomain, UfElem};
pub use egraph::{EGraph, NodeId, NodeKey};
pub use product::join_equalities;
