//! Tests of the driver's adaptive budget policy: size-proportional job
//! slices, incident-history damping through the summary cache, thread
//! count independence, and the flat policy's bit-identity contract.

use cai_core::{AbstractDomain, Budget, BudgetPolicy};
use cai_driver::{Driver, ModuleAnalysis, Summary, SummaryCache};
use cai_interp::{parse_module, Module};
use cai_linarith::Polyhedra;
use cai_term::parse::Vocab;

fn module(src: &str) -> Module {
    parse_module(&Vocab::standard(), src).expect("module parses")
}

fn poly() -> Driver<Polyhedra, impl Fn(&Budget) -> Polyhedra + Sync> {
    Driver::new(|_| Polyhedra::new())
}

fn verdicts(a: &ModuleAnalysis, name: &str) -> Vec<bool> {
    a.report(name)
        .unwrap_or_else(|| panic!("no report for {name}"))
        .assertions
        .iter()
        .map(|o| o.verified)
        .collect()
}

/// Everything observable about a run, rendered to one comparable string.
fn fingerprint(a: &ModuleAnalysis) -> String {
    let mut s = String::new();
    for r in a {
        let verdicts: Vec<bool> = r.assertions.iter().map(|o| o.verified).collect();
        s.push_str(&format!(
            "{} | {} | {:?} | diverged={} quarantined={}\n",
            r.name, r.summary, verdicts, r.diverged, r.quarantined
        ));
    }
    s.push_str(&format!(
        "degraded={} exhausted={} fuel={}\n",
        a.degradation.degraded, a.degradation.exhausted, a.degradation.fuel_spent
    ));
    s
}

/// `a ⊑ b` on exit constraints, decided by a fresh domain.
fn exit_le(d: &Polyhedra, a: &Summary, b: &Summary) -> bool {
    match (&a.exit, &b.exit) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(ca), Some(cb)) => d.le(&d.from_conj(ca), &d.from_conj(cb)),
    }
}

/// One large loop-heavy procedure next to several trivial ones: the
/// shape where equal fuel shares starve the big procedure while
/// proportional shares feed everyone.
fn mixed_module() -> Module {
    let mut src = String::new();
    for i in 0..6 {
        src.push_str(&format!(
            "proc small{i}(a) {{ y := a + {i}; assert(y >= a); ret := y; }}\n"
        ));
    }
    src.push_str(
        "proc big(n) {
             x := 0;
             s := 0;
             while (x < 60) { x := x + 1; s := s + 2; }
             assert(x >= 60);
             assert(x <= 60);
             ret := s;
         }",
    );
    module(&src)
}

#[test]
fn adaptive_policy_feeds_big_procedures_that_flat_shares_starve() {
    let m = mixed_module();

    // Measure what each side actually needs, with unlimited fuel (spent
    // is tracked regardless), then pick a pool that self-evidently
    // starves `big` under equal shares but not under proportional ones.
    let cost = |name: &str| {
        let single = module(&m.get(name).expect("proc").to_string());
        poly()
            .budget_policy(BudgetPolicy::adaptive())
            .analyze(&single)
            .degradation
            .fuel_spent
    };
    let cost_big = cost("big");
    let cost_small = cost("small0");

    let policy = BudgetPolicy::adaptive();
    let weight = |name: &str| policy.job_weight(&m.get(name).expect("proc").measures(), 0);
    let w_big = weight("big");
    let w_small = weight("small0");
    let total_w = w_big + 6 * w_small;
    let jobs = 7u64;

    // The smallest pool whose proportional big-share covers cost_big,
    // padded a little for the slice-remainder floor.
    let fuel = (cost_big * total_w).div_ceil(w_big) + jobs;
    assert!(
        fuel / jobs < cost_big,
        "calibration: the flat share {} must starve big (needs {})",
        fuel / jobs,
        cost_big
    );
    assert!(
        fuel * w_small / total_w >= cost_small && fuel / jobs >= cost_small,
        "calibration: small procedures must be fed under both policies"
    );

    let flat = poly().with_budget(Budget::fuel(fuel)).analyze(&m);
    let adaptive = poly()
        .with_budget(Budget::fuel(fuel))
        .budget_policy(BudgetPolicy::adaptive())
        .analyze(&m);

    // Flat starves big: the loop degrades to ⊤ (only the loop-condition
    // negation x >= 60 survives at exit) and the upper bound is gone.
    assert!(flat.degradation.exhausted, "flat run must hit exhaustion");
    assert_eq!(verdicts(&flat, "big"), [true, false]);
    // Adaptive feeds it — and the narrowing pass recovers the upper
    // bound widening discarded.
    assert_eq!(verdicts(&adaptive, "big"), [true, true]);

    // Per procedure, the adaptive run is no less precise than the flat
    // one — strictly better on `big`.
    let d = Polyhedra::new();
    for (a, f) in adaptive.reports.iter().zip(flat.reports.iter()) {
        assert_eq!(a.name, f.name);
        assert!(
            exit_le(&d, &a.summary, &f.summary),
            "adaptive must refine flat for {}",
            a.name
        );
    }
    let (a_big, f_big) = (
        &adaptive.report("big").expect("big").summary,
        &flat.report("big").expect("big").summary,
    );
    assert!(!exit_le(&d, f_big, a_big), "strictly more precise on big");
}

#[test]
fn adaptive_runs_are_identical_across_thread_counts() {
    let m = mixed_module();
    let run = |threads: usize| {
        let a = poly()
            .threads(threads)
            .with_budget(Budget::fuel(4_000))
            .budget_policy(BudgetPolicy::adaptive())
            .analyze(&m);
        fingerprint(&a)
    };
    let base = run(1);
    assert!(base.contains("big"), "sanity: reports present");
    for threads in [2, 4] {
        assert_eq!(run(threads), base, "threads={threads}");
    }
}

#[test]
fn flat_policy_is_bit_identical_to_the_default_driver() {
    // An explicit Flat policy must be indistinguishable from never
    // mentioning policies at all — reports, verdicts, and the fuel
    // trace.
    let m = mixed_module();
    let default_run = poly().with_budget(Budget::fuel(900)).analyze(&m);
    let flat_run = poly()
        .with_budget(Budget::fuel(900))
        .budget_policy(BudgetPolicy::flat())
        .analyze(&m);
    assert_eq!(fingerprint(&default_run), fingerprint(&flat_run));
    assert_eq!(
        default_run.degradation.fuel_spent,
        flat_run.degradation.fuel_spent
    );
}

#[test]
fn incident_history_is_recorded_decayed_and_damps_weights() {
    let m = module(
        "proc f(a) { ret := a + 1; }
         proc g(a) { ret := a + 2; }",
    );
    let driver = poly();
    let mut cache = SummaryCache::new();

    driver.analyze_with_cache(&m, &mut cache);
    assert_eq!(cache.incident_count("f"), 0);

    // A corrupted entry is rejected on the next run and recorded as an
    // incident against its procedure.
    assert!(cache.corrupt_entry("f"));
    driver.analyze_with_cache(&m, &mut cache);
    assert_eq!(cache.incident_count("f"), 1, "corruption incident lands");
    assert_eq!(cache.incident_count("g"), 0);

    // The damped weight schedules `f` below the equally-sized `g`.
    let policy = BudgetPolicy::adaptive();
    let size = m.get("f").expect("f").measures();
    assert!(
        policy.job_weight(&size, cache.incident_count("f"))
            < policy.job_weight(&size, cache.incident_count("g"))
    );

    // A clean run halves the history away: the damping is *recent*.
    driver.analyze_with_cache(&m, &mut cache);
    assert_eq!(cache.incident_count("f"), 0, "history decays");
}
