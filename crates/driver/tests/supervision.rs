//! Chaos tests of the driver's supervision layer: injected panics must
//! be absorbed (caught, retried, or quarantined to the sound ⊤ summary)
//! with bit-identical results across thread counts, injected stalls must
//! be broken by the watchdog, and corrupted cache entries must be
//! rejected and recomputed — all without a single process abort (every
//! test completing *is* the zero-abort assertion).

use cai_core::{Budget, ChaosConfig, ChaosDomain, IncidentKind, LogicalProduct};
use cai_driver::{Driver, ModuleAnalysis, Summary, SummaryCache};
use cai_interp::{parse_module, Module};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;
use std::time::Duration;

type Product = LogicalProduct<AffineEq, UfDomain>;
type Chaos = ChaosDomain<Product>;

fn product() -> Product {
    LogicalProduct::new(AffineEq::new(), UfDomain::new())
}

/// A driver whose every job wraps the product in a seeded fault
/// injector attached to that job's budget slice.
fn chaos_driver(seed: u64, cfg: ChaosConfig) -> Driver<Chaos, impl Fn(&Budget) -> Chaos + Sync> {
    Driver::new(move |b: &Budget| {
        ChaosDomain::new(product(), seed)
            .with_config(cfg)
            .with_budget(b.clone())
    })
}

/// A module with real interprocedural structure: `n` leaf procedures,
/// `n` mid-tier callers (each calling two leaves), a recursive
/// procedure, and a `main` that calls into the mid tier and asserts —
/// enough components for the scheduler to farm out and for quarantines
/// to have visible dependents.
fn batch(n: usize) -> Module {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("proc leaf{i}(a) {{ ret := a + {i}; }}\n"));
    }
    for i in 0..n {
        let j = (i + 1) % n;
        src.push_str(&format!(
            "proc mid{i}(a) {{ x := call leaf{i}(a); y := call leaf{j}(x); ret := y; }}\n"
        ));
    }
    src.push_str("proc rec(n) { if (*) { ret := n; } else { t := call rec(n); ret := t; } }\n");
    src.push_str(
        "proc main(a) {
             r := call mid0(a);
             assert(r = a + 1);
             s := call rec(a);
             ret := r + s;
         }\n",
    );
    parse_module(&Vocab::standard(), &src).expect("module parses")
}

/// Everything observable about a run, rendered to one comparable string:
/// reports (summary, verdicts, flags), supervision counters, and the
/// incident log. Two runs with equal fingerprints behaved identically.
fn fingerprint(a: &ModuleAnalysis) -> String {
    let mut s = String::new();
    for r in a {
        let verdicts: Vec<bool> = r.assertions.iter().map(|o| o.verified).collect();
        s.push_str(&format!(
            "{} | {} | {:?} | diverged={} quarantined={}\n",
            r.name, r.summary, verdicts, r.diverged, r.quarantined
        ));
    }
    s.push_str(&format!(
        "reused={} recomputed={} sup={:?}\n",
        a.reused, a.recomputed, a.supervision
    ));
    s.push_str(&format!(
        "degraded={} exhausted={} fuel={}\n",
        a.degradation.degraded, a.degradation.exhausted, a.degradation.fuel_spent
    ));
    for i in &a.degradation.incidents {
        s.push_str(&format!(
            "{} `{}` attempt {}\n",
            i.kind, i.subject, i.attempt
        ));
    }
    s.push_str(&format!("dropped={}\n", a.degradation.dropped_incidents));
    s
}

/// `faulty ⊒ clean` on exit constraints, decided by a fault-free domain.
fn summary_weaker_or_equal(d: &Product, clean: &Summary, faulty: &Summary) -> bool {
    use cai_core::AbstractDomain;
    match (&clean.exit, &faulty.exit) {
        (None, _) => true,
        // The faulty run claiming ⊥ where the clean run reached the exit
        // would be exactly the unsoundness supervision must prevent.
        (Some(_), None) => false,
        (Some(a), Some(b)) => d.le(&d.from_conj(a), &d.from_conj(b)),
    }
}

#[test]
fn panic_chaos_is_bit_identical_across_thread_counts() {
    let m = batch(5);
    let cfg = ChaosConfig {
        panic_permille: 60,
        ..ChaosConfig::quiet()
    };
    let mut total_panics = 0u64;
    for seed in 0..4u64 {
        let base = chaos_driver(seed, cfg).threads(1).analyze(&m);
        total_panics += base.supervision.panics_caught;
        let base_fp = fingerprint(&base);
        for threads in [2, 4] {
            let run = chaos_driver(seed, cfg).threads(threads).analyze(&m);
            assert_eq!(
                fingerprint(&run),
                base_fp,
                "seed {seed}: threads={threads} diverged from the sequential run"
            );
        }
    }
    assert!(
        total_panics > 0,
        "the chaos rate must actually exercise the supervisor"
    );
}

#[test]
fn quarantined_procedures_pin_to_top_and_dependents_stay_sound() {
    let m = batch(4);
    let clean = Driver::new(|_| product()).threads(2).analyze(&m);
    let cfg = ChaosConfig {
        panic_permille: 250,
        ..ChaosConfig::quiet()
    };
    let d = product();
    let mut total_quarantined = 0usize;
    for seed in 0..6u64 {
        // max_retries(0): the first caught panic quarantines, so heavy
        // chaos reliably produces ⊤ pins to inspect.
        let a = chaos_driver(seed, cfg)
            .max_retries(0)
            .threads(2)
            .analyze(&m);
        assert_eq!(
            a.supervision.quarantined as usize,
            a.quarantined_count(),
            "counter and reports agree"
        );
        total_quarantined += a.quarantined_count();
        for r in &a {
            if r.quarantined {
                assert!(
                    r.summary.entry.is_empty()
                        && r.summary.exit.as_ref().is_some_and(|c| c.is_empty()),
                    "seed {seed}: quarantined `{}` must report the ⊤ summary, got `{}`",
                    r.name,
                    r.summary
                );
                assert!(
                    r.assertions.is_empty(),
                    "no verdicts from a quarantined body"
                );
                assert!(r.diverged, "quarantine flags divergence");
            }
            let clean_summary = &clean.report(&r.name).expect("same procs").summary;
            assert!(
                summary_weaker_or_equal(&d, clean_summary, &r.summary),
                "seed {seed}: `{}` under faults must be ⊒ its fault-free summary \
                 (clean `{clean_summary}`, faulty `{}`)",
                r.name,
                r.summary
            );
        }
        if a.quarantined_count() > 0 {
            assert!(
                a.degradation.degraded,
                "quarantine is reported as degradation"
            );
            assert!(
                a.degradation
                    .incidents_of(IncidentKind::Quarantine)
                    .next()
                    .is_some(),
                "quarantines leave incidents"
            );
        }
    }
    assert!(
        total_quarantined > 0,
        "the chaos rate must actually force quarantines"
    );
}

#[test]
fn retries_recover_transient_panics() {
    let m = batch(5);
    let cfg = ChaosConfig {
        panic_permille: 40,
        ..ChaosConfig::quiet()
    };
    let mut recovered = 0u64;
    let mut caught = 0u64;
    for seed in 0..8u64 {
        let a = chaos_driver(seed, cfg).threads(2).analyze(&m);
        caught += a.supervision.panics_caught;
        recovered += a.supervision.recovered;
        assert!(
            a.supervision.retries <= a.supervision.panics_caught,
            "every retry follows a caught panic"
        );
    }
    assert!(caught > 0, "panics must fire at this rate");
    assert!(
        recovered > 0,
        "the injector's PRNG advances past a caught panic, so some retries \
         must complete (caught {caught} panics, recovered {recovered})"
    );
}

#[test]
fn the_watchdog_breaks_stalls_into_degradation() {
    let m = batch(3);
    let cfg = ChaosConfig {
        stall_permille: 150,
        ..ChaosConfig::quiet()
    };
    // A stalling operation spins until its job slice is exhausted; only
    // the watchdog does that here, so this test completing at all proves
    // the deadline fired.
    let a = chaos_driver(1, cfg)
        .threads(2)
        .proc_deadline(Duration::from_millis(30))
        .analyze(&m);
    assert!(a.supervision.stalls > 0, "a stall must fire at this rate");
    assert!(
        a.degradation
            .incidents_of(IncidentKind::Stall)
            .next()
            .is_some(),
        "stalls leave incidents"
    );
    assert!(a.degradation.degraded && a.degradation.exhausted);
    // Sound degradation, not garbage: every summary is ⊒ its clean run.
    let clean = Driver::new(|_| product()).analyze(&m);
    let d = product();
    for r in &a {
        let clean_summary = &clean.report(&r.name).expect("same procs").summary;
        assert!(summary_weaker_or_equal(&d, clean_summary, &r.summary));
    }
}

#[test]
fn corrupted_cache_entries_are_rejected_and_recomputed() {
    let m = batch(3);
    let mut cache = SummaryCache::new();
    let first = Driver::new(|_| product()).analyze_with_cache(&m, &mut cache);
    assert_eq!(first.recomputed, m.procs.len());

    // Bit rot in a stored entry — the dangerous kind: the summary's exit
    // flips to ⊥, which blind reuse would propagate into dependents as
    // unsound dead-code verdicts.
    assert!(cache.corrupt_entry("mid1"), "entry exists to corrupt");

    let second = Driver::new(|_| product()).analyze_with_cache(&m, &mut cache);
    let stats = cache.stats();
    assert_eq!(stats.corruptions, 1, "the corrupted entry was rejected");
    assert_eq!(
        (second.reused, second.recomputed),
        (m.procs.len() - 1, 1),
        "exactly the rejected procedure recomputes"
    );
    assert_eq!(
        second.report("mid1").expect("mid1").summary,
        first.report("mid1").expect("mid1").summary,
        "recompute, not wrong reuse: the corrupted ⊥ summary never surfaces"
    );
    assert_eq!(
        second
            .degradation
            .incidents_of(IncidentKind::CacheCorruption)
            .count(),
        1,
        "the rejection is reported"
    );

    // The refreshed entry carries a valid checksum again.
    let third = Driver::new(|_| product()).analyze_with_cache(&m, &mut cache);
    assert_eq!((third.reused, third.recomputed), (m.procs.len(), 0));
    assert_eq!(cache.stats().corruptions, 1, "no further rejections");
}

#[test]
fn quarantined_results_are_never_persisted() {
    let m = batch(3);
    let cfg = ChaosConfig {
        panic_permille: 300,
        ..ChaosConfig::quiet()
    };
    // Find a seed that quarantines something (deterministic, so the
    // first hit is stable forever).
    for seed in 0..16u64 {
        let mut cache = SummaryCache::new();
        let faulty = chaos_driver(seed, cfg)
            .max_retries(0)
            .analyze_with_cache(&m, &mut cache);
        if faulty.quarantined_count() == 0 {
            continue;
        }
        assert_eq!(
            cache.len(),
            m.procs.len() - faulty.quarantined_count(),
            "⊤ pins must not be cached"
        );
        // A fault-free second run over the same cache recomputes exactly
        // the quarantined procedures and yields clean summaries.
        let recovered = Driver::new(|_| product()).analyze_with_cache(&m, &mut cache);
        assert_eq!(recovered.recomputed, faulty.quarantined_count());
        assert_eq!(recovered.quarantined_count(), 0);
        let clean = Driver::new(|_| product()).analyze(&m);
        for r in &recovered {
            assert_eq!(
                r.summary,
                clean.report(&r.name).expect("same procs").summary,
                "`{}` fully recovers after the fault clears",
                r.name
            );
        }
        return;
    }
    panic!("no seed in 0..16 forced a quarantine at 300‰ — rate too low");
}
