//! Integration tests of the interprocedural driver: summary precision,
//! recursive fixpoints, parallel determinism, and incremental reuse.

use cai_core::Budget;
use cai_driver::{Driver, ModuleAnalysis, SummaryCache};
use cai_interp::{parse_module, Module};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;

fn module(src: &str) -> Module {
    parse_module(&Vocab::standard(), src).expect("module parses")
}

fn affine() -> Driver<AffineEq, impl Fn(&Budget) -> AffineEq + Sync> {
    Driver::new(|_| AffineEq::new())
}

fn verdicts(a: &ModuleAnalysis, name: &str) -> Vec<bool> {
    a.report(name)
        .expect("report exists")
        .assertions
        .iter()
        .map(|o| o.verified)
        .collect()
}

#[test]
fn summaries_flow_through_call_chains() {
    let m = module(
        "proc inc(a) { ret := a + 1; }
         proc twice(b) { x := call inc(b); y := call inc(x); ret := y; }
         proc main(n) {
             r := call twice(n);
             assert(r = n + 2);
             assert(r = n);
         }",
    );
    let a = affine().analyze(&m);
    assert_eq!(verdicts(&a, "main"), [true, false]);
    assert_eq!(a.recomputed, 3);
    assert_eq!(a.reused, 0);
    let inc = &a.report("inc").expect("inc analyzed").summary;
    // AffineEq's canonical presentation of ret = a + 1.
    assert_eq!(inc.to_string(), "a = ret - 1");
}

#[test]
fn arguments_may_mention_the_destination() {
    // `x := call inc(x)` — the argument refers to x's pre-state.
    let m = module(
        "proc inc(a) { ret := a + 1; }
         proc main(n) {
             x := n;
             x := call inc(x);
             x := call inc(x);
             assert(x = n + 2);
         }",
    );
    assert_eq!(verdicts(&affine().analyze(&m), "main"), [true]);
}

#[test]
fn mutated_params_do_not_pollute_summaries() {
    // `a` is reassigned inside the body, so the exit fact `ret = a`
    // holds of the *new* a, not the argument; the summary must not claim
    // `ret = arg`.
    let m = module(
        "proc bump(a) { a := a + 1; ret := a; }
         proc main(n) {
             r := call bump(n);
             assert(r = n);
         }",
    );
    let a = affine().analyze(&m);
    assert_eq!(verdicts(&a, "main"), [false]);
}

#[test]
fn unknown_callees_havoc_the_destination() {
    let m = module(
        "proc main(n) {
             x := n;
             x := call mystery(x);
             assert(x = n);
         }",
    );
    assert_eq!(verdicts(&affine().analyze(&m), "main"), [false]);
}

#[test]
fn self_recursion_reaches_a_nontrivial_fixpoint() {
    // id either returns its argument directly or through another
    // recursive call: the summary fixpoint stabilizes at `ret = n`.
    let m = module(
        "proc id(n) {
             if (*) { ret := n; } else { t := call id(n); ret := t; }
         }
         proc main(k) {
             v := call id(k);
             assert(v = k);
         }",
    );
    let a = affine().analyze(&m);
    assert_eq!(verdicts(&a, "main"), [true]);
    let id = a.report("id").expect("id analyzed");
    assert!(!id.diverged, "the summary fixpoint converged");
    assert_eq!(id.summary.to_string(), "n = ret");
}

#[test]
fn recursion_with_growing_result_stays_sound() {
    // Each unfolding adds 1, so no affine equality survives the join;
    // the summary must weaken to ⊤ rather than keep a wrong equality.
    let m = module(
        "proc up(n) {
             if (*) { ret := 0; } else { t := call up(n); ret := t + 1; }
         }
         proc main(k) {
             v := call up(k);
             assert(v = 0);
         }",
    );
    let a = affine().analyze(&m);
    assert_eq!(verdicts(&a, "main"), [false]);
    assert_eq!(
        a.report("up").expect("up analyzed").summary.to_string(),
        "true"
    );
}

#[test]
fn mutual_recursion_stabilizes_jointly() {
    // pos returns n (directly, or by negating neg's negation); the two
    // summaries must stabilize together: pos: ret = n, neg: ret = -n.
    let m = module(
        "proc pos(n) {
             if (*) { ret := n; } else { t := call neg(n); ret := 0 - t; }
         }
         proc neg(n) { t := call pos(n); ret := 0 - t; }
         proc main(k) {
             a := call neg(k);
             assert(a = 0 - k);
             b := call pos(k);
             assert(b = k);
         }",
    );
    let a = affine().analyze(&m);
    assert_eq!(verdicts(&a, "main"), [true, true]);
    assert!(!a.report("pos").expect("pos").diverged);
    assert!(!a.report("neg").expect("neg").diverged);
}

/// A diamond over distinct leaves, wide enough to give the scheduler
/// real interleaving freedom.
fn diamond_module() -> Module {
    let mut src = String::new();
    for i in 0..8 {
        src.push_str(&format!("proc leaf{i}(a) {{ ret := a + {i}; }}\n"));
    }
    for i in 0..8 {
        src.push_str(&format!(
            "proc mid{i}(b) {{ x := call leaf{i}(b); y := call leaf{}(x); ret := y; }}\n",
            (i + 1) % 8
        ));
    }
    src.push_str(
        "proc top(n) {
             u := call mid0(n);
             v := call mid3(u);
             assert(v = n + 8);
             ret := v;
         }",
    );
    module(&src)
}

#[test]
fn parallel_results_are_bit_identical_to_sequential() {
    let m = diamond_module();
    let seq = affine().threads(1).analyze(&m);
    let par = affine().threads(4).analyze(&m);
    assert_eq!(seq.reports.len(), par.reports.len());
    for (a, b) in seq.reports.iter().zip(par.reports.iter()) {
        assert_eq!(a.name, b.name, "same order");
        assert_eq!(a.summary, b.summary, "identical summary for {}", a.name);
        assert_eq!(
            a.summary.to_string(),
            b.summary.to_string(),
            "identical presentation for {}",
            a.name
        );
        assert_eq!(a.diverged, b.diverged);
        let va: Vec<bool> = a.assertions.iter().map(|o| o.verified).collect();
        let vb: Vec<bool> = b.assertions.iter().map(|o| o.verified).collect();
        assert_eq!(va, vb, "identical verdicts for {}", a.name);
    }
    assert_eq!(verdicts(&par, "top"), [true]);
}

#[test]
fn incremental_reanalysis_recomputes_only_the_dirty_cone() {
    let chain = |c_body: &str| {
        module(&format!(
            "proc a(x) {{ r := call b(x); ret := r; }}
             proc b(x) {{ r := call c(x); ret := r; }}
             proc c(x) {{ {c_body} }}
             proc d(x) {{ ret := x + 4; }}
             proc e(x) {{ r := call d(x); ret := r; }}"
        ))
    };
    let driver = affine();
    let mut cache = SummaryCache::new();

    let first = driver.analyze_with_cache(&chain("ret := x + 1;"), &mut cache);
    assert_eq!((first.reused, first.recomputed), (0, 5));
    assert_eq!(
        first.report("a").expect("a").summary.to_string(),
        "ret = x + 1"
    );

    // Unchanged module: everything reuses.
    let again = driver.analyze_with_cache(&chain("ret := x + 1;"), &mut cache);
    assert_eq!((again.reused, again.recomputed), (5, 0));
    assert_eq!(
        again.report("a").expect("a").summary.to_string(),
        "ret = x + 1"
    );

    // Editing c dirties exactly its caller cone {a, b, c}; the
    // independent chain {d, e} reuses.
    let edited = driver.analyze_with_cache(&chain("ret := x + 2;"), &mut cache);
    assert_eq!((edited.reused, edited.recomputed), (2, 3));
    assert_eq!(
        edited.report("a").expect("a").summary.to_string(),
        "ret = x + 2"
    );
    assert_eq!(
        edited.report("e").expect("e").summary.to_string(),
        "ret = x + 4"
    );
}

#[test]
fn incremental_reuse_is_identical_on_any_thread_count() {
    let m = diamond_module();
    let mut cache = SummaryCache::new();
    let driver4 = affine().threads(4);
    let first = driver4.analyze_with_cache(&m, &mut cache);
    assert_eq!(first.reused, 0);
    let second = driver4.analyze_with_cache(&m, &mut cache);
    assert_eq!((second.reused, second.recomputed), (17, 0));
    for (a, b) in first.reports.iter().zip(second.reports.iter()) {
        assert_eq!(a.summary, b.summary);
    }
}

#[test]
fn exhausted_budget_degrades_soundly_across_the_batch() {
    let m = diamond_module();
    let budget = Budget::fuel(0);
    let a = affine().threads(2).with_budget(budget).analyze(&m);
    // Nothing may be *wrongly* verified: with no fuel every loop-free
    // body still runs its transfers, but any degradation is flagged.
    assert_eq!(a.reports.len(), 17);
    let clean = affine().analyze(&m);
    for (deg, cl) in a.reports.iter().zip(clean.reports.iter()) {
        for (x, y) in deg.assertions.iter().zip(cl.assertions.iter()) {
            assert!(
                !x.verified || y.verified,
                "degraded run verified something the clean run rejects in {}",
                deg.name
            );
        }
    }
}

#[test]
fn summary_cache_reports_its_size() {
    let m = module("proc f(a) { ret := a; }");
    let mut cache = SummaryCache::new();
    assert!(cache.is_empty());
    affine().analyze_with_cache(&m, &mut cache);
    assert_eq!(cache.len(), 1);
}

#[test]
fn disabled_summary_cache_persists_nothing() {
    use cai_core::CacheConfig;
    let m = module(
        "proc f(a) { ret := a + 1; }
         proc g(b) { r := call f(b); ret := r; }",
    );
    let mut cache = SummaryCache::with_config(&CacheConfig::disabled());
    let first = affine().analyze_with_cache(&m, &mut cache);
    assert!(cache.is_empty(), "capacity 0 must disable persistence");
    // A second run over the empty cache recomputes everything — with
    // results identical to a cached driver's.
    let second = affine().analyze_with_cache(&m, &mut cache);
    assert_eq!((second.reused, second.recomputed), (0, 2));
    let cached = affine().analyze(&m);
    for (a, b) in first.reports.iter().zip(cached.reports.iter()) {
        assert_eq!(a.summary, b.summary);
    }
}

#[test]
fn summary_cache_unified_trait_surface() {
    use cai_core::{Cache, StoreOutcome};
    let m = module(
        "proc f(a) { ret := a + 1; }
         proc g(b) { r := call f(b); ret := r; }",
    );
    let mut cache = SummaryCache::new();
    affine().analyze_with_cache(&m, &mut cache);
    assert_eq!(Cache::len(&cache), 2);

    // Verified lookup: present key round-trips, absent key misses.
    let entry = Cache::lookup(&cache, &"f".to_string()).expect("f is cached");
    assert_eq!(entry.report().name, "f");
    assert!(Cache::lookup(&cache, &"missing".to_string()).is_none());

    // The checksum is content-derived: invalidating an entry changes it.
    let sum_before = Cache::checksum(&cache);
    assert!(Cache::invalidate(&mut cache, &"f".to_string()));
    assert!(!Cache::invalidate(&mut cache, &"f".to_string()));
    assert_ne!(Cache::checksum(&cache), sum_before);

    // Degradation-aware invalidation: a degraded store is dropped.
    assert_eq!(
        Cache::store(&mut cache, "f".to_string(), entry, true),
        StoreOutcome::SkippedDegraded
    );
    assert!(Cache::lookup(&cache, &"f".to_string()).is_none());

    Cache::clear(&mut cache);
    assert!(Cache::is_empty(&cache));
}

#[test]
fn bottom_summaries_mark_unreachable_exits() {
    let m = module(
        "proc stuck(a) { assume(0 = 1); ret := a; }
         proc main(n) {
             x := call stuck(n);
             assert(x = 12345);
         }",
    );
    let a = affine().analyze(&m);
    assert!(a.report("stuck").expect("stuck").summary.is_bottom());
    // The call never returns, so the post-state is ⊥ and everything
    // after it verifies vacuously.
    assert_eq!(verdicts(&a, "main"), [true]);
}

#[test]
fn works_with_any_domain_via_the_factory() {
    // The driver is domain-generic: run the same module under UF.
    use cai_uf::UfDomain;
    let m = module(
        "proc apply(a) { ret := F(a); }
         proc main(n) {
             x := call apply(n);
             y := call apply(n);
             assert(x = y);
         }",
    );
    let a = Driver::new(|_: &Budget| UfDomain::new()).analyze(&m);
    assert_eq!(verdicts(&a, "main"), [true]);
}

#[test]
fn domain_le_is_used_not_structural_equality() {
    // Two rounds produce syntactically different but semantically equal
    // conjunctions; the fixpoint must still terminate promptly.
    let m = module(
        "proc swap2(n) {
             if (*) { ret := n + 0; } else { t := call swap2(n); ret := t; }
         }",
    );
    let a = affine().analyze(&m);
    assert!(!a.report("swap2").expect("swap2").diverged);
}

#[test]
fn shared_split_cache_is_deterministic_across_thread_counts() {
    // A factory may close over one `SplitCache`/`JoinStats` pair so every
    // worker's logical product shares the purification memo. The cache is
    // semantically invisible, so the verdicts must be identical whatever
    // the thread count or hit pattern — and a loop-heavy module must
    // actually hit it.
    use cai_core::{JoinStats, LogicalProduct, SplitCache};
    use cai_uf::UfDomain;

    let m = module(
        "proc sum(n) {
             a := 0; s := 0; t := 0;
             while (*) { d := F(a); s := s + d; t := t + F(a); a := a + 1; }
             assert(s = t);
             ret := s;
         }
         proc main(n) {
             x := call sum(n);
             b := 0; u := 0; w := 0;
             while (*) { u := u + F(b); w := w + F(b); b := b + 1; }
             assert(u = w);
             ret := x;
         }",
    );

    let run = |threads: usize, capacity: usize| {
        let cache: SplitCache<_, _> = SplitCache::with_capacity(capacity);
        let stats = JoinStats::new();
        let driver = Driver::new({
            let cache = cache.clone();
            let stats = stats.clone();
            move |b: &Budget| {
                LogicalProduct::new(AffineEq::new(), UfDomain::new())
                    .with_budget(b.clone())
                    .with_split_cache(cache.clone())
                    .with_stats(stats.clone())
            }
        })
        .threads(threads);
        let a = driver.analyze(&m);
        (
            verdicts(&a, "sum"),
            verdicts(&a, "main"),
            stats.snapshot().cache_hits,
        )
    };

    let (sum1, main1, hits1) = run(1, 1024);
    assert_eq!(sum1, [true]);
    assert_eq!(main1, [true]);
    assert!(hits1 > 0, "loop-heavy module produced no cache hits");

    for threads in [2, 4] {
        let (s, m_, _) = run(threads, 1024);
        assert_eq!((s, m_), (sum1.clone(), main1.clone()), "{threads} threads");
    }
    // And with the cache disabled the verdicts are still the same.
    let (s0, m0, hits0) = run(1, 0);
    assert_eq!((s0, m0), (sum1, main1), "cache changed the verdicts");
    assert_eq!(hits0, 0);
}
