//! Integration tests of context-sensitive summaries: entry-keyed
//! specialization precision, cap-widening termination, bit-identity of
//! `context_cap(0)` with the context-insensitive driver, determinism
//! across thread counts, budget degradation, and incremental reuse of
//! context specializations.

use cai_core::{AbstractDomain, Budget, LogicalProduct};
use cai_driver::{Driver, ModuleAnalysis, Summary, SummaryCache};
use cai_interp::{parse_module, Module};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

fn module(src: &str) -> Module {
    parse_module(&Vocab::standard(), src).expect("module parses")
}

fn affine() -> Driver<AffineEq, impl Fn(&Budget) -> AffineEq + Sync> {
    Driver::new(|_| AffineEq::new())
}

type Product = LogicalProduct<AffineEq, UfDomain>;

fn product() -> Driver<Product, impl Fn(&Budget) -> Product + Sync> {
    Driver::new(|_: &Budget| LogicalProduct::new(AffineEq::new(), UfDomain::new()))
}

fn verdicts(a: &ModuleAnalysis, name: &str) -> Vec<bool> {
    a.report(name)
        .expect("report exists")
        .assertions
        .iter()
        .map(|o| o.verified)
        .collect()
}

/// `a ⊑ b` on exit facts under `d` (None = unreachable exit = ⊥).
fn exit_le<D: AbstractDomain>(d: &D, a: &Summary, b: &Summary) -> bool {
    match (&a.exit, &b.exit) {
        (None, _) => true,
        (Some(ca), None) => d.is_bottom(&d.from_conj(ca)),
        (Some(ca), Some(cb)) => d.le(&d.from_conj(ca), &d.from_conj(cb)),
    }
}

/// A callee that reassigns its formal: its exit constraint ranges over
/// *stable* formals only, so the ⊤-entry summary is `true` and only
/// entry-keyed specialization can recover anything at a call site.
const BUMP: &str = "proc bump(a) { a := a + 1; ret := a; }\n";

#[test]
fn incomparable_entries_get_separate_exact_specializations() {
    let m = module(&format!(
        "{BUMP}
         proc c3(u) {{ x := call bump(3); assert(x = 4); ret := x; }}
         proc c7(u) {{ x := call bump(7); assert(x = 8); ret := x; }}"
    ));
    let sens = affine().analyze(&m);
    assert_eq!(verdicts(&sens, "c3"), [true]);
    assert_eq!(verdicts(&sens, "c7"), [true]);
    // Two incomparable entries (a = 3 vs a = 7) → two memo slots, no
    // widening, no fallback.
    assert_eq!(sens.ctx.contexts_created, 2);
    assert_eq!(sens.ctx.cap_widenings, 0);
    assert_eq!(sens.ctx.top_fallbacks, 0);
    // The insensitive driver can verify neither.
    let insens = affine().context_cap(0).analyze(&m);
    assert_eq!(verdicts(&insens, "c3"), [false]);
    assert_eq!(verdicts(&insens, "c7"), [false]);
    assert_eq!(insens.ctx.contexts_created, 0);
}

#[test]
fn recursive_callee_specializes_on_incomparable_entries() {
    // `down` is recursive: its own SCC solves with ⊤-entry Jacobi
    // iterates; later callers then specialize it on demand, and the
    // descending self-call chain must terminate via the context cap
    // (overflow entries are widened together) or cycle detection —
    // never hang, never panic.
    let m = module(
        "proc down(n) {
             if (n <= 0) { ret := 0; } else { r := call down(n - 1); ret := r; }
         }
         proc f(u) { x := call down(2); ret := x; }
         proc g(u) { y := call down(9); ret := y; }",
    );
    let sens = affine().context_cap(3).analyze(&m);
    assert_eq!(sens.reports.len(), 3);
    // Two incomparable top-level entries (n = 2 vs n = 9) were seen.
    assert!(sens.ctx.contexts_created >= 2);
    // Soundness: nothing verified here that the insensitive run rejects
    // (there are no asserts, but exit facts must stay ordered).
    let insens = affine().context_cap(0).analyze(&m);
    let d = AffineEq::new();
    for (s, i) in sens.iter().zip(&insens) {
        assert!(
            exit_le(&d, &s.summary, &i.summary),
            "context-sensitive summary of `{}` must be ⊑ the insensitive one",
            s.name
        );
    }
}

#[test]
fn context_cap_widens_overflow_entries_and_terminates() {
    // More distinct entries than the cap *within one caller's job* (the
    // memo is per job): the overflow slot widens them together instead
    // of growing without bound.
    let mut src = String::from(BUMP);
    src.push_str("proc many(u) {\n");
    for i in 0..6 {
        src.push_str(&format!("    x{i} := call bump({i});\n"));
    }
    for i in 0..6 {
        src.push_str(&format!("    assert(x{i} = {});\n", i + 1));
    }
    src.push_str("    ret := x0;\n}\n");
    let m = module(&src);
    let sens = affine().context_cap(2).threads(1).analyze(&m);
    // The caller still gets a sound answer; the capped run may verify
    // fewer asserts than the uncapped one but never an unsound one.
    let full = affine().context_cap(16).analyze(&m);
    let capped = verdicts(&sens, "many");
    let unc = verdicts(&full, "many");
    assert_eq!(unc, [true; 6]);
    for (c, u) in capped.iter().zip(&unc) {
        assert!(
            !c || *u,
            "capped run verified an assert the uncapped run rejects"
        );
    }
    assert!(
        sens.ctx.cap_widenings > 0,
        "six distinct entries under cap 2 must hit the overflow slot"
    );
    // The exit facts stay ordered w.r.t. the insensitive run.
    let insens = affine().context_cap(0).analyze(&m);
    let d = AffineEq::new();
    for (s, i) in sens.iter().zip(&insens) {
        assert!(exit_le(&d, &s.summary, &i.summary));
    }
}

#[test]
fn context_cap_zero_reproduces_the_insensitive_driver_bit_for_bit() {
    // Pinned outputs of the pre-context driver on its own test module:
    // identical strings, identical verdicts.
    let m = module(
        "proc inc(a) { ret := a + 1; }
         proc twice(b) { x := call inc(b); y := call inc(x); ret := y; }
         proc main(n) {
             r := call twice(n);
             assert(r = n + 2);
             assert(r = n);
         }",
    );
    let a = affine().context_cap(0).analyze(&m);
    assert_eq!(verdicts(&a, "main"), [true, false]);
    assert_eq!(
        a.report("inc").expect("inc").summary.to_string(),
        "a = ret - 1"
    );
    assert_eq!(
        a.report("twice").expect("twice").summary.to_string(),
        "b = ret - 2"
    );
    assert_eq!(a.ctx.contexts_created + a.ctx.memo_hits, 0);

    // And on the reassigned-formal module the two knob settings agree
    // wherever context cannot help (the callee's own ⊤-entry report).
    let m2 = module(&format!(
        "{BUMP}proc c(u) {{ x := call bump(3); ret := x; }}"
    ));
    let zero = affine().context_cap(0).analyze(&m2);
    let sens = affine().analyze(&m2);
    assert_eq!(
        zero.report("bump").expect("bump").summary,
        sens.report("bump").expect("bump").summary
    );
}

#[test]
fn context_sensitive_runs_are_identical_across_thread_counts() {
    let mut src = String::from(BUMP);
    src.push_str("proc step2(a) { a := a + 2; ret := a; }\n");
    for i in 0..6 {
        src.push_str(&format!(
            "proc c{i}(u) {{
                 x := call bump({i});
                 y := call step2(x);
                 assert(y = {});
                 ret := y;
             }}\n",
            i + 3
        ));
    }
    let m = module(&src);
    let runs: Vec<ModuleAnalysis> = [1usize, 2, 4]
        .iter()
        .map(|&t| product().threads(t).analyze(&m))
        .collect();
    for other in &runs[1..] {
        assert_eq!(runs[0].reports.len(), other.reports.len());
        for (a, b) in runs[0].iter().zip(other) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.summary, b.summary, "summaries differ for {}", a.name);
            assert_eq!(
                a.summary.to_string(),
                b.summary.to_string(),
                "presentations differ for {}",
                a.name
            );
            let va: Vec<bool> = a.assertions.iter().map(|o| o.verified).collect();
            let vb: Vec<bool> = b.assertions.iter().map(|o| o.verified).collect();
            assert_eq!(va, vb, "verdicts differ for {}", a.name);
        }
    }
}

#[test]
fn starved_budget_degrades_to_top_entry_summaries_without_panicking() {
    let m = module(&format!(
        "{BUMP}
         proc c3(u) {{ x := call bump(3); assert(x = 4); ret := x; }}"
    ));
    let starved = affine().with_budget(Budget::fuel(0)).analyze(&m);
    assert_eq!(starved.reports.len(), 2);
    // With no fuel the entry-context machinery must fall back to the
    // ⊤-entry summary rather than specialize.
    assert_eq!(starved.ctx.contexts_created, 0);
    // Nothing wrongly verified relative to the clean sensitive run.
    let clean = affine().analyze(&m);
    for (deg, cl) in starved.iter().zip(&clean) {
        for (x, y) in deg.assertions.iter().zip(cl.assertions.iter()) {
            assert!(!x.verified || y.verified);
        }
    }
    assert_eq!(verdicts(&clean, "c3"), [true]);
}

#[test]
fn cached_context_specializations_are_reused_across_runs() {
    let src_v = |k: usize| {
        format!(
            "{BUMP}
             proc c3(u) {{ x := call bump(3); assert(x = 4); ret := x + {k}; }}
             proc c7(u) {{ y := call bump(7); assert(y = 8); ret := y; }}"
        )
    };
    let driver = affine();
    let mut cache = SummaryCache::new();
    let cold = driver.analyze_with_cache(&module(&src_v(0)), &mut cache);
    assert_eq!(cold.ctx.contexts_created, 2);
    assert_eq!(cache.stats().contexts, 2);

    // Unchanged module: everything reused, no jobs, contexts retained.
    let warm = driver.analyze_with_cache(&module(&src_v(0)), &mut cache);
    assert_eq!((warm.reused, warm.recomputed), (3, 0));
    assert_eq!(warm.ctx.contexts_created, 0);
    assert_eq!(cache.stats().contexts, 2);

    // Edit one caller: its job reuses bump's cached specialization (a
    // memo hit) instead of re-deriving it.
    let inc = driver.analyze_with_cache(&module(&src_v(5)), &mut cache);
    assert_eq!((inc.reused, inc.recomputed), (2, 1));
    assert_eq!(verdicts(&inc, "c3"), [true]);
    assert!(inc.ctx.memo_hits >= 1, "cached context must be a memo hit");
    assert_eq!(inc.ctx.contexts_created, 0);

    let stats = cache.stats();
    assert_eq!(stats.contexts, 2);
    assert_eq!(stats.hits, 3 + 2);
    assert_eq!(stats.misses, 3 + 1);
    assert!(stats.evictions >= 1, "the edited caller's entry is evicted");
}

#[test]
fn changing_the_context_cap_invalidates_the_cache() {
    let m = module(&format!(
        "{BUMP}proc c(u) {{ x := call bump(3); assert(x = 4); ret := x; }}"
    ));
    let mut cache = SummaryCache::new();
    affine().analyze_with_cache(&m, &mut cache);
    // A different cap is a different configuration: nothing may be
    // reused, because cached exit facts depend on it.
    let re = affine().context_cap(0).analyze_with_cache(&m, &mut cache);
    assert_eq!((re.reused, re.recomputed), (0, 2));
    assert_eq!(verdicts(&re, "c"), [false]);
}

#[test]
fn module_analysis_iterates_every_report_in_declaration_order() {
    let m = module(
        "proc a(x) { ret := x; }
         proc b(x) { ret := call a(x); }
         proc c(x) { ret := call b(x); }",
    );
    let analysis = affine().analyze(&m);
    let names: Vec<&str> = analysis.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, ["a", "b", "c"]);
    // `&ModuleAnalysis` is itself iterable (the satellite bugfix: callers
    // previously had to probe `report()` name by name).
    let by_ref: Vec<&str> = (&analysis).into_iter().map(|r| r.name.as_str()).collect();
    assert_eq!(by_ref, names);
    assert_eq!(analysis.iter().count(), analysis.reports.len());
}
