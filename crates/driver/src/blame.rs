//! Differential precision attribution: explain *why* one configuration
//! proves fewer assertions than another.
//!
//! [`differential`] takes two runs of the same module — a *better* and a
//! *worse* leg, each a [`ModuleAnalysis`] paired with the
//! [`BlameTable`](cai_obs::BlameTable) drained from its run — diffs the
//! per-procedure assertion verdicts, and joins every regressed fact to
//! the ranked loss events recorded at that procedure's scope. The result
//! reads as a causal report:
//!
//! ```text
//! assert 3 in `big` lost <= widen at big/loop#0 (analyzer/while) under flat policy
//! ```
//!
//! Causes are ranked by how much *more* the worse leg hit the loss row
//! than the better leg (count delta, descending), falling back to the
//! worse leg's absolute count and then the deterministic
//! `(scope, site, domain, kind)` key — the same total order whichever
//! thread count produced the tables.

use cai_obs::{escape_metric_name, BlameTable, LossKind};
use std::fmt;

use crate::engine::ModuleAnalysis;

/// One loss row joined against a regressed assertion, with the count
/// delta between the two legs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlameCause {
    /// `/`-joined scope labels from the worse leg (e.g. `big/loop#0`).
    pub scope: String,
    /// The loss site string (e.g. `analyzer/while`).
    pub site: &'static str,
    /// The domain path (e.g. `interp`, `logical.alt`).
    pub domain: String,
    /// Why the facts were lost.
    pub kind: LossKind,
    /// Event count in the worse leg.
    pub worse_count: u64,
    /// Event count in the better leg for the same row (0 if absent).
    pub better_count: u64,
}

impl BlameCause {
    /// `worse_count - better_count`, the differential rank key. Rows the
    /// better leg hit *more* often clamp to 0 — they cannot explain a
    /// regression.
    pub fn delta(&self) -> u64 {
        self.worse_count.saturating_sub(self.better_count)
    }

    fn to_json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            r#"{{"scope":"{}","site":"{}","domain":"{}","kind":"{}","delta":{},"worse_count":{},"better_count":{}}}"#,
            escape_metric_name(&self.scope),
            escape_metric_name(self.site),
            escape_metric_name(&self.domain),
            self.kind.as_str(),
            self.delta(),
            self.worse_count,
            self.better_count,
        );
    }
}

/// One assertion the better leg proves and the worse leg does not,
/// joined to its ranked causes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AssertRegression {
    /// The procedure the assertion lives in.
    pub proc: String,
    /// The assertion's index within the procedure, in program order.
    pub index: usize,
    /// The asserted fact, rendered.
    pub atom: String,
    /// Loss events at the procedure's scope, most blamed first.
    pub causes: Vec<BlameCause>,
}

impl AssertRegression {
    fn to_json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            r#"{{"proc":"{}","index":{},"atom":"{}","causes":["#,
            escape_metric_name(&self.proc),
            self.index,
            escape_metric_name(&self.atom),
        );
        for (i, c) in self.causes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.to_json_into(out);
        }
        out.push_str("]}");
    }
}

/// The differential attribution report for a pair of runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DifferentialReport {
    /// Label for the stronger configuration (e.g. `adaptive policy`).
    pub better_label: String,
    /// Label for the weaker configuration (e.g. `flat policy`).
    pub worse_label: String,
    /// Every assertion verified under the better leg but not the worse,
    /// in module order, each joined to its ranked causes.
    pub regressions: Vec<AssertRegression>,
    /// Assertions the worse leg proves that the better leg does not —
    /// usually 0; nonzero means the legs are not ordered by strength.
    pub inversions: usize,
}

impl DifferentialReport {
    /// Whether the worse leg lost any assertion.
    pub fn is_empty(&self) -> bool {
        self.regressions.is_empty()
    }

    /// A deterministic JSON object:
    /// `{"better":…,"worse":…,"inversions":…,"regressions":[…]}`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            r#"{{"better":"{}","worse":"{}","inversions":{},"regressions":["#,
            escape_metric_name(&self.better_label),
            escape_metric_name(&self.worse_label),
            self.inversions,
        );
        for (i, r) in self.regressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            r.to_json_into(&mut out);
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for DifferentialReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.regressions.is_empty() {
            writeln!(
                f,
                "no assertions regress from `{}` to `{}`",
                self.better_label, self.worse_label
            )?;
        }
        for r in &self.regressions {
            match r.causes.first() {
                Some(c) => writeln!(
                    f,
                    "assert {} in `{}` ({}) lost <= {} at {} ({}) under {} [delta={} worse={} better={}]",
                    r.index,
                    r.proc,
                    r.atom,
                    c.kind,
                    c.scope,
                    c.site,
                    self.worse_label,
                    c.delta(),
                    c.worse_count,
                    c.better_count,
                )?,
                None => writeln!(
                    f,
                    "assert {} in `{}` ({}) lost under {} (no loss events at its scope)",
                    r.index, r.proc, r.atom, self.worse_label,
                )?,
            }
            for c in r.causes.iter().skip(1) {
                writeln!(
                    f,
                    "    also: {} at {} ({}) [delta={} worse={} better={}]",
                    c.kind,
                    c.scope,
                    c.site,
                    c.delta(),
                    c.worse_count,
                    c.better_count,
                )?;
            }
        }
        if self.inversions > 0 {
            writeln!(
                f,
                "warning: {} assertion(s) hold only under `{}` — the legs are not ordered",
                self.inversions, self.worse_label
            )?;
        }
        Ok(())
    }
}

/// Ranks the worse leg's loss rows at `proc`'s scope against the better
/// leg's: count delta descending, then the worse leg's count, then the
/// deterministic key order.
fn causes_for(proc: &str, better: &BlameTable, worse: &BlameTable) -> Vec<BlameCause> {
    let mut causes: Vec<BlameCause> = worse
        .for_scope(proc)
        .map(|e| {
            let better_count = better
                .for_scope(proc)
                .find(|b| {
                    b.scope == e.scope
                        && b.site == e.site
                        && b.domain == e.domain
                        && b.kind == e.kind
                })
                .map_or(0, |b| b.count);
            BlameCause {
                scope: e.scope.clone(),
                site: e.site,
                domain: e.domain.clone(),
                kind: e.kind,
                worse_count: e.count,
                better_count,
            }
        })
        .collect();
    causes.sort_by(|a, b| {
        b.delta()
            .cmp(&a.delta())
            .then(b.worse_count.cmp(&a.worse_count))
            .then_with(|| {
                (&a.scope, a.site, &a.domain, a.kind).cmp(&(&b.scope, b.site, &b.domain, b.kind))
            })
    });
    causes
}

/// Diffs the assertion verdicts of two runs of the same module and joins
/// every regression (verified under `better`, unverified under `worse`)
/// to the ranked loss events at its procedure's scope.
///
/// Procedures are matched by name and assertions by program-order index;
/// a procedure or index present in only one leg is skipped (the module
/// must be the same program for the diff to mean anything). The output
/// is deterministic: module order for regressions, the documented rank
/// order for causes.
pub fn differential(
    better_label: &str,
    better: (&ModuleAnalysis, &BlameTable),
    worse_label: &str,
    worse: (&ModuleAnalysis, &BlameTable),
) -> DifferentialReport {
    let mut regressions = Vec::new();
    let mut inversions = 0usize;
    for wr in &worse.0.reports {
        let Some(br) = better.0.reports.iter().find(|r| r.name == wr.name) else {
            continue;
        };
        for (index, (b, w)) in br.assertions.iter().zip(&wr.assertions).enumerate() {
            if b.verified && !w.verified {
                regressions.push(AssertRegression {
                    proc: wr.name.clone(),
                    index,
                    atom: b.atom.to_string(),
                    causes: causes_for(&wr.name, better.1, worse.1),
                });
            } else if w.verified && !b.verified {
                inversions += 1;
            }
        }
    }
    DifferentialReport {
        better_label: better_label.to_string(),
        worse_label: worse_label.to_string(),
        regressions,
        inversions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ProcReport;
    use crate::summary::Summary;
    use cai_interp::AssertionOutcome;
    use cai_obs::BlameEntry;
    use cai_term::{Atom, Term};

    fn report(name: &str, verdicts: &[bool]) -> ProcReport {
        ProcReport {
            name: name.to_string(),
            summary: Summary::top(Vec::new()),
            assertions: verdicts
                .iter()
                .map(|&verified| AssertionOutcome {
                    atom: Atom::le(Term::var_named("x"), Term::int(0)),
                    verified,
                })
                .collect(),
            diverged: false,
            quarantined: false,
        }
    }

    fn analysis(reports: Vec<ProcReport>) -> ModuleAnalysis {
        ModuleAnalysis {
            reports,
            reused: 0,
            recomputed: 0,
            degradation: Default::default(),
            ctx: Default::default(),
            supervision: Default::default(),
        }
    }

    fn entry(scope: &str, site: &'static str, kind: LossKind, count: u64) -> BlameEntry {
        BlameEntry {
            scope: scope.to_string(),
            site,
            domain: "interp".to_string(),
            kind,
            count,
            fuel: 0,
            round_min: 0,
            round_max: 0,
        }
    }

    #[test]
    fn regressions_join_causes_ranked_by_delta() {
        let better = analysis(vec![report("f", &[true, true])]);
        let worse = analysis(vec![report("f", &[true, false])]);
        let better_blame = BlameTable {
            entries: vec![
                entry("f", "driver/context", LossKind::CtxCapOverflow, 5),
                entry("f/loop#0", "analyzer/while", LossKind::Widen, 1),
            ],
        };
        let worse_blame = BlameTable {
            entries: vec![
                // Same count both legs: delta 0, ranks below the widen row
                // despite the higher absolute count.
                entry("f", "driver/context", LossKind::CtxCapOverflow, 5),
                entry("f/loop#0", "analyzer/while", LossKind::Widen, 4),
            ],
        };
        let d = differential(
            "adaptive policy",
            (&better, &better_blame),
            "flat policy",
            (&worse, &worse_blame),
        );
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.inversions, 0);
        let r = &d.regressions[0];
        assert_eq!((r.proc.as_str(), r.index), ("f", 1));
        assert_eq!(r.causes.len(), 2);
        assert_eq!(r.causes[0].site, "analyzer/while");
        assert_eq!(r.causes[0].delta(), 3);
        assert_eq!(r.causes[1].delta(), 0);
        let line = d.to_string();
        assert!(
            line.contains("assert 1 in `f`") && line.contains("under flat policy"),
            "{line}"
        );
        let json = d.to_json();
        assert!(json.contains(r#""worse":"flat policy""#), "{json}");
        assert!(json.contains(r#""delta":3"#), "{json}");
    }

    #[test]
    fn empty_diff_and_inversions_are_reported() {
        let a = analysis(vec![report("g", &[false, true])]);
        let b = analysis(vec![report("g", &[true, true])]);
        let none = BlameTable::default();
        let d = differential("better", (&a, &none), "worse", (&b, &none));
        assert!(d.is_empty());
        assert_eq!(d.inversions, 1);
        assert!(d.to_string().contains("not ordered"), "{d}");
    }
}
