//! The call graph of a [`Module`] and its strongly-connected-component
//! condensation, in the callee-first order the summary engine schedules.

use cai_interp::Module;
use std::collections::BTreeSet;

/// The call graph of a module, condensed into strongly connected
/// components (SCCs).
///
/// Procedures are identified by their index in [`Module::procs`]. The
/// [`sccs`](CallGraph::sccs) vector lists components in **reverse
/// topological order** of the condensation — every component appears
/// after all components it calls into — which is exactly the order a
/// summary-based engine must process them (callees before callers).
/// Calls to names the module does not define are ignored here (the
/// analyzer havocs them).
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// The components, callee-first. Each component lists member
    /// procedure indices in module declaration order.
    pub sccs: Vec<Vec<usize>>,
    /// For each procedure index, the index of its component in
    /// [`sccs`](CallGraph::sccs).
    pub scc_of: Vec<usize>,
    /// For each component, the set of *other* components it calls into
    /// (self-loops, i.e. recursion, are not listed).
    pub deps: Vec<BTreeSet<usize>>,
}

impl CallGraph {
    /// Builds the condensed call graph of `module`.
    pub fn build(module: &Module) -> CallGraph {
        let n = module.procs.len();
        let succs: Vec<Vec<usize>> = module
            .procs
            .iter()
            .map(|p| {
                p.callees()
                    .iter()
                    .filter_map(|name| module.index_of(name))
                    .collect()
            })
            .collect();

        let mut t = Tarjan {
            succs: &succs,
            index: vec![usize::MAX; n],
            low: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            sccs: Vec::new(),
        };
        for v in 0..n {
            if t.index[v] == usize::MAX {
                t.strongconnect(v);
            }
        }
        // Tarjan emits components in reverse topological order already.
        let mut sccs = t.sccs;
        for members in &mut sccs {
            members.sort_unstable();
        }
        let mut scc_of = vec![0usize; n];
        for (c, members) in sccs.iter().enumerate() {
            for &v in members {
                scc_of[v] = c;
            }
        }
        let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); sccs.len()];
        for (v, outs) in succs.iter().enumerate() {
            for &w in outs {
                if scc_of[v] != scc_of[w] {
                    deps[scc_of[v]].insert(scc_of[w]);
                }
            }
        }
        CallGraph { sccs, scc_of, deps }
    }

    /// Whether component `c` is recursive: more than one member, or a
    /// single member that calls itself.
    pub fn is_recursive(&self, c: usize, module: &Module) -> bool {
        let members = &self.sccs[c];
        if members.len() > 1 {
            return true;
        }
        let p = &module.procs[members[0]];
        p.callees().iter().any(|name| name == &p.name)
    }
}

struct Tarjan<'a> {
    succs: &'a [Vec<usize>],
    index: Vec<usize>,
    low: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next_index: usize,
    sccs: Vec<Vec<usize>>,
}

impl Tarjan<'_> {
    fn strongconnect(&mut self, v: usize) {
        self.index[v] = self.next_index;
        self.low[v] = self.next_index;
        self.next_index += 1;
        self.stack.push(v);
        self.on_stack[v] = true;
        for i in 0..self.succs[v].len() {
            let w = self.succs[v][i];
            if self.index[w] == usize::MAX {
                self.strongconnect(w);
                self.low[v] = self.low[v].min(self.low[w]);
            } else if self.on_stack[w] {
                self.low[v] = self.low[v].min(self.index[w]);
            }
        }
        if self.low[v] == self.index[v] {
            let mut comp = Vec::new();
            while let Some(w) = self.stack.pop() {
                self.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            self.sccs.push(comp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_interp::parse_module;
    use cai_term::parse::Vocab;

    fn graph(src: &str) -> (Module, CallGraph) {
        let m = parse_module(&Vocab::standard(), src).expect("module parses");
        let g = CallGraph::build(&m);
        (m, g)
    }

    #[test]
    fn chain_is_callee_first() {
        let (m, g) = graph(
            "proc a(x) { r := call b(x); ret := r; }
             proc b(x) { r := call c(x); ret := r; }
             proc c(x) { ret := x; }",
        );
        assert_eq!(g.sccs.len(), 3);
        // c before b before a.
        let pos = |name: &str| {
            let i = m.index_of(name).unwrap();
            g.sccs.iter().position(|s| s.contains(&i)).unwrap()
        };
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
        assert!(!g.is_recursive(g.scc_of[m.index_of("a").unwrap()], &m));
    }

    #[test]
    fn mutual_recursion_is_one_component() {
        let (m, g) = graph(
            "proc even(n) { r := call odd(n - 1); ret := r; }
             proc odd(n) { r := call even(n - 1); ret := r; }
             proc leaf(n) { ret := n; }",
        );
        assert_eq!(g.sccs.len(), 2);
        let e = m.index_of("even").unwrap();
        let o = m.index_of("odd").unwrap();
        assert_eq!(g.scc_of[e], g.scc_of[o]);
        assert!(g.is_recursive(g.scc_of[e], &m));
        let l = g.scc_of[m.index_of("leaf").unwrap()];
        assert!(!g.is_recursive(l, &m));
    }

    #[test]
    fn self_recursion_detected() {
        let (m, g) = graph("proc f(n) { r := call f(n); ret := r; }");
        assert!(g.is_recursive(g.scc_of[m.index_of("f").unwrap()], &m));
    }

    #[test]
    fn unknown_callees_ignored() {
        let (_, g) = graph("proc f(n) { r := call mystery(n); ret := r; }");
        assert_eq!(g.sccs.len(), 1);
        assert!(g.deps[0].is_empty());
    }
}
