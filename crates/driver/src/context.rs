//! Context-sensitive procedure summaries: demand-driven specialization
//! of already-final callees on the entry condition each call site
//! establishes, memoized per `(procedure, entry-key)` with a
//! per-procedure context cap.
//!
//! The driver schedules components callee-first, so when a caller is
//! analyzed every external callee's *body* and ⊤-entry summary are
//! final. The [`ContextResolver`] exploits that: at `x := call f(e…)` it
//! projects the caller's abstract state onto `f`'s formals (see
//! [`entry_context`]), and — if the projection says anything — analyzes
//! `f`'s body *from that entry* instead of instantiating the ⊤-entry
//! summary. Specializations are memoized by the entry's fingerprint;
//! beyond [`context cap`](crate::Driver::context_cap) distinct entries
//! per procedure, further entries are widened together into one overflow
//! context so recursion and polymorphic call sites terminate. Every
//! fallback — cap overflow exhausted, budget starved, cyclic demand,
//! fingerprint collision — degrades to the ⊤-entry summary: precision
//! lost, soundness and termination kept.
//!
//! Calls *within* the component currently being solved stay
//! context-insensitive: their summaries are still Jacobi iterates, not
//! final, so specializing on them would entangle the fixpoint.

use crate::summary::{entry_context, entry_key, instantiate_summary, summarize, Summary};
use cai_core::AbstractDomain;
use cai_interp::{AnalysisConfig, Analyzer, CallResolver, CallSite, Module, Procedure};
use cai_obs::{provenance, write_kv, CounterFamily};
use cai_term::Conj;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

/// Hard ceiling on nested demand-specializations, defending against
/// pathological mutual-recursion chains the per-key cycle check and the
/// context cap do not already cut (they do — this is belt-and-braces).
const MAX_SPECIALIZE_DEPTH: usize = 64;

/// How many times one procedure's overflow context may be recomputed as
/// new entries widen into it before it degrades to the ⊤-entry summary.
const OVERFLOW_RECOMPUTE_CAP: usize = 8;

/// [`CtxStats`] counter names, in cell order (indices in [`cc`]).
const CTX_COUNTERS: &[&str] = &[
    "contexts_created",
    "memo_hits",
    "cap_widenings",
    "top_fallbacks",
];

/// Cell indices into [`CTX_COUNTERS`].
mod cc {
    pub const CONTEXTS_CREATED: usize = 0;
    pub const MEMO_HITS: usize = 1;
    pub const CAP_WIDENINGS: usize = 2;
    pub const TOP_FALLBACKS: usize = 3;
}

/// Shared observability counters for context-sensitive resolution — like
/// `cai_core::JoinStats`, a thin facade over a [`cai_obs::CounterFamily`]:
/// cloning shares the counters, so one `CtxStats` aggregates over every
/// worker of a parallel run.
#[derive(Clone, Debug)]
pub struct CtxStats {
    fam: CounterFamily,
}

impl Default for CtxStats {
    fn default() -> CtxStats {
        CtxStats {
            fam: CounterFamily::new(CTX_COUNTERS),
        }
    }
}

impl CtxStats {
    /// Fresh counters, all zero.
    pub fn new() -> CtxStats {
        CtxStats::default()
    }

    fn add(&self, idx: usize, n: u64) {
        self.fam.add(idx, n);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> CtxStatsSnapshot {
        CtxStatsSnapshot {
            contexts_created: self.fam.get(cc::CONTEXTS_CREATED),
            memo_hits: self.fam.get(cc::MEMO_HITS),
            cap_widenings: self.fam.get(cc::CAP_WIDENINGS),
            top_fallbacks: self.fam.get(cc::TOP_FALLBACKS),
        }
    }
}

/// A point-in-time copy of [`CtxStats`]. Plain data: subtract two
/// snapshots field-wise to meter a region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtxStatsSnapshot {
    /// Entry-keyed specializations computed (including overflow
    /// recomputations).
    pub contexts_created: u64,
    /// Call resolutions answered from the `(proc, entry-key)` memo — the
    /// run's own store or the seeded incremental cache.
    pub memo_hits: u64,
    /// Entries that arrived past the context cap and were widened into
    /// the overflow context.
    pub cap_widenings: u64,
    /// Resolutions that degraded to the ⊤-entry summary (budget starved,
    /// cyclic demand, overflow exhausted, or a fingerprint collision).
    pub top_fallbacks: u64,
}

impl fmt::Display for CtxStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_kv(
            f,
            [
                ("contexts_created", self.contexts_created),
                ("memo_hits", self.memo_hits),
                ("cap_widenings", self.cap_widenings),
                ("top_fallbacks", self.top_fallbacks),
            ],
        )
    }
}

/// The per-procedure context store of one solve job.
#[derive(Clone, Debug, Default)]
struct ProcContexts {
    /// Distinct entry contexts, keyed by [`entry_key`] of the entry's
    /// canonical presentation.
    entries: BTreeMap<u64, Summary>,
    /// The overflow slot: entries past the cap widen into this one.
    overflow: Option<Summary>,
    overflow_recomputes: usize,
}

/// A context-aware [`CallResolver`]: resolves calls to procedures of the
/// component being solved through their (iterating, ⊤-entry) local
/// summaries, and calls to already-final external procedures through
/// entry-keyed specializations computed on demand.
///
/// One resolver serves a whole component job, so its memo persists
/// across the Jacobi rounds and the recording pass; it is seeded with
/// fingerprint-valid specializations from the incremental cache and
/// drained back into it afterwards ([`ContextResolver::into_contexts`]).
pub struct ContextResolver<'a, D: AbstractDomain> {
    domain: &'a D,
    module: &'a Module,
    /// Final ⊤-entry summaries of every procedure outside the component,
    /// transitively (specialization re-analyzes callee bodies, whose own
    /// callees' summaries must be on hand).
    external: &'a BTreeMap<String, Summary>,
    /// The component's own summaries — Jacobi iterates, consulted first
    /// and never specialized.
    local: RefCell<BTreeMap<String, Summary>>,
    cap: usize,
    /// Intra-procedure analyzer knobs for specializations; its budget is
    /// this job's slice and governs the whole mechanism.
    cfg: AnalysisConfig,
    stats: CtxStats,
    store: RefCell<BTreeMap<String, ProcContexts>>,
    in_progress: RefCell<Vec<(String, u64)>>,
}

impl<'a, D: AbstractDomain> ContextResolver<'a, D> {
    /// Builds a resolver for one component job. `seed` carries
    /// fingerprint-validated specializations from the incremental cache;
    /// entries beyond `cap` per procedure are ignored (the cap may have
    /// shrunk between runs).
    pub fn new(
        domain: &'a D,
        module: &'a Module,
        external: &'a BTreeMap<String, Summary>,
        seed: &BTreeMap<String, Vec<Summary>>,
        cap: usize,
        cfg: AnalysisConfig,
        stats: CtxStats,
    ) -> ContextResolver<'a, D> {
        let mut store: BTreeMap<String, ProcContexts> = BTreeMap::new();
        for (name, sums) in seed {
            if !external.contains_key(name) {
                continue;
            }
            let pc = store.entry(name.clone()).or_default();
            for s in sums {
                if pc.entries.len() >= cap {
                    break;
                }
                if !s.entry.is_empty() {
                    pc.entries.insert(s.entry_key(), s.clone());
                }
            }
        }
        ContextResolver {
            domain,
            module,
            external,
            local: RefCell::new(BTreeMap::new()),
            cap,
            cfg,
            stats,
            store: RefCell::new(store),
            in_progress: RefCell::new(Vec::new()),
        }
    }

    /// Replaces the component-local summary table (called by the solver
    /// before every Jacobi round and the recording pass).
    pub fn set_local(&self, table: BTreeMap<String, Summary>) {
        *self.local.borrow_mut() = table;
    }

    /// Clears the in-flight specialization stack. The supervisor calls
    /// this before every attempt: a panic that unwound mid-specialization
    /// leaves stale in-progress markers behind, and those would make
    /// later resolutions treat the same contexts as cyclic demand and
    /// degrade to the ⊤-entry summary — sound, but an avoidable
    /// precision loss for the retry. The memo store needs no such reset:
    /// it only ever holds fully computed specializations.
    pub fn reset_in_flight(&self) {
        self.in_progress.borrow_mut().clear();
    }

    /// Drains the specializations computed (or seeded and reused) by
    /// this job, per procedure in entry-key order, for merging back into
    /// the incremental cache. Overflow contexts are job-local artifacts
    /// and are not persisted.
    pub fn into_contexts(self) -> BTreeMap<String, Vec<Summary>> {
        self.store
            .into_inner()
            .into_iter()
            .filter(|(_, pc)| !pc.entries.is_empty())
            .map(|(name, pc)| (name, pc.entries.into_values().collect()))
            .collect()
    }

    /// The summary to instantiate for a call to final procedure `proc`
    /// from a site that established `entry`: a memoized or freshly
    /// computed specialization, or `None` for the ⊤-entry summary.
    fn summary_for(&self, proc: &Procedure, entry: Conj) -> Option<Summary> {
        let key = entry_key(&entry);
        {
            let store = self.store.borrow();
            if let Some(s) = store.get(&proc.name).and_then(|pc| pc.entries.get(&key)) {
                if s.entry == entry {
                    self.stats.add(cc::MEMO_HITS, 1);
                    return Some(s.clone());
                }
                // A fingerprint collision between distinct entries:
                // refuse to reuse, degrade to the ⊤-entry summary.
                self.cfg.budget.degrade(
                    "driver/context",
                    "entry fingerprint collision; using the ⊤-entry summary",
                );
                self.stats.add(cc::TOP_FALLBACKS, 1);
                return None;
            }
        }
        if self
            .in_progress
            .borrow()
            .iter()
            .any(|(n, k)| *k == key && n == &proc.name)
        {
            // A cyclic demand through this exact context: the final
            // ⊤-entry summary is the sound bottom-out.
            self.stats.add(cc::TOP_FALLBACKS, 1);
            return None;
        }
        let over_cap = self
            .store
            .borrow()
            .get(&proc.name)
            .is_some_and(|pc| pc.entries.len() >= self.cap);
        if over_cap {
            return self.overflow_summary(proc, entry);
        }
        let sum = self.specialize(proc, &entry, key)?;
        self.store
            .borrow_mut()
            .entry(proc.name.clone())
            .or_default()
            .entries
            .insert(key, sum.clone());
        self.stats.add(cc::CONTEXTS_CREATED, 1);
        Some(sum)
    }

    /// Entries past the cap widen together into a single overflow
    /// context, so an unbounded stream of distinct entries (descending
    /// recursion, polymorphic call sites) converges: the overflow entry
    /// ascends under the domain's widening and either stabilizes (memo
    /// hit), widens to ⊤ (the ⊤-entry summary is exact), or exhausts its
    /// recompute allowance (degrade to the ⊤-entry summary).
    fn overflow_summary(&self, proc: &Procedure, entry: Conj) -> Option<Summary> {
        let d = self.domain;
        self.stats.add(cc::CAP_WIDENINGS, 1);
        // The cap is where entry distinctions die: every overflow entry
        // is widened into one context (or all the way to the ⊤-entry
        // summary), so blame the loss on the overflowing procedure.
        provenance::record_scoped(
            &proc.name,
            provenance::LossKind::CtxCapOverflow,
            "driver/context",
            "driver.context",
            0,
            self.cfg.budget.spent(),
        );
        let (prev, recomputes) = {
            let store = self.store.borrow();
            let pc = store.get(&proc.name)?;
            (
                pc.overflow.as_ref().map(|s| s.entry.clone()),
                pc.overflow_recomputes,
            )
        };
        let merged = match &prev {
            None => entry,
            Some(prev) => d.to_conj(&d.widen(&d.from_conj(prev), &d.from_conj(&entry))),
        };
        if merged.is_empty() {
            // Widened all the way to ⊤: the ⊤-entry summary *is* the
            // overflow context now.
            return None;
        }
        if prev.as_ref() == Some(&merged) {
            if let Some(s) = self
                .store
                .borrow()
                .get(&proc.name)
                .and_then(|pc| pc.overflow.clone())
            {
                self.stats.add(cc::MEMO_HITS, 1);
                return Some(s);
            }
        }
        if recomputes >= OVERFLOW_RECOMPUTE_CAP {
            self.cfg.budget.degrade(
                "driver/context",
                "overflow context kept widening; degraded to the ⊤-entry summary",
            );
            self.stats.add(cc::TOP_FALLBACKS, 1);
            return None;
        }
        if let Some(pc) = self.store.borrow_mut().get_mut(&proc.name) {
            pc.overflow_recomputes += 1;
        }
        let key = entry_key(&merged);
        let sum = self.specialize(proc, &merged, key)?;
        if let Some(pc) = self.store.borrow_mut().get_mut(&proc.name) {
            pc.overflow = Some(sum.clone());
        }
        self.stats.add(cc::CONTEXTS_CREATED, 1);
        Some(sum)
    }

    /// Analyzes `proc`'s body from `entry` (instead of ⊤), resolving its
    /// calls through this same resolver, and projects the exit onto the
    /// stable formals and `ret`. `None` means the budget starved the
    /// specialization — the caller degrades to the ⊤-entry summary.
    fn specialize(&self, proc: &Procedure, entry: &Conj, key: u64) -> Option<Summary> {
        let d = self.domain;
        if self.cfg.budget.is_exhausted() {
            self.cfg.budget.degrade(
                "driver/context",
                "specialization degraded to the ⊤-entry summary: budget exhausted",
            );
            self.stats.add(cc::TOP_FALLBACKS, 1);
            return None;
        }
        if self.in_progress.borrow().len() >= MAX_SPECIALIZE_DEPTH {
            self.cfg.budget.degrade(
                "driver/context",
                "specialization depth cap hit; using the ⊤-entry summary",
            );
            self.stats.add(cc::TOP_FALLBACKS, 1);
            return None;
        }
        self.in_progress.borrow_mut().push((proc.name.clone(), key));
        // Losses inside the specialization belong to the callee, not to
        // whatever caller scope demanded it.
        let blame_scope = provenance::scope(|| format!("{}@ctx", proc.name));
        let analysis = Analyzer::new(d)
            .with_calls(self)
            .with_config(self.cfg.clone())
            .run_from(&proc.body, d.from_conj(entry));
        drop(blame_scope);
        self.in_progress.borrow_mut().pop();
        Some(summarize(d, &analysis.exit, proc).with_entry(entry.clone()))
    }
}

impl<D: AbstractDomain> CallResolver<D> for ContextResolver<'_, D> {
    fn resolve_call(&self, d: &D, site: CallSite<'_, D>) -> Option<D::Elem> {
        // Component-local callees: their summaries are still iterating —
        // instantiate context-insensitively, exactly like the fixpoint
        // expects.
        {
            let local = self.local.borrow();
            if let Some(base) = local.get(site.name) {
                let base = base.clone();
                drop(local);
                return Some(instantiate_summary(
                    d, site.state, site.dst, site.args, &base,
                ));
            }
        }
        let base = self.external.get(site.name)?;
        let chosen = if self.cap == 0 || base.is_bottom() || d.is_bottom(&site.state) {
            None
        } else if self.cfg.budget.is_exhausted() {
            self.cfg.budget.degrade(
                "driver/context",
                "entry-context computation skipped: budget exhausted",
            );
            self.stats.add(cc::TOP_FALLBACKS, 1);
            None
        } else {
            self.module
                .get(site.name)
                .and_then(|proc| {
                    entry_context(d, &site.state, &base.params, site.args)
                        .map(|entry| (proc, entry))
                })
                .and_then(|(proc, entry)| self.summary_for(proc, entry))
        };
        let Some(spec) = chosen else {
            return Some(instantiate_summary(
                d, site.state, site.dst, site.args, base,
            ));
        };
        // Instantiate the specialization, but never let it come out
        // weaker than the insensitive transfer: widening inside the
        // specialized body can overshoot, and the acceptance bar is
        // "at least as precise". Meeting two sound post-states is sound.
        let strong = instantiate_summary(d, site.state.clone(), site.dst, site.args, &spec);
        let insens = instantiate_summary(d, site.state, site.dst, site.args, base);
        if d.le(&strong, &insens) {
            Some(strong)
        } else {
            Some(d.meet_all(&strong, d.to_conj(&insens).atoms()))
        }
    }
}
