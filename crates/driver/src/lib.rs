//! Interprocedural batch analysis for *Combining Abstract Interpreters*.
//!
//! The paper's engine analyzes one procedure at a time. This crate scales
//! it to multi-procedure modules:
//!
//! - [`CallGraph`] condenses a [`Module`](cai_interp::Module)'s call
//!   graph into strongly connected components, scheduled callee-first;
//! - [`Summary`] is a context-insensitive procedure summary — the exit
//!   constraint over the stable formals and `ret`, stored as a
//!   domain-independent [`Conj`](cai_term::Conj) — applied at call sites
//!   by [`SummaryResolver`] through the
//!   [`CallResolver`](cai_interp::CallResolver) hook;
//! - [`Driver`] runs the batch: sequentially, or farming independent
//!   components to a fixed pool of shared-nothing worker threads (each
//!   owns its domain instance and [`Budget`](cai_core::Budget) slice;
//!   only immutable summaries cross threads, so results are identical
//!   for every thread count under an unlimited budget);
//! - [`SummaryCache`] makes re-analysis incremental: procedures are
//!   fingerprinted over their text and transitive callee cone, and an
//!   edit re-analyzes only its dirty cone
//!   ([`ModuleAnalysis::reused`] / [`ModuleAnalysis::recomputed`] count
//!   the split).

mod callgraph;
mod engine;
mod summary;

pub use callgraph::CallGraph;
pub use engine::{Driver, ModuleAnalysis, ProcReport, SummaryCache};
pub use summary::{member_fingerprint, scc_fingerprint, summarize, Summary, SummaryResolver};
