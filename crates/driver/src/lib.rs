//! Interprocedural batch analysis for *Combining Abstract Interpreters*.
//!
//! The paper's engine analyzes one procedure at a time. This crate scales
//! it to multi-procedure modules:
//!
//! - [`CallGraph`] condenses a [`Module`](cai_interp::Module)'s call
//!   graph into strongly connected components, scheduled callee-first;
//! - [`Summary`] is an entry-keyed procedure summary — an entry
//!   condition over the formals plus the exit constraint over the stable
//!   formals and `ret`, both stored as domain-independent
//!   [`Conj`](cai_term::Conj)s — applied at call sites through the
//!   [`CallResolver`](cai_interp::CallResolver) hook. The empty entry is
//!   ⊤, i.e. the classic context-insensitive summary, applied by
//!   [`SummaryResolver`];
//! - [`ContextResolver`] adds context sensitivity: at each call into an
//!   already-final procedure it projects the caller's abstract state
//!   onto the callee's formals ([`entry_context`]), re-analyzes the
//!   callee from that entry, and memoizes the specialization per
//!   `(procedure, entry-key)` — capped per procedure, with overflow
//!   entries widened together so analysis still terminates;
//! - [`Driver`] runs the batch: sequentially, or farming independent
//!   components to a fixed pool of shared-nothing worker threads (every
//!   component job owns its domain instance and
//!   [`Budget`](cai_core::Budget) slice; only immutable summaries cross
//!   threads, so results are identical for every thread count). Each
//!   per-procedure analysis runs *supervised*: panics are caught and
//!   retried with halved fuel ([`Driver::max_retries`]), stragglers are
//!   cancelled by a wall-clock watchdog ([`Driver::proc_deadline`]), and
//!   procedures past their retry allowance are quarantined to the sound
//!   ⊤ summary ([`ProcReport::quarantined`],
//!   [`ModuleAnalysis::supervision`]). Its
//!   [`context_cap`](Driver::context_cap) knob bounds per-procedure
//!   contexts; `context_cap(0)` reproduces the context-insensitive
//!   driver bit-for-bit;
//! - [`SummaryCache`] makes re-analysis incremental: procedures are
//!   fingerprinted over their text, transitive callee cone, and context
//!   configuration; an edit re-analyzes only its dirty cone
//!   ([`ModuleAnalysis::reused`] / [`ModuleAnalysis::recomputed`] count
//!   the split) and fingerprint-valid context specializations are
//!   reused across runs ([`SummaryCache::stats`]).

mod blame;
mod callgraph;
mod context;
mod engine;
mod summary;
mod supervisor;

pub use blame::{differential, AssertRegression, BlameCause, DifferentialReport};
pub use callgraph::CallGraph;
pub use context::{ContextResolver, CtxStats, CtxStatsSnapshot};
pub use engine::{CacheEntry, CacheStats, Driver, ModuleAnalysis, ProcReport, SummaryCache};
pub use summary::{
    config_fingerprint, entry_context, entry_key, instantiate_summary, member_fingerprint,
    scc_fingerprint, summarize, Summary, SummaryResolver,
};
pub use supervisor::{SupStats, SupStatsSnapshot};
