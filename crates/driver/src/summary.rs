//! Procedure summaries: computation, the [`CallResolver`] that applies
//! them at call sites, and the stable fingerprints keyed by the
//! incremental cache.
//!
//! A summary is the procedure's exit constraint — analyzed from its
//! [`entry`](Summary::entry) condition, the ⊤ entry for the
//! context-insensitive base summary — projected onto its *stable* formals
//! (parameters the body never reassigns, which therefore still denote the
//! entry arguments) and the distinguished [`RETURN_VAR`]. It is stored as
//! a [`Conj`], the domain-independent presentation every
//! [`AbstractDomain`] can round-trip through `from_conj`/`to_conj`, so
//! one summary table serves any domain.

use cai_core::AbstractDomain;
use cai_interp::{CallResolver, CallSite, Procedure, RETURN_VAR};
use cai_term::{Atom, Conj, Term, Var, VarSet};
use std::collections::BTreeMap;

/// A procedure summary: the relation between entry arguments and return
/// value, as a conjunction over the stable formals and [`RETURN_VAR`],
/// valid for every call whose arguments satisfy the
/// [`entry`](Summary::entry) condition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Summary {
    /// The full formal parameter list, in declaration order (needed to
    /// bind call arguments positionally).
    pub params: Vec<Var>,
    /// The entry condition over the formals this summary was computed
    /// under: empty (`true`) for the ⊤-entry, context-insensitive base
    /// summary; the caller's projected argument facts for an entry-keyed
    /// specialization (see [`entry_context`]).
    pub entry: Conj,
    /// The exit constraint, or `None` for ⊥ (exit unreachable — the
    /// optimistic starting point of recursive fixpoints).
    pub exit: Option<Conj>,
}

impl Summary {
    /// The ⊥ summary (exit unreachable) for a procedure.
    pub fn bottom(params: Vec<Var>) -> Summary {
        Summary {
            params,
            entry: Conj::new(),
            exit: None,
        }
    }

    /// The ⊤ summary (no information; calls havoc their destination).
    pub fn top(params: Vec<Var>) -> Summary {
        Summary {
            params,
            entry: Conj::new(),
            exit: Some(Conj::new()),
        }
    }

    /// Whether this is the ⊥ summary.
    pub fn is_bottom(&self) -> bool {
        self.exit.is_none()
    }

    /// Records the entry condition this summary was specialized on.
    pub fn with_entry(mut self, entry: Conj) -> Summary {
        self.entry = entry;
        self
    }

    /// The memo key of this summary's entry condition (see [`entry_key`]).
    pub fn entry_key(&self) -> u64 {
        entry_key(&self.entry)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.entry.is_empty() {
            write!(f, "[{}] ", self.entry)?;
        }
        match &self.exit {
            None => f.write_str("false"),
            Some(c) if c.is_empty() => f.write_str("true"),
            Some(c) => write!(f, "{c}"),
        }
    }
}

/// The memo key of an entry condition: the structural fingerprint of its
/// canonical presentation. The ⊤ entry (empty conjunction) gets a fixed
/// key; the context store verifies the stored [`Summary::entry`] against
/// the requested one on every hit, so a fingerprint collision costs a
/// memo reuse (it falls back to the ⊤-entry summary), never soundness.
pub fn entry_key(entry: &Conj) -> u64 {
    entry.fingerprint()
}

/// Projects an analyzed exit element down to a [`Summary`] for `proc`:
/// everything but the stable formals and [`RETURN_VAR`] is existentially
/// quantified away.
pub fn summarize<D: AbstractDomain>(d: &D, exit: &D::Elem, proc: &Procedure) -> Summary {
    let params = proc.params.clone();
    if d.is_bottom(exit) {
        return Summary::bottom(params);
    }
    let assigned = proc.body.assigned_vars();
    let mut keep = VarSet::new();
    for p in &params {
        if !assigned.contains(p) {
            keep.insert(*p);
        }
    }
    keep.insert(Var::named(RETURN_VAR));
    let mentioned = d.to_conj(exit).vars();
    let elim: VarSet = mentioned
        .iter()
        .copied()
        .filter(|v| !keep.contains(v))
        .collect();
    let projected = if elim.is_empty() {
        exit.clone()
    } else {
        d.exists(exit, &elim)
    };
    Summary {
        params,
        entry: Conj::new(),
        exit: Some(d.to_conj(&projected)),
    }
}

/// The entry condition a call site establishes for its callee: the
/// caller's abstract state with each argument bound to its formal's slot,
/// projected via the domain's own `exists` onto the slots alone, renamed
/// to the formals, and renormalized through the domain (`from_conj` then
/// `to_conj`) so syntactically different but domain-equal entries share
/// one presentation — and hence one [`entry_key`] fingerprint.
///
/// Returns `None` when the caller contributes nothing (the ⊤ entry) or
/// the projection degenerates; the caller then uses the ⊤-entry summary.
pub fn entry_context<D: AbstractDomain>(
    d: &D,
    e: &D::Elem,
    params: &[Var],
    args: &[Term],
) -> Option<Conj> {
    if params.is_empty() || d.is_bottom(e) {
        return None;
    }
    let mut cur = e.clone();
    let mut slots = VarSet::new();
    for i in 0..params.len() {
        let slot = param_slot(i);
        slots.insert(slot);
        if let Some(arg) = args.get(i) {
            let bind = Atom::eq(Term::var(slot), arg.clone());
            if d.sig().owns_atom(&bind) {
                cur = d.meet_atom(&cur, &bind);
            }
        }
    }
    let mentioned = d.to_conj(&cur).vars();
    let elim: VarSet = mentioned
        .iter()
        .copied()
        .filter(|v| !slots.contains(v))
        .collect();
    let projected = if elim.is_empty() {
        cur
    } else {
        d.exists(&cur, &elim)
    };
    if d.is_bottom(&projected) {
        return None;
    }
    let mut rename = BTreeMap::new();
    for (i, p) in params.iter().enumerate() {
        rename.insert(param_slot(i), Term::var(*p));
    }
    let entry = d.to_conj(&projected).subst(&rename);
    if entry.is_empty() {
        return None;
    }
    let canon = canonical_conj(&d.to_conj(&d.from_conj(&entry)));
    if canon.is_empty() {
        None
    } else {
        Some(canon)
    }
}

/// A presentation-canonical form of a conjunction: equalities oriented by
/// term order, atoms sorted and deduplicated. Semantically the identity —
/// it only ensures that two domain presentations of the same entry fact
/// (e.g. `a = 1` from the arithmetic component vs `1 = a` from the
/// congruence component) fingerprint identically, so call sites that
/// agree semantically share one memo slot.
fn canonical_conj(c: &Conj) -> Conj {
    let mut atoms: Vec<Atom> = c
        .iter()
        .map(|a| match a {
            Atom::Eq(s, t) if t < s => Atom::eq(t.clone(), s.clone()),
            other => other.clone(),
        })
        .collect();
    atoms.sort();
    atoms.into_iter().collect()
}

/// Driver-internal variable names used while instantiating a summary at a
/// call site. They contain `$`, which the surface syntax cannot produce
/// in an identifier, so they can never collide with program variables;
/// being *fixed* names (rather than gensyms) keeps call resolution
/// deterministic across thread interleavings. All are existentially
/// quantified away before the transfer returns.
fn dst_pre() -> Var {
    Var::named("$dst")
}
fn param_slot(i: usize) -> Var {
    Var::named(&format!("$p{i}"))
}
fn ret_slot() -> Var {
    Var::named("$ret")
}

/// A [`CallResolver`] backed by a name → [`Summary`] table.
///
/// The transfer for `x := call f(e₁, …, eₙ)` from state `e`:
///
/// 1. rename `x` to `$dst` in `e` (the arguments may mention the
///    destination's *pre*-state),
/// 2. meet `$pᵢ = eᵢ[$dst/x]` for each argument (binding fresh slots for
///    the formals),
/// 3. meet every atom of the summary with formals renamed to `$pᵢ` and
///    `ret` renamed to `$ret`,
/// 4. meet `x = $ret`,
/// 5. project out `$dst`, every `$pᵢ`, and `$ret`.
///
/// Atoms outside the domain's signature are skipped (a sound
/// over-approximation, same routing as the analyzer's own transfers). A
/// ⊥ summary yields ⊥ (the call never returns); a name missing from the
/// table defers to the analyzer's havoc fallback.
pub struct SummaryResolver<'a> {
    summaries: &'a BTreeMap<String, Summary>,
}

impl<'a> SummaryResolver<'a> {
    /// Wraps a summary table.
    pub fn new(summaries: &'a BTreeMap<String, Summary>) -> SummaryResolver<'a> {
        SummaryResolver { summaries }
    }
}

impl<D: AbstractDomain> CallResolver<D> for SummaryResolver<'_> {
    fn resolve_call(&self, d: &D, site: CallSite<'_, D>) -> Option<D::Elem> {
        let sum = self.summaries.get(site.name)?;
        Some(instantiate_summary(d, site.state, site.dst, site.args, sum))
    }
}

/// The call transfer: instantiates `sum` for `dst := call f(args)` from
/// state `e` (steps 1–5 of the [`SummaryResolver`] docs). Shared by the
/// context-insensitive [`SummaryResolver`] and the context-sensitive
/// resolver, so the two call boundaries cannot drift apart.
pub fn instantiate_summary<D: AbstractDomain>(
    d: &D,
    e: D::Elem,
    dst: Var,
    args: &[Term],
    sum: &Summary,
) -> D::Elem {
    let Some(exit) = &sum.exit else {
        // The callee's exit is (still) unreachable: so is the
        // post-state of the call.
        return d.bottom();
    };
    if d.is_bottom(&e) {
        return d.bottom();
    }

    // 1. Rename the destination so arguments keep meaning its
    //    pre-state value.
    let mut dst_map = BTreeMap::new();
    dst_map.insert(dst, Term::var(dst_pre()));
    let pre = d.to_conj(&e);
    let mut cur = if pre.vars().contains(&dst) {
        d.from_conj(&pre.subst(&dst_map))
    } else {
        e
    };
    let mut elim: VarSet = [dst_pre()].into_iter().collect();

    // 2. Bind arguments to formal slots.
    let mut freshen = BTreeMap::new();
    for (i, p) in sum.params.iter().enumerate() {
        let slot = param_slot(i);
        freshen.insert(*p, Term::var(slot));
        elim.insert(slot);
        if let Some(arg) = args.get(i) {
            let bind = Atom::eq(Term::var(slot), arg.subst(&dst_map));
            if d.sig().owns_atom(&bind) {
                cur = d.meet_atom(&cur, &bind);
            }
        }
    }

    // 3. Instantiate the summary.
    freshen.insert(Var::named(RETURN_VAR), Term::var(ret_slot()));
    elim.insert(ret_slot());
    for atom in exit.subst(&freshen).iter() {
        if d.sig().owns_atom(atom) {
            cur = d.meet_atom(&cur, atom);
        }
    }

    // 4. The destination takes the return value.
    let take = Atom::eq(Term::var(dst), Term::var(ret_slot()));
    if d.sig().owns_atom(&take) {
        cur = d.meet_atom(&cur, &take);
    }

    // 5. Drop every internal slot.
    d.exists(&cur, &elim)
}

/// A 64-bit FNV-1a stream hasher — deterministic, dependency-free, and
/// stable across platforms and runs, which is all the incremental cache
/// needs (fingerprints never leave the process boundary as security
/// tokens).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a string, length-prefixed so concatenations cannot
    /// collide field boundaries.
    pub fn write_str(&mut self, s: &str) {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes());
    }

    /// Absorbs a 64-bit value.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// The fingerprint of one strongly connected component, given the
/// already-computed fingerprints of the procedures it calls *outside*
/// itself: a hash of every member's name, formals, and printed body,
/// plus each external callee's name and fingerprint (callees missing
/// from the table — undefined procedures — hash as a fixed sentinel).
///
/// Because callee fingerprints feed in transitively, a procedure's
/// fingerprint changes exactly when its own text or anything in its
/// callee cone changes — the dirty-cone property the incremental driver
/// relies on. Individual members get distinct fingerprints derived from
/// the component hash and their name (see [`member_fingerprint`]).
pub fn scc_fingerprint(members: &[&Procedure], external_fps: &BTreeMap<String, u64>) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(members.len() as u64);
    for p in members {
        h.write_str(&p.name);
        h.write_u64(p.params.len() as u64);
        for v in &p.params {
            h.write_str(v.name());
        }
        h.write_str(&p.body.to_string());
    }
    let member_names: Vec<&str> = members.iter().map(|p| p.name.as_str()).collect();
    let mut externals: Vec<&String> = Vec::new();
    for p in members {
        for callee in p.callees() {
            if !member_names.contains(&callee.as_str()) {
                if let Some((name, _)) = external_fps.get_key_value(&callee) {
                    if !externals.contains(&name) {
                        externals.push(name);
                    }
                }
            }
        }
    }
    externals.sort_unstable();
    h.write_u64(externals.len() as u64);
    for name in externals {
        h.write_str(name);
        h.write_u64(external_fps.get(name).copied().unwrap_or(0));
    }
    h.finish()
}

/// A member's fingerprint inside its component: the component hash
/// re-keyed by the member's name.
pub fn member_fingerprint(scc_fp: u64, name: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(scc_fp);
    h.write_str(name);
    h.finish()
}

/// Mixes the driver's context-sensitivity configuration into a member
/// fingerprint, so entry-keyed results (the cached report *and* its
/// context specializations) are invalidated when the `context_cap` knob
/// changes — the entry keys join the dirty-cone fingerprint.
pub fn config_fingerprint(member_fp: u64, context_cap: usize) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(member_fp);
    h.write_u64(context_cap as u64);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_interp::parse_module;
    use cai_term::parse::Vocab;

    #[test]
    fn fingerprints_are_stable_and_text_sensitive() {
        let vocab = Vocab::standard();
        let m1 = parse_module(&vocab, "proc f(a) { ret := a + 1; }").unwrap();
        let m2 = parse_module(&vocab, "proc f(a) { ret := a + 1; }").unwrap();
        let m3 = parse_module(&vocab, "proc f(a) { ret := a + 2; }").unwrap();
        let ext = BTreeMap::new();
        let fp1 = scc_fingerprint(&[&m1.procs[0]], &ext);
        let fp2 = scc_fingerprint(&[&m2.procs[0]], &ext);
        let fp3 = scc_fingerprint(&[&m3.procs[0]], &ext);
        assert_eq!(fp1, fp2, "identical text, identical fingerprint");
        assert_ne!(fp1, fp3, "different body, different fingerprint");
    }

    #[test]
    fn callee_fingerprint_propagates() {
        let vocab = Vocab::standard();
        let m = parse_module(
            &vocab,
            "proc f(a) { r := call g(a); ret := r; } proc g(a) { ret := a; }",
        )
        .unwrap();
        let f = m.get("f").unwrap();
        let mut ext = BTreeMap::new();
        ext.insert("g".to_string(), 111u64);
        let fp_a = scc_fingerprint(&[f], &ext);
        ext.insert("g".to_string(), 222u64);
        let fp_b = scc_fingerprint(&[f], &ext);
        assert_ne!(fp_a, fp_b, "a changed callee dirties the caller");
    }
}
