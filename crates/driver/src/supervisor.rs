//! Supervised execution: the layer that keeps one faulty procedure from
//! taking down a batch.
//!
//! The combination algorithms promise "never panic, only lose precision"
//! for *budget exhaustion*; this module extends the same contract to the
//! failure modes the math ignores — a panicking domain component, a
//! procedure whose fixpoint stalls, garbage from a corrupted cache. The
//! policy, end to end:
//!
//! 1. **Isolate.** Every per-procedure analysis runs inside
//!    [`supervise`], the one `catch_unwind` boundary of the workspace
//!    (`ci.sh` greps for strays). A panic is caught, recorded as a
//!    structured [`Incident`] on the job's budget slice, and silenced
//!    from stderr while inside the boundary (the quiet hook below) so a
//!    chaos run does not drown the logs.
//! 2. **Retry with backoff.** A panicked procedure is re-attempted up to
//!    [`SupervisorCfg::max_retries`] times, each attempt under a
//!    [`Budget::child`] restriction holding *half* the fuel the previous
//!    attempt saw — a crash loop burns out quickly instead of consuming
//!    the batch's budget.
//! 3. **Quarantine to ⊤.** When retries are exhausted the procedure is
//!    pinned to the sound [`Summary::top`](crate::Summary::top): callers
//!    havoc on its results, SCC fixpoints still converge, dependents
//!    stay sound. Quarantined results are never persisted to the
//!    incremental cache.
//! 4. **Watch for stragglers.** An optional [`Watchdog`] holds a
//!    per-procedure wall-clock deadline; overrunning it exhausts the
//!    job's budget slice, which turns a hang or a stall into the
//!    already-tested graceful-degradation path — every governed loop
//!    bails at its next check and the batch moves on.
//!
//! Determinism: supervision decisions depend only on the supervised
//! computation itself (which panics are injected deterministically by
//! seed in chaos runs) and on the per-job budget slice — never on which
//! worker thread ran the job — so retry and quarantine outcomes are
//! bit-identical across thread counts. The watchdog is the one
//! deliberately wall-clock-dependent piece and is off by default.

use cai_core::{Budget, Incident, IncidentKind};
use cai_obs::{clock, write_kv, CounterFamily};
use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::time::{Duration, Instant};

/// Supervision policy knobs, carried by the driver into every job.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorCfg {
    /// Retries granted to a panicking procedure before quarantine (so a
    /// procedure gets `max_retries + 1` attempts in total).
    pub max_retries: u32,
    /// Per-procedure wall-clock deadline; `None` (the default) disarms
    /// the watchdog.
    pub proc_deadline: Option<Duration>,
}

impl Default for SupervisorCfg {
    fn default() -> SupervisorCfg {
        SupervisorCfg {
            max_retries: 2,
            proc_deadline: None,
        }
    }
}

/// [`SupStats`] counter names, in cell order (indices in [`sc`]).
const SUP_COUNTERS: &[&str] = &[
    "panics_caught",
    "retries",
    "recovered",
    "stalls",
    "quarantined",
];

/// Cell indices into [`SUP_COUNTERS`].
mod sc {
    pub const PANICS_CAUGHT: usize = 0;
    pub const RETRIES: usize = 1;
    pub const RECOVERED: usize = 2;
    pub const STALLS: usize = 3;
    pub const QUARANTINED: usize = 4;
}

/// Shared supervision counters — the same observability shape as
/// [`CtxStats`](crate::CtxStats), a thin facade over a
/// [`cai_obs::CounterFamily`]: cloning shares the counters, so one
/// `SupStats` aggregates over every job of a batch.
#[derive(Clone, Debug)]
pub struct SupStats {
    fam: CounterFamily,
}

impl Default for SupStats {
    fn default() -> SupStats {
        SupStats {
            fam: CounterFamily::new(SUP_COUNTERS),
        }
    }
}

impl SupStats {
    /// Fresh counters, all zero.
    pub fn new() -> SupStats {
        SupStats::default()
    }

    /// Records a panic that escaped per-procedure supervision and was
    /// caught by the job-level [`guard`] instead.
    pub(crate) fn note_panic(&self) {
        self.fam.bump(sc::PANICS_CAUGHT);
    }

    /// Records a job-level re-dispatch after an escaped panic.
    pub(crate) fn note_retry(&self) {
        self.fam.bump(sc::RETRIES);
    }

    /// Records one procedure quarantined outside [`supervise`] (the
    /// whole-component crash path).
    pub(crate) fn note_quarantined(&self) {
        self.fam.bump(sc::QUARANTINED);
    }

    /// Folds `other`'s counts into this set. The engine gives each job
    /// dispatch a transactional local `SupStats` and commits it here only
    /// when the dispatch returns: a wholesale crash abandons the
    /// dispatch's results, so its retry/quarantine accounting must not
    /// leak into the batch counters (the incident log, by contrast,
    /// keeps the full event trace including abandoned dispatches).
    pub(crate) fn absorb(&self, other: &SupStats) {
        self.fam.absorb(&other.fam);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> SupStatsSnapshot {
        SupStatsSnapshot {
            panics_caught: self.fam.get(sc::PANICS_CAUGHT),
            retries: self.fam.get(sc::RETRIES),
            recovered: self.fam.get(sc::RECOVERED),
            stalls: self.fam.get(sc::STALLS),
            quarantined: self.fam.get(sc::QUARANTINED),
        }
    }
}

/// A point-in-time copy of [`SupStats`]. Plain data: subtract two
/// snapshots field-wise to meter a region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupStatsSnapshot {
    /// Panics caught at the supervision boundary (every attempt counts).
    pub panics_caught: u64,
    /// Retry attempts granted after a caught panic.
    pub retries: u64,
    /// Procedures that panicked and then completed on a retry.
    pub recovered: u64,
    /// Watchdog firings (procedure overran its deadline; job slice
    /// exhausted).
    pub stalls: u64,
    /// Procedures pinned to the sound ⊤ summary after exhausting their
    /// retry allowance (component-wide crashes count each member).
    pub quarantined: u64,
}

impl fmt::Display for SupStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_kv(
            f,
            [
                ("panics_caught", self.panics_caught),
                ("retries", self.retries),
                ("recovered", self.recovered),
                ("stalls", self.stalls),
                ("quarantined", self.quarantined),
            ],
        )
    }
}

thread_local! {
    /// Nesting depth of supervised regions on this thread; nonzero means
    /// a panic here will be caught (and should not spam stderr).
    static SUPERVISED_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// RAII marker for "panics on this thread are being supervised".
struct SupervisedRegion;

impl SupervisedRegion {
    fn enter() -> SupervisedRegion {
        SUPERVISED_DEPTH.with(|d| d.set(d.get() + 1));
        SupervisedRegion
    }
}

impl Drop for SupervisedRegion {
    fn drop(&mut self) {
        SUPERVISED_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// Installs (once per process) a panic hook that stays silent for
/// supervised panics and defers to the previous hook for everything
/// else. A chaos run injects thousands of panics by design; without
/// this, every one would print a backtrace banner for an event the
/// supervisor absorbs by contract.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SUPERVISED_DEPTH.with(|d| d.get()) == 0 {
                prev(info);
            }
        }));
    });
}

/// Renders a caught panic payload for incident records.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` with panics caught and silenced, returning the panic message
/// on unwind. This is the job-level safety net of the engine: the
/// per-procedure [`supervise`] boundary inside `f` absorbs expected
/// faults, so `guard` only trips on a panic escaping the solver itself.
///
/// Unwind-safety audit for the `AssertUnwindSafe` below: `f` closes over
/// the job's domain instance, context resolver, and budget slice. On
/// unwind (a) `RefCell` borrows are released by their guards, and the
/// resolver's memo store only ever holds *fully computed* summaries —
/// partial state lives on the unwound stack; (b) the domain's shared
/// memo (`SplitCache`) is poison-recovered and inserts complete entries
/// atomically; (c) budget counters are atomics, always consistent; (d)
/// the engine's summary/report tables are only written after a
/// successful return. No broken invariant outlives the unwind.
pub(crate) fn guard<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    let _region = SupervisedRegion::enter();
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(p.as_ref()))
}

/// The outcome of a supervised per-procedure analysis.
pub(crate) enum Supervised<T> {
    /// An attempt completed (possibly after caught panics and retries).
    Done(T),
    /// Every attempt panicked; the caller must pin the procedure to the
    /// sound ⊤ summary.
    Quarantined,
}

/// Runs one per-procedure analysis under the full supervision policy:
/// catch panics, retry with halved-fuel backoff, quarantine when the
/// allowance is spent. `attempt` receives the budget restriction for
/// that attempt (a [`Budget::child`] of `slice`, so its fuel is charged
/// to the job and its observations land in the job's report).
///
/// The `AssertUnwindSafe` here is the same audited boundary as
/// [`guard`]'s — see the audit note there; `attempt` closes over strictly
/// less state (one procedure's analysis rather than the whole job).
pub(crate) fn supervise<T>(
    subject: &str,
    cfg: &SupervisorCfg,
    slice: &Budget,
    stats: &SupStats,
    watchdog: Option<&Watchdog>,
    mut attempt: impl FnMut(&Budget) -> T,
) -> Supervised<T> {
    install_quiet_hook();
    for k in 0..=cfg.max_retries {
        if let Some(wd) = watchdog {
            wd.watch(subject);
        }
        // Attempt 0 runs under the slice's own limits (plus the
        // per-procedure deadline); attempt k > 0 may use at most 1/2^k of
        // the fuel still in the slice, so a deterministic crash loop
        // decays geometrically instead of draining the batch.
        let fuel = if k == 0 {
            None
        } else {
            slice.remaining_fuel().map(|f| (f >> k).max(1))
        };
        let attempt_budget = slice.child(fuel, cfg.proc_deadline);
        let outcome = {
            let _region = SupervisedRegion::enter();
            panic::catch_unwind(AssertUnwindSafe(|| attempt(&attempt_budget)))
        };
        if let Some(wd) = watchdog {
            wd.pause();
        }
        match outcome {
            Ok(value) => {
                if k > 0 {
                    stats.fam.bump(sc::RECOVERED);
                }
                return Supervised::Done(value);
            }
            Err(payload) => {
                stats.fam.bump(sc::PANICS_CAUGHT);
                // `Budget::incident` emits the tagged `incident/panic`
                // tracer instant — the one mapping for every kind.
                slice.incident(Incident {
                    kind: IncidentKind::Panic,
                    subject: subject.to_string(),
                    detail: panic_message(payload.as_ref()),
                    attempt: k,
                });
                if k < cfg.max_retries {
                    stats.fam.bump(sc::RETRIES);
                }
            }
        }
    }
    stats.fam.bump(sc::QUARANTINED);
    slice.degrade(
        "driver/supervisor",
        format!(
            "`{subject}` quarantined to the \u{22a4} summary after {} panicking attempts",
            cfg.max_retries + 1
        ),
    );
    slice.incident(Incident {
        kind: IncidentKind::Quarantine,
        subject: subject.to_string(),
        detail: format!(
            "all {} attempts panicked; summary pinned to \u{22a4}",
            cfg.max_retries + 1
        ),
        attempt: cfg.max_retries,
    });
    Supervised::Quarantined
}

/// Clock subject while no single procedure is on it: the SCC glue
/// between attempts (joins, entailment checks, the recording pass).
const GLUE_SUBJECT: &str = "<scc glue>";

#[derive(Debug)]
struct WatchState {
    /// The subject currently on the clock and its absolute deadline.
    /// `None` only after a stop request.
    watching: Option<(String, Instant)>,
    stop: bool,
    fired: bool,
}

#[derive(Debug)]
struct WatchShared {
    budget: Budget,
    deadline: Duration,
    stats: SupStats,
    state: Mutex<WatchState>,
    wake: Condvar,
}

/// The cooperative straggler watchdog for one job: a helper thread that
/// waits out each procedure's wall-clock deadline and, on overrun,
/// exhausts the job's budget slice — turning a stalled or hung analysis
/// into the ordinary graceful-degradation path (every governed loop,
/// including [`ChaosDomain`](cai_core::ChaosDomain) stall-fault spins,
/// checks the budget and bails). The supervisor restarts the clock via
/// [`watch`](Watchdog::watch) before each attempt and hands it back to
/// the between-procedures sentinel via [`pause`](Watchdog::pause) after
/// — the clock never goes dark while the job is live, because the SCC
/// glue (summary joins and entailment checks between attempts) runs the
/// same domain and can stall just as well as a procedure body. It fires
/// at most once, because a fired slice is already dead for the rest of
/// the job.
#[derive(Debug)]
pub(crate) struct Watchdog {
    shared: Arc<WatchShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the watchdog thread for one job slice.
    pub(crate) fn arm(budget: Budget, deadline: Duration, stats: SupStats) -> Watchdog {
        let shared = Arc::new(WatchShared {
            budget,
            deadline,
            stats,
            state: Mutex::new(WatchState {
                watching: Some((GLUE_SUBJECT.to_string(), clock::now() + deadline)),
                stop: false,
                fired: false,
            }),
            wake: Condvar::new(),
        });
        let thread_shared = shared.clone();
        let handle = std::thread::spawn(move || Watchdog::run(&thread_shared));
        Watchdog {
            shared,
            handle: Some(handle),
        }
    }

    fn run(shared: &WatchShared) {
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.stop {
                return;
            }
            match state.watching.clone() {
                None => {
                    state = shared.wake.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                Some((subject, due)) => {
                    let now = clock::now();
                    if now < due {
                        let (next, _) = shared
                            .wake
                            .wait_timeout(state, due - now)
                            .unwrap_or_else(|e| e.into_inner());
                        state = next;
                        continue;
                    }
                    state.fired = true;
                    state.watching = None;
                    drop(state);
                    shared.budget.degrade(
                        "driver/supervisor",
                        format!(
                            "`{subject}` overran the {:?} procedure deadline; watchdog exhausted the job slice",
                            shared.deadline
                        ),
                    );
                    shared.budget.incident(Incident {
                        kind: IncidentKind::Stall,
                        subject,
                        detail: format!(
                            "exceeded the {:?} procedure deadline; budget slice exhausted",
                            shared.deadline
                        ),
                        attempt: 0,
                    });
                    shared.stats.fam.bump(sc::STALLS);
                    shared.budget.exhaust();
                    return;
                }
            }
        }
    }

    /// Puts `subject` on the clock: the deadline restarts from now.
    pub(crate) fn watch(&self, subject: &str) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.watching = Some((subject.to_string(), clock::now() + self.shared.deadline));
        drop(state);
        self.shared.wake.notify_all();
    }

    /// Hands the clock back to the between-procedures sentinel (attempt
    /// finished). The deadline restarts: glue work gets the same
    /// allowance as a procedure body, and a stall there is caught too.
    pub(crate) fn pause(&self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.watching = Some((
            GLUE_SUBJECT.to_string(),
            clock::now() + self.shared.deadline,
        ));
        drop(state);
        self.shared.wake.notify_all();
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.stop = true;
        }
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_passes_through_untouched() {
        let stats = SupStats::new();
        let slice = Budget::fuel(100);
        let out = supervise("ok", &SupervisorCfg::default(), &slice, &stats, None, |b| {
            assert!(b.tick(1));
            42
        });
        assert!(matches!(out, Supervised::Done(42)));
        let snap = stats.snapshot();
        assert_eq!(snap, SupStatsSnapshot::default());
        assert!(slice.report().incidents.is_empty());
    }

    #[test]
    fn one_panic_then_recovery_is_counted_and_logged() {
        let stats = SupStats::new();
        let slice = Budget::fuel(1000);
        let mut calls = 0u32;
        let out = supervise(
            "flaky",
            &SupervisorCfg::default(),
            &slice,
            &stats,
            None,
            |_| {
                calls += 1;
                if calls == 1 {
                    panic!("injected once");
                }
                "fine"
            },
        );
        assert!(matches!(out, Supervised::Done("fine")));
        let snap = stats.snapshot();
        assert_eq!(snap.panics_caught, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.recovered, 1);
        assert_eq!(snap.quarantined, 0);
        let report = slice.report();
        assert_eq!(report.incidents_of(IncidentKind::Panic).count(), 1);
        assert!(report.incidents[0].detail.contains("injected once"));
        assert!(
            !report.degraded,
            "a recovered panic produced the exact result"
        );
    }

    #[test]
    fn persistent_panics_quarantine_with_halved_fuel_attempts() {
        let stats = SupStats::new();
        let slice = Budget::fuel(64);
        let mut seen_fuel: Vec<Option<u64>> = Vec::new();
        let out = supervise(
            "doomed",
            &SupervisorCfg::default(),
            &slice,
            &stats,
            None,
            |b| -> () {
                seen_fuel.push(b.remaining_fuel());
                panic!("always");
            },
        );
        assert!(matches!(out, Supervised::Quarantined));
        // Attempt 0 is uncapped (parent fuel binds); retries are capped at
        // half, then a quarter, of the fuel left in the slice.
        assert_eq!(seen_fuel.len(), 3);
        assert_eq!(seen_fuel[0], None);
        let h1 = seen_fuel[1].expect("retry 1 is fuel-capped");
        let h2 = seen_fuel[2].expect("retry 2 is fuel-capped");
        assert!((1..=32).contains(&h1));
        assert!(h2 <= h1);
        let snap = stats.snapshot();
        assert_eq!(snap.panics_caught, 3);
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.recovered, 0);
        assert_eq!(snap.quarantined, 1);
        let report = slice.report();
        assert!(report.degraded, "quarantine is a real precision loss");
        assert_eq!(report.incidents_of(IncidentKind::Quarantine).count(), 1);
    }

    #[test]
    fn max_retries_zero_quarantines_on_first_panic() {
        let stats = SupStats::new();
        let slice = Budget::unlimited();
        let cfg = SupervisorCfg {
            max_retries: 0,
            ..SupervisorCfg::default()
        };
        let out = supervise("strict", &cfg, &slice, &stats, None, |_| -> () {
            panic!("once is enough")
        });
        assert!(matches!(out, Supervised::Quarantined));
        let snap = stats.snapshot();
        assert_eq!(snap.panics_caught, 1);
        assert_eq!(snap.retries, 0);
        assert_eq!(snap.quarantined, 1);
    }

    #[test]
    fn watchdog_exhausts_a_stalling_slice() {
        let stats = SupStats::new();
        let slice = Budget::unlimited();
        let watchdog = Watchdog::arm(slice.clone(), Duration::from_millis(20), stats.clone());
        let out = supervise(
            "spinner",
            &SupervisorCfg::default(),
            &slice,
            &stats,
            Some(&watchdog),
            |b| {
                // A cooperative stall: spins until cancelled, exactly like
                // the chaos stall fault.
                while !b.is_exhausted() {
                    std::thread::yield_now();
                }
                "unstuck"
            },
        );
        assert!(matches!(out, Supervised::Done("unstuck")));
        drop(watchdog);
        assert_eq!(stats.snapshot().stalls, 1);
        let report = slice.report();
        assert_eq!(report.incidents_of(IncidentKind::Stall).count(), 1);
        assert!(report.degraded && report.exhausted);
    }

    #[test]
    fn watchdog_stays_quiet_for_fast_procedures() {
        let stats = SupStats::new();
        let slice = Budget::unlimited();
        let watchdog = Watchdog::arm(slice.clone(), Duration::from_secs(60), stats.clone());
        for name in ["a", "b", "c"] {
            let out = supervise(
                name,
                &SupervisorCfg::default(),
                &slice,
                &stats,
                Some(&watchdog),
                |_| name,
            );
            assert!(matches!(out, Supervised::Done(_)));
        }
        drop(watchdog);
        assert_eq!(stats.snapshot().stalls, 0);
        assert!(!slice.is_exhausted());
    }

    #[test]
    fn guard_reports_the_panic_message() {
        assert_eq!(guard(|| 7), Ok(7));
        let err = guard(|| -> u32 { panic!("solver bug {}", 3) }).unwrap_err();
        assert!(err.contains("solver bug 3"));
    }
}
