//! The batch engine: callee-first summary computation over the call
//! graph, a shared-nothing worker pool for independent components, and
//! the fingerprint-keyed incremental cache.

use crate::callgraph::CallGraph;
use crate::summary::{member_fingerprint, scc_fingerprint, summarize, Summary, SummaryResolver};
use cai_core::{AbstractDomain, Budget, DegradationReport};
use cai_interp::{Analyzer, AssertionOutcome, Module, Procedure};
use std::collections::{BTreeMap, VecDeque};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

/// The per-procedure result of a batch analysis.
#[derive(Clone, Debug)]
pub struct ProcReport {
    /// The procedure name.
    pub name: String,
    /// Its computed (or cache-reused) summary.
    pub summary: Summary,
    /// Assertion verdicts inside the body, in program order, checked
    /// under the final summaries of every callee.
    pub assertions: Vec<AssertionOutcome>,
    /// Whether any loop fixpoint inside the body — or the summary
    /// fixpoint of the procedure's recursive component — failed to
    /// stabilize and was forced to a sound over-approximation.
    pub diverged: bool,
}

/// The result of analyzing a [`Module`].
#[derive(Clone, Debug)]
pub struct ModuleAnalysis {
    /// One report per procedure, in module declaration order.
    pub reports: Vec<ProcReport>,
    /// Procedures whose cached summary was reused (fingerprint match).
    pub reused: usize,
    /// Procedures (re)analyzed this run.
    pub recomputed: usize,
    /// The merged degradation report: the driver's own budget plus every
    /// worker slice.
    pub degradation: DegradationReport,
}

impl ModuleAnalysis {
    /// The report for a procedure, by name.
    pub fn report(&self, name: &str) -> Option<&ProcReport> {
        self.reports.iter().find(|r| r.name == name)
    }

    /// Total verified assertions across all procedures.
    pub fn verified_count(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.assertions.iter().filter(|a| a.verified).count())
            .sum()
    }
}

#[derive(Clone, Debug)]
struct CacheEntry {
    fingerprint: u64,
    report: ProcReport,
}

/// The incremental cache: per-procedure summaries keyed by a stable
/// fingerprint of the procedure's text and its transitive callee cone
/// (see [`scc_fingerprint`]). Feed the same cache back into
/// [`Driver::analyze_with_cache`] after editing a module and only the
/// dirty cone — the edited procedures and everything that transitively
/// calls them — is re-analyzed.
#[derive(Clone, Debug, Default)]
pub struct SummaryCache {
    entries: BTreeMap<String, CacheEntry>,
}

impl SummaryCache {
    /// An empty cache.
    pub fn new() -> SummaryCache {
        SummaryCache::default()
    }

    /// The number of cached procedures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[derive(Clone, Copy)]
struct SolveCfg {
    widen_delay: usize,
    max_iterations: usize,
    summary_widen_delay: usize,
    summary_rounds: usize,
}

/// One unit of work for a worker: a strongly connected component plus a
/// snapshot of its external callees' (already final) summaries.
struct Job {
    scc: usize,
    members: Vec<usize>,
    external: BTreeMap<String, Summary>,
    recursive: bool,
}

/// The interprocedural batch driver.
///
/// Built around a *domain factory* rather than a domain: every worker
/// thread constructs its own domain instance (and receives its own
/// [`Budget`] slice), so no abstract-domain state is ever shared between
/// threads — the only values crossing thread boundaries are immutable
/// [`Summary`] snapshots and finished [`ProcReport`]s.
///
/// One domain instance serves a whole SCC job, so a domain with a
/// cross-round memo — the logical product's split cache — amortizes its
/// purification/saturation work across that component's Jacobi summary
/// rounds and the recording pass. A factory may also close over a shared
/// `SplitCache` (it is `Sync`) to carry the memo across jobs and worker
/// threads; the cache is semantically invisible, so verdicts stay
/// identical for every thread count.
///
/// ```
/// use cai_driver::Driver;
/// use cai_interp::parse_module;
/// use cai_linarith::AffineEq;
/// use cai_term::parse::Vocab;
///
/// let m = parse_module(
///     &Vocab::standard(),
///     "proc inc(a) { ret := a + 1; }
///      proc two(b) { x := call inc(b); y := call inc(x); ret := y; assert(ret = b + 2); }",
/// )?;
/// let analysis = Driver::new(|_| AffineEq::new()).analyze(&m);
/// assert_eq!(analysis.verified_count(), 1);
/// # Ok::<(), cai_interp::ProgramParseError>(())
/// ```
pub struct Driver<D, F>
where
    D: AbstractDomain,
    F: Fn(&Budget) -> D + Sync,
{
    factory: F,
    threads: usize,
    widen_delay: usize,
    max_iterations: usize,
    summary_widen_delay: usize,
    summary_rounds: usize,
    budget: Budget,
    _domain: PhantomData<fn() -> D>,
}

impl<D, F> Driver<D, F>
where
    D: AbstractDomain,
    F: Fn(&Budget) -> D + Sync,
{
    /// Creates a driver from a domain factory. The factory is called once
    /// per worker job with that worker's budget slice, so budget-aware
    /// domains (e.g. `Polyhedra::with_budget`) can wire it in; factories
    /// for unbudgeted domains just ignore the argument.
    pub fn new(factory: F) -> Driver<D, F> {
        Driver {
            factory,
            threads: 1,
            widen_delay: 4,
            max_iterations: 60,
            summary_widen_delay: 2,
            summary_rounds: 30,
            budget: Budget::unlimited(),
            _domain: PhantomData,
        }
    }

    /// Sets the worker-thread count (minimum 1). With an *unlimited*
    /// budget the analysis result is identical for every thread count;
    /// under a finite budget the per-worker fuel slices differ, so
    /// degradation (never soundness) may vary.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Sets the intra-procedure widening delay (see
    /// [`Analyzer::widen_delay`]).
    pub fn widen_delay(mut self, rounds: usize) -> Self {
        self.widen_delay = rounds;
        self
    }

    /// Sets the intra-procedure loop iteration cap.
    pub fn max_iterations(mut self, cap: usize) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Sets the cap on summary-fixpoint rounds for a recursive component
    /// before every member summary is forced to ⊤ (sound, reported via
    /// [`ProcReport::diverged`]).
    pub fn summary_rounds(mut self, cap: usize) -> Self {
        self.summary_rounds = cap.max(1);
        self
    }

    /// Governs the whole batch by `budget`: split across workers when
    /// parallel, threaded into every analyzer, and handed to the domain
    /// factory.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Analyzes every procedure of `module` from scratch.
    pub fn analyze(&self, module: &Module) -> ModuleAnalysis {
        let mut cache = SummaryCache::new();
        self.analyze_with_cache(module, &mut cache)
    }

    /// Analyzes `module`, reusing `cache` entries whose fingerprints
    /// still match and refreshing the cache with this run's results.
    /// Entries for procedures no longer in the module are pruned.
    pub fn analyze_with_cache(&self, module: &Module, cache: &mut SummaryCache) -> ModuleAnalysis {
        let graph = CallGraph::build(module);
        let n_sccs = graph.sccs.len();

        // Fingerprints, callee-first, so every component sees its
        // external callees' fingerprints already computed.
        let mut proc_fps: BTreeMap<String, u64> = BTreeMap::new();
        for members in &graph.sccs {
            let procs: Vec<&Procedure> = members.iter().map(|&i| &module.procs[i]).collect();
            let fp = scc_fingerprint(&procs, &proc_fps);
            for p in &procs {
                proc_fps.insert(p.name.clone(), member_fingerprint(fp, &p.name));
            }
        }

        // Decide reuse per component: every member must have a cache
        // entry whose fingerprint still matches.
        let mut reuse = vec![false; n_sccs];
        for (c, members) in graph.sccs.iter().enumerate() {
            reuse[c] = members.iter().all(|&i| {
                let p = &module.procs[i];
                cache
                    .entries
                    .get(&p.name)
                    .is_some_and(|e| Some(&e.fingerprint) == proc_fps.get(&p.name))
            });
        }

        // Seed the summary table and reports with the reused entries.
        let mut summaries: BTreeMap<String, Summary> = BTreeMap::new();
        let mut reports: BTreeMap<String, ProcReport> = BTreeMap::new();
        let mut reused = 0usize;
        for (c, members) in graph.sccs.iter().enumerate() {
            if !reuse[c] {
                continue;
            }
            for &i in members {
                let name = &module.procs[i].name;
                if let Some(e) = cache.entries.get(name) {
                    summaries.insert(name.clone(), e.report.summary.clone());
                    reports.insert(name.clone(), e.report.clone());
                    reused += 1;
                }
            }
        }

        // Schedule the components that need (re)computation.
        let todo: Vec<usize> = (0..n_sccs).filter(|&c| !reuse[c]).collect();
        let recomputed: usize = todo.iter().map(|&c| graph.sccs[c].len()).sum();
        let cfg = SolveCfg {
            widen_delay: self.widen_delay,
            max_iterations: self.max_iterations,
            summary_widen_delay: self.summary_widen_delay,
            summary_rounds: self.summary_rounds,
        };
        let mut degradation = if self.threads <= 1 || todo.len() <= 1 {
            self.run_sequential(module, &graph, &todo, cfg, &mut summaries, &mut reports)
        } else {
            self.run_parallel(module, &graph, &todo, cfg, &mut summaries, &mut reports)
        };
        degradation.merge(&self.budget.report());

        // Refresh the cache: exactly the current module's procedures.
        cache.entries = module
            .procs
            .iter()
            .filter_map(|p| {
                let fingerprint = proc_fps.get(&p.name).copied()?;
                let report = reports.get(&p.name)?.clone();
                Some((
                    p.name.clone(),
                    CacheEntry {
                        fingerprint,
                        report,
                    },
                ))
            })
            .collect();

        let ordered: Vec<ProcReport> = module
            .procs
            .iter()
            .filter_map(|p| reports.remove(&p.name))
            .collect();
        ModuleAnalysis {
            reports: ordered,
            reused,
            recomputed,
            degradation,
        }
    }

    fn run_sequential(
        &self,
        module: &Module,
        graph: &CallGraph,
        todo: &[usize],
        cfg: SolveCfg,
        summaries: &mut BTreeMap<String, Summary>,
        reports: &mut BTreeMap<String, ProcReport>,
    ) -> DegradationReport {
        let domain = (self.factory)(&self.budget);
        for &c in todo {
            let members = &graph.sccs[c];
            let external = external_snapshot(module, members, summaries);
            let out = solve_scc(
                &domain,
                module,
                members,
                &external,
                graph.is_recursive(c, module),
                cfg,
                &self.budget,
            );
            for r in out {
                summaries.insert(r.name.clone(), r.summary.clone());
                reports.insert(r.name.clone(), r);
            }
        }
        DegradationReport::default()
    }

    /// The shared-nothing worklist: the main thread owns the summary
    /// table and the condensation's dependency counts; workers own a
    /// domain instance and a budget slice each. Jobs (component + an
    /// immutable snapshot of its external callees' summaries) flow out
    /// through a mutex-guarded queue, finished reports flow back over a
    /// channel, and completions unlock dependent components.
    fn run_parallel(
        &self,
        module: &Module,
        graph: &CallGraph,
        todo: &[usize],
        cfg: SolveCfg,
        summaries: &mut BTreeMap<String, Summary>,
        reports: &mut BTreeMap<String, ProcReport>,
    ) -> DegradationReport {
        let workers = self.threads.min(todo.len()).max(1);
        let slices = self.budget.split(workers);

        // Dependency counts among the to-be-computed components only;
        // reused dependencies are already in the summary table.
        let todo_set: Vec<bool> = {
            let mut v = vec![false; graph.sccs.len()];
            for &c in todo {
                v[c] = true;
            }
            v
        };
        let mut indegree: BTreeMap<usize, usize> = BTreeMap::new();
        let mut dependents: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &c in todo {
            let pending = graph.deps[c].iter().filter(|&&d| todo_set[d]).count();
            indegree.insert(c, pending);
            for &d in &graph.deps[c] {
                if todo_set[d] {
                    dependents.entry(d).or_default().push(c);
                }
            }
        }

        let queue: Mutex<VecDeque<Job>> = Mutex::new(VecDeque::new());
        let ready = Condvar::new();
        let done = AtomicBool::new(false);
        let (result_tx, result_rx) = mpsc::channel::<(usize, Vec<ProcReport>)>();

        let push_job = |c: usize, summaries: &BTreeMap<String, Summary>| {
            let members = graph.sccs[c].clone();
            let external = external_snapshot(module, &members, summaries);
            let job = Job {
                scc: c,
                members,
                external,
                recursive: graph.is_recursive(c, module),
            };
            queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(job);
            ready.notify_one();
        };

        std::thread::scope(|s| {
            for slice in slices.iter().take(workers) {
                let tx = result_tx.clone();
                let queue = &queue;
                let ready = &ready;
                let done = &done;
                let factory = &self.factory;
                let slice = slice.clone();
                s.spawn(move || loop {
                    let job = {
                        let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                        loop {
                            if let Some(job) = q.pop_front() {
                                break job;
                            }
                            if done.load(Ordering::Acquire) {
                                return;
                            }
                            q = ready.wait(q).unwrap_or_else(|e| e.into_inner());
                        }
                    };
                    let domain = factory(&slice);
                    let out = solve_scc(
                        &domain,
                        module,
                        &job.members,
                        &job.external,
                        job.recursive,
                        cfg,
                        &slice,
                    );
                    if tx.send((job.scc, out)).is_err() {
                        return;
                    }
                });
            }
            drop(result_tx);

            for (&c, &pending) in &indegree {
                if pending == 0 {
                    push_job(c, summaries);
                }
            }
            let mut remaining = todo.len();
            while remaining > 0 {
                let Ok((c, out)) = result_rx.recv() else {
                    break; // all workers gone — nothing more will arrive
                };
                remaining -= 1;
                for r in out {
                    summaries.insert(r.name.clone(), r.summary.clone());
                    reports.insert(r.name.clone(), r);
                }
                if let Some(deps) = dependents.get(&c) {
                    for &dep in deps {
                        if let Some(count) = indegree.get_mut(&dep) {
                            *count -= 1;
                            if *count == 0 {
                                push_job(dep, summaries);
                            }
                        }
                    }
                }
            }
            done.store(true, Ordering::Release);
            ready.notify_all();
        });

        let mut degradation = DegradationReport::default();
        for slice in &slices {
            degradation.merge(&slice.report());
        }
        degradation
    }
}

/// The summaries of every procedure the component calls outside itself
/// (only those already present in the table — i.e. already final).
fn external_snapshot(
    module: &Module,
    members: &[usize],
    summaries: &BTreeMap<String, Summary>,
) -> BTreeMap<String, Summary> {
    let mut out = BTreeMap::new();
    for &i in members {
        for callee in module.procs[i].callees() {
            if members.iter().any(|&j| module.procs[j].name == callee) {
                continue;
            }
            if let Some(s) = summaries.get(&callee) {
                out.insert(callee, s.clone());
            }
        }
    }
    out
}

fn summary_le<D: AbstractDomain>(d: &D, a: &Summary, b: &Summary) -> bool {
    match (&a.exit, &b.exit) {
        (None, _) => true,
        (Some(ca), None) => d.is_bottom(&d.from_conj(ca)),
        (Some(ca), Some(cb)) => d.le(&d.from_conj(ca), &d.from_conj(cb)),
    }
}

fn summary_combine<D: AbstractDomain>(d: &D, old: &Summary, new: &Summary, widen: bool) -> Summary {
    let exit = match (&old.exit, &new.exit) {
        (None, e) | (e, None) => e.clone(),
        (Some(ca), Some(cb)) => {
            let (ea, eb) = (d.from_conj(ca), d.from_conj(cb));
            let combined = if widen {
                d.widen(&ea, &eb)
            } else {
                d.join(&ea, &eb)
            };
            Some(d.to_conj(&combined))
        }
    };
    Summary {
        params: new.params.clone(),
        exit,
    }
}

/// Solves one strongly connected component: non-recursive components
/// take a single pass; recursive ones iterate a Jacobi-style summary
/// fixpoint from optimistic ⊥ summaries — join for the first rounds,
/// widening after — and force every member to ⊤ (flagging divergence) if
/// the round cap is hit. A final recording pass under the stable
/// summaries collects assertion verdicts.
fn solve_scc<D: AbstractDomain>(
    d: &D,
    module: &Module,
    members: &[usize],
    external: &BTreeMap<String, Summary>,
    recursive: bool,
    cfg: SolveCfg,
    budget: &Budget,
) -> Vec<ProcReport> {
    let run = |proc: &Procedure, table: &BTreeMap<String, Summary>| {
        let resolver = SummaryResolver::new(table);
        let analyzer = Analyzer::new(d)
            .with_calls(&resolver)
            .with_budget(budget.clone())
            .widen_delay(cfg.widen_delay)
            .max_iterations(cfg.max_iterations);
        analyzer.run(&proc.body)
    };

    let mut table = external.clone();
    let mut scc_diverged = false;

    if !recursive {
        // Callees are all external and final: one pass suffices.
        let mut out = Vec::with_capacity(members.len());
        for &i in members {
            let proc = &module.procs[i];
            let analysis = run(proc, &table);
            let summary = summarize(d, &analysis.exit, proc);
            out.push(ProcReport {
                name: proc.name.clone(),
                summary,
                assertions: analysis.assertions,
                diverged: analysis.diverged,
            });
        }
        return out;
    }

    for &i in members {
        let proc = &module.procs[i];
        table.insert(proc.name.clone(), Summary::bottom(proc.params.clone()));
    }
    let mut round = 0usize;
    loop {
        round += 1;
        // Jacobi iteration: every member reads the previous round's
        // table, so the result is independent of member order.
        let mut next: Vec<(String, Summary)> = Vec::with_capacity(members.len());
        for &i in members {
            let proc = &module.procs[i];
            let analysis = run(proc, &table);
            next.push((proc.name.clone(), summarize(d, &analysis.exit, proc)));
        }
        let stable = next
            .iter()
            .all(|(name, new)| table.get(name).is_some_and(|old| summary_le(d, new, old)));
        if stable {
            break;
        }
        if round >= cfg.summary_rounds {
            budget.degrade(
                "driver/summary-fixpoint",
                "recursive component hit the round cap; summaries forced to top",
            );
            for &i in members {
                let proc = &module.procs[i];
                table.insert(proc.name.clone(), Summary::top(proc.params.clone()));
            }
            scc_diverged = true;
            break;
        }
        let widen = round > cfg.summary_widen_delay;
        for (name, new) in next {
            let combined = match table.get(&name) {
                Some(old) => summary_combine(d, old, &new, widen),
                None => new,
            };
            table.insert(name, combined);
        }
        if budget.is_exhausted() {
            // Sound bail-out mirroring the intra-procedure loops.
            for &i in members {
                let proc = &module.procs[i];
                table.insert(proc.name.clone(), Summary::top(proc.params.clone()));
            }
            scc_diverged = true;
            break;
        }
    }

    // Recording pass under the stable summaries.
    let mut out = Vec::with_capacity(members.len());
    for &i in members {
        let proc = &module.procs[i];
        let analysis = run(proc, &table);
        let summary = match table.get(&proc.name) {
            Some(s) => s.clone(),
            None => summarize(d, &analysis.exit, proc),
        };
        out.push(ProcReport {
            name: proc.name.clone(),
            summary,
            assertions: analysis.assertions,
            diverged: analysis.diverged || scc_diverged,
        });
    }
    out
}
