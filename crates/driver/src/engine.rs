//! The batch engine: callee-first summary computation over the call
//! graph, a shared-nothing worker pool for independent components, and
//! the fingerprint-keyed incremental cache.

use crate::callgraph::CallGraph;
use crate::context::{ContextResolver, CtxStats, CtxStatsSnapshot};
use crate::summary::{
    config_fingerprint, member_fingerprint, scc_fingerprint, summarize, Fnv64, Summary,
    SummaryResolver,
};
use crate::supervisor::{self, SupStats, SupStatsSnapshot, Supervised, SupervisorCfg, Watchdog};
use cai_core::cache::{self as ccache, cs, Cache, StoreOutcome};
use cai_core::{
    AbstractDomain, Budget, BudgetPolicy, CacheConfig, DegradationReport, Incident, IncidentKind,
    SizeMeasures,
};
use cai_interp::{AnalysisConfig, Analyzer, AssertionOutcome, Module, Procedure};
use cai_obs::provenance;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

/// Per-job context specializations, tagged with the component index so
/// the merge is deterministic regardless of completion order.
type JobContexts = Vec<(usize, BTreeMap<String, Vec<Summary>>)>;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

/// The per-procedure result of a batch analysis.
#[derive(Clone, Debug)]
pub struct ProcReport {
    /// The procedure name.
    pub name: String,
    /// Its computed (or cache-reused) ⊤-entry summary. Under a nonzero
    /// [`context cap`](Driver::context_cap) the exit constraint is
    /// computed with context-sensitive call resolution inside the body,
    /// so it is at least as strong as the insensitive one.
    pub summary: Summary,
    /// Assertion verdicts inside the body, in program order, checked
    /// under the final summaries of every callee.
    pub assertions: Vec<AssertionOutcome>,
    /// Whether any loop fixpoint inside the body — or the summary
    /// fixpoint of the procedure's recursive component — failed to
    /// stabilize and was forced to a sound over-approximation.
    pub diverged: bool,
    /// Whether the supervisor pinned this procedure to the sound ⊤
    /// summary after its analysis panicked past the retry allowance.
    /// Quarantined reports carry no assertion verdicts and are never
    /// persisted to the [`SummaryCache`].
    pub quarantined: bool,
}

/// The result of analyzing a [`Module`].
#[derive(Clone, Debug)]
pub struct ModuleAnalysis {
    /// One report per procedure, in module declaration order.
    pub reports: Vec<ProcReport>,
    /// Procedures whose cached summary was reused (fingerprint match).
    pub reused: usize,
    /// Procedures (re)analyzed this run.
    pub recomputed: usize,
    /// The merged degradation report: the driver's own budget plus every
    /// worker slice.
    pub degradation: DegradationReport,
    /// Context-sensitivity counters for this run (all zero under
    /// [`Driver::context_cap`]`(0)`).
    pub ctx: CtxStatsSnapshot,
    /// Supervision counters for this run: caught panics, retries,
    /// recoveries, watchdog stalls, quarantines. All zero on a
    /// fault-free run.
    pub supervision: SupStatsSnapshot,
}

impl ModuleAnalysis {
    /// The report for a procedure, by name.
    pub fn report(&self, name: &str) -> Option<&ProcReport> {
        self.reports.iter().find(|r| r.name == name)
    }

    /// All reports, in module declaration order. Callers that want every
    /// procedure iterate here instead of probing [`report`] name by
    /// name.
    ///
    /// [`report`]: ModuleAnalysis::report
    pub fn iter(&self) -> std::slice::Iter<'_, ProcReport> {
        self.reports.iter()
    }

    /// Total verified assertions across all procedures.
    pub fn verified_count(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.assertions.iter().filter(|a| a.verified).count())
            .sum()
    }

    /// Procedures quarantined to the sound ⊤ summary this run.
    pub fn quarantined_count(&self) -> usize {
        self.reports.iter().filter(|r| r.quarantined).count()
    }
}

impl<'a> IntoIterator for &'a ModuleAnalysis {
    type Item = &'a ProcReport;
    type IntoIter = std::slice::Iter<'a, ProcReport>;

    fn into_iter(self) -> Self::IntoIter {
        self.reports.iter()
    }
}

/// One procedure's persisted analysis result — the [`SummaryCache`]'s
/// value type under the unified [`Cache`] trait. Fields are sealed:
/// [`CacheEntry::new`] computes the integrity checksum at construction,
/// so an entry can only disagree with its checksum through corruption.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    fingerprint: u64,
    report: ProcReport,
    /// Entry-keyed specializations of this procedure, in entry-key
    /// order, valid exactly as long as `fingerprint` matches.
    contexts: Vec<Summary>,
    /// [`Fnv64`] digest of every reusable field above, computed when the
    /// entry is stored and verified before any reuse decision. An entry
    /// whose content no longer matches its checksum — bit rot, a bad
    /// deserializer, a scribbling bug — is rejected and recomputed,
    /// never reused.
    checksum: u64,
}

impl CacheEntry {
    /// Seals a new entry, digesting every reusable field into the
    /// integrity checksum that [`SummaryCache::reject_corrupt`] verifies
    /// before any reuse decision.
    pub fn new(fingerprint: u64, report: ProcReport, contexts: Vec<Summary>) -> CacheEntry {
        let checksum = entry_checksum(fingerprint, &report, &contexts);
        CacheEntry {
            fingerprint,
            report,
            contexts,
            checksum,
        }
    }

    /// The configuration-joined procedure fingerprint this entry is
    /// valid for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The persisted procedure report.
    pub fn report(&self) -> &ProcReport {
        &self.report
    }

    /// The persisted context specializations, in entry-key order.
    pub fn contexts(&self) -> &[Summary] {
        &self.contexts
    }
}

/// Digests one summary into an entry checksum.
fn summary_digest(h: &mut Fnv64, s: &Summary) {
    h.write_u64(s.params.len() as u64);
    for v in &s.params {
        h.write_str(v.name());
    }
    h.write_u64(s.entry.fingerprint());
    match &s.exit {
        None => h.write_u64(0),
        Some(c) => {
            h.write_u64(1);
            h.write_u64(c.fingerprint());
        }
    }
}

/// The integrity checksum of a cache entry: every field a later run
/// could reuse, digested with the same length-prefixed [`Fnv64`] stream
/// the fingerprints use.
fn entry_checksum(fingerprint: u64, report: &ProcReport, contexts: &[Summary]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(fingerprint);
    h.write_str(&report.name);
    summary_digest(&mut h, &report.summary);
    h.write_u64(report.assertions.len() as u64);
    for a in &report.assertions {
        h.write_str(&a.atom.to_string());
        h.write_u64(u64::from(a.verified));
    }
    h.write_u64(u64::from(report.diverged));
    h.write_u64(u64::from(report.quarantined));
    h.write_u64(contexts.len() as u64);
    for c in contexts {
        summary_digest(&mut h, c);
    }
    h.finish()
}

/// Point-in-time counters of the [`SummaryCache`] — the same
/// observability shape as `cai_core::JoinStats`: plain data, subtract
/// two to meter a region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Procedure reports reused across runs (fingerprint match).
    pub hits: u64,
    /// Procedure reports recomputed (cold or dirty cone).
    pub misses: u64,
    /// Entries dropped or replaced because the procedure left the
    /// module or its fingerprint changed.
    pub evictions: u64,
    /// Entries rejected because their content failed the integrity
    /// checksum (each also counts as an eviction, and the procedure is
    /// recomputed).
    pub corruptions: u64,
    /// Entry-keyed context specializations currently stored.
    pub contexts: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} evictions={} corruptions={} contexts={}",
            self.hits, self.misses, self.evictions, self.corruptions, self.contexts
        )
    }
}

/// The incremental cache: per-procedure summaries keyed by a stable
/// fingerprint of the procedure's text, its transitive callee cone (see
/// [`scc_fingerprint`]), and the driver's context configuration. Feed
/// the same cache back into [`Driver::analyze_with_cache`] after editing
/// a module and only the dirty cone — the edited procedures and
/// everything that transitively calls them — is re-analyzed. Under a
/// nonzero context cap it also memoizes every `(procedure, entry-key)`
/// specialization, so re-analysis of a dirty caller reuses the entry
/// contexts of its unchanged callees.
///
/// Implements the unified [`Cache`] trait (`String` keys, [`CacheEntry`]
/// values) and counts into a shared [`cai_core::CacheStats`] family.
/// **Clone semantics**: cloning *snapshots* the entries (each clone owns
/// its table — the opposite of `SplitCache`, whose clones share) but
/// *shares* the counters, so stats aggregate across clones.
#[derive(Clone, Debug)]
pub struct SummaryCache {
    entries: BTreeMap<String, CacheEntry>,
    /// Exponentially decayed per-procedure incident counts (panics,
    /// stalls, quarantines, cache corruptions) from recent runs. The
    /// adaptive [`BudgetPolicy`] damps a procedure's scheduling weight by
    /// this, so chronically faulty procedures stop soaking up fuel that
    /// healthy ones could convert into precision.
    incidents: BTreeMap<String, u64>,
    /// Entry capacity ([`CacheConfig::summary_capacity`]); 0 disables
    /// persistence entirely.
    capacity: usize,
    stats: ccache::CacheStats,
}

impl Default for SummaryCache {
    fn default() -> SummaryCache {
        SummaryCache::with_config(&CacheConfig::default())
    }
}

impl SummaryCache {
    /// An empty cache with the default capacity.
    pub fn new() -> SummaryCache {
        SummaryCache::default()
    }

    /// An empty cache sized by [`CacheConfig::summary_capacity`] — the
    /// constructor [`Driver::analyze`] uses, fed from
    /// `AnalysisConfig::cache`.
    pub fn with_config(cfg: &CacheConfig) -> SummaryCache {
        SummaryCache {
            entries: BTreeMap::new(),
            incidents: BTreeMap::new(),
            capacity: cfg.summary_capacity,
            stats: ccache::CacheStats::new(),
        }
    }

    /// The number of cached procedures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative hit/miss/eviction counters plus the current number of
    /// stored context specializations. A plain-data snapshot of the
    /// unified counter family, kept for callers that diff two snapshots
    /// to meter a region.
    pub fn stats(&self) -> CacheStats {
        let snap = self.stats.snapshot();
        CacheStats {
            hits: snap.get(cs::HITS),
            misses: snap.get(cs::MISSES),
            evictions: snap.get(cs::EVICTIONS),
            corruptions: snap.get(cs::CORRUPTIONS),
            contexts: self.entries.values().map(|e| e.contexts.len() as u64).sum(),
        }
    }

    /// Drops every entry whose content fails its integrity checksum and
    /// records the rejected procedure names on `budget` as
    /// [`IncidentKind::CacheCorruption`] incidents. Called by the driver
    /// before any reuse decision; corrupted procedures are simply
    /// recomputed.
    fn reject_corrupt(&mut self, budget: &Budget) {
        let corrupt: Vec<String> = self
            .entries
            .iter()
            .filter(|(_, e)| e.checksum != entry_checksum(e.fingerprint, &e.report, &e.contexts))
            .map(|(name, _)| name.clone())
            .collect();
        for name in corrupt {
            self.entries.remove(&name);
            self.stats.bump(cs::CORRUPTIONS);
            self.stats.bump(cs::EVICTIONS);
            // `Budget::incident` emits the `incident/cache-corruption`
            // tracer instant — one mapping for every incident kind.
            budget.incident(Incident {
                kind: IncidentKind::CacheCorruption,
                subject: name,
                detail: "cache entry failed its integrity checksum; rejected and recomputed"
                    .to_string(),
                attempt: 0,
            });
        }
    }

    /// The decayed incident count remembered for a procedure (0 for a
    /// procedure with no recent incidents). Feeds
    /// [`BudgetPolicy::job_weight`] when the driver apportions fuel.
    pub fn incident_count(&self, name: &str) -> u64 {
        self.incidents.get(name).copied().unwrap_or(0)
    }

    /// Folds one run's incidents into the history: existing counts are
    /// halved first (so the history is *recent* — an incident from k runs
    /// ago weighs 2⁻ᵏ), then each of this run's incidents adds one to its
    /// subject. Deterministic: depends only on the incidents fed in.
    fn absorb_incidents<'a>(&mut self, incidents: impl Iterator<Item = &'a Incident>) {
        for count in self.incidents.values_mut() {
            *count /= 2;
        }
        self.incidents.retain(|_, count| *count > 0);
        for incident in incidents {
            *self.incidents.entry(incident.subject.clone()).or_insert(0) += 1;
        }
    }

    /// Test hook: silently corrupts the stored entry for `name` without
    /// refreshing its checksum, simulating bit rot in a persisted cache.
    /// The corruption chosen is the dangerous kind — the summary's exit
    /// flips to ⊥ ("this call never returns"), which blind reuse would
    /// propagate into dependents as unsound dead-code verdicts. Returns
    /// whether an entry existed.
    #[doc(hidden)]
    pub fn corrupt_entry(&mut self, name: &str) -> bool {
        match self.entries.get_mut(name) {
            Some(e) => {
                e.report.summary.exit = None;
                e.report.diverged = !e.report.diverged;
                true
            }
            None => false,
        }
    }
}

impl Cache for SummaryCache {
    type Key = String;
    type Value = CacheEntry;

    fn lookup(&self, key: &String) -> Option<CacheEntry> {
        // BTreeMap keys on the full string — no fingerprint shortcut, so
        // every hit is trivially verified.
        self.entries.get(key).cloned()
    }

    fn store(&mut self, key: String, value: CacheEntry, degraded: bool) -> StoreOutcome {
        if degraded {
            // Quarantined results reach here with `degraded = true`: the
            // ⊤ pin is a this-run survival measure and must never poison
            // a later run (degradation-aware invalidation).
            self.stats.bump(cs::SKIPS);
            provenance::record_scoped(
                &key,
                provenance::LossKind::CacheSkippedDegraded,
                "driver/summary-cache",
                "driver",
                0,
                0,
            );
            return StoreOutcome::SkippedDegraded;
        }
        if self.capacity == 0 {
            return StoreOutcome::Disabled;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            self.entries.clear();
            self.stats.bump(cs::EVICTIONS);
            self.entries.insert(key, value);
            return StoreOutcome::StoredEvicting;
        }
        self.entries.insert(key, value);
        StoreOutcome::Stored
    }

    fn invalidate(&mut self, key: &String) -> bool {
        let removed = self.entries.remove(key).is_some();
        if removed {
            self.stats.bump(cs::EVICTIONS);
        }
        removed
    }

    fn clear(&mut self) {
        // Entries go; the decayed incident history is observational
        // state, not derived from the entries, and survives the clear —
        // a chronically faulty procedure stays damped.
        if !self.entries.is_empty() {
            self.stats.bump(cs::INVALIDATIONS);
        }
        self.entries.clear();
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> &ccache::CacheStats {
        &self.stats
    }

    fn checksum(&self) -> u64 {
        // Folds the entries' own integrity digests (each covers its key
        // via the report name), so the table checksum doubles as a
        // content audit, not just a key census.
        ccache::fold_checksum(self.entries.values().map(|e| e.checksum))
    }
}

#[derive(Clone, Copy)]
struct SolveCfg {
    widen_delay: usize,
    max_iterations: usize,
    cache: CacheConfig,
    summary_widen_delay: usize,
    summary_rounds: usize,
    context_cap: usize,
    policy: BudgetPolicy,
    sup: SupervisorCfg,
}

/// One unit of work for a worker: a strongly connected component plus a
/// snapshot of its external callees' (already final) summaries and the
/// component's own budget slice (slices are per *job*, not per worker,
/// so the fuel a component sees — and therefore every retry and
/// quarantine decision — is independent of which thread runs it).
struct Job {
    scc: usize,
    members: Vec<usize>,
    external: BTreeMap<String, Summary>,
    recursive: bool,
    slice: Budget,
}

/// The interprocedural batch driver.
///
/// Built around a *domain factory* rather than a domain: every SCC job
/// constructs its own domain instance and receives its own [`Budget`]
/// slice, so no abstract-domain state is ever shared between threads —
/// the only values crossing thread boundaries are immutable [`Summary`]
/// snapshots and finished [`ProcReport`]s — and the fuel (hence every
/// degradation, retry, and quarantine decision) a component sees is the
/// same whether the batch ran on one thread or eight.
///
/// One domain instance serves a whole SCC job, so a domain with a
/// cross-round memo — the logical product's split cache — amortizes its
/// purification/saturation work across that component's Jacobi summary
/// rounds and the recording pass. A factory may also close over a shared
/// `SplitCache` (it is `Sync`) to carry the memo across jobs and worker
/// threads; the cache is semantically invisible, so verdicts stay
/// identical for every thread count.
///
/// Every per-procedure analysis runs *supervised* (see the
/// [`supervisor`](crate::SupStatsSnapshot) layer): a panicking analysis
/// is caught, retried up to [`max_retries`](Driver::max_retries) times
/// with halved fuel, then quarantined to the sound ⊤ summary; an
/// optional [`proc_deadline`](Driver::proc_deadline) watchdog turns
/// hangs into budget exhaustion. A faulty procedure costs precision,
/// never the batch.
///
/// With a nonzero [`context_cap`](Driver::context_cap) (the default),
/// calls into already-final procedures are resolved *context-
/// sensitively*: the caller's abstract state is projected onto the
/// callee's formals and the callee is re-analyzed from that entry (see
/// [`ContextResolver`]), memoized per `(procedure, entry-key)`.
/// `context_cap(0)` reproduces the context-insensitive driver
/// bit-for-bit.
///
/// ```
/// use cai_driver::Driver;
/// use cai_interp::parse_module;
/// use cai_linarith::AffineEq;
/// use cai_term::parse::Vocab;
///
/// let m = parse_module(
///     &Vocab::standard(),
///     "proc inc(a) { ret := a + 1; }
///      proc two(b) { x := call inc(b); y := call inc(x); ret := y; assert(ret = b + 2); }",
/// )?;
/// let analysis = Driver::new(|_| AffineEq::new()).analyze(&m);
/// assert_eq!(analysis.verified_count(), 1);
/// # Ok::<(), cai_interp::ProgramParseError>(())
/// ```
pub struct Driver<D, F>
where
    D: AbstractDomain,
    F: Fn(&Budget) -> D + Sync,
{
    factory: F,
    threads: usize,
    cfg: AnalysisConfig,
    summary_widen_delay: usize,
    summary_rounds: usize,
    context_cap: usize,
    supervisor: SupervisorCfg,
    _domain: PhantomData<fn() -> D>,
}

impl<D, F> Driver<D, F>
where
    D: AbstractDomain,
    F: Fn(&Budget) -> D + Sync,
{
    /// Creates a driver from a domain factory. The factory is called once
    /// per component job with that job's budget slice, so budget-aware
    /// domains (e.g. a chaos wrapper) can wire it in; factories for
    /// unbudgeted domains just ignore the argument.
    pub fn new(factory: F) -> Driver<D, F> {
        Driver {
            factory,
            threads: 1,
            cfg: AnalysisConfig::new(),
            summary_widen_delay: 2,
            summary_rounds: 30,
            context_cap: 8,
            supervisor: SupervisorCfg::default(),
            _domain: PhantomData,
        }
    }

    /// Sets the worker-thread count (minimum 1). Budget slices are per
    /// component job, not per worker, so the analysis result — including
    /// degradation, retry, and quarantine outcomes — is identical for
    /// every thread count (the [`proc_deadline`](Driver::proc_deadline)
    /// watchdog, being wall-clock, is the one exception).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Replaces the intra-procedure [`AnalysisConfig`] (widening delay,
    /// iteration cap, budget) wholesale — the same struct
    /// `cai_interp::Analyzer` consumes, so the two entry points share
    /// one set of knobs.
    pub fn with_config(mut self, cfg: AnalysisConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The current intra-procedure configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// Sets the intra-procedure widening delay (see
    /// [`Analyzer::widen_delay`]).
    pub fn widen_delay(mut self, rounds: usize) -> Self {
        self.cfg.widen_delay = rounds;
        self
    }

    /// Sets the intra-procedure loop iteration cap.
    pub fn max_iterations(mut self, cap: usize) -> Self {
        self.cfg.max_iterations = cap;
        self
    }

    /// Sets the cap on summary-fixpoint rounds for a recursive component
    /// before every member summary is forced to ⊤ (sound, reported via
    /// [`ProcReport::diverged`]).
    pub fn summary_rounds(mut self, cap: usize) -> Self {
        self.summary_rounds = cap.max(1);
        self
    }

    /// Sets the maximum number of distinct entry contexts memoized per
    /// procedure. Entries beyond the cap are widened together into one
    /// overflow context so polymorphic call sites and descending
    /// recursion still terminate. `0` disables context sensitivity
    /// entirely and reproduces the context-insensitive driver
    /// bit-for-bit.
    pub fn context_cap(mut self, n: usize) -> Self {
        self.context_cap = n;
        self
    }

    /// Sets how many times a panicking procedure analysis is retried
    /// (each retry under a halved fuel allowance) before the supervisor
    /// quarantines it to the sound ⊤ summary. Default 2; `0` quarantines
    /// on the first caught panic.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.supervisor.max_retries = n;
        self
    }

    /// Arms the straggler watchdog with a per-procedure wall-clock
    /// deadline: a procedure analysis overrunning it has its job's
    /// budget slice exhausted, so the hang degrades into the ordinary
    /// budget-exhaustion path instead of stalling the batch. Off by
    /// default (and the only supervision feature that makes outcomes
    /// wall-clock-dependent — leave it off when bit-identical runs
    /// matter more than liveness).
    pub fn proc_deadline(mut self, d: Duration) -> Self {
        self.supervisor.proc_deadline = Some(d);
        self
    }

    /// Governs the whole batch by `budget`: split into per-job slices,
    /// threaded into every analyzer, and handed to the domain factory.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.cfg.budget = budget;
        self
    }

    /// Sets the [`BudgetPolicy`]. Under [`BudgetPolicy::Adaptive`] the
    /// batch budget is apportioned across component jobs proportionally
    /// to their size ([`Procedure::measures`] summed over members),
    /// damped by each member's recent incident history from the
    /// [`SummaryCache`]; inside each job, loop fixpoints run under
    /// size-derived slices and widened invariants get a bounded
    /// narrowing recovery pass. The default [`BudgetPolicy::Flat`]
    /// reproduces the pre-policy driver bit for bit.
    pub fn budget_policy(mut self, policy: BudgetPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Analyzes every procedure of `module` from scratch.
    pub fn analyze(&self, module: &Module) -> ModuleAnalysis {
        let mut cache = SummaryCache::with_config(&self.cfg.cache);
        self.analyze_with_cache(module, &mut cache)
    }

    /// Analyzes `module`, reusing `cache` entries whose fingerprints
    /// still match and refreshing the cache with this run's results.
    /// Entries for procedures no longer in the module are pruned.
    pub fn analyze_with_cache(&self, module: &Module, cache: &mut SummaryCache) -> ModuleAnalysis {
        let _span = cai_obs::span!("driver/analyze-module");
        let cache_before = cache.stats();
        // The driver budget's incident log persists across runs; remember
        // where it stood so only *this run's* incidents feed the cache's
        // decayed history.
        let prior_incidents = self.cfg.budget.report().incidents.len();
        // Integrity first: a corrupted entry must be rejected before any
        // reuse decision looks at it (recompute, never wrong reuse).
        cache.reject_corrupt(&self.cfg.budget);

        let graph = CallGraph::build(module);
        let n_sccs = graph.sccs.len();

        // Fingerprints, callee-first, so every component sees its
        // external callees' fingerprints already computed. The driver's
        // context configuration joins each member fingerprint, so
        // changing `context_cap` invalidates the whole cache.
        let mut proc_fps: BTreeMap<String, u64> = BTreeMap::new();
        for members in &graph.sccs {
            let procs: Vec<&Procedure> = members.iter().map(|&i| &module.procs[i]).collect();
            let fp = scc_fingerprint(&procs, &proc_fps);
            for p in &procs {
                proc_fps.insert(
                    p.name.clone(),
                    config_fingerprint(member_fingerprint(fp, &p.name), self.context_cap),
                );
            }
        }

        // Decide reuse per component: every member must have a cache
        // entry whose fingerprint still matches.
        let mut reuse = vec![false; n_sccs];
        for (c, members) in graph.sccs.iter().enumerate() {
            reuse[c] = members.iter().all(|&i| {
                let p = &module.procs[i];
                cache
                    .entries
                    .get(&p.name)
                    .is_some_and(|e| Some(&e.fingerprint) == proc_fps.get(&p.name))
            });
        }

        // Fingerprint-valid context specializations from the previous
        // run seed every job's memo (read-only, identical for every
        // thread count).
        let seed: BTreeMap<String, Vec<Summary>> = cache
            .entries
            .iter()
            .filter(|(name, e)| {
                !e.contexts.is_empty() && proc_fps.get(*name) == Some(&e.fingerprint)
            })
            .map(|(name, e)| (name.clone(), e.contexts.clone()))
            .collect();

        // Seed the summary table and reports with the reused entries.
        let mut summaries: BTreeMap<String, Summary> = BTreeMap::new();
        let mut reports: BTreeMap<String, ProcReport> = BTreeMap::new();
        let mut reused = 0usize;
        for (c, members) in graph.sccs.iter().enumerate() {
            if !reuse[c] {
                continue;
            }
            for &i in members {
                let name = &module.procs[i].name;
                if let Some(e) = cache.entries.get(name) {
                    summaries.insert(name.clone(), e.report.summary.clone());
                    reports.insert(name.clone(), e.report.clone());
                    reused += 1;
                }
            }
        }

        // Schedule the components that need (re)computation.
        let todo: Vec<usize> = (0..n_sccs).filter(|&c| !reuse[c]).collect();
        let recomputed: usize = todo.iter().map(|&c| graph.sccs[c].len()).sum();
        // Per-job scheduling weights, in component-index order: the
        // component's summed size measures damped by its members' recent
        // incident history. A pure function of the module text and the
        // cache, so the apportionment — hence every degradation decision
        // downstream — is identical for every thread count. The flat
        // policy ignores the values and splits equally.
        let weights: Vec<u64> = todo
            .iter()
            .map(|&c| {
                let size = graph.sccs[c]
                    .iter()
                    .fold(SizeMeasures::default(), |acc, &i| {
                        acc.plus(&module.procs[i].measures())
                    });
                let incidents = graph.sccs[c]
                    .iter()
                    .map(|&i| cache.incident_count(&module.procs[i].name))
                    .sum();
                self.cfg.policy.job_weight(&size, incidents)
            })
            .collect();
        if self.cfg.policy.is_adaptive() {
            cai_obs::counter!("driver/policy/weighted-jobs").add(todo.len() as u64);
        }
        let cfg = SolveCfg {
            widen_delay: self.cfg.widen_delay,
            max_iterations: self.cfg.max_iterations,
            cache: self.cfg.cache,
            summary_widen_delay: self.summary_widen_delay,
            summary_rounds: self.summary_rounds,
            context_cap: self.context_cap,
            policy: self.cfg.policy,
            sup: self.supervisor,
        };
        let ctx_stats = CtxStats::new();
        let sup_stats = SupStats::new();
        let (mut degradation, job_contexts) = if self.threads <= 1 || todo.len() <= 1 {
            self.run_sequential(
                module,
                &graph,
                &todo,
                &weights,
                cfg,
                &seed,
                &ctx_stats,
                &sup_stats,
                &mut summaries,
                &mut reports,
            )
        } else {
            self.run_parallel(
                module,
                &graph,
                &todo,
                &weights,
                cfg,
                &seed,
                &ctx_stats,
                &sup_stats,
                &mut summaries,
                &mut reports,
            )
        };
        let main_report = self.cfg.budget.report();
        cache.absorb_incidents(
            degradation
                .incidents
                .iter()
                .chain(main_report.incidents.iter().skip(prior_incidents)),
        );
        degradation.merge(&main_report);

        // Merge context specializations deterministically: the seed
        // first (it was every job's memo base), then each job's store in
        // component order — first writer wins per (proc, entry-key).
        let mut merged_contexts: BTreeMap<String, BTreeMap<u64, Summary>> = BTreeMap::new();
        for (name, sums) in &seed {
            let slot = merged_contexts.entry(name.clone()).or_default();
            for s in sums {
                slot.entry(s.entry_key()).or_insert_with(|| s.clone());
            }
        }
        for (_, contexts) in job_contexts {
            for (name, sums) in contexts {
                let slot = merged_contexts.entry(name).or_default();
                for s in sums {
                    slot.entry(s.entry_key()).or_insert(s);
                }
            }
        }

        // Refresh the cache: exactly the current module's procedures.
        // Entries whose procedure left the module or whose fingerprint
        // changed count as evictions.
        let stale = cache
            .entries
            .iter()
            .filter(|(name, e)| proc_fps.get(*name) != Some(&e.fingerprint))
            .count() as u64;
        cache.stats.add(cs::EVICTIONS, stale);
        cache.stats.add(cs::HITS, reused as u64);
        cache.stats.add(cs::MISSES, recomputed as u64);
        cache.entries.clear();
        for p in &module.procs {
            let Some(&fingerprint) = proc_fps.get(&p.name) else {
                continue;
            };
            let Some(report) = reports.get(&p.name).cloned() else {
                continue;
            };
            // A quarantined result is stored as degraded, which the
            // unified contract drops: the ⊤ pin is a this-run survival
            // measure, and the next run should recompute the real
            // summary.
            let quarantined = report.quarantined;
            let contexts: Vec<Summary> = merged_contexts
                .remove(&p.name)
                .map(|m| m.into_values().take(self.context_cap).collect())
                .unwrap_or_default();
            let entry = CacheEntry::new(fingerprint, report, contexts);
            Cache::store(cache, p.name.clone(), entry, quarantined);
        }

        let ordered: Vec<ProcReport> = module
            .procs
            .iter()
            .filter_map(|p| reports.remove(&p.name))
            .collect();
        let ctx = ctx_stats.snapshot();
        let supervision = sup_stats.snapshot();
        export_run_counters(&cache.stats(), &cache_before, &ctx, &supervision);
        ModuleAnalysis {
            reports: ordered,
            reused,
            recomputed,
            degradation,
            ctx,
            supervision,
        }
    }

    #[allow(clippy::too_many_arguments)] // internal: mirrors run_parallel
    fn run_sequential(
        &self,
        module: &Module,
        graph: &CallGraph,
        todo: &[usize],
        weights: &[u64],
        cfg: SolveCfg,
        seed: &BTreeMap<String, Vec<Summary>>,
        ctx_stats: &CtxStats,
        sup_stats: &SupStats,
        summaries: &mut BTreeMap<String, Summary>,
        reports: &mut BTreeMap<String, ProcReport>,
    ) -> (DegradationReport, JobContexts) {
        // The same per-job slices the parallel scheduler hands out, in
        // the same (component-index) order, so the fuel each component
        // sees — and every supervision decision derived from it — is
        // identical for every thread count.
        let slices = job_slices(&self.cfg.policy, &self.cfg.budget, weights, todo.len());
        let mut job_contexts = Vec::new();
        for (&c, slice) in todo.iter().zip(&slices) {
            let members = &graph.sccs[c];
            let external = external_snapshot(module, members, summaries);
            let (out, contexts) = run_job(
                &self.factory,
                module,
                members,
                &external,
                seed,
                graph.is_recursive(c, module),
                cfg,
                slice,
                ctx_stats,
                sup_stats,
            );
            for r in out {
                summaries.insert(r.name.clone(), r.summary.clone());
                reports.insert(r.name.clone(), r);
            }
            job_contexts.push((c, contexts));
        }
        let mut degradation = DegradationReport::default();
        for slice in &slices {
            degradation.merge(&slice.report());
        }
        (degradation, job_contexts)
    }

    /// The shared-nothing worklist: the main thread owns the summary
    /// table and the condensation's dependency counts; workers pull jobs
    /// (component + an immutable snapshot of its external callees'
    /// summaries + the component's budget slice) from a mutex-guarded
    /// queue, finished reports flow back over a channel, and completions
    /// unlock dependent components. Budget slices and domain instances
    /// are per *job*, not per worker, so outcomes cannot depend on which
    /// thread ran a component. Context memo seeds are read-only and
    /// shared; each job's computed contexts come back with its results
    /// and are merged in component order, so the merged store is
    /// identical for every thread count.
    #[allow(clippy::too_many_arguments)] // internal: mirrors run_sequential
    fn run_parallel(
        &self,
        module: &Module,
        graph: &CallGraph,
        todo: &[usize],
        weights: &[u64],
        cfg: SolveCfg,
        seed: &BTreeMap<String, Vec<Summary>>,
        ctx_stats: &CtxStats,
        sup_stats: &SupStats,
        summaries: &mut BTreeMap<String, Summary>,
        reports: &mut BTreeMap<String, ProcReport>,
    ) -> (DegradationReport, JobContexts) {
        let workers = self.threads.min(todo.len()).max(1);
        let slices = job_slices(&self.cfg.policy, &self.cfg.budget, weights, todo.len());
        let job_slices: BTreeMap<usize, Budget> =
            todo.iter().copied().zip(slices.iter().cloned()).collect();

        // Dependency counts among the to-be-computed components only;
        // reused dependencies are already in the summary table.
        let todo_set: Vec<bool> = {
            let mut v = vec![false; graph.sccs.len()];
            for &c in todo {
                v[c] = true;
            }
            v
        };
        let mut indegree: BTreeMap<usize, usize> = BTreeMap::new();
        let mut dependents: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &c in todo {
            let pending = graph.deps[c].iter().filter(|&&d| todo_set[d]).count();
            indegree.insert(c, pending);
            for &d in &graph.deps[c] {
                if todo_set[d] {
                    dependents.entry(d).or_default().push(c);
                }
            }
        }

        let queue: Mutex<VecDeque<Job>> = Mutex::new(VecDeque::new());
        let ready = Condvar::new();
        let done = AtomicBool::new(false);
        type JobResult = (usize, Vec<ProcReport>, BTreeMap<String, Vec<Summary>>);
        let (result_tx, result_rx) = mpsc::channel::<JobResult>();

        let push_job = |c: usize, summaries: &BTreeMap<String, Summary>| {
            let members = graph.sccs[c].clone();
            let external = external_snapshot(module, &members, summaries);
            let job = Job {
                scc: c,
                members,
                external,
                recursive: graph.is_recursive(c, module),
                slice: job_slices[&c].clone(),
            };
            queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(job);
            ready.notify_one();
        };

        let mut job_contexts = Vec::new();
        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = result_tx.clone();
                let queue = &queue;
                let ready = &ready;
                let done = &done;
                let factory = &self.factory;
                let ctx_stats = ctx_stats.clone();
                let sup_stats = sup_stats.clone();
                s.spawn(move || loop {
                    let job = {
                        let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                        loop {
                            if let Some(job) = q.pop_front() {
                                break job;
                            }
                            if done.load(Ordering::Acquire) {
                                return;
                            }
                            q = ready.wait(q).unwrap_or_else(|e| e.into_inner());
                        }
                    };
                    // run_job never unwinds (its crash path quarantines
                    // instead), so the result send below always happens
                    // and the main thread's `remaining` count never
                    // deadlocks on a lost worker.
                    let (out, contexts) = run_job(
                        factory,
                        module,
                        &job.members,
                        &job.external,
                        seed,
                        job.recursive,
                        cfg,
                        &job.slice,
                        &ctx_stats,
                        &sup_stats,
                    );
                    if tx.send((job.scc, out, contexts)).is_err() {
                        return;
                    }
                });
            }
            drop(result_tx);

            for (&c, &pending) in &indegree {
                if pending == 0 {
                    push_job(c, summaries);
                }
            }
            let mut remaining = todo.len();
            while remaining > 0 {
                let Ok((c, out, contexts)) = result_rx.recv() else {
                    break; // all workers gone — nothing more will arrive
                };
                remaining -= 1;
                for r in out {
                    summaries.insert(r.name.clone(), r.summary.clone());
                    reports.insert(r.name.clone(), r);
                }
                job_contexts.push((c, contexts));
                if let Some(deps) = dependents.get(&c) {
                    for &dep in deps {
                        if let Some(count) = indegree.get_mut(&dep) {
                            *count -= 1;
                            if *count == 0 {
                                push_job(dep, summaries);
                            }
                        }
                    }
                }
            }
            done.store(true, Ordering::Release);
            ready.notify_all();
        });

        // Completion order is scheduling-dependent; merge order must not
        // be.
        job_contexts.sort_by_key(|(c, _)| *c);

        let mut degradation = DegradationReport::default();
        for slice in &slices {
            degradation.merge(&slice.report());
        }
        (degradation, job_contexts)
    }
}

/// The per-job budget slices for one batch, `weights` and the returned
/// vector both in `todo` (component-index) order. Delegates to
/// [`BudgetPolicy::job_slices`]; an empty batch still carves one unused
/// slice, matching the pre-policy `split(len.max(1))` exactly so the
/// parent budget's accounting is bit-identical under the flat policy.
fn job_slices(policy: &BudgetPolicy, budget: &Budget, weights: &[u64], jobs: usize) -> Vec<Budget> {
    if jobs == 0 {
        return budget.split(1);
    }
    policy.job_slices(budget, weights)
}

/// The summaries of every procedure the component calls outside itself —
/// transitively: context-sensitive resolution re-analyzes callee bodies,
/// so the summaries of *their* callees must be on hand too. Only
/// procedures already present in the table (i.e. already final) are
/// included; the SCC condensation guarantees that covers the whole
/// external cone.
fn external_snapshot(
    module: &Module,
    members: &[usize],
    summaries: &BTreeMap<String, Summary>,
) -> BTreeMap<String, Summary> {
    let mut out = BTreeMap::new();
    let mut work: Vec<String> = Vec::new();
    for &i in members {
        for callee in module.procs[i].callees() {
            if members.iter().any(|&j| module.procs[j].name == callee) {
                continue;
            }
            work.push(callee);
        }
    }
    while let Some(name) = work.pop() {
        if out.contains_key(&name) {
            continue;
        }
        let Some(s) = summaries.get(&name) else {
            continue;
        };
        out.insert(name.clone(), s.clone());
        if let Some(p) = module.get(&name) {
            for callee in p.callees() {
                if !out.contains_key(&callee) {
                    work.push(callee);
                }
            }
        }
    }
    out
}

fn summary_le<D: AbstractDomain>(d: &D, a: &Summary, b: &Summary) -> bool {
    match (&a.exit, &b.exit) {
        (None, _) => true,
        (Some(ca), None) => d.is_bottom(&d.from_conj(ca)),
        (Some(ca), Some(cb)) => d.le(&d.from_conj(ca), &d.from_conj(cb)),
    }
}

fn summary_combine<D: AbstractDomain>(d: &D, old: &Summary, new: &Summary, widen: bool) -> Summary {
    let exit = match (&old.exit, &new.exit) {
        (None, e) | (e, None) => e.clone(),
        (Some(ca), Some(cb)) => {
            let (ea, eb) = (d.from_conj(ca), d.from_conj(cb));
            let combined = if widen {
                d.widen(&ea, &eb)
            } else {
                d.join(&ea, &eb)
            };
            Some(d.to_conj(&combined))
        }
    };
    Summary {
        params: new.params.clone(),
        entry: new.entry.clone(),
        exit,
    }
}

/// One supervised per-procedure pass: everything a single analysis
/// attempt of one procedure produces. The summary here is always the
/// freshly summarized exit; the recursive recording pass substitutes the
/// stable fixpoint summary afterwards.
struct ProcPass {
    summary: Summary,
    assertions: Vec<AssertionOutcome>,
    diverged: bool,
}

/// The sound result for a quarantined procedure: the ⊤ summary (callers
/// havoc), no assertion verdicts, divergence flagged.
fn quarantined_pass(proc: &Procedure) -> ProcPass {
    ProcPass {
        summary: Summary::top(proc.params.clone()),
        assertions: Vec::new(),
        diverged: true,
    }
}

/// Runs one component job under crash supervision. The per-procedure
/// [`supervisor::supervise`] boundary inside [`solve_scc`] absorbs the
/// expected faults; this wrapper is the belt-and-braces layer for a
/// panic in the solver machinery itself: the whole solve gets one fresh
/// re-dispatch, and if that crashes too, every member is quarantined to
/// the sound ⊤ summary so dependents can still be scheduled. Keeping the
/// re-dispatch *inside* the job — rather than replacing worker threads —
/// makes the outcome a pure function of the job's inputs and its budget
/// slice, so it cannot depend on which thread ran the component.
#[allow(clippy::too_many_arguments)] // internal solver shared by both schedulers
fn run_job<D, F>(
    factory: &F,
    module: &Module,
    members: &[usize],
    external: &BTreeMap<String, Summary>,
    seed: &BTreeMap<String, Vec<Summary>>,
    recursive: bool,
    cfg: SolveCfg,
    slice: &Budget,
    ctx_stats: &CtxStats,
    sup_stats: &SupStats,
) -> (Vec<ProcReport>, BTreeMap<String, Vec<Summary>>)
where
    D: AbstractDomain,
    F: Fn(&Budget) -> D + Sync,
{
    let _span = cai_obs::span!(format!(
        "driver/solve-scc/{}",
        members
            .first()
            .map_or("<empty>", |&i| module.procs[i].name.as_str())
    ));
    for attempt in 0..2u32 {
        // Each dispatch accounts into a transactional local counter set,
        // committed only on success: a wholesale crash abandons the
        // dispatch's results, so counting its retries/quarantines would
        // leave the batch stats disagreeing with the final reports.
        let local_stats = SupStats::new();
        let outcome = supervisor::guard(|| {
            solve_scc(
                factory,
                module,
                members,
                external,
                seed,
                recursive,
                cfg,
                slice,
                ctx_stats,
                &local_stats,
            )
        });
        match outcome {
            Ok(result) => {
                sup_stats.absorb(&local_stats);
                return result;
            }
            Err(message) => {
                sup_stats.note_panic();
                for &i in members {
                    slice.incident(Incident {
                        kind: IncidentKind::Panic,
                        subject: module.procs[i].name.clone(),
                        detail: format!("escaped per-procedure supervision: {message}"),
                        attempt,
                    });
                }
                if attempt == 0 {
                    sup_stats.note_retry();
                }
            }
        }
    }
    slice.degrade(
        "driver/supervisor",
        "component solve crashed twice; every member quarantined to \u{22a4}",
    );
    let out = members
        .iter()
        .map(|&i| {
            let proc = &module.procs[i];
            sup_stats.note_quarantined();
            slice.incident(Incident {
                kind: IncidentKind::Quarantine,
                subject: proc.name.clone(),
                detail: "component-level crash; summary pinned to \u{22a4}".to_string(),
                attempt: 1,
            });
            let pass = quarantined_pass(proc);
            ProcReport {
                name: proc.name.clone(),
                summary: pass.summary,
                assertions: pass.assertions,
                diverged: pass.diverged,
                quarantined: true,
            }
        })
        .collect();
    (out, BTreeMap::new())
}

/// Solves one strongly connected component: non-recursive components
/// take a single pass; recursive ones iterate a Jacobi-style summary
/// fixpoint from optimistic ⊥ summaries — join for the first rounds,
/// widening after — and force every member to ⊤ (flagging divergence) if
/// the round cap is hit. A final recording pass under the stable
/// summaries collects assertion verdicts.
///
/// Every per-procedure pass runs under [`supervisor::supervise`]: a
/// panicking analysis is caught, retried with halved fuel, and — past
/// the retry allowance — quarantined, after which the member contributes
/// the sound ⊤ summary to every later round and its report. The SCC
/// fixpoint still converges (⊤ is the lattice top: joins and the
/// stability check are unaffected) and the other members' summaries
/// remain sound, just weaker where they call the quarantined one.
///
/// Under a nonzero context cap, calls to *external* (already final)
/// procedures resolve through a [`ContextResolver`] that specializes the
/// callee on the caller's entry condition; calls within the component
/// keep reading the Jacobi iterates context-insensitively. The job's
/// computed specializations are returned for the incremental cache.
#[allow(clippy::too_many_arguments)] // internal solver shared by both schedulers
fn solve_scc<D, F>(
    factory: &F,
    module: &Module,
    members: &[usize],
    external: &BTreeMap<String, Summary>,
    seed: &BTreeMap<String, Vec<Summary>>,
    recursive: bool,
    cfg: SolveCfg,
    budget: &Budget,
    ctx_stats: &CtxStats,
    sup_stats: &SupStats,
) -> (Vec<ProcReport>, BTreeMap<String, Vec<Summary>>)
where
    D: AbstractDomain,
    F: Fn(&Budget) -> D + Sync,
{
    let domain = factory(budget);
    let d = &domain;
    let watchdog = cfg
        .sup
        .proc_deadline
        .map(|deadline| Watchdog::arm(budget.clone(), deadline, sup_stats.clone()));
    let acfg = AnalysisConfig {
        widen_delay: cfg.widen_delay,
        max_iterations: cfg.max_iterations,
        budget: budget.clone(),
        policy: cfg.policy,
        cache: cfg.cache,
    };
    let ctx_resolver = (cfg.context_cap > 0).then(|| {
        ContextResolver::new(
            d,
            module,
            external,
            seed,
            cfg.context_cap,
            acfg.clone(),
            ctx_stats.clone(),
        )
    });

    // One *attempt* at one procedure: analyze the body (transfers ticking
    // the attempt's budget restriction) and summarize the exit. `local`
    // holds the component members' summaries only (the Jacobi iterates);
    // external summaries are final and read separately.
    let attempt_pass =
        |proc: &Procedure, local: &BTreeMap<String, Summary>, ab: &Budget| -> ProcPass {
            let attempt_cfg = AnalysisConfig {
                widen_delay: cfg.widen_delay,
                max_iterations: cfg.max_iterations,
                budget: ab.clone(),
                policy: cfg.policy,
                cache: cfg.cache,
            };
            let analysis = match &ctx_resolver {
                Some(resolver) => {
                    resolver.set_local(local.clone());
                    Analyzer::new(d)
                        .with_calls(resolver)
                        .with_config(attempt_cfg)
                        .run(&proc.body)
                }
                None => {
                    let mut table = external.clone();
                    for (k, v) in local.iter() {
                        table.insert(k.clone(), v.clone());
                    }
                    let resolver = SummaryResolver::new(&table);
                    let analysis = Analyzer::new(d)
                        .with_calls(&resolver)
                        .with_config(attempt_cfg)
                        .run(&proc.body);
                    analysis
                }
            };
            ProcPass {
                summary: summarize(d, &analysis.exit, proc),
                assertions: analysis.assertions,
                diverged: analysis.diverged,
            }
        };

    // One *supervised* pass: catch/retry/quarantine around the attempt.
    // A member already quarantined earlier in this job skips re-analysis
    // and keeps contributing its ⊤ pin.
    let supervised_pass = |proc: &Procedure,
                           local: &BTreeMap<String, Summary>,
                           quarantined: &mut BTreeSet<String>|
     -> ProcPass {
        if quarantined.contains(&proc.name) {
            return quarantined_pass(proc);
        }
        let _span = cai_obs::span!(format!("analyze/{}", proc.name));
        // Blame scope: every loss the attempt records is attributed to
        // this procedure (loops nest their `loop#N` labels below it).
        let _blame_scope = provenance::scope(|| proc.name.clone());
        let outcome = supervisor::supervise(
            &proc.name,
            &cfg.sup,
            budget,
            sup_stats,
            watchdog.as_ref(),
            |ab| {
                if let Some(resolver) = &ctx_resolver {
                    resolver.reset_in_flight();
                }
                attempt_pass(proc, local, ab)
            },
        );
        match outcome {
            Supervised::Done(pass) => pass,
            Supervised::Quarantined => {
                quarantined.insert(proc.name.clone());
                quarantined_pass(proc)
            }
        }
    };

    let mut quarantined: BTreeSet<String> = BTreeSet::new();
    let mut local: BTreeMap<String, Summary> = BTreeMap::new();
    let mut scc_diverged = false;

    if !recursive {
        // Callees are all external and final: one pass suffices.
        let mut out = Vec::with_capacity(members.len());
        for &i in members {
            let proc = &module.procs[i];
            let pass = supervised_pass(proc, &local, &mut quarantined);
            out.push(ProcReport {
                name: proc.name.clone(),
                summary: pass.summary,
                assertions: pass.assertions,
                diverged: pass.diverged,
                quarantined: quarantined.contains(&proc.name),
            });
        }
        return (out, take_contexts(ctx_resolver));
    }

    for &i in members {
        let proc = &module.procs[i];
        local.insert(proc.name.clone(), Summary::bottom(proc.params.clone()));
    }
    let mut round = 0usize;
    loop {
        round += 1;
        cai_obs::counter!("driver/jacobi/rounds").incr();
        // Losses recorded at this level (e.g. the round-cap degrade
        // below) carry the logical Jacobi round.
        provenance::set_round(round as u64);
        // Jacobi iteration: every member reads the previous round's
        // table, so the result is independent of member order.
        let mut next: Vec<(String, Summary)> = Vec::with_capacity(members.len());
        for &i in members {
            let proc = &module.procs[i];
            let pass = supervised_pass(proc, &local, &mut quarantined);
            next.push((proc.name.clone(), pass.summary));
        }
        let stable = next
            .iter()
            .all(|(name, new)| local.get(name).is_some_and(|old| summary_le(d, new, old)));
        if stable {
            break;
        }
        if round >= cfg.summary_rounds {
            budget.degrade(
                "driver/summary-fixpoint",
                "recursive component hit the round cap; summaries forced to top",
            );
            for &i in members {
                let proc = &module.procs[i];
                local.insert(proc.name.clone(), Summary::top(proc.params.clone()));
            }
            scc_diverged = true;
            break;
        }
        let widen = round > cfg.summary_widen_delay;
        for (name, new) in next {
            let combined = match local.get(&name) {
                Some(old) => summary_combine(d, old, &new, widen),
                None => new,
            };
            local.insert(name, combined);
        }
        if budget.is_exhausted() {
            // Sound bail-out mirroring the intra-procedure loops.
            for &i in members {
                let proc = &module.procs[i];
                local.insert(proc.name.clone(), Summary::top(proc.params.clone()));
            }
            scc_diverged = true;
            break;
        }
    }

    // Recording pass under the stable summaries.
    let mut out = Vec::with_capacity(members.len());
    for &i in members {
        let proc = &module.procs[i];
        let pass = supervised_pass(proc, &local, &mut quarantined);
        let is_quarantined = quarantined.contains(&proc.name);
        let summary = if is_quarantined {
            // The ⊤ pin wins over any stale Jacobi iterate: a quarantine
            // during the fixpoint leaves ⊤ in `local` anyway, and one in
            // the recording pass must still report ⊤ (it is ⊒ the
            // converged summary, so dependents computed against the
            // iterate stay sound).
            Summary::top(proc.params.clone())
        } else {
            match local.get(&proc.name) {
                Some(s) => s.clone(),
                None => pass.summary,
            }
        };
        out.push(ProcReport {
            name: proc.name.clone(),
            summary,
            assertions: pass.assertions,
            diverged: pass.diverged || scc_diverged,
            quarantined: is_quarantined,
        });
    }
    (out, take_contexts(ctx_resolver))
}

/// Mirrors one run's summary-cache traffic and the ctx/sup facade
/// snapshots into the global `cai-obs` registry, so an `--obs-report`
/// sees the driver layer without threading the registry through the
/// schedulers. Cache counters are cumulative across runs, hence the
/// before/after delta.
fn export_run_counters(
    now: &CacheStats,
    before: &CacheStats,
    ctx: &CtxStatsSnapshot,
    sup: &SupStatsSnapshot,
) {
    let delta = |a: u64, b: u64| a.saturating_sub(b);
    cai_obs::counter!("driver/summary-cache/hits").add(delta(now.hits, before.hits));
    cai_obs::counter!("driver/summary-cache/misses").add(delta(now.misses, before.misses));
    cai_obs::counter!("driver/summary-cache/evictions").add(delta(now.evictions, before.evictions));
    cai_obs::counter!("driver/summary-cache/corruptions")
        .add(delta(now.corruptions, before.corruptions));
    cai_obs::counter!("driver/context/contexts-created").add(ctx.contexts_created);
    cai_obs::counter!("driver/context/memo-hits").add(ctx.memo_hits);
    cai_obs::counter!("driver/context/cap-widenings").add(ctx.cap_widenings);
    cai_obs::counter!("driver/context/top-fallbacks").add(ctx.top_fallbacks);
    cai_obs::counter!("driver/supervision/panics-caught").add(sup.panics_caught);
    cai_obs::counter!("driver/supervision/retries").add(sup.retries);
    cai_obs::counter!("driver/supervision/recovered").add(sup.recovered);
    cai_obs::counter!("driver/supervision/stalls").add(sup.stalls);
    cai_obs::counter!("driver/supervision/quarantined").add(sup.quarantined);
}

fn take_contexts<D: AbstractDomain>(
    resolver: Option<ContextResolver<'_, D>>,
) -> BTreeMap<String, Vec<Summary>> {
    match resolver {
        Some(r) => r.into_contexts(),
        None => BTreeMap::new(),
    }
}
