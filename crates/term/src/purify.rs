//! The `Purify` operator of the Nelson–Oppen method (§2, Figure 2).

use crate::atom::{Atom, Conj};
use crate::sig::{classify_atom, AtomSide, Sig};
use crate::term::{Term, TermKind};
use crate::var::Var;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Which half of a two-signature split a term is being purified for.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Side {
    /// The first signature.
    Left,
    /// The second signature.
    Right,
}

impl Side {
    /// The other side.
    pub fn flip(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// The result of purification: `⟨V, E1, E2⟩` in the paper's notation, plus
/// the definition map for the fresh variables.
#[derive(Clone, Debug, Default)]
pub struct Purified {
    /// The fresh variables `V` introduced for alien terms, in introduction
    /// order.
    pub fresh: Vec<Var>,
    /// `E1`: the conjunction of atomic facts over the first signature.
    pub left: Conj,
    /// `E2`: the conjunction of atomic facts over the second signature.
    pub right: Conj,
    /// For each fresh variable, the (pure) term it names. Definitions may
    /// mention later fresh variables' names transitively; use
    /// [`Purified::expand`] to recover the original mixed term.
    pub defs: BTreeMap<Var, Term>,
}

impl Purified {
    /// `E1 ∧ E2` as a single conjunction (a conservative extension of the
    /// purified input).
    pub fn conjoined(&self) -> Conj {
        self.left.and(&self.right)
    }

    /// Recovers the original mixed term denoted by `t` by expanding the
    /// fresh-variable definitions to a fixpoint.
    pub fn expand(&self, t: &Term) -> Term {
        let mut cur = t.clone();
        loop {
            let next = cur.subst(&self.defs);
            if next == cur {
                return cur;
            }
            cur = next;
        }
    }
}

/// One emitted alien-term definition, as recorded by a memoized purifier:
/// the alien term, its stable fresh name, the side that owns (and receives)
/// the definition, and the purified right-hand side of the definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TermDef {
    /// The original (mixed) alien term being named.
    pub term: Term,
    /// The fresh variable naming it.
    pub name: Var,
    /// The side whose signature owns the term's root — the definition
    /// `name = pure` is emitted on this side.
    pub side: Side,
    /// The purified form of the term (may mention earlier entries' names).
    pub pure: Term,
}

/// The self-contained, replayable purification of one alien term: the
/// definitions of all of its transitive alien subterms followed by its own,
/// in first-encounter (post-)order. Replaying the entries into any purifier
/// that shares the same name map reproduces exactly what purifying the term
/// from scratch would have emitted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TermSplit {
    /// `(term, name, side, pure)` per definition; the final entry is the
    /// memoized term itself.
    pub entries: Vec<TermDef>,
}

impl TermSplit {
    /// The fresh name of the memoized term (the final entry's name).
    pub fn name(&self) -> Option<Var> {
        self.entries.last().map(|d| d.name)
    }
}

/// A shared memo consulted by [`Purifier`] for alien terms.
///
/// Implementations live above this crate (the logical product's term memo);
/// the contract they must uphold for purification to stay deterministic:
///
/// - [`name_for`](PurifyMemo::name_for) mints a fresh variable the first
///   time it sees a term and returns **the same variable forever after** —
///   names are never evicted, so a recomputed [`TermSplit`] is bit-identical
///   to the evicted one it replaces.
/// - [`lookup`](PurifyMemo::lookup) must verify the stored term equals `t`
///   (the fingerprint is only a table key; collisions must read as misses).
/// - [`store`](PurifyMemo::store) may drop the payload at will (capacity);
///   dropping payloads is always safe because names persist.
pub trait PurifyMemo: Send + Sync {
    /// The stable fresh name for alien term `t`.
    fn name_for(&self, t: &Term) -> Var;
    /// The memoized split for `t` (keyed by `fp = t.fingerprint()`), if any.
    fn lookup(&self, fp: u64, t: &Term) -> Option<TermSplit>;
    /// Offers the freshly computed split of `t` for memoization.
    fn store(&self, fp: u64, t: &Term, split: &TermSplit);
}

/// Incremental purifier. Useful when an element and a query atom must share
/// the same alien-term naming (as in the combined implication check).
#[derive(Clone)]
pub struct Purifier {
    sig1: Sig,
    sig2: Sig,
    cache: BTreeMap<Term, Var>,
    out: Purified,
    memo: Option<Arc<dyn PurifyMemo>>,
    /// Definitions actually emitted, in order — only maintained in memo
    /// mode, where it is how a nested purifier's work is captured into a
    /// self-contained [`TermSplit`].
    record: Vec<TermDef>,
}

impl fmt::Debug for Purifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Purifier")
            .field("sig1", &self.sig1)
            .field("sig2", &self.sig2)
            .field("cache", &self.cache)
            .field("out", &self.out)
            .field("memoized", &self.memo.is_some())
            .finish()
    }
}

impl Purifier {
    /// Creates a purifier for the split `(sig1, sig2)`.
    pub fn new(sig1: &Sig, sig2: &Sig) -> Purifier {
        Purifier {
            sig1: sig1.clone(),
            sig2: sig2.clone(),
            cache: BTreeMap::new(),
            out: Purified::default(),
            memo: None,
            record: Vec::new(),
        }
    }

    /// Attaches a shared alien-term memo. Alien names are then minted by
    /// [`PurifyMemo::name_for`] (stable across purifier instances) and the
    /// per-term splits are looked up/stored through the memo instead of
    /// being recomputed. Without a memo, behavior is byte-identical to the
    /// plain purifier.
    pub fn memoized(mut self, memo: Arc<dyn PurifyMemo>) -> Purifier {
        self.memo = Some(memo);
        self
    }

    fn sig(&self, side: Side) -> &Sig {
        match side {
            Side::Left => &self.sig1,
            Side::Right => &self.sig2,
        }
    }

    fn push_def(&mut self, side: Side, atom: Atom) {
        match side {
            Side::Left => self.out.left.push(atom),
            Side::Right => self.out.right.push(atom),
        };
    }

    /// Purifies `t` for use in a `host`-side context. Alien subterms are
    /// replaced by fresh variables whose definitions are emitted on the
    /// owning side.
    ///
    /// # Panics
    ///
    /// Panics if a subterm's root symbol is owned by neither signature.
    pub fn purify_term(&mut self, t: &Term, host: Side) -> Term {
        if matches!(t.kind(), TermKind::Var(_)) {
            return t.clone();
        }
        if self.sig(host).owns_root(t) {
            // Root is fine here; recurse into children.
            return match t.kind() {
                TermKind::Var(_) => unreachable!("handled above"),
                TermKind::App(f, args) => {
                    Term::app(*f, args.iter().map(|a| self.purify_term(a, host)).collect())
                }
                TermKind::Lin(e) => {
                    let mut acc = crate::lin::LinExpr::constant(e.constant_part().clone());
                    for (atom, coeff) in e.iter() {
                        let p = self.purify_term(atom, host);
                        acc = acc.add(&p.to_lin().scale(coeff));
                    }
                    Term::lin(acc)
                }
            };
        }
        // Alien: abstract the whole subterm by a (cached) fresh variable.
        if let Some(&v) = self.cache.get(t) {
            return Term::var(v);
        }
        let owner = host.flip();
        assert!(
            self.sig(owner).owns_root(t),
            "term `{t}` is owned by neither {} nor {}",
            self.sig1,
            self.sig2
        );
        if let Some(memo) = self.memo.clone() {
            let fp = t.fingerprint();
            let split = match memo.lookup(fp, t) {
                Some(split) => split,
                None => {
                    let split = self.compute_split(t, owner, &memo);
                    memo.store(fp, t, &split);
                    split
                }
            };
            if let Some(v) = self.replay(&split) {
                return Term::var(v);
            }
            // Defensive: an empty split (a defective memo) falls through to
            // the unmemoized path below.
        }
        let pure = self.purify_term(t, owner);
        let v = Var::fresh("t");
        self.cache.insert(t.clone(), v);
        self.out.fresh.push(v);
        self.out.defs.insert(v, pure.clone());
        self.push_def(owner, Atom::eq(Term::var(v), pure));
        Term::var(v)
    }

    /// Computes the self-contained split of alien term `t` in a scratch
    /// purifier (so the entry list carries the definitions of *all*
    /// transitive alien subterms, even ones this purifier has already
    /// emitted — a later replay into a fresh purifier must not find holes).
    fn compute_split(&self, t: &Term, owner: Side, memo: &Arc<dyn PurifyMemo>) -> TermSplit {
        let mut sub = Purifier::new(&self.sig1, &self.sig2).memoized(Arc::clone(memo));
        let pure = sub.purify_term(t, owner);
        let name = memo.name_for(t);
        let mut entries = sub.record;
        entries.push(TermDef {
            term: t.clone(),
            name,
            side: owner,
            pure,
        });
        TermSplit { entries }
    }

    /// Replays a memoized split into this purifier, emitting exactly the
    /// definitions the unmemoized purifier would have emitted here: entries
    /// already named locally are skipped, the rest are emitted in the
    /// split's (first-encounter) order. Returns the name of the split's own
    /// term.
    fn replay(&mut self, split: &TermSplit) -> Option<Var> {
        for d in &split.entries {
            if self.cache.contains_key(&d.term) {
                continue;
            }
            self.cache.insert(d.term.clone(), d.name);
            self.out.fresh.push(d.name);
            self.out.defs.insert(d.name, d.pure.clone());
            self.push_def(d.side, Atom::eq(Term::var(d.name), d.pure.clone()));
            self.record.push(d.clone());
        }
        split.name()
    }

    /// Purifies one atomic fact, appending the result (and any definitions)
    /// to the appropriate side(s).
    pub fn add_atom(&mut self, atom: &Atom) {
        match classify_atom(atom, &self.sig1, &self.sig2) {
            AtomSide::Both => {
                if self.sig1.owns_atom(atom) && self.sig2.owns_atom(atom) {
                    self.out.left.push(atom.clone());
                    self.out.right.push(atom.clone());
                    return;
                }
                // Top-level shared but contains foreign symbols: host left.
                self.host_atom(atom, Side::Left);
            }
            AtomSide::Left => self.host_atom(atom, Side::Left),
            AtomSide::Right => self.host_atom(atom, Side::Right),
        }
    }

    fn host_atom(&mut self, atom: &Atom, host: Side) {
        let owned: Vec<Term> = atom.args().into_iter().cloned().collect();
        let args = owned.iter().map(|t| self.purify_term(t, host)).collect();
        let pure = atom.with_args(args);
        self.push_def(host, pure);
    }

    /// Purifies an atom *without* adding it to either side — only the
    /// definitions of its alien subterms are emitted. Returns the side that
    /// hosts the atom together with its purified form.
    ///
    /// This is how a query atom is prepared for an implication check
    /// against an already-purified element: alien terms shared with the
    /// element reuse the element's fresh names (the purifier caches them),
    /// which is what makes the Nelson–Oppen exchange complete.
    pub fn purify_atom(&mut self, atom: &Atom) -> (crate::sig::AtomSide, Atom) {
        let side = classify_atom(atom, &self.sig1, &self.sig2);
        if side == AtomSide::Both && self.sig1.owns_atom(atom) && self.sig2.owns_atom(atom) {
            return (AtomSide::Both, atom.clone());
        }
        let host = match side {
            AtomSide::Right => Side::Right,
            _ => Side::Left,
        };
        let owned: Vec<Term> = atom.args().into_iter().cloned().collect();
        let args = owned.iter().map(|t| self.purify_term(t, host)).collect();
        let pure = atom.with_args(args);
        let out_side = match host {
            Side::Left => AtomSide::Left,
            Side::Right => AtomSide::Right,
        };
        (out_side, pure)
    }

    /// Purifies every atom of a conjunction.
    pub fn add_conj(&mut self, e: &Conj) {
        for atom in e {
            self.add_atom(atom);
        }
    }

    /// Finishes, returning the purified split.
    pub fn finish(self) -> Purified {
        self.out
    }

    /// Read access to the in-progress result.
    pub fn current(&self) -> &Purified {
        &self.out
    }
}

/// `Purify(E)` for the split `(sig1, sig2)`: decomposes a conjunction of
/// mixed atomic facts into pure conjunctions `E1` (over `sig1`) and `E2`
/// (over `sig2`), introducing fresh variables for alien terms
/// (§2, Figure 2 of the paper). `E1 ∧ E2` is a conservative extension
/// of `E`.
pub fn purify(e: &Conj, sig1: &Sig, sig2: &Sig) -> Purified {
    let mut p = Purifier::new(sig1, sig2);
    p.add_conj(e);
    p.finish()
}

/// [`purify`] with a shared alien-term memo: fresh names come from the
/// memo's stable name map and per-term splits are reused across calls. The
/// output is the same as `purify` up to the choice of fresh names (which
/// are internal — callers eliminate them before results escape).
pub fn purify_memoized(e: &Conj, sig1: &Sig, sig2: &Sig, memo: Arc<dyn PurifyMemo>) -> Purified {
    let mut p = Purifier::new(sig1, sig2).memoized(memo);
    p.add_conj(e);
    p.finish()
}

/// Purifies a single term for a `host`-side context, returning the pure
/// term together with the split carrying the emitted definitions.
pub fn purify_term(t: &Term, host_sig: &Sig, other_sig: &Sig) -> (Term, Purified) {
    let mut p = Purifier::new(host_sig, other_sig);
    let pure = p.purify_term(t, Side::Left);
    (pure, p.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Vocab;
    use crate::sym::TheoryTag;

    fn lin() -> Sig {
        Sig::single(TheoryTag::LINARITH)
    }

    fn uf() -> Sig {
        Sig::single(TheoryTag::UF)
    }

    #[test]
    fn figure2_purification_shape() {
        let vocab = Vocab::standard();
        let e = vocab
            .parse_conj("x3 <= F(2*x2 - x1) & x3 >= x1 & x1 = F(x1) & x2 = F(F(x1))")
            .unwrap();
        let p = purify(&e, &lin(), &uf());
        // Two fresh variables: t1 = 2*x2 - x1 (left), t2 = F(t1) (right).
        assert_eq!(p.fresh.len(), 2, "left: {} | right: {}", p.left, p.right);
        let (t1, t2) = (p.fresh[0], p.fresh[1]);
        assert_eq!(p.defs[&t1].to_string(), "2*x2 - x1");
        assert_eq!(p.defs[&t2].to_string(), format!("F({t1})"));
        // E1 mentions only linear structure, E2 only UF structure.
        assert!(p.left.iter().all(|a| lin().owns_atom(a)), "E1 = {}", p.left);
        assert!(
            p.right.iter().all(|a| uf().owns_atom(a)),
            "E2 = {}",
            p.right
        );
        assert_eq!(p.left.len(), 3); // def + two inequalities
        assert_eq!(p.right.len(), 3); // def + two equalities
    }

    #[test]
    fn purification_is_conservative_syntactically() {
        let vocab = Vocab::standard();
        let e = vocab.parse_conj("x = F(y + 1) & y = x - 2").unwrap();
        let p = purify(&e, &lin(), &uf());
        // Expanding definitions in E1 ∧ E2 recovers facts over the original
        // variables.
        for atom in &p.conjoined() {
            let args: Vec<Term> = atom.args().into_iter().map(|t| p.expand(t)).collect();
            let expanded = atom.with_args(args);
            let evars = expanded.vars();
            for v in &evars {
                assert!(
                    !p.fresh.contains(v),
                    "expanded atom {expanded} still mentions fresh {v}"
                );
            }
        }
    }

    #[test]
    fn alien_cache_dedups() {
        let vocab = Vocab::standard();
        // F(y+1) occurs twice; only one fresh variable for y+1 and the
        // definitions are shared.
        let e = vocab.parse_conj("x = F(y + 1) & z = F(y + 1) + 2").unwrap();
        let p = purify(&e, &lin(), &uf());
        assert_eq!(p.fresh.len(), 2, "{:?}", p.defs);
    }

    #[test]
    fn var_equality_goes_to_both_sides() {
        let vocab = Vocab::standard();
        let e = vocab.parse_conj("x = y").unwrap();
        let p = purify(&e, &lin(), &uf());
        assert_eq!(p.left.to_string(), "x = y");
        assert_eq!(p.right.to_string(), "x = y");
        assert!(p.fresh.is_empty());
    }

    #[test]
    fn parity_sign_share_linear_facts() {
        let parity = Sig::single(TheoryTag::PARITY);
        let sign = Sig::single(TheoryTag::SIGN);
        let vocab = Vocab::standard();
        let e = vocab
            .parse_conj("even(x0) & positive(x0) & x = x0 - 1")
            .unwrap();
        let p = purify(&e, &parity, &sign);
        // The linear fact is understood by both theories; predicates split.
        assert_eq!(p.left.to_string(), "even(x0) & x = x0 - 1");
        assert_eq!(p.right.to_string(), "positive(x0) & x = x0 - 1");
    }

    #[test]
    fn deep_alternation() {
        let vocab = Vocab::standard();
        let e = vocab.parse_conj("x = F(1 + F(2 + F(y)))").unwrap();
        let p = purify(&e, &lin(), &uf());
        // F(y) -> v1 (rhs def), 2 + v1 -> v2 (lhs def), F(v2) -> v3, 1 + v3
        // -> v4; atom x = F(v4) on UF side.
        assert_eq!(p.fresh.len(), 4);
        assert!(p.left.iter().all(|a| lin().owns_atom(a)));
        assert!(p.right.iter().all(|a| uf().owns_atom(a)));
    }
}
