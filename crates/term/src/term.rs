//! Mixed-theory terms with a normalized linear layer.

use crate::lin::LinExpr;
use crate::sym::FnSym;
use crate::var::{Var, VarSet};
use cai_num::{Int, Rat};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The shape of a [`Term`].
///
/// Values of this enum are only created through `Term`'s smart
/// constructors, which maintain the normalization invariants documented on
/// [`Term`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TermKind {
    /// A variable.
    Var(Var),
    /// An application of a theory function symbol (uninterpreted functions,
    /// list constructors/selectors, ...).
    App(FnSym, Vec<Term>),
    /// A normalized linear-arithmetic combination of non-arithmetic terms.
    Lin(LinExpr),
}

/// An immutable, cheaply clonable term over the union of theories.
///
/// # Normalization invariants
///
/// - Arithmetic structure is flattened into [`LinExpr`]: nested sums,
///   differences and scalar multiples are combined, so `x + x` and `2*x`
///   are the *same* term.
/// - A `Lin` node never wraps a bare atom (a `Lin` with zero constant and a
///   single coefficient-1 atom is collapsed to the atom itself), and the
///   atoms inside a `LinExpr` are never themselves `Lin` nodes.
///
/// Structural equality therefore coincides with equality modulo the
/// arithmetic normalization, which is what the purification and
/// alien-term machinery relies on.
///
/// ```
/// use cai_term::{Term, Var, FnSym};
/// let x = Term::var(Var::named("x"));
/// let fx = Term::app(FnSym::uf("F", 1), vec![x.clone()]);
/// let twice = Term::add(&fx, &fx);
/// assert_eq!(twice, Term::scale(&"2".parse().unwrap(), &fx));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Term(Arc<TermKind>);

impl Term {
    /// A variable term.
    pub fn var(v: Var) -> Term {
        Term(Arc::new(TermKind::Var(v)))
    }

    /// A variable term, interning the name.
    pub fn var_named(name: &str) -> Term {
        Term::var(Var::named(name))
    }

    /// An integer constant.
    pub fn int(v: i64) -> Term {
        Term::constant(Rat::from(v))
    }

    /// A rational constant.
    pub fn constant(c: Rat) -> Term {
        Term(Arc::new(TermKind::Lin(LinExpr::constant(c))))
    }

    /// An application `f(args)`.
    ///
    /// # Panics
    ///
    /// Panics if `args.len()` differs from the symbol's arity.
    pub fn app(f: FnSym, args: Vec<Term>) -> Term {
        assert_eq!(
            args.len(),
            f.arity(),
            "arity mismatch applying {:?} to {} arguments",
            f,
            args.len()
        );
        Term(Arc::new(TermKind::App(f, args)))
    }

    /// Builds a term from a linear expression, collapsing trivial wrappers.
    pub fn lin(e: LinExpr) -> Term {
        if let Some(atom) = e.as_single_atom() {
            return atom.clone();
        }
        Term(Arc::new(TermKind::Lin(e)))
    }

    /// The term's shape.
    pub fn kind(&self) -> &TermKind {
        &self.0
    }

    /// Returns the variable if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self.kind() {
            TermKind::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the constant value if this term is one.
    pub fn as_constant(&self) -> Option<&Rat> {
        match self.kind() {
            TermKind::Lin(e) => e.as_constant(),
            _ => None,
        }
    }

    /// Views the term as a linear expression (a non-`Lin` term becomes a
    /// single coefficient-1 atom).
    pub fn to_lin(&self) -> LinExpr {
        match self.kind() {
            TermKind::Lin(e) => e.clone(),
            _ => LinExpr::atom(self.clone()),
        }
    }

    /// The sum of two terms.
    pub fn add(a: &Term, b: &Term) -> Term {
        Term::lin(a.to_lin().add(&b.to_lin()))
    }

    /// The difference of two terms.
    pub fn sub(a: &Term, b: &Term) -> Term {
        Term::lin(a.to_lin().sub(&b.to_lin()))
    }

    /// The negation of a term.
    pub fn neg(a: &Term) -> Term {
        Term::lin(a.to_lin().scale(&-Rat::one()))
    }

    /// A scalar multiple of a term.
    pub fn scale(c: &Rat, a: &Term) -> Term {
        Term::lin(a.to_lin().scale(c))
    }

    /// Collects the variables occurring in the term into `out`.
    pub fn collect_vars(&self, out: &mut VarSet) {
        match self.kind() {
            TermKind::Var(v) => {
                out.insert(*v);
            }
            TermKind::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            TermKind::Lin(e) => {
                for (atom, _) in e.iter() {
                    atom.collect_vars(out);
                }
            }
        }
    }

    /// The set of variables occurring in the term.
    pub fn vars(&self) -> VarSet {
        let mut s = VarSet::new();
        self.collect_vars(&mut s);
        s
    }

    /// Returns `true` if any variable of `vars` occurs in the term.
    pub fn mentions_any(&self, vars: &VarSet) -> bool {
        match self.kind() {
            TermKind::Var(v) => vars.contains(v),
            TermKind::App(_, args) => args.iter().any(|a| a.mentions_any(vars)),
            TermKind::Lin(e) => e.iter().any(|(a, _)| a.mentions_any(vars)),
        }
    }

    /// Capture-free simultaneous substitution of variables by terms,
    /// renormalizing the arithmetic layer.
    pub fn subst(&self, map: &BTreeMap<Var, Term>) -> Term {
        if map.is_empty() {
            return self.clone();
        }
        match self.kind() {
            TermKind::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            TermKind::App(f, args) => Term::app(*f, args.iter().map(|a| a.subst(map)).collect()),
            TermKind::Lin(e) => {
                let mut acc = LinExpr::constant(e.constant_part().clone());
                for (atom, coeff) in e.iter() {
                    let replaced = atom.subst(map);
                    acc = acc.add(&replaced.to_lin().scale(coeff));
                }
                Term::lin(acc)
            }
        }
    }

    /// Replaces every occurrence of the (whole) term `from` by `to`,
    /// bottom-up, renormalizing arithmetic.
    pub fn replace_term(&self, from: &Term, to: &Term) -> Term {
        if self == from {
            return to.clone();
        }
        match self.kind() {
            TermKind::Var(_) => self.clone(),
            TermKind::App(f, args) => {
                let t = Term::app(*f, args.iter().map(|a| a.replace_term(from, to)).collect());
                if &t == from {
                    to.clone()
                } else {
                    t
                }
            }
            TermKind::Lin(e) => {
                let mut acc = LinExpr::constant(e.constant_part().clone());
                for (atom, coeff) in e.iter() {
                    let replaced = atom.replace_term(from, to);
                    acc = acc.add(&replaced.to_lin().scale(coeff));
                }
                let t = Term::lin(acc);
                if &t == from {
                    to.clone()
                } else {
                    t
                }
            }
        }
    }

    /// The number of nodes in the term (used for size metrics and for
    /// choosing minimal representatives).
    pub fn size(&self) -> usize {
        match self.kind() {
            TermKind::Var(_) => 1,
            TermKind::App(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
            TermKind::Lin(e) => 1 + e.iter().map(|(a, _)| a.size()).sum::<usize>(),
        }
    }

    /// A structural fingerprint for in-process memo tables (see the
    /// [`fingerprint`](crate::fingerprint) docs for the guarantees).
    pub fn fingerprint(&self) -> u64 {
        crate::fingerprint::fingerprint(self)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::var(v)
    }
}

impl From<i64> for Term {
    fn from(v: i64) -> Term {
        Term::int(v)
    }
}

impl From<Rat> for Term {
    fn from(c: Rat) -> Term {
        Term::constant(c)
    }
}

impl From<Int> for Term {
    fn from(c: Int) -> Term {
        Term::constant(Rat::from(c))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            TermKind::Var(v) => write!(f, "{v}"),
            TermKind::App(g, args) => {
                write!(f, "{}", g.name())?;
                f.write_str("(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            TermKind::Lin(e) => write!(f, "{e}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::TheoryTag;

    fn v(n: &str) -> Term {
        Term::var_named(n)
    }

    #[test]
    fn arithmetic_normalizes() {
        let x = v("x");
        let y = v("y");
        // x + y - x == y (collapses to the bare variable)
        let t = Term::sub(&Term::add(&x, &y), &x);
        assert_eq!(t, y);
        // 2*(x + 1) == 2x + 2
        let two = Rat::from(2i64);
        let t2 = Term::scale(&two, &Term::add(&x, &Term::int(1)));
        assert_eq!(t2.to_string(), "2*x + 2");
    }

    #[test]
    fn uf_terms_are_atoms_of_lin() {
        let f = FnSym::uf("F", 1);
        let fx = Term::app(f, vec![v("x")]);
        let sum = Term::add(&fx, &fx);
        assert_eq!(sum.to_string(), "2*F(x)");
        assert_eq!(
            Term::sub(&sum, &Term::scale(&Rat::from(2i64), &fx)),
            Term::int(0)
        );
    }

    #[test]
    fn subst_renormalizes() {
        let x = Var::named("x");
        let t = Term::add(&Term::var(x), &v("y")); // x + y
        let mut m = BTreeMap::new();
        m.insert(x, Term::sub(&v("z"), &v("y"))); // x := z - y
        assert_eq!(t.subst(&m), v("z"));
    }

    #[test]
    fn subst_under_apps() {
        let f = FnSym::uf("F", 1);
        let x = Var::named("x");
        let t = Term::app(f, vec![Term::add(&Term::var(x), &Term::int(1))]);
        let mut m = BTreeMap::new();
        m.insert(x, Term::int(4));
        assert_eq!(t.subst(&m).to_string(), "F(5)");
    }

    #[test]
    fn replace_term_rebuilds() {
        let f = FnSym::uf("F", 1);
        let fx = Term::app(f, vec![v("x")]);
        let t = Term::add(&fx, &v("y")); // F(x) + y
        let r = t.replace_term(&fx, &v("z"));
        assert_eq!(r.to_string(), "y + z");
    }

    #[test]
    fn vars_and_size() {
        let f = FnSym::uf("G", 2);
        let t = Term::app(f, vec![v("a"), Term::add(&v("b"), &Term::int(3))]);
        let vars: Vec<&str> = t.vars().iter().map(|v| v.name()).collect();
        assert_eq!(vars, ["a", "b"]);
        assert!(t.size() >= 4);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let f = FnSym::new("H", 2, TheoryTag::UF);
        let _ = Term::app(f, vec![v("x")]);
    }
}
