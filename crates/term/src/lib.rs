//! Terms, atomic facts, and the Nelson–Oppen purification substrate.
//!
//! This crate implements the syntactic layer of *Combining Abstract
//! Interpreters* (Gulwani & Tiwari, PLDI 2006):
//!
//! - interned [`Var`]iables with fresh-name generation,
//! - theory-tagged function and predicate symbols ([`FnSym`], [`PredSym`],
//!   [`TheoryTag`]),
//! - mixed-theory [`Term`]s with a *normalized* linear-arithmetic layer
//!   ([`LinExpr`]), so `F(x) + F(x) - x` canonicalizes to `2·F(x) - x`,
//! - atomic facts ([`Atom`]) and finite conjunctions ([`Conj`]) — the
//!   elements of the paper's *logical lattices*,
//! - signatures ([`Sig`]) and the two syntactic operators of the paper's
//!   Section 2: [`alien_terms`] and [`purify`] (Figure 2), and
//! - a small text parser ([`parse::Vocab`]) used by tests, examples and the
//!   program front-end.
//!
//! # Examples
//!
//! Purifying the conjunction from the paper's Figure 2:
//!
//! ```
//! use cai_term::parse::Vocab;
//! use cai_term::{purify, Sig, TheoryTag};
//!
//! let vocab = Vocab::standard();
//! let e = vocab.parse_conj(
//!     "x3 <= F(2*x2 - x1) & x3 >= x1 & x1 = F(x1) & x2 = F(F(x1))",
//! )?;
//! let lin = Sig::single(TheoryTag::LINARITH);
//! let uf = Sig::single(TheoryTag::UF);
//! let p = purify(&e, &lin, &uf);
//! assert_eq!(p.fresh.len(), 2); // t1 = 2*x2 - x1 and t2 = F(t1)
//! # Ok::<(), cai_term::parse::ParseError>(())
//! ```

mod atom;
mod fingerprint;
mod lin;
pub mod parse;
mod purify;
mod sig;
mod sym;
mod term;
mod var;

pub use atom::{Atom, Conj};
pub use fingerprint::{fingerprint, Fnv1a};
pub use lin::LinExpr;
pub use purify::{
    purify, purify_memoized, purify_term, Purified, Purifier, PurifyMemo, Side, TermDef, TermSplit,
};
pub use sig::{alien_terms, classify_atom, term_root, AtomSide, Sig, TermRoot};
pub use sym::{FnSym, PredSym, TheoryTag};
pub use term::{Term, TermKind};
pub use var::{Var, VarSet};
