//! Atomic facts and finite conjunctions — the elements of logical lattices.

use crate::sym::PredSym;
use crate::term::Term;
use crate::var::{Var, VarSet};
use std::collections::BTreeMap;
use std::fmt;

/// An atomic fact over the combined theory.
///
/// Equality and `<=` are structural; the remaining unary predicates
/// (`even`, `odd`, `positive`, `negative`) are carried by [`PredSym`].
///
/// ```
/// use cai_term::{Atom, Term};
/// let a = Atom::le(Term::var_named("x"), Term::var_named("y"));
/// assert_eq!(a.to_string(), "x <= y");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// `s = t`.
    Eq(Term, Term),
    /// `s <= t`.
    Le(Term, Term),
    /// `p(t)` for a unary theory predicate.
    Pred(PredSym, Term),
}

impl Atom {
    /// The equality `s = t`.
    pub fn eq(s: Term, t: Term) -> Atom {
        Atom::Eq(s, t)
    }

    /// The inequality `s <= t`.
    pub fn le(s: Term, t: Term) -> Atom {
        Atom::Le(s, t)
    }

    /// The strict inequality `s < t`, encoded for integer-valued programs as
    /// `s + 1 <= t`.
    ///
    /// The base domains are rational relaxations, so this encoding is sound
    /// (and standard) for programs whose variables range over the integers.
    pub fn lt(s: Term, t: Term) -> Atom {
        Atom::Le(Term::add(&s, &Term::int(1)), t)
    }

    /// The predicate application `p(t)`.
    pub fn pred(p: PredSym, t: Term) -> Atom {
        Atom::Pred(p, t)
    }

    /// The variable equality `x = y`.
    pub fn var_eq(x: Var, y: Var) -> Atom {
        Atom::Eq(Term::var(x), Term::var(y))
    }

    /// The negation of the atom, if it is itself expressible as an atom
    /// (used for the `false` branch of conditionals, Figure 5(c)).
    ///
    /// - `¬(s <= t)` is `t + 1 <= s` (integer-valued programs),
    /// - `¬even(t)` is `odd(t)` and vice versa,
    /// - `¬(s = t)` and the sign predicates have no atomic negation and
    ///   yield `None`.
    pub fn negate(&self) -> Option<Atom> {
        match self {
            Atom::Eq(..) => None,
            Atom::Le(s, t) => Some(Atom::lt(t.clone(), s.clone())),
            Atom::Pred(PredSym::Even, t) => Some(Atom::Pred(PredSym::Odd, t.clone())),
            Atom::Pred(PredSym::Odd, t) => Some(Atom::Pred(PredSym::Even, t.clone())),
            Atom::Pred(_, _) => None,
        }
    }

    /// The terms directly under the atom.
    pub fn args(&self) -> Vec<&Term> {
        match self {
            Atom::Eq(s, t) | Atom::Le(s, t) => vec![s, t],
            Atom::Pred(_, t) => vec![t],
        }
    }

    /// Rebuilds the atom with new arguments (same shape).
    ///
    /// # Panics
    ///
    /// Panics if `args` has the wrong length for the atom's shape.
    pub fn with_args(&self, mut args: Vec<Term>) -> Atom {
        match self {
            Atom::Eq(..) => {
                assert_eq!(args.len(), 2, "Eq expects 2 arguments");
                let t = args.pop().expect("len checked");
                let s = args.pop().expect("len checked");
                Atom::Eq(s, t)
            }
            Atom::Le(..) => {
                assert_eq!(args.len(), 2, "Le expects 2 arguments");
                let t = args.pop().expect("len checked");
                let s = args.pop().expect("len checked");
                Atom::Le(s, t)
            }
            Atom::Pred(p, _) => {
                assert_eq!(args.len(), 1, "Pred expects 1 argument");
                Atom::Pred(*p, args.pop().expect("len checked"))
            }
        }
    }

    /// Collects the variables of the atom into `out`.
    pub fn collect_vars(&self, out: &mut VarSet) {
        for t in self.args() {
            t.collect_vars(out);
        }
    }

    /// The set of variables of the atom.
    pub fn vars(&self) -> VarSet {
        let mut s = VarSet::new();
        self.collect_vars(&mut s);
        s
    }

    /// Returns `true` if any variable of `vars` occurs in the atom.
    pub fn mentions_any(&self, vars: &VarSet) -> bool {
        self.args().iter().any(|t| t.mentions_any(vars))
    }

    /// Simultaneous substitution of variables by terms.
    pub fn subst(&self, map: &BTreeMap<Var, Term>) -> Atom {
        self.with_args(self.args().into_iter().map(|t| t.subst(map)).collect())
    }

    /// Replaces every occurrence of `from` by `to` in the atom's arguments.
    pub fn replace_term(&self, from: &Term, to: &Term) -> Atom {
        self.with_args(
            self.args()
                .into_iter()
                .map(|t| t.replace_term(from, to))
                .collect(),
        )
    }

    /// A trivially true atom? Equality between identical terms is the only
    /// syntactic tautology we recognize.
    pub fn is_trivial(&self) -> bool {
        match self {
            Atom::Eq(s, t) => s == t,
            Atom::Le(s, t) => {
                s == t
                    || match (s.as_constant(), t.as_constant()) {
                        (Some(a), Some(b)) => a <= b,
                        _ => false,
                    }
            }
            Atom::Pred(..) => false,
        }
    }

    /// The total number of term nodes in the atom (size metric).
    pub fn size(&self) -> usize {
        self.args().iter().map(|t| t.size()).sum()
    }

    /// A structural fingerprint for in-process memo tables (see the
    /// [`fingerprint`](crate::fingerprint) docs for the guarantees).
    pub fn fingerprint(&self) -> u64 {
        crate::fingerprint::fingerprint(self)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Eq(s, t) => write!(f, "{s} = {t}"),
            Atom::Le(s, t) => write!(f, "{s} <= {t}"),
            Atom::Pred(p, t) => write!(f, "{p}({t})"),
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A finite conjunction of atomic facts — an element of a logical lattice
/// (Definition 1 of the paper).
///
/// `Conj` keeps insertion order (for readable display and faithful traces)
/// but deduplicates structurally equal atoms and drops syntactic
/// tautologies.
///
/// ```
/// use cai_term::{Atom, Conj, Term};
/// let x = Term::var_named("x");
/// let y = Term::var_named("y");
/// let mut c = Conj::new();
/// c.push(Atom::eq(x.clone(), y.clone()));
/// c.push(Atom::eq(x.clone(), y.clone())); // deduplicated
/// c.push(Atom::eq(x.clone(), x.clone())); // trivial, dropped
/// assert_eq!(c.len(), 1);
/// assert_eq!(c.to_string(), "x = y");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Conj {
    atoms: Vec<Atom>,
}

impl Conj {
    /// The empty conjunction (`true`).
    pub fn new() -> Conj {
        Conj::default()
    }

    /// A conjunction of one atom.
    pub fn of(atom: Atom) -> Conj {
        let mut c = Conj::new();
        c.push(atom);
        c
    }

    /// Returns `true` if the conjunction is empty (i.e. `true`).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Adds an atom, deduplicating and dropping tautologies. Returns `true`
    /// if the conjunction changed.
    pub fn push(&mut self, atom: Atom) -> bool {
        if atom.is_trivial() || self.atoms.contains(&atom) {
            return false;
        }
        self.atoms.push(atom);
        true
    }

    /// Conjoins all atoms of `other` into `self`.
    pub fn extend_from(&mut self, other: &Conj) {
        for a in &other.atoms {
            self.push(a.clone());
        }
    }

    /// The conjunction `self ∧ other`.
    pub fn and(&self, other: &Conj) -> Conj {
        let mut out = self.clone();
        out.extend_from(other);
        out
    }

    /// Iterates over the atoms.
    pub fn iter(&self) -> std::slice::Iter<'_, Atom> {
        self.atoms.iter()
    }

    /// The atoms as a slice.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The set of variables occurring in the conjunction.
    pub fn vars(&self) -> VarSet {
        let mut s = VarSet::new();
        for a in &self.atoms {
            a.collect_vars(&mut s);
        }
        s
    }

    /// Applies a substitution to every atom.
    pub fn subst(&self, map: &BTreeMap<Var, Term>) -> Conj {
        self.atoms.iter().map(|a| a.subst(map)).collect()
    }

    /// The total size (term nodes) of the conjunction.
    pub fn size(&self) -> usize {
        self.atoms.iter().map(Atom::size).sum()
    }

    /// A structural fingerprint of the conjunction, atom order included —
    /// the cache key of the logical product's purification memo (see the
    /// [`fingerprint`](crate::fingerprint) docs for the guarantees).
    pub fn fingerprint(&self) -> u64 {
        crate::fingerprint::fingerprint(self)
    }
}

impl FromIterator<Atom> for Conj {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Conj {
        let mut c = Conj::new();
        for a in iter {
            c.push(a);
        }
        c
    }
}

impl Extend<Atom> for Conj {
    fn extend<I: IntoIterator<Item = Atom>>(&mut self, iter: I) {
        for a in iter {
            self.push(a);
        }
    }
}

impl IntoIterator for Conj {
    type Item = Atom;
    type IntoIter = std::vec::IntoIter<Atom>;
    fn into_iter(self) -> Self::IntoIter {
        self.atoms.into_iter()
    }
}

impl<'a> IntoIterator for &'a Conj {
    type Item = &'a Atom;
    type IntoIter = std::slice::Iter<'a, Atom>;
    fn into_iter(self) -> Self::IntoIter {
        self.atoms.iter()
    }
}

impl fmt::Display for Conj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(" & ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Conj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::var_named(n)
    }

    #[test]
    fn negate_le_is_integer_complement() {
        let a = Atom::le(v("x"), v("y"));
        assert_eq!(a.negate().unwrap().to_string(), "y + 1 <= x");
    }

    #[test]
    fn negate_parity_flips() {
        let a = Atom::pred(PredSym::Even, v("x"));
        assert_eq!(a.negate().unwrap(), Atom::pred(PredSym::Odd, v("x")));
        assert_eq!(a.negate().unwrap().negate().unwrap(), a);
    }

    #[test]
    fn negate_eq_and_sign_have_no_atom() {
        assert!(Atom::eq(v("x"), v("y")).negate().is_none());
        assert!(Atom::pred(PredSym::Positive, v("x")).negate().is_none());
    }

    #[test]
    fn trivial_atoms() {
        assert!(Atom::eq(v("x"), v("x")).is_trivial());
        assert!(Atom::le(Term::int(1), Term::int(2)).is_trivial());
        assert!(!Atom::le(Term::int(2), Term::int(1)).is_trivial());
        assert!(!Atom::eq(v("x"), v("y")).is_trivial());
    }

    #[test]
    fn conj_subst() {
        let mut c = Conj::new();
        c.push(Atom::eq(v("x"), Term::add(&v("y"), &Term::int(1))));
        let mut m = BTreeMap::new();
        m.insert(Var::named("y"), Term::int(4));
        assert_eq!(c.subst(&m).to_string(), "x = 5");
    }

    #[test]
    fn conj_display_true() {
        assert_eq!(Conj::new().to_string(), "true");
    }

    #[test]
    fn lt_encoding() {
        let a = Atom::lt(v("a"), v("b"));
        assert_eq!(a.to_string(), "a + 1 <= b");
    }
}
