//! Signatures, symbol ownership, and the `AlienTerms` operator (§2).

use crate::atom::{Atom, Conj};
use crate::sym::TheoryTag;
use crate::term::{Term, TermKind};
use std::collections::BTreeSet;
use std::fmt;

/// A signature: the set of theory tags whose symbols a lattice understands.
///
/// The paper's combination framework works with two signatures; products of
/// lattices carry the union of their components' signatures, so nested
/// products work out of the box.
///
/// Arithmetic structure (`+`, `-`, scalar multiples, constants) is owned by
/// every theory whose signature includes those symbols: linear arithmetic,
/// parity, and sign. This is what makes parity and sign *non-disjoint* with
/// linear arithmetic, exactly as in the paper's Figure 8.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Sig {
    tags: BTreeSet<TheoryTag>,
}

impl Sig {
    /// The empty signature.
    pub fn empty() -> Sig {
        Sig::default()
    }

    /// A signature of a single theory.
    pub fn single(tag: TheoryTag) -> Sig {
        let mut tags = BTreeSet::new();
        tags.insert(tag);
        Sig { tags }
    }

    /// A signature from a collection of tags.
    pub fn of(tags: impl IntoIterator<Item = TheoryTag>) -> Sig {
        Sig {
            tags: tags.into_iter().collect(),
        }
    }

    /// The union of two signatures.
    pub fn union(&self, other: &Sig) -> Sig {
        Sig {
            tags: self.tags.union(&other.tags).copied().collect(),
        }
    }

    /// Returns `true` if the signature contains `tag`.
    pub fn contains(&self, tag: TheoryTag) -> bool {
        self.tags.contains(&tag)
    }

    /// The tags in the signature.
    pub fn tags(&self) -> impl Iterator<Item = TheoryTag> + '_ {
        self.tags.iter().copied()
    }

    /// Returns `true` if the signature owns the arithmetic structure
    /// (`+`, `-`, rational constants).
    pub fn owns_arith(&self) -> bool {
        self.contains(TheoryTag::LINARITH)
            || self.contains(TheoryTag::PARITY)
            || self.contains(TheoryTag::SIGN)
    }

    /// Returns `true` if the signature owns the root symbol of `t`
    /// (variables are owned by every signature).
    pub fn owns_root(&self, t: &Term) -> bool {
        match term_root(t) {
            TermRoot::Var => true,
            TermRoot::Arith => self.owns_arith(),
            TermRoot::Tag(tag) => self.contains(tag),
        }
    }

    /// Returns `true` if *every* symbol occurring in `t` is owned.
    pub fn owns_term(&self, t: &Term) -> bool {
        match t.kind() {
            TermKind::Var(_) => true,
            TermKind::App(f, args) => {
                self.contains(f.theory()) && args.iter().all(|a| self.owns_term(a))
            }
            TermKind::Lin(e) => self.owns_arith() && e.iter().all(|(a, _)| self.owns_term(a)),
        }
    }

    /// Returns `true` if every symbol of the atom (predicate and terms) is
    /// owned. Equality is shared by all theories.
    pub fn owns_atom(&self, atom: &Atom) -> bool {
        let pred_ok = match atom {
            Atom::Eq(..) => true,
            Atom::Le(..) => self.contains(TheoryTag::LINARITH),
            Atom::Pred(p, _) => self.contains(p.theory()),
        };
        pred_ok && atom.args().iter().all(|t| self.owns_term(t))
    }

    /// Returns `true` if the two signatures share no theory tag.
    ///
    /// Note that this is the tag-level check; the *theories* of parity and
    /// sign additionally share arithmetic symbols, which
    /// [`Sig::disjoint_symbols`] accounts for.
    pub fn disjoint_tags(&self, other: &Sig) -> bool {
        self.tags.is_disjoint(&other.tags)
    }

    /// Returns `true` if the signatures are disjoint at the symbol level —
    /// the hypothesis of the paper's completeness theorems (Theorems 3
    /// and 5).
    pub fn disjoint_symbols(&self, other: &Sig) -> bool {
        self.disjoint_tags(other) && !(self.owns_arith() && other.owns_arith())
    }
}

impl fmt::Display for Sig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, t) in self.tags.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str("}")
    }
}

impl fmt::Debug for Sig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The owner of a term's top-level symbol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TermRoot {
    /// A bare variable — owned by every theory.
    Var,
    /// Arithmetic structure — owned by the theories that include `+`/`-`.
    Arith,
    /// A function symbol of the given theory.
    Tag(TheoryTag),
}

/// The root classification of a term.
pub fn term_root(t: &Term) -> TermRoot {
    match t.kind() {
        TermKind::Var(_) => TermRoot::Var,
        TermKind::Lin(_) => TermRoot::Arith,
        TermKind::App(f, _) => TermRoot::Tag(f.theory()),
    }
}

/// Which side(s) of a two-signature split can host an atom's *top-level*
/// predicate and root structure (not necessarily its subterms).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AtomSide {
    /// Only the first signature.
    Left,
    /// Only the second signature.
    Right,
    /// Both signatures (e.g. a variable equality, or an arithmetic fact when
    /// both theories include arithmetic).
    Both,
}

/// Classifies where an atom's top-level structure can live when splitting
/// over `(sig1, sig2)`.
///
/// For a mixed equality `s = t` whose sides root in different signatures,
/// the atom is hosted where the *left* term roots (purification will
/// abstract the foreign side with a fresh variable).
///
/// # Panics
///
/// Panics if neither signature can host the atom — a misconfigured product.
pub fn classify_atom(atom: &Atom, sig1: &Sig, sig2: &Sig) -> AtomSide {
    let side_of_root = |t: &Term| -> (bool, bool) { (sig1.owns_root(t), sig2.owns_root(t)) };
    let (l, r) = match atom {
        Atom::Le(..) => (
            sig1.contains(TheoryTag::LINARITH),
            sig2.contains(TheoryTag::LINARITH),
        ),
        Atom::Pred(p, _) => (sig1.contains(p.theory()), sig2.contains(p.theory())),
        Atom::Eq(s, t) => {
            let (sl, sr) = side_of_root(s);
            let (tl, tr) = side_of_root(t);
            match (sl && tl, sr && tr) {
                (true, true) => (true, true),
                (true, false) => (true, false),
                (false, true) => (false, true),
                (false, false) => {
                    // Mixed equality: host on the side of the left term's
                    // root (or the right's if the left is hostable nowhere,
                    // which cannot happen for well-formed products).
                    if sl {
                        (true, false)
                    } else if sr {
                        (false, true)
                    } else if tl {
                        (true, false)
                    } else {
                        (false, true)
                    }
                }
            }
        }
    };
    match (l, r) {
        (true, true) => AtomSide::Both,
        (true, false) => AtomSide::Left,
        (false, true) => AtomSide::Right,
        (false, false) => panic!("atom `{atom}` belongs to neither signature {sig1} nor {sig2}"),
    }
}

/// `AlienTerms(E)` for the split `(sig1, sig2)` — the set of maximal and
/// nested subterms of `E` whose root symbol belongs to one signature while
/// occurring as an argument of a symbol of the other (§2 and Figure 2 of
/// the paper).
///
/// Arguments of the (shared) equality predicate are not alien by
/// themselves; arguments of `<=` count as occurring under linear
/// arithmetic.
pub fn alien_terms(e: &Conj, sig1: &Sig, sig2: &Sig) -> BTreeSet<Term> {
    let mut out = BTreeSet::new();
    for atom in e {
        match atom {
            Atom::Eq(s, t) => {
                // Equality args are in their own context.
                collect_aliens_under(s, owner_mask(s, sig1, sig2), sig1, sig2, &mut out);
                collect_aliens_under(t, owner_mask(t, sig1, sig2), sig1, sig2, &mut out);
            }
            Atom::Le(s, t) => {
                let arith = (
                    sig1.contains(TheoryTag::LINARITH),
                    sig2.contains(TheoryTag::LINARITH),
                );
                collect_aliens_under(s, arith, sig1, sig2, &mut out);
                collect_aliens_under(t, arith, sig1, sig2, &mut out);
            }
            Atom::Pred(p, t) => {
                let mask = (sig1.contains(p.theory()), sig2.contains(p.theory()));
                collect_aliens_under(t, mask, sig1, sig2, &mut out);
            }
        }
    }
    out
}

fn owner_mask(t: &Term, sig1: &Sig, sig2: &Sig) -> (bool, bool) {
    (sig1.owns_root(t), sig2.owns_root(t))
}

/// Walks `t` in a context owned by the signature sides in `ctx`; a non-var
/// subterm whose owners do not intersect `ctx` is alien.
fn collect_aliens_under(
    t: &Term,
    ctx: (bool, bool),
    sig1: &Sig,
    sig2: &Sig,
    out: &mut BTreeSet<Term>,
) {
    let own = owner_mask(t, sig1, sig2);
    let is_var = matches!(t.kind(), TermKind::Var(_));
    let compatible = (own.0 && ctx.0) || (own.1 && ctx.1);
    let new_ctx = if is_var || compatible {
        ctx
    } else {
        out.insert(t.clone());
        own
    };
    match t.kind() {
        TermKind::Var(_) => {}
        TermKind::App(_, args) => {
            for a in args {
                collect_aliens_under(a, new_ctx, sig1, sig2, out);
            }
        }
        TermKind::Lin(e) => {
            for (a, _) in e.iter() {
                collect_aliens_under(a, new_ctx, sig1, sig2, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Vocab;

    fn lin() -> Sig {
        Sig::single(TheoryTag::LINARITH)
    }

    fn uf() -> Sig {
        Sig::single(TheoryTag::UF)
    }

    #[test]
    fn figure2_alien_terms() {
        let vocab = Vocab::standard();
        let e = vocab
            .parse_conj("x3 <= F(2*x2 - x1) & x3 >= x1 & x1 = F(x1) & x2 = F(F(x1))")
            .unwrap();
        let aliens = alien_terms(&e, &lin(), &uf());
        let shown: Vec<String> = aliens.iter().map(|t| t.to_string()).collect();
        // Exactly the two terms called out in Figure 2.
        assert_eq!(shown.len(), 2, "got {shown:?}");
        assert!(shown.contains(&"2*x2 - x1".to_owned()));
        assert!(shown.contains(&"F(2*x2 - x1)".to_owned()));
    }

    #[test]
    fn pure_conj_has_no_aliens() {
        let vocab = Vocab::standard();
        let e = vocab.parse_conj("x = F(y) & y = F(F(x))").unwrap();
        assert!(alien_terms(&e, &lin(), &uf()).is_empty());
        let e2 = vocab.parse_conj("x <= 2*y + 3 & y = x - 4").unwrap();
        assert!(alien_terms(&e2, &lin(), &uf()).is_empty());
    }

    #[test]
    fn nested_aliens_found_at_each_alternation() {
        let vocab = Vocab::standard();
        // F(1 + F(y)) = x : alien terms are 1 + F(y) (arith under F) and
        // F(y) (UF under arith).
        let e = vocab.parse_conj("F(1 + F(y)) = x").unwrap();
        let aliens = alien_terms(&e, &lin(), &uf());
        let shown: Vec<String> = aliens.iter().map(|t| t.to_string()).collect();
        assert!(shown.contains(&"F(y) + 1".to_owned()), "got {shown:?}");
        assert!(shown.contains(&"F(y)".to_owned()), "got {shown:?}");
        assert_eq!(shown.len(), 2);
    }

    #[test]
    fn classify_sides() {
        let vocab = Vocab::standard();
        let e = vocab.parse_conj("x <= y & F(x) = y & x = y").unwrap();
        let atoms = e.atoms();
        assert_eq!(classify_atom(&atoms[0], &lin(), &uf()), AtomSide::Left);
        assert_eq!(classify_atom(&atoms[1], &lin(), &uf()), AtomSide::Right);
        assert_eq!(classify_atom(&atoms[2], &lin(), &uf()), AtomSide::Both);
    }

    #[test]
    fn parity_sign_not_disjoint() {
        let parity = Sig::single(TheoryTag::PARITY);
        let sign = Sig::single(TheoryTag::SIGN);
        assert!(parity.disjoint_tags(&sign));
        assert!(!parity.disjoint_symbols(&sign));
        assert!(lin().disjoint_symbols(&uf()));
        assert!(uf().disjoint_symbols(&Sig::single(TheoryTag::LIST)));
    }

    #[test]
    fn sig_union_owns_everything() {
        let u = lin().union(&uf());
        let vocab = Vocab::standard();
        let e = vocab.parse_conj("x = F(2*y + 1)").unwrap();
        assert!(u.owns_atom(&e.atoms()[0]));
        assert!(!lin().owns_atom(&e.atoms()[0]));
        assert!(!uf().owns_atom(&e.atoms()[0]));
    }
}
