//! Structural fingerprinting for cache keys.
//!
//! A fingerprint is a 64-bit FNV-1a hash of a term-layer value's structure
//! (via its [`Hash`] implementation, which for every type in this crate
//! hashes contents, not addresses). Equal values always fingerprint
//! equally, so a fingerprint can key a memo table as long as the table
//! guards against collisions by also comparing the stored value.
//!
//! Fingerprints are deterministic *within* a process. They are **not**
//! stable across processes: interned symbol identifiers depend on
//! interning order, and the hash consumes native-endian bytes. Use them
//! for in-memory caches only.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a [`Hasher`]. Deterministic and allocation-free; not
/// collision-resistant against adversaries (callers must verify hits).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher starting from the standard FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
}

/// The FNV-1a fingerprint of any hashable value.
pub fn fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv1a::new();
    value.hash(&mut h);
    h.finish()
}
