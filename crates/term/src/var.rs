//! Globally interned program variables.

use std::collections::BTreeSet;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned variable.
///
/// Two variables with the same name are the same `Var`; [`Var::fresh`]
/// produces a variable whose name is guaranteed not to collide with any
/// previously interned name. Variables are `Copy`, and their ordering is
/// the (deterministic) lexicographic order of their names, so displayed
/// conjunctions and linear expressions are stable across runs.
///
/// ```
/// use cai_term::Var;
/// let x = Var::named("x");
/// assert_eq!(x, Var::named("x"));
/// assert_eq!(x.name(), "x");
/// assert!(Var::named("a") < Var::named("b"));
/// let t = Var::fresh("t");
/// assert_ne!(t, Var::named("t"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(&'static str);

/// A sorted set of variables.
pub type VarSet = BTreeSet<Var>;

fn names() -> &'static RwLock<HashSet<&'static str>> {
    static NAMES: OnceLock<RwLock<HashSet<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| RwLock::new(HashSet::new()))
}

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Var {
    /// Interns `name` and returns the corresponding variable.
    ///
    /// Variable equality compares name *contents*, so interning is a
    /// memory optimization, not a correctness requirement; the common
    /// already-interned case takes only a shared read lock, keeping this
    /// cheap from concurrently analyzing threads.
    pub fn named(name: &str) -> Var {
        {
            let r = names().read().unwrap_or_else(|e| e.into_inner());
            if let Some(&s) = r.get(name) {
                return Var(s);
            }
        }
        let mut w = names().write().unwrap_or_else(|e| e.into_inner());
        if let Some(&s) = w.get(name) {
            return Var(s);
        }
        let s: &'static str = Box::leak(name.to_owned().into_boxed_str());
        w.insert(s);
        Var(s)
    }

    /// Creates a fresh variable whose name starts with `prefix` and does
    /// not collide with any interned name.
    ///
    /// Uniqueness comes from a global atomic counter, so the hot path is
    /// lock-free apart from a shared read of the interned-name set (to
    /// honor the no-collision guarantee against names someone interned
    /// by hand). Fresh names are *not* added to that set: the counter
    /// already guarantees no later `fresh` can repeat them, and a later
    /// [`Var::named`] of the same string compares equal by content.
    /// Purification and join transformers mint fresh variables on their
    /// hot paths, so this must not funnel every analysis thread through
    /// one mutex.
    pub fn fresh(prefix: &str) -> Var {
        loop {
            let n = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
            let name = format!("{prefix}${n}");
            let taken = names()
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .contains(name.as_str());
            if !taken {
                let s: &'static str = Box::leak(name.into_boxed_str());
                return Var(s);
            }
        }
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Var::named("alpha");
        let b = Var::named("alpha");
        assert_eq!(a, b);
        assert_eq!(a.name(), "alpha");
    }

    #[test]
    fn distinct_names_distinct_vars() {
        assert_ne!(Var::named("p"), Var::named("q"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Var::named("aa") < Var::named("ab"));
        assert!(Var::named("x1") < Var::named("x2"));
    }

    #[test]
    fn fresh_never_collides() {
        let f1 = Var::fresh("tmp");
        let f2 = Var::fresh("tmp");
        assert_ne!(f1, f2);
        assert!(f1.name().starts_with("tmp$"));
        // Interning the fresh name yields the same var.
        assert_eq!(Var::named(f1.name()), f1);
    }
}
