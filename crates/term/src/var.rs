//! Globally interned program variables.

use std::collections::BTreeSet;
use std::collections::HashSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned variable.
///
/// Two variables with the same name are the same `Var`; [`Var::fresh`]
/// produces a variable whose name is guaranteed not to collide with any
/// previously interned name. Variables are `Copy`, and their ordering is
/// the (deterministic) lexicographic order of their names, so displayed
/// conjunctions and linear expressions are stable across runs.
///
/// ```
/// use cai_term::Var;
/// let x = Var::named("x");
/// assert_eq!(x, Var::named("x"));
/// assert_eq!(x.name(), "x");
/// assert!(Var::named("a") < Var::named("b"));
/// let t = Var::fresh("t");
/// assert_ne!(t, Var::named("t"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(&'static str);

/// A sorted set of variables.
pub type VarSet = BTreeSet<Var>;

struct Interner {
    names: HashSet<&'static str>,
    fresh_counter: u64,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: HashSet::new(),
            fresh_counter: 0,
        })
    })
}

impl Var {
    /// Interns `name` and returns the corresponding variable.
    pub fn named(name: &str) -> Var {
        let mut i = interner().lock().expect("variable interner poisoned");
        if let Some(&s) = i.names.get(name) {
            return Var(s);
        }
        let s: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.names.insert(s);
        Var(s)
    }

    /// Creates a fresh variable whose name starts with `prefix` and does
    /// not collide with any interned name.
    pub fn fresh(prefix: &str) -> Var {
        let mut i = interner().lock().expect("variable interner poisoned");
        loop {
            let n = i.fresh_counter;
            i.fresh_counter += 1;
            let name = format!("{prefix}${n}");
            if !i.names.contains(name.as_str()) {
                let s: &'static str = Box::leak(name.into_boxed_str());
                i.names.insert(s);
                return Var(s);
            }
        }
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Var::named("alpha");
        let b = Var::named("alpha");
        assert_eq!(a, b);
        assert_eq!(a.name(), "alpha");
    }

    #[test]
    fn distinct_names_distinct_vars() {
        assert_ne!(Var::named("p"), Var::named("q"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Var::named("aa") < Var::named("ab"));
        assert!(Var::named("x1") < Var::named("x2"));
    }

    #[test]
    fn fresh_never_collides() {
        let f1 = Var::fresh("tmp");
        let f2 = Var::fresh("tmp");
        assert_ne!(f1, f2);
        assert!(f1.name().starts_with("tmp$"));
        // Interning the fresh name yields the same var.
        assert_eq!(Var::named(f1.name()), f1);
    }
}
