//! Normalized linear expressions over non-arithmetic atoms.

use crate::term::{Term, TermKind};
use cai_num::Rat;
use std::collections::BTreeMap;
use std::fmt;

/// A linear expression `c₀ + Σ cᵢ·aᵢ` where each *atom* `aᵢ` is a
/// non-arithmetic term (a variable or a theory application such as `F(x)`)
/// and each coefficient `cᵢ` is a nonzero rational.
///
/// `LinExpr` is the canonical form of the arithmetic layer of mixed terms:
/// structurally equal expressions are mathematically equal modulo the
/// axioms of linear arithmetic.
///
/// ```
/// use cai_term::{LinExpr, Term};
/// use cai_num::Rat;
/// let x = Term::var_named("x");
/// let e = LinExpr::atom(x.clone()).scale(&Rat::from(2i64)).add(&LinExpr::constant(Rat::from(1i64)));
/// assert_eq!(e.to_string(), "2*x + 1");
/// assert_eq!(e.coeff(&x), Rat::from(2i64));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinExpr {
    constant: Rat,
    terms: BTreeMap<Term, Rat>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: Rat) -> LinExpr {
        LinExpr {
            constant: c,
            terms: BTreeMap::new(),
        }
    }

    /// A single atom with coefficient one.
    ///
    /// If `t` is itself a `Lin` term its contents are merged, preserving the
    /// invariant that atoms are non-arithmetic.
    pub fn atom(t: Term) -> LinExpr {
        match t.kind() {
            TermKind::Lin(inner) => inner.clone(),
            _ => {
                let mut terms = BTreeMap::new();
                terms.insert(t, Rat::one());
                LinExpr {
                    constant: Rat::zero(),
                    terms,
                }
            }
        }
    }

    /// The constant part `c₀`.
    pub fn constant_part(&self) -> &Rat {
        &self.constant
    }

    /// Returns the constant if the expression has no atoms.
    pub fn as_constant(&self) -> Option<&Rat> {
        if self.terms.is_empty() {
            Some(&self.constant)
        } else {
            None
        }
    }

    /// Returns the atom if the expression is exactly `1·a + 0`.
    pub fn as_single_atom(&self) -> Option<&Term> {
        if self.constant.is_zero() && self.terms.len() == 1 {
            let (t, c) = self.terms.iter().next().expect("len checked");
            if c.is_one() {
                return Some(t);
            }
        }
        None
    }

    /// The coefficient of `atom` (zero if absent).
    pub fn coeff(&self, atom: &Term) -> Rat {
        self.terms.get(atom).cloned().unwrap_or_else(Rat::zero)
    }

    /// Returns `true` if the expression is the constant zero.
    pub fn is_zero(&self) -> bool {
        self.constant.is_zero() && self.terms.is_empty()
    }

    /// The number of atoms.
    pub fn num_atoms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over `(atom, coefficient)` pairs in atom order.
    pub fn iter(&self) -> impl Iterator<Item = (&Term, &Rat)> {
        self.terms.iter()
    }

    /// Adds two expressions.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant = &out.constant + &other.constant;
        for (t, c) in &other.terms {
            let entry = out.terms.entry(t.clone()).or_insert_with(Rat::zero);
            *entry = &*entry + c;
            if entry.is_zero() {
                out.terms.remove(t);
            }
        }
        out
    }

    /// Subtracts `other` from `self`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(&-Rat::one()))
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, c: &Rat) -> LinExpr {
        if c.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            constant: &self.constant * c,
            terms: self.terms.iter().map(|(t, k)| (t.clone(), k * c)).collect(),
        }
    }

    /// Adds `coeff · atom` to the expression.
    pub fn add_atom(&self, atom: Term, coeff: &Rat) -> LinExpr {
        self.add(&LinExpr::atom(atom).scale(coeff))
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Positive-coefficient atoms first, then negative ones, constant
        // last — matching conventional mathematical notation.
        let ordered = self
            .terms
            .iter()
            .filter(|(_, c)| c.is_positive())
            .chain(self.terms.iter().filter(|(_, c)| c.is_negative()));
        let mut first = true;
        for (t, c) in ordered {
            if first {
                if c.is_one() {
                    write!(f, "{t}")?;
                } else if *c == -Rat::one() {
                    write!(f, "-{t}")?;
                } else {
                    write!(f, "{c}*{t}")?;
                }
                first = false;
            } else if c.is_negative() {
                let a = c.abs();
                if a.is_one() {
                    write!(f, " - {t}")?;
                } else {
                    write!(f, " - {a}*{t}")?;
                }
            } else if c.is_one() {
                write!(f, " + {t}")?;
            } else {
                write!(f, " + {c}*{t}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant.is_negative() {
            write!(f, " - {}", self.constant.abs())?;
        } else if !self.constant.is_zero() {
            write!(f, " + {}", self.constant)?;
        }
        Ok(())
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::var_named(n)
    }

    #[test]
    fn add_cancels() {
        let e = LinExpr::atom(v("x")).add(&LinExpr::atom(v("x")).scale(&-Rat::one()));
        assert!(e.is_zero());
    }

    #[test]
    fn atom_of_lin_merges() {
        let x_plus_1 = Term::add(&v("x"), &Term::int(1));
        let e = LinExpr::atom(x_plus_1);
        assert_eq!(e.num_atoms(), 1);
        assert_eq!(e.constant_part(), &Rat::one());
    }

    #[test]
    fn display_forms() {
        let e = LinExpr::atom(v("a"))
            .scale(&Rat::from(2i64))
            .add(&LinExpr::atom(v("b")).scale(&-Rat::one()))
            .add(&LinExpr::constant(Rat::from(-3i64)));
        assert_eq!(e.to_string(), "2*a - b - 3");
        assert_eq!(LinExpr::zero().to_string(), "0");
        assert_eq!(LinExpr::constant(Rat::from(-2i64)).to_string(), "-2");
    }

    #[test]
    fn scale_by_zero() {
        let e = LinExpr::atom(v("x")).add(&LinExpr::constant(Rat::from(5i64)));
        assert!(e.scale(&Rat::zero()).is_zero());
    }
}
