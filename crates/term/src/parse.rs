//! A small text syntax for terms, atoms, and conjunctions.
//!
//! The grammar (used throughout tests, examples, and the program
//! front-end):
//!
//! ```text
//! conj  := 'true' | atom ('&' atom)*
//! atom  := pred '(' term ')' | term relop term
//! relop := '=' | '<=' | '>=' | '<' | '>'
//! term  := prod (('+' | '-') prod)*
//! prod  := factor ('*' factor)*            -- at most one non-constant
//! factor:= number | number '/' number | ident | ident '(' args ')'
//!        | '(' term ')' | '-' factor
//! ```
//!
//! Identifiers are classified by the [`Vocab`]: `cons`/`car`/`cdr` are list
//! symbols, `even`/`odd`/`positive`/`negative` are predicates, names
//! starting with an uppercase letter are uninterpreted functions (arity
//! inferred at first use), and everything else is a variable.

use crate::atom::{Atom, Conj};
use crate::sym::{FnSym, PredSym, TheoryTag};
use crate::term::Term;
use crate::var::Var;
use cai_num::Rat;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// A parse failure, with a human-readable message and byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
    pos: usize,
}

impl ParseError {
    fn new(msg: impl Into<String>, pos: usize) -> ParseError {
        ParseError {
            msg: msg.into(),
            pos,
        }
    }

    /// The byte offset at which the error occurred.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Classifies identifiers while parsing.
///
/// A `Vocab` can be shared across many parses; uninterpreted functions are
/// registered on first use so that `F(x)` in two different strings denotes
/// the same symbol.
#[derive(Debug, Default)]
pub struct Vocab {
    fns: Mutex<HashMap<String, FnSym>>,
}

impl Vocab {
    /// The standard vocabulary: list symbols, parity/sign predicates,
    /// uppercase identifiers as uninterpreted functions.
    pub fn standard() -> Vocab {
        Vocab::default()
    }

    /// Pre-registers a function symbol under its name.
    pub fn register(&self, f: FnSym) {
        // A poisoned lock only means another parse panicked mid-insert; the
        // map itself is still a valid symbol table, so recover it.
        self.fns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(f.name(), f);
    }

    /// Resolves (registering on first use) the function symbol for `name`
    /// at the given arity, using the standard classification.
    ///
    /// # Errors
    ///
    /// Returns an error if `name` was previously used at a different arity.
    pub fn function(&self, name: &str, arity: usize) -> Result<FnSym, ParseError> {
        self.lookup_fn(name, arity, 0)
    }

    fn lookup_fn(&self, name: &str, arity: usize, pos: usize) -> Result<FnSym, ParseError> {
        match name {
            "cons" => return Ok(FnSym::cons()),
            "car" => return Ok(FnSym::car()),
            "cdr" => return Ok(FnSym::cdr()),
            _ => {}
        }
        let mut fns = self.fns.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(f) = fns.get(name) {
            if f.arity() != arity {
                return Err(ParseError::new(
                    format!(
                        "function `{name}` used with {arity} arguments but has arity {}",
                        f.arity()
                    ),
                    pos,
                ));
            }
            return Ok(*f);
        }
        let f = FnSym::new(name, arity, TheoryTag::UF);
        fns.insert(name.to_owned(), f);
        Ok(f)
    }

    /// Parses a term.
    pub fn parse_term(&self, input: &str) -> Result<Term, ParseError> {
        let mut p = Parser::new(input, self);
        let t = p.term()?;
        p.expect_eof()?;
        Ok(t)
    }

    /// Parses an atomic fact.
    pub fn parse_atom(&self, input: &str) -> Result<Atom, ParseError> {
        let mut p = Parser::new(input, self);
        let a = p.atom()?;
        p.expect_eof()?;
        Ok(a)
    }

    /// Parses a conjunction of atomic facts separated by `&`.
    pub fn parse_conj(&self, input: &str) -> Result<Conj, ParseError> {
        let mut p = Parser::new(input, self);
        let c = p.conj()?;
        p.expect_eof()?;
        Ok(c)
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Num(Rat),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    Amp,
    Eq,
    Le,
    Ge,
    Lt,
    Gt,
    Error(char),
    Eof,
}

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    vocab: &'a Vocab,
}

impl<'a> Parser<'a> {
    fn new(input: &str, vocab: &'a Vocab) -> Parser<'a> {
        Parser {
            toks: lex(input),
            pos: 0,
            vocab,
        }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn here(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(format!("expected {what}"), self.here()))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.peek() == &Tok::Eof {
            Ok(())
        } else {
            Err(ParseError::new("trailing input", self.here()))
        }
    }

    fn conj(&mut self) -> Result<Conj, ParseError> {
        if let Tok::Ident(id) = self.peek() {
            if id == "true" && self.toks.get(self.pos + 1).map(|t| &t.0) == Some(&Tok::Eof) {
                self.bump();
                return Ok(Conj::new());
            }
        }
        let mut c = Conj::new();
        c.push(self.atom()?);
        while self.peek() == &Tok::Amp {
            self.bump();
            c.push(self.atom()?);
        }
        Ok(c)
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        // Predicate application?
        if let Tok::Ident(id) = self.peek() {
            if let Some(p) = PredSym::from_name(id) {
                let pos = self.here();
                self.bump();
                self.expect(Tok::LParen, "`(` after predicate")?;
                let t = self.term()?;
                self.expect(Tok::RParen, "`)` closing predicate")
                    .map_err(|e| ParseError::new(e.msg, pos))?;
                return Ok(Atom::pred(p, t));
            }
        }
        let lhs = self.term()?;
        let op = self.bump();
        let rhs = self.term()?;
        Ok(match op {
            Tok::Eq => Atom::eq(lhs, rhs),
            Tok::Le => Atom::le(lhs, rhs),
            Tok::Ge => Atom::le(rhs, lhs),
            Tok::Lt => Atom::lt(lhs, rhs),
            Tok::Gt => Atom::lt(rhs, lhs),
            _ => {
                return Err(ParseError::new(
                    "expected a relational operator (=, <=, >=, <, >)",
                    self.here(),
                ))
            }
        })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let mut acc = self.prod()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    let rhs = self.prod()?;
                    acc = Term::add(&acc, &rhs);
                }
                Tok::Minus => {
                    self.bump();
                    let rhs = self.prod()?;
                    acc = Term::sub(&acc, &rhs);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn prod(&mut self) -> Result<Term, ParseError> {
        let mut acc = self.factor()?;
        while self.peek() == &Tok::Star {
            let pos = self.here();
            self.bump();
            let rhs = self.factor()?;
            acc = match (acc.as_constant(), rhs.as_constant()) {
                (Some(c), _) => Term::scale(&c.clone(), &rhs),
                (_, Some(c)) => Term::scale(&c.clone(), &acc),
                _ => {
                    return Err(ParseError::new(
                        "non-linear multiplication; one factor must be constant",
                        pos,
                    ))
                }
            };
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<Term, ParseError> {
        let pos = self.here();
        match self.bump() {
            Tok::Num(n) => {
                // Rational literal `a/b`.
                if self.peek() == &Tok::Slash {
                    self.bump();
                    let dpos = self.here();
                    match self.bump() {
                        Tok::Num(d) if !d.is_zero() => Ok(Term::constant(&n / &d)),
                        _ => Err(ParseError::new("expected nonzero denominator", dpos)),
                    }
                } else {
                    Ok(Term::constant(n))
                }
            }
            Tok::Minus => {
                let inner = self.factor()?;
                Ok(Term::neg(&inner))
            }
            Tok::LParen => {
                let t = self.term()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(t)
            }
            Tok::Ident(id) => {
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = vec![self.term()?];
                    while self.peek() == &Tok::Comma {
                        self.bump();
                        args.push(self.term()?);
                    }
                    self.expect(Tok::RParen, "`)` closing argument list")?;
                    let f = self.vocab.lookup_fn(&id, args.len(), pos)?;
                    Ok(Term::app(f, args))
                } else {
                    Ok(Term::var(Var::named(&id)))
                }
            }
            _ => Err(ParseError::new("expected a term", pos)),
        }
    }
}

fn lex(input: &str) -> Vec<(Tok, usize)> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'+' => {
                toks.push((Tok::Plus, i));
                i += 1;
            }
            b'-' => {
                toks.push((Tok::Minus, i));
                i += 1;
            }
            b'*' => {
                toks.push((Tok::Star, i));
                i += 1;
            }
            b'/' => {
                toks.push((Tok::Slash, i));
                i += 1;
            }
            b'(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            b',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            b'&' => {
                toks.push((Tok::Amp, i));
                i += 1;
                // Tolerate `&&`.
                if i < bytes.len() && bytes[i] == b'&' {
                    i += 1;
                }
            }
            b'=' => {
                toks.push((Tok::Eq, i));
                i += 1;
                // Tolerate `==`.
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                }
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push((Tok::Le, i));
                    i += 2;
                } else {
                    toks.push((Tok::Lt, i));
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push((Tok::Ge, i));
                    i += 2;
                } else {
                    toks.push((Tok::Gt, i));
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                match input[start..i].parse::<Rat>() {
                    Ok(n) => toks.push((Tok::Num(n), start)),
                    Err(_) => {
                        toks.push((
                            Tok::Error(input[start..].chars().next().unwrap_or('?')),
                            start,
                        ));
                        break;
                    }
                }
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
                {
                    i += 1;
                }
                toks.push((Tok::Ident(input[start..i].to_owned()), start));
            }
            _ => {
                toks.push((Tok::Error(b as char), i));
                break;
            }
        }
    }
    toks.push((Tok::Eof, input.len()));
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terms_roundtrip_display() {
        let v = Vocab::standard();
        for (src, shown) in [
            ("x", "x"),
            ("2*x + 1", "2*x + 1"),
            ("x + x", "2*x"),
            ("F(x)", "F(x)"),
            ("F(2*x2 - x1)", "F(2*x2 - x1)"),
            ("cons(a, cdr(l))", "cons(a, cdr(l))"),
            ("-(x - y)", "y - x"),
            ("1/2 * x", "1/2*x"),
            ("3 - 3", "0"),
        ] {
            let t = v.parse_term(src).unwrap();
            assert_eq!(t.to_string(), shown, "source `{src}`");
        }
    }

    #[test]
    fn atoms() {
        let v = Vocab::standard();
        assert_eq!(v.parse_atom("x = y").unwrap().to_string(), "x = y");
        assert_eq!(v.parse_atom("x >= y").unwrap().to_string(), "y <= x");
        assert_eq!(v.parse_atom("x < y").unwrap().to_string(), "x + 1 <= y");
        assert_eq!(
            v.parse_atom("even(x + 1)").unwrap().to_string(),
            "even(x + 1)"
        );
    }

    #[test]
    fn conj_and_true() {
        let v = Vocab::standard();
        let c = v.parse_conj("x = y & y <= z").unwrap();
        assert_eq!(c.len(), 2);
        assert!(v.parse_conj("true").unwrap().is_empty());
    }

    #[test]
    fn errors() {
        let v = Vocab::standard();
        assert!(v.parse_term("x *").is_err());
        assert!(v.parse_term("x * y").is_err()); // non-linear
        assert!(v.parse_atom("x + y").is_err()); // missing relop
        assert!(v.parse_term("F(x").is_err());
        assert!(v.parse_term("1/0").is_err());
        assert!(v.parse_conj("x = y @ z").is_err());
    }

    #[test]
    fn function_arity_is_sticky() {
        let v = Vocab::standard();
        v.parse_term("G(x, y)").unwrap();
        assert!(v.parse_term("G(x)").is_err());
    }

    #[test]
    fn shared_vocab_shares_symbols() {
        let v = Vocab::standard();
        let a = v.parse_term("H(x)").unwrap();
        let b = v.parse_term("H(x)").unwrap();
        assert_eq!(a, b);
    }
}
