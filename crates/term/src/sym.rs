//! Theory tags and theory-tagged function / predicate symbols.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock, RwLock};

/// Identifies the theory a symbol belongs to.
///
/// The paper's combination framework is parameterized by two disjoint
/// signatures; we realize signatures as sets of `TheoryTag`s. The tags for
/// the five theories used in the paper's examples are predefined; further
/// tags can be interned with [`TheoryTag::named`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TheoryTag(u32);

impl TheoryTag {
    /// Linear arithmetic: `+`, `-`, scalar multiples, constants, `<=`.
    pub const LINARITH: TheoryTag = TheoryTag(0);
    /// Uninterpreted functions.
    pub const UF: TheoryTag = TheoryTag(1);
    /// Lists: `cons`, `car`, `cdr`.
    pub const LIST: TheoryTag = TheoryTag(2);
    /// Parity: `even`, `odd` (shares `+`, `-`, `0`, `1` with linarith —
    /// deliberately *not* disjoint, as in the paper's Figure 8).
    pub const PARITY: TheoryTag = TheoryTag(3);
    /// Sign: `positive`, `negative` (also not disjoint from linarith).
    pub const SIGN: TheoryTag = TheoryTag(4);

    const BUILTIN: [&'static str; 5] = ["linarith", "uf", "list", "parity", "sign"];

    /// Interns a theory tag by name. Built-in names return the predefined
    /// constants.
    pub fn named(name: &str) -> TheoryTag {
        if let Some(i) = Self::BUILTIN.iter().position(|&b| b == name) {
            return TheoryTag(i as u32);
        }
        let mut t = tag_interner().lock().expect("tag interner poisoned");
        if let Some(&id) = t.by_name.get(name) {
            return TheoryTag(id);
        }
        let id = (Self::BUILTIN.len() + t.names.len()) as u32;
        t.names.push(name.to_owned());
        t.by_name.insert(name.to_owned(), id);
        TheoryTag(id)
    }

    /// The tag's name.
    pub fn name(&self) -> String {
        let i = self.0 as usize;
        if i < Self::BUILTIN.len() {
            return Self::BUILTIN[i].to_owned();
        }
        let t = tag_interner().lock().expect("tag interner poisoned");
        t.names[i - Self::BUILTIN.len()].clone()
    }
}

struct TagInterner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

fn tag_interner() -> &'static Mutex<TagInterner> {
    static I: OnceLock<Mutex<TagInterner>> = OnceLock::new();
    I.get_or_init(|| {
        Mutex::new(TagInterner {
            names: Vec::new(),
            by_name: HashMap::new(),
        })
    })
}

impl fmt::Display for TheoryTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl fmt::Debug for TheoryTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An interned function symbol with a fixed arity and owning theory.
///
/// ```
/// use cai_term::{FnSym, TheoryTag};
/// let f = FnSym::new("F", 1, TheoryTag::UF);
/// assert_eq!(f.arity(), 1);
/// assert_eq!(f.theory(), TheoryTag::UF);
/// assert_eq!(f, FnSym::new("F", 1, TheoryTag::UF));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FnSym(u32);

struct FnInfo {
    name: String,
    arity: usize,
    theory: TheoryTag,
}

struct FnInterner {
    infos: Vec<&'static FnInfo>,
    by_key: HashMap<(String, usize, TheoryTag), u32>,
}

fn fn_interner() -> &'static RwLock<FnInterner> {
    static I: OnceLock<RwLock<FnInterner>> = OnceLock::new();
    I.get_or_init(|| {
        RwLock::new(FnInterner {
            infos: Vec::new(),
            by_key: HashMap::new(),
        })
    })
}

impl FnSym {
    /// Interns a function symbol.
    pub fn new(name: &str, arity: usize, theory: TheoryTag) -> FnSym {
        {
            let r = fn_interner().read().unwrap_or_else(|e| e.into_inner());
            if let Some(&id) = r.by_key.get(&(name.to_owned(), arity, theory)) {
                return FnSym(id);
            }
        }
        let mut i = fn_interner().write().unwrap_or_else(|e| e.into_inner());
        let key = (name.to_owned(), arity, theory);
        if let Some(&id) = i.by_key.get(&key) {
            return FnSym(id);
        }
        let id = i.infos.len() as u32;
        i.infos.push(Box::leak(Box::new(FnInfo {
            name: name.to_owned(),
            arity,
            theory,
        })));
        i.by_key.insert(key, id);
        FnSym(id)
    }

    /// A unary uninterpreted function (convenience for tests and the §5
    /// reductions).
    pub fn uf(name: &str, arity: usize) -> FnSym {
        FnSym::new(name, arity, TheoryTag::UF)
    }

    /// The list constructor `cons`.
    pub fn cons() -> FnSym {
        FnSym::new("cons", 2, TheoryTag::LIST)
    }

    /// The list selector `car`.
    pub fn car() -> FnSym {
        FnSym::new("car", 1, TheoryTag::LIST)
    }

    /// The list selector `cdr`.
    pub fn cdr() -> FnSym {
        FnSym::new("cdr", 1, TheoryTag::LIST)
    }

    /// Resolves the symbol's metadata without touching any global lock in
    /// the common case: entries are immutable and append-only, so each
    /// thread keeps a snapshot of the table and refreshes it (one shared
    /// read-lock) only when it sees an id minted after its snapshot.
    /// `theory()` in particular runs on every signature-ownership check
    /// of every purification, from every analysis thread at once.
    fn info(&self) -> &'static FnInfo {
        thread_local! {
            static SNAPSHOT: RefCell<Vec<&'static FnInfo>> = const { RefCell::new(Vec::new()) };
        }
        SNAPSHOT.with(|s| {
            let mut v = s.borrow_mut();
            let idx = self.0 as usize;
            if idx >= v.len() {
                let r = fn_interner().read().unwrap_or_else(|e| e.into_inner());
                v.clone_from(&r.infos);
            }
            v[idx]
        })
    }

    /// The symbol's name.
    pub fn name(&self) -> String {
        self.info().name.clone()
    }

    /// The symbol's arity.
    pub fn arity(&self) -> usize {
        self.info().arity
    }

    /// The theory the symbol belongs to.
    pub fn theory(&self) -> TheoryTag {
        self.info().theory
    }
}

impl fmt::Display for FnSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl fmt::Debug for FnSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name(), self.arity())
    }
}

/// A unary predicate symbol (other than equality and `<=`, which are
/// structural in [`Atom`](crate::Atom)).
///
/// The paper's example theories contribute `even`, `odd` (parity) and
/// `positive`, `negative` (sign).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PredSym {
    /// `even(t)` — parity theory.
    Even,
    /// `odd(t)` — parity theory.
    Odd,
    /// `positive(t)` — sign theory.
    Positive,
    /// `negative(t)` — sign theory.
    Negative,
}

impl PredSym {
    /// The theory the predicate belongs to.
    pub fn theory(&self) -> TheoryTag {
        match self {
            PredSym::Even | PredSym::Odd => TheoryTag::PARITY,
            PredSym::Positive | PredSym::Negative => TheoryTag::SIGN,
        }
    }

    /// The predicate's display name.
    pub fn name(&self) -> &'static str {
        match self {
            PredSym::Even => "even",
            PredSym::Odd => "odd",
            PredSym::Positive => "positive",
            PredSym::Negative => "negative",
        }
    }

    /// Looks a predicate up by name.
    pub fn from_name(name: &str) -> Option<PredSym> {
        match name {
            "even" => Some(PredSym::Even),
            "odd" => Some(PredSym::Odd),
            "positive" => Some(PredSym::Positive),
            "negative" => Some(PredSym::Negative),
            _ => None,
        }
    }
}

impl fmt::Display for PredSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_interning() {
        let f1 = FnSym::uf("F", 1);
        let f2 = FnSym::uf("F", 1);
        assert_eq!(f1, f2);
        // Same name, different arity: different symbol.
        let f3 = FnSym::uf("F", 2);
        assert_ne!(f1, f3);
        assert_eq!(f3.arity(), 2);
    }

    #[test]
    fn builtin_tags() {
        assert_eq!(TheoryTag::named("linarith"), TheoryTag::LINARITH);
        assert_eq!(TheoryTag::named("uf"), TheoryTag::UF);
        assert_eq!(TheoryTag::LINARITH.name(), "linarith");
        let custom = TheoryTag::named("arrays");
        assert_eq!(custom, TheoryTag::named("arrays"));
        assert_ne!(custom, TheoryTag::UF);
        assert_eq!(custom.name(), "arrays");
    }

    #[test]
    fn list_symbols() {
        assert_eq!(FnSym::cons().arity(), 2);
        assert_eq!(FnSym::car().theory(), TheoryTag::LIST);
    }

    #[test]
    fn pred_lookup() {
        assert_eq!(PredSym::from_name("even"), Some(PredSym::Even));
        assert_eq!(PredSym::from_name("bogus"), None);
        assert_eq!(PredSym::Positive.theory(), TheoryTag::SIGN);
    }
}
