//! Property-based tests for the term layer: arithmetic normalization,
//! substitution laws, and purification invariants.

use cai_num::Rat;
use cai_term::{alien_terms, purify, Atom, Conj, FnSym, Sig, Term, TheoryTag, Var};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum RTerm {
    Var(u8),
    Const(i8),
    Add(Box<RTerm>, Box<RTerm>),
    Sub(Box<RTerm>, Box<RTerm>),
    Scale(i8, Box<RTerm>),
    F(Box<RTerm>),
    G(Box<RTerm>, Box<RTerm>),
}

impl RTerm {
    fn to_term(&self) -> Term {
        match self {
            RTerm::Var(i) => Term::var(Var::named(&format!("m{}", i % 4))),
            RTerm::Const(c) => Term::int(*c as i64),
            RTerm::Add(a, b) => Term::add(&a.to_term(), &b.to_term()),
            RTerm::Sub(a, b) => Term::sub(&a.to_term(), &b.to_term()),
            RTerm::Scale(c, a) => Term::scale(&Rat::from(*c as i64), &a.to_term()),
            RTerm::F(a) => Term::app(FnSym::uf("F", 1), vec![a.to_term()]),
            RTerm::G(a, b) => {
                Term::app(FnSym::uf("G", 2), vec![a.to_term(), b.to_term()])
            }
        }
    }
}

fn rterm() -> impl Strategy<Value = RTerm> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(RTerm::Var),
        (-4i8..5).prop_map(RTerm::Const),
    ];
    leaf.prop_recursive(4, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RTerm::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RTerm::Sub(Box::new(a), Box::new(b))),
            (-3i8..4, inner.clone())
                .prop_map(|(c, a)| RTerm::Scale(c, Box::new(a))),
            inner.clone().prop_map(|a| RTerm::F(Box::new(a))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| RTerm::G(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arithmetic normalization: a + b == b + a, (a + b) - b == a, and
    /// 2*a == a + a, all as structural equality.
    #[test]
    fn linear_layer_is_canonical(a in rterm(), b in rterm()) {
        let (ta, tb) = (a.to_term(), b.to_term());
        prop_assert_eq!(Term::add(&ta, &tb), Term::add(&tb, &ta));
        prop_assert_eq!(Term::sub(&Term::add(&ta, &tb), &tb), ta.clone());
        prop_assert_eq!(
            Term::scale(&Rat::from(2i64), &ta),
            Term::add(&ta, &ta)
        );
        prop_assert_eq!(Term::sub(&ta, &ta), Term::int(0));
    }

    /// Substitution is compositional on disjoint maps and identity on
    /// absent variables.
    #[test]
    fn subst_laws(t in rterm(), r in rterm()) {
        let term = t.to_term();
        let replacement = r.to_term();
        let fresh = Var::named("zz_not_used");
        let mut map = BTreeMap::new();
        map.insert(fresh, replacement);
        prop_assert_eq!(term.subst(&map), term.clone());
        // Substituting a variable by itself is the identity.
        let v = Var::named("m0");
        let mut id = BTreeMap::new();
        id.insert(v, Term::var(v));
        prop_assert_eq!(term.subst(&id), term);
    }

    /// Purification invariants: the two halves are pure, the fresh
    /// variables are exactly the definition keys, and expanding the
    /// definitions recovers facts over the original variables only.
    #[test]
    fn purify_invariants(pairs in proptest::collection::vec((rterm(), rterm()), 1..4)) {
        let conj: Conj = pairs
            .iter()
            .map(|(s, t)| Atom::eq(s.to_term(), t.to_term()))
            .collect();
        let lin = Sig::single(TheoryTag::LINARITH);
        let uf = Sig::single(TheoryTag::UF);
        let p = purify(&conj, &lin, &uf);
        for atom in &p.left {
            prop_assert!(lin.owns_atom(atom), "left atom {atom} not pure");
        }
        for atom in &p.right {
            prop_assert!(uf.owns_atom(atom), "right atom {atom} not pure");
        }
        prop_assert_eq!(p.fresh.len(), p.defs.len());
        // No alien terms remain in either half.
        prop_assert!(alien_terms(&p.left, &lin, &uf).is_empty());
        prop_assert!(alien_terms(&p.right, &lin, &uf).is_empty());
        // Expanding definitions eliminates every fresh variable.
        for atom in &p.conjoined() {
            for arg in atom.args() {
                let expanded = p.expand(arg);
                for v in &expanded.vars() {
                    prop_assert!(
                        !p.fresh.contains(v),
                        "expanded {expanded} still mentions fresh {v}"
                    );
                }
            }
        }
    }

    /// The alien terms of a purifiable conjunction all root in one theory
    /// and occur under the other.
    #[test]
    fn alien_terms_are_boundary_terms(pairs in proptest::collection::vec((rterm(), rterm()), 1..4)) {
        let conj: Conj = pairs
            .iter()
            .map(|(s, t)| Atom::eq(s.to_term(), t.to_term()))
            .collect();
        let lin = Sig::single(TheoryTag::LINARITH);
        let uf = Sig::single(TheoryTag::UF);
        for t in alien_terms(&conj, &lin, &uf) {
            // Every alien is rooted in exactly one of the two signatures.
            let l = lin.owns_root(&t);
            let u = uf.owns_root(&t);
            prop_assert!(l ^ u, "alien {t} roots in both/neither signature");
        }
    }

    /// Display/parse round-trip for generated terms.
    #[test]
    fn display_parse_roundtrip(t in rterm()) {
        let term = t.to_term();
        let vocab = cai_term::parse::Vocab::standard();
        let reparsed = vocab.parse_term(&term.to_string()).expect("display parses");
        prop_assert_eq!(reparsed, term);
    }
}
