//! Property-based tests for the term layer: arithmetic normalization,
//! substitution laws, and purification invariants.
//!
//! Random terms are generated from the in-tree deterministic
//! [`SplitMix64`] stream (the workspace builds offline, with no external
//! test crates); each test runs a fixed set of seeded cases.

use cai_num::{Rat, SplitMix64};
use cai_term::{alien_terms, purify, Atom, Conj, FnSym, Sig, Term, TheoryTag, Var};
use std::collections::BTreeMap;

const CASES: usize = 128;

/// A random term over `m0..m3` with the given depth budget: leaves are
/// variables (70%) or small constants; interior nodes draw uniformly from
/// add, sub, scale, `F/1`, and `G/2`.
fn rand_term(g: &mut SplitMix64, depth: usize) -> Term {
    if depth == 0 {
        return if g.ratio(7, 10) {
            Term::var(Var::named(&format!("m{}", g.below(4))))
        } else {
            Term::int(g.range_i64(-4, 5))
        };
    }
    match g.below(5) {
        0 => Term::add(&rand_term(g, depth - 1), &rand_term(g, depth - 1)),
        1 => Term::sub(&rand_term(g, depth - 1), &rand_term(g, depth - 1)),
        2 => Term::scale(&Rat::from(g.range_i64(-3, 4)), &rand_term(g, depth - 1)),
        3 => Term::app(FnSym::uf("F", 1), vec![rand_term(g, depth - 1)]),
        _ => Term::app(
            FnSym::uf("G", 2),
            vec![rand_term(g, depth - 1), rand_term(g, depth - 1)],
        ),
    }
}

fn rand_conj(g: &mut SplitMix64, max_atoms: u64, depth: usize) -> Conj {
    (0..1 + g.below(max_atoms))
        .map(|_| Atom::eq(rand_term(g, depth), rand_term(g, depth)))
        .collect()
}

/// Arithmetic normalization: a + b == b + a, (a + b) - b == a, and
/// 2*a == a + a, all as structural equality.
#[test]
fn linear_layer_is_canonical() {
    let mut g = SplitMix64::new(0xB001);
    for _ in 0..CASES {
        let (ta, tb) = (rand_term(&mut g, 3), rand_term(&mut g, 3));
        assert_eq!(Term::add(&ta, &tb), Term::add(&tb, &ta));
        assert_eq!(Term::sub(&Term::add(&ta, &tb), &tb), ta.clone());
        assert_eq!(Term::scale(&Rat::from(2i64), &ta), Term::add(&ta, &ta));
        assert_eq!(Term::sub(&ta, &ta), Term::int(0));
    }
}

/// Substitution is identity on absent variables and on v ↦ v.
#[test]
fn subst_laws() {
    let mut g = SplitMix64::new(0xB002);
    for _ in 0..CASES {
        let term = rand_term(&mut g, 3);
        let replacement = rand_term(&mut g, 3);
        let fresh = Var::named("zz_not_used");
        let mut map = BTreeMap::new();
        map.insert(fresh, replacement);
        assert_eq!(term.subst(&map), term.clone());
        // Substituting a variable by itself is the identity.
        let v = Var::named("m0");
        let mut id = BTreeMap::new();
        id.insert(v, Term::var(v));
        assert_eq!(term.subst(&id), term);
    }
}

/// Purification invariants: the two halves are pure, the fresh variables
/// are exactly the definition keys, and expanding the definitions
/// recovers facts over the original variables only.
#[test]
fn purify_invariants() {
    let mut g = SplitMix64::new(0xB003);
    for _ in 0..CASES {
        let conj = rand_conj(&mut g, 3, 3);
        let lin = Sig::single(TheoryTag::LINARITH);
        let uf = Sig::single(TheoryTag::UF);
        let p = purify(&conj, &lin, &uf);
        for atom in &p.left {
            assert!(lin.owns_atom(atom), "left atom {atom} not pure");
        }
        for atom in &p.right {
            assert!(uf.owns_atom(atom), "right atom {atom} not pure");
        }
        assert_eq!(p.fresh.len(), p.defs.len());
        // No alien terms remain in either half.
        assert!(alien_terms(&p.left, &lin, &uf).is_empty());
        assert!(alien_terms(&p.right, &lin, &uf).is_empty());
        // Expanding definitions eliminates every fresh variable.
        for atom in &p.conjoined() {
            for arg in atom.args() {
                let expanded = p.expand(arg);
                for v in &expanded.vars() {
                    assert!(
                        !p.fresh.contains(v),
                        "expanded {expanded} still mentions fresh {v}"
                    );
                }
            }
        }
    }
}

/// The alien terms of a purifiable conjunction all root in exactly one
/// theory and occur under the other.
#[test]
fn alien_terms_are_boundary_terms() {
    let mut g = SplitMix64::new(0xB004);
    for _ in 0..CASES {
        let conj = rand_conj(&mut g, 3, 3);
        let lin = Sig::single(TheoryTag::LINARITH);
        let uf = Sig::single(TheoryTag::UF);
        for t in alien_terms(&conj, &lin, &uf) {
            // Every alien is rooted in exactly one of the two signatures.
            let l = lin.owns_root(&t);
            let u = uf.owns_root(&t);
            assert!(l ^ u, "alien {t} roots in both/neither signature");
        }
    }
}

/// Display/parse round-trip for generated terms.
#[test]
fn display_parse_roundtrip() {
    let mut g = SplitMix64::new(0xB005);
    for _ in 0..CASES {
        let term = rand_term(&mut g, 3);
        let vocab = cai_term::parse::Vocab::standard();
        let reparsed = vocab.parse_term(&term.to_string()).expect("display parses");
        assert_eq!(reparsed, term);
    }
}
