//! [`CounterFamily`]: a fixed block of named atomic counters.
//!
//! `JoinStats`, `CtxStats` and `SupStats` used to be three copy-pasted
//! `Arc<Inner-of-AtomicU64s>` structs, each re-implementing `bump`,
//! `snapshot`, `absorb` and a `k=v` `Display`. A family is that pattern,
//! once: a `&'static` name slice plus an `Arc`-shared slab of atomics.
//! Facades keep their public snapshot structs and build them from
//! [`CounterFamily::values`].
//!
//! `absorb` keeps the transactional commit semantics the supervisor relies
//! on: counters accumulated in a scratch family are folded into a parent
//! family in one call, so a failed dispatch can simply drop its scratch and
//! contribute nothing.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metrics::Snapshot;

/// A fixed-name block of atomic counters with cheap `Arc`-shared handles.
///
/// Cloning shares the underlying cells; two clones observe each other's
/// increments. Indices out of range are ignored (counting must never panic).
#[derive(Clone, Debug)]
pub struct CounterFamily {
    names: &'static [&'static str],
    cells: Arc<[AtomicU64]>,
}

impl CounterFamily {
    /// A zeroed family with one cell per name.
    #[must_use]
    pub fn new(names: &'static [&'static str]) -> CounterFamily {
        let cells: Arc<[AtomicU64]> = (0..names.len()).map(|_| AtomicU64::new(0)).collect();
        CounterFamily { names, cells }
    }

    /// Number of counters in the family.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the family has no counters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Counter names, in cell order.
    #[must_use]
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Add `n` to counter `idx`. Out-of-range indices are ignored.
    #[inline]
    pub fn add(&self, idx: usize, n: u64) {
        if let Some(cell) = self.cells.get(idx) {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one to counter `idx`.
    #[inline]
    pub fn bump(&self, idx: usize) {
        self.add(idx, 1);
    }

    /// Current value of counter `idx` (0 when out of range).
    #[must_use]
    pub fn get(&self, idx: usize) -> u64 {
        self.cells.get(idx).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Current values of all counters, in cell order.
    #[must_use]
    pub fn values(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Fold `other`'s current values into `self` (transactional commit).
    ///
    /// The caller accumulates into a scratch family and absorbs it only on
    /// success; dropping the scratch instead contributes nothing.
    pub fn absorb(&self, other: &CounterFamily) {
        for (idx, cell) in other.cells.iter().enumerate() {
            self.add(idx, cell.load(Ordering::Relaxed));
        }
    }

    /// Point-in-time copy of names and values.
    #[must_use]
    pub fn snapshot(&self) -> FamilySnapshot {
        FamilySnapshot {
            names: self.names,
            values: self.values(),
        }
    }

    /// Merge current values into a metrics [`Snapshot`] under
    /// `"{prefix}/{name}"` keys, adding to any existing counter entries.
    pub fn export_into(&self, snap: &mut Snapshot, prefix: &str) {
        for (name, value) in self.names.iter().zip(self.values()) {
            snap.add_counter(&format!("{prefix}/{name}"), value);
        }
    }
}

/// Point-in-time values of a [`CounterFamily`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilySnapshot {
    names: &'static [&'static str],
    values: Vec<u64>,
}

impl FamilySnapshot {
    /// Counter value by cell index (0 when out of range).
    #[must_use]
    pub fn get(&self, idx: usize) -> u64 {
        self.values.get(idx).copied().unwrap_or(0)
    }

    /// `(name, value)` pairs in cell order.
    pub fn pairs(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.names.iter().copied().zip(self.values.iter().copied())
    }

    /// `num / (num + den)` over the counters at the two indices, as a
    /// fraction in `[0, 1]` — the conventional hit-rate shape (`0.0` when
    /// both are zero). Used by the cache stats facades.
    #[must_use]
    pub fn ratio(&self, num: usize, den: usize) -> f64 {
        let n = self.get(num);
        let total = n + self.get(den);
        if total == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            n as f64 / total as f64
        }
    }

    /// Field-wise saturating subtraction (`self - baseline`).
    #[must_use]
    pub fn diff(&self, baseline: &FamilySnapshot) -> FamilySnapshot {
        let values = self
            .values
            .iter()
            .enumerate()
            .map(|(i, v)| v.saturating_sub(baseline.get(i)))
            .collect();
        FamilySnapshot {
            names: self.names,
            values,
        }
    }
}

impl fmt::Display for FamilySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_kv(f, self.pairs())
    }
}

/// Render `(name, value)` pairs as the stack's conventional one-line
/// `k=v k=v …` form (shared by the stats facades' `Display` impls).
pub fn write_kv(
    f: &mut fmt::Formatter<'_>,
    pairs: impl IntoIterator<Item = (&'static str, u64)>,
) -> fmt::Result {
    for (i, (name, value)) in pairs.into_iter().enumerate() {
        if i > 0 {
            f.write_str(" ")?;
        }
        write!(f, "{name}={value}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAMES: &[&str] = &["alpha", "beta", "gamma"];

    #[test]
    fn clones_share_cells() {
        let fam = CounterFamily::new(NAMES);
        let other = fam.clone();
        fam.bump(0);
        other.add(0, 2);
        assert_eq!(fam.get(0), 3);
        assert_eq!(other.get(0), 3);
    }

    #[test]
    fn out_of_range_is_ignored() {
        let fam = CounterFamily::new(NAMES);
        fam.add(99, 5);
        assert_eq!(fam.get(99), 0);
        assert_eq!(fam.values(), vec![0, 0, 0]);
    }

    #[test]
    fn absorb_is_additive() {
        let parent = CounterFamily::new(NAMES);
        parent.add(1, 10);
        let scratch = CounterFamily::new(NAMES);
        scratch.add(1, 5);
        scratch.bump(2);
        parent.absorb(&scratch);
        assert_eq!(parent.values(), vec![0, 15, 1]);
        // Dropping a scratch without absorbing contributes nothing.
        let dropped = CounterFamily::new(NAMES);
        dropped.add(0, 7);
        drop(dropped);
        assert_eq!(parent.get(0), 0);
    }

    #[test]
    fn snapshot_diff_and_display() {
        let fam = CounterFamily::new(NAMES);
        fam.add(0, 4);
        let before = fam.snapshot();
        fam.add(0, 6);
        fam.bump(2);
        let after = fam.snapshot();
        let delta = after.diff(&before);
        assert_eq!(delta.get(0), 6);
        assert_eq!(delta.get(1), 0);
        assert_eq!(delta.get(2), 1);
        assert_eq!(delta.to_string(), "alpha=6 beta=0 gamma=1");
    }
}
