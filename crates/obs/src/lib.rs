//! Observability for the analysis stack.
//!
//! `cai-obs` is the one place wall-clock time and diagnostic output are
//! allowed to live (`ci.sh` greps for strays elsewhere). It is
//! dependency-free and offline-friendly, and it is built around a hard
//! determinism contract:
//!
//! > **Observability never influences analysis results.** Counters and spans
//! > are write-only from the analysis's point of view; timestamps are taken
//! > for export only and are never read back into any decision. Runs with the
//! > tracer off, on, or on with a different thread count produce bit-identical
//! > summaries (pinned by `tests/obs.rs` at the workspace root).
//!
//! Three pieces:
//!
//! * [`metrics`] — a process-wide registry of named counters / gauges /
//!   histograms with cheap `Arc`-shared handles and subtractable
//!   [`Snapshot`]s. Hot paths cache a handle in a `OnceLock` via the
//!   [`counter!`] macro, so a bump is one atomic add.
//! * [`family`] — [`CounterFamily`], a fixed-name block of atomic counters.
//!   This is the shared primitive under `JoinStats` / `CtxStats` / `SupStats`,
//!   which used to be three copy-pasted `bump`/`snapshot`/`absorb` structs.
//! * [`trace`] — a span tracer ([`span!`] / [`spanned!`] / [`instant!`])
//!   writing to per-thread ring buffers (no global mutex on the hot path) and
//!   exporting Chrome `trace_event` JSON for `chrome://tracing` / Perfetto.
//!   When disabled, a span is a single relaxed atomic load.
//! * [`provenance`] — the precision blame layer: every precision-losing
//!   operation (widening, budget degradation, context-cap overflow,
//!   quarantine, skipped cache store, defective Alternate) records a loss
//!   event under its procedure/loop scope, aggregated into a ranked,
//!   deterministic [`BlameTable`] with JSON export. Same contract as the
//!   tracer: one relaxed load when off, bit-identical results on or off.
//!
//! [`clock::now`] wraps `Instant::now` so governed components (budget
//! deadlines, the supervisor watchdog) read the clock through one audited
//! door.

pub mod clock;
pub mod family;
pub mod metrics;
pub mod provenance;
pub mod trace;

pub use family::{write_kv, CounterFamily, FamilySnapshot};
pub use metrics::{
    escape_metric_name, global, Counter, Gauge, Histogram, HistogramSummary, Metrics, Snapshot,
    Value,
};
pub use provenance::{BlameEntry, BlameTable, LossKind};
pub use trace::{EventKind, SpanGuard, Trace, TraceEvent};
