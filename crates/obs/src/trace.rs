//! Span tracing with per-thread ring buffers and Chrome `trace_event` export.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** [`enabled`] is one relaxed atomic load; the
//!    [`span!`](crate::span) macro does not even evaluate its name expression
//!    when the tracer is off.
//! 2. **No global mutex on the hot path.** Each thread owns a ring buffer in
//!    TLS; events are pushed without taking any lock. Rings are flushed into
//!    a global sink when the thread exits (TLS drop) or when the caller
//!    [`drain`]s. Bounded capacity drops the *oldest* events, so a profile
//!    always keeps the newest window.
//! 3. **Timestamps stay in the export layer.** Spans capture `Instant`s, but
//!    nothing ever reads them back into analysis decisions; they are turned
//!    into microseconds only when an event is recorded, and surface only in
//!    [`Trace`] exports.
//!
//! The legacy `CAI_TRACE` env var still works: it enables the tracer *with a
//! stderr echo*, reproducing the old `trace_phase!` per-phase timing lines.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::clock;
use crate::metrics::escape_json;

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;
const STATE_ON_ECHO: u8 = 3;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

/// Hard bound on buffered events in the global sink.
const MAX_SINK_EVENTS: usize = 1 << 20;

static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Is the tracer on?
///
/// First call initialises from the `CAI_TRACE` env var (set ⇒ enabled with a
/// stderr echo, preserving the legacy `trace_phase!` behaviour); subsequent
/// calls are a single relaxed load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_UNINIT => init_from_env(),
        s => s >= STATE_ON,
    }
}

#[cold]
fn init_from_env() -> bool {
    let state = if std::env::var_os("CAI_TRACE").is_some() {
        STATE_ON_ECHO
    } else {
        STATE_OFF
    };
    let _ = STATE.compare_exchange(STATE_UNINIT, state, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) >= STATE_ON
}

/// Turn the tracer on or off, overriding the `CAI_TRACE` default.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Turn the tracer on *and* echo every completed span to stderr (the legacy
/// `CAI_TRACE` behaviour).
pub fn enable_with_stderr_echo() {
    STATE.store(STATE_ON_ECHO, Ordering::Relaxed);
}

#[inline]
fn echo() -> bool {
    STATE.load(Ordering::Relaxed) == STATE_ON_ECHO
}

/// Set the capacity of rings created by threads that have not yet traced.
/// Existing rings keep their capacity.
pub fn set_ring_capacity(cap: usize) {
    RING_CAPACITY.store(cap.max(1), Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(clock::now)
}

/// What kind of event a [`TraceEvent`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A duration span (`ph: "X"` in Chrome terms).
    Span,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name, e.g. `"join/saturate"`.
    pub name: String,
    /// Stable per-thread id (small integers, assigned in first-trace order).
    pub tid: u64,
    /// Microseconds since the tracer epoch.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Span or instant.
    pub kind: EventKind,
}

struct Ring {
    tid: u64,
    cap: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

/// Flush-on-thread-exit wrapper: the ring's events reach the sink even if the
/// owner never calls [`drain`].
struct LocalRing(Ring);

impl Drop for LocalRing {
    fn drop(&mut self) {
        flush_ring(&mut self.0);
    }
}

thread_local! {
    static RING: RefCell<Option<LocalRing>> = const { RefCell::new(None) };
}

#[derive(Default)]
struct Sink {
    events: Vec<TraceEvent>,
    dropped: u64,
}

static SINK: Mutex<Sink> = Mutex::new(Sink {
    events: Vec::new(),
    dropped: 0,
});

fn flush_ring(ring: &mut Ring) {
    if ring.buf.is_empty() && ring.dropped == 0 {
        return;
    }
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    sink.dropped += ring.dropped;
    ring.dropped = 0;
    for ev in ring.buf.drain(..) {
        if sink.events.len() >= MAX_SINK_EVENTS {
            sink.dropped += 1;
        } else {
            sink.events.push(ev);
        }
    }
}

fn with_ring(f: impl FnOnce(&mut Ring)) {
    let _ = RING.try_with(|slot| {
        if let Ok(mut slot) = slot.try_borrow_mut() {
            let ring = slot.get_or_insert_with(|| {
                LocalRing(Ring {
                    tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                    cap: RING_CAPACITY.load(Ordering::Relaxed),
                    buf: VecDeque::new(),
                    dropped: 0,
                })
            });
            f(&mut ring.0);
        }
    });
}

/// RAII guard for an open span; records the event when dropped.
///
/// Use the [`span!`](crate::span) / [`spanned!`](crate::spanned) macros
/// rather than constructing this directly — they skip name construction when
/// the tracer is off.
#[derive(Debug)]
pub struct SpanGuard {
    name: String,
    start: Instant,
}

impl SpanGuard {
    /// Open a span now. The caller has already checked [`enabled`].
    #[must_use]
    pub fn enter(name: String) -> SpanGuard {
        // Pin the epoch before the first span starts so ts ≥ 0 always holds.
        let _ = epoch();
        SpanGuard {
            name,
            start: clock::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = clock::now();
        let dur = end.duration_since(self.start);
        if echo() {
            eprintln!("[cai-trace] {}: {:?}", self.name, dur);
        }
        let ts_us =
            u64::try_from(self.start.duration_since(epoch()).as_micros()).unwrap_or(u64::MAX);
        let dur_us = u64::try_from(dur.as_micros()).unwrap_or(u64::MAX);
        let name = std::mem::take(&mut self.name);
        with_ring(|ring| {
            let tid = ring.tid;
            ring.push(TraceEvent {
                name,
                tid,
                ts_us,
                dur_us,
                kind: EventKind::Span,
            });
        });
    }
}

/// Record a point-in-time marker. The caller has already checked [`enabled`];
/// prefer the [`instant!`](crate::instant) macro.
pub fn record_instant(name: String) {
    let ts_us = u64::try_from(clock::now().duration_since(epoch()).as_micros()).unwrap_or(u64::MAX);
    if echo() {
        eprintln!("[cai-trace] {name}");
    }
    with_ring(|ring| {
        let tid = ring.tid;
        ring.push(TraceEvent {
            name,
            tid,
            ts_us,
            dur_us: 0,
            kind: EventKind::Instant,
        });
    });
}

/// Open a span if the tracer is enabled; returns `Option<SpanGuard>`.
///
/// Bind the result (`let _span = span!(...)`) — an unbound guard drops
/// immediately. The name expression is evaluated only when tracing is on, so
/// `span!(format!("analyze/{proc}"))` is free when disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::trace::enabled() {
            Some($crate::trace::SpanGuard::enter(String::from($name)))
        } else {
            None
        }
    };
}

/// Run `$body` inside a span — a drop-in replacement for the old
/// `trace_phase!` macro.
#[macro_export]
macro_rules! spanned {
    ($name:expr, $body:expr) => {{
        let _obs_span = $crate::span!($name);
        $body
    }};
}

/// Record a point-in-time marker with `format!` arguments, only when the
/// tracer is enabled.
#[macro_export]
macro_rules! instant {
    ($($arg:tt)*) => {
        if $crate::trace::enabled() {
            $crate::trace::record_instant(format!($($arg)*));
        }
    };
}

/// Everything collected so far: the caller's ring plus every ring flushed by
/// an exited thread.
///
/// Rings owned by *other live* threads are not visible until those threads
/// exit; in this codebase worker threads are scoped, so a drain after
/// analysis sees all of them.
pub fn drain() -> Trace {
    RING.with(|slot| {
        if let Some(ring) = slot.borrow_mut().as_mut() {
            flush_ring(&mut ring.0);
        }
    });
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let mut events = std::mem::take(&mut sink.events);
    let dropped = std::mem::replace(&mut sink.dropped, 0);
    drop(sink);
    events.sort_by(|a, b| {
        (a.ts_us, a.tid, a.dur_us, &a.name).cmp(&(b.ts_us, b.tid, b.dur_us, &b.name))
    });
    Trace { events, dropped }
}

/// A drained batch of trace events.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events sorted by timestamp (then tid).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wraparound or sink overflow.
    pub dropped: u64,
}

impl Trace {
    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Render as Chrome `trace_event` JSON (array form), loadable in
    /// `chrome://tracing` or Perfetto.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = escape_json(&ev.name);
            match ev.kind {
                EventKind::Span => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{name}\",\"cat\":\"cai\",\"ph\":\"X\",\
                         \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                        ev.ts_us, ev.dur_us, ev.tid
                    );
                }
                EventKind::Instant => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{name}\",\"cat\":\"cai\",\"ph\":\"i\",\
                         \"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                        ev.ts_us, ev.tid
                    );
                }
            }
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The tracer state is process-global; serialise tests that toggle it.
    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let _ = drain();
        {
            let _span = crate::span!("test/should-not-appear");
        }
        crate::instant!("test/should-not-appear-{}", 1);
        let t = drain();
        assert!(
            !t.events
                .iter()
                .any(|e| e.name.contains("should-not-appear")),
            "disabled tracer must record nothing"
        );
        assert!(crate::span!("off").is_none());
    }

    #[test]
    fn spans_and_instants_are_recorded_and_exported() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let _ = drain();
        {
            let _span = crate::span!(format!("test/span-{}", 7));
            crate::instant!("test/mark");
        }
        set_enabled(false);
        let t = drain();
        let span = t.events.iter().find(|e| e.name == "test/span-7");
        let mark = t.events.iter().find(|e| e.name == "test/mark");
        assert!(span.is_some_and(|e| e.kind == EventKind::Span));
        assert!(mark.is_some_and(|e| e.kind == EventKind::Instant));
        let json = t.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn wraparound_keeps_newest_events() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let _ = drain();
        set_ring_capacity(4);
        let handle = std::thread::spawn(|| {
            for i in 0..20 {
                record_instant(format!("wrap/{i:02}"));
            }
        });
        let _ = handle.join();
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        set_enabled(false);
        let t = drain();
        let kept: Vec<&str> = t
            .events
            .iter()
            .filter(|e| e.name.starts_with("wrap/"))
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(kept, vec!["wrap/16", "wrap/17", "wrap/18", "wrap/19"]);
        assert!(
            t.dropped >= 16,
            "dropped={} should count evictions",
            t.dropped
        );
    }

    #[test]
    fn chrome_json_escapes_names() {
        let t = Trace {
            events: vec![TraceEvent {
                name: "weird\"name\\with\nctl".to_string(),
                tid: 1,
                ts_us: 0,
                dur_us: 1,
                kind: EventKind::Span,
            }],
            dropped: 0,
        };
        let json = t.to_chrome_json();
        assert!(json.contains("weird\\\"name\\\\with\\nctl"));
    }
}
