//! Precision provenance: a deterministic blame layer that attributes
//! every lost fact to the widening, degradation, or cap that dropped it.
//!
//! The combination operators trade precision for termination at many
//! distinct sites — widenings, budget degradations, context-cap
//! overflows, quarantines, skipped cache stores, defective Alternate
//! operators. Counters say *how often* those sites fire; this layer says
//! *where*: every precision-losing operation records a [`LossEvent`]
//! carrying its scope (procedure / loop), site string, domain path,
//! [`LossKind`], logical round number, and fuel spent, and the events
//! aggregate into a per-scope, per-site [`BlameTable`] with top-K
//! ranking and JSON export.
//!
//! Design constraints, shared with the span tracer ([`crate::trace`]):
//!
//! 1. **Disabled means free.** [`enabled`] is one relaxed atomic load;
//!    [`scope`] does not evaluate its label closure and [`record`] does
//!    not touch the aggregation map when the layer is off.
//! 2. **Observation only.** Nothing ever reads the blame state back into
//!    an analysis decision; results are bit-identical with the layer on
//!    and off (pinned by `tests/blame.rs`).
//! 3. **Deterministic across schedules.** Events carry *logical* round
//!    numbers, never wall clock. Scopes live in thread-local stacks, and
//!    jobs are shared-nothing, so the labels a run produces do not depend
//!    on which worker thread ran which job. Aggregation is additive and
//!    commutative — a `(scope, site, domain, kind)` key maps to counts,
//!    fuel totals, and round min/max, all order-independent — so the
//!    drained table is identical at every thread count.
//!
//! Adding a loss site is three lines: push a [`scope`] guard if the
//! enclosing region is not already labelled, then call [`record`] at the
//! point where precision is given up (see DESIGN.md §11).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use crate::metrics::escape_metric_name;

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Is the blame layer on?
///
/// First call initialises from the `CAI_BLAME` env var; subsequent calls
/// are a single relaxed load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_UNINIT => init_from_env(),
        s => s == STATE_ON,
    }
}

#[cold]
fn init_from_env() -> bool {
    let state = if std::env::var_os("CAI_BLAME").is_some() {
        STATE_ON
    } else {
        STATE_OFF
    };
    let _ = STATE.compare_exchange(STATE_UNINIT, state, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Turn the blame layer on or off, overriding the `CAI_BLAME` default.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Why a fact was lost. Every variant has a stable string name
/// ([`LossKind::as_str`]); the tracer's `incident/<kind>` instants use
/// the same strings, so Chrome traces and blame reports cross-reference
/// by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum LossKind {
    /// A loop fixpoint applied the widening operator.
    Widen,
    /// A governed operation substituted a sound over-approximation
    /// (every `Budget::degrade` call).
    BudgetDegrade,
    /// The post-widening narrowing pass could not recover: it stopped
    /// early, produced an out-of-bracket candidate, or failed the
    /// inductiveness re-check.
    NarrowFailed,
    /// The per-procedure context cap overflowed; entry contexts were
    /// widened together.
    CtxCapOverflow,
    /// A procedure exhausted its retry allowance and was pinned to the
    /// sound ⊤ summary.
    Quarantine,
    /// A computed value was not cached because it was produced under a
    /// degraded budget — later rounds pay the recomputation.
    CacheSkippedDegraded,
    /// A defective Alternate operator was skipped during NO-saturation,
    /// dropping the cross-domain facts it would have transferred.
    AlternateSkipped,
}

impl LossKind {
    /// Every kind, for coverage checks.
    pub const ALL: [LossKind; 7] = [
        LossKind::Widen,
        LossKind::BudgetDegrade,
        LossKind::NarrowFailed,
        LossKind::CtxCapOverflow,
        LossKind::Quarantine,
        LossKind::CacheSkippedDegraded,
        LossKind::AlternateSkipped,
    ];

    /// The stable string name used in JSON exports and tracer instants.
    pub fn as_str(&self) -> &'static str {
        match self {
            LossKind::Widen => "widen",
            LossKind::BudgetDegrade => "budget-degrade",
            LossKind::NarrowFailed => "narrow-failed",
            LossKind::CtxCapOverflow => "ctx-cap-overflow",
            LossKind::Quarantine => "quarantine",
            LossKind::CacheSkippedDegraded => "cache-skipped-degraded",
            LossKind::AlternateSkipped => "alternate-skipped",
        }
    }
}

impl fmt::Display for LossKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

thread_local! {
    /// The enclosing scope labels (procedure, then loops, innermost
    /// last) plus the saved logical round of each enclosing scope.
    static SCOPES: RefCell<Vec<(String, u64)>> = const { RefCell::new(Vec::new()) };
    /// The current logical round (fixpoint iteration, Jacobi round,
    /// narrowing round) — attached to events recorded without an
    /// explicit round, e.g. the `Budget::degrade` hook.
    static ROUND: RefCell<u64> = const { RefCell::new(0) };
}

/// RAII guard for one scope label; see [`scope`].
pub struct ScopeGuard {
    pushed: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.pushed {
            SCOPES.with(|s| {
                if let Some((_, saved)) = s.borrow_mut().pop() {
                    ROUND.with(|r| *r.borrow_mut() = saved);
                }
            });
        }
    }
}

/// Pushes a scope label (a procedure name, `loop#2`, …) onto the current
/// thread's scope stack until the returned guard drops. The label
/// closure is only evaluated when the layer is [`enabled`]. Entering a
/// scope zeroes the logical round (see [`set_round`]) and restores the
/// enclosing scope's round on exit.
#[must_use = "the scope ends when the guard drops"]
pub fn scope(label: impl FnOnce() -> String) -> ScopeGuard {
    if !enabled() {
        return ScopeGuard { pushed: false };
    }
    let saved = ROUND.with(|r| std::mem::take(&mut *r.borrow_mut()));
    SCOPES.with(|s| s.borrow_mut().push((label(), saved)));
    ScopeGuard { pushed: true }
}

/// Sets the current logical round — the loop fixpoint iteration, Jacobi
/// round, or narrowing round — attached to events recorded through hooks
/// that do not know it (e.g. `Budget::degrade`). No-op when disabled.
#[inline]
pub fn set_round(round: u64) {
    if enabled() {
        ROUND.with(|r| *r.borrow_mut() = round);
    }
}

fn current_scope() -> String {
    SCOPES.with(|s| {
        let s = s.borrow();
        if s.is_empty() {
            "(top)".to_string()
        } else {
            s.iter()
                .map(|(l, _)| l.as_str())
                .collect::<Vec<_>>()
                .join("/")
        }
    })
}

/// The aggregation key: one row of the blame table.
type Key = (String, &'static str, String, LossKind);

#[derive(Clone, Copy, Debug, Default)]
struct Agg {
    count: u64,
    fuel: u64,
    round_min: u64,
    round_max: u64,
}

static TABLE: Mutex<BTreeMap<Key, Agg>> = Mutex::new(BTreeMap::new());

fn add(key: Key, round: u64, fuel: u64) {
    let mut table = TABLE.lock().unwrap_or_else(|e| e.into_inner());
    let agg = table.entry(key).or_insert(Agg {
        count: 0,
        fuel: 0,
        round_min: round,
        round_max: round,
    });
    agg.count += 1;
    agg.fuel = agg.fuel.saturating_add(fuel);
    agg.round_min = agg.round_min.min(round);
    agg.round_max = agg.round_max.max(round);
}

/// Records one loss event under the current thread's scope. `site` is
/// the same stable string the budget's degradation log uses (e.g.
/// `"analyzer/while"`); `domain` is the domain path (e.g. `logical.uf`);
/// `round` is the logical round the loss happened in (0 when the loss is
/// not attached to a fixpoint); `fuel` is the ticks spent at that point.
/// No-op (one relaxed load) when disabled.
#[inline]
pub fn record(kind: LossKind, site: &'static str, domain: &str, round: u64, fuel: u64) {
    if !enabled() {
        return;
    }
    add(
        (current_scope(), site, domain.to_string(), kind),
        round,
        fuel,
    );
}

/// Like [`record`], but under an explicit scope instead of the calling
/// thread's — for losses attributed to a procedure from outside its
/// analysis (quarantines, summary-cache skips).
#[inline]
pub fn record_scoped(
    scope: &str,
    kind: LossKind,
    site: &'static str,
    domain: &str,
    round: u64,
    fuel: u64,
) {
    if !enabled() {
        return;
    }
    add(
        (scope.to_string(), site, domain.to_string(), kind),
        round,
        fuel,
    );
}

/// Like [`record`], but the current round is taken from [`set_round`].
#[inline]
pub fn record_at_current_round(kind: LossKind, site: &'static str, domain: &str, fuel: u64) {
    if !enabled() {
        return;
    }
    let round = ROUND.with(|r| *r.borrow());
    add(
        (current_scope(), site, domain.to_string(), kind),
        round,
        fuel,
    );
}

/// One aggregated row of a [`BlameTable`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlameEntry {
    /// `/`-joined scope labels, outermost first (e.g. `big/loop#0`), or
    /// `(top)` outside any scope.
    pub scope: String,
    /// The loss site — the same string the degradation log uses.
    pub site: &'static str,
    /// The domain path (e.g. `logical.uf`, `interp`, `driver.context`).
    pub domain: String,
    /// Why the facts were lost.
    pub kind: LossKind,
    /// How many events aggregated into this row.
    pub count: u64,
    /// Total fuel spent at the recording points.
    pub fuel: u64,
    /// Smallest logical round observed.
    pub round_min: u64,
    /// Largest logical round observed.
    pub round_max: u64,
}

impl BlameEntry {
    fn to_json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            r#"{{"scope":"{}","site":"{}","domain":"{}","kind":"{}","count":{},"fuel":{},"round_min":{},"round_max":{}}}"#,
            escape_metric_name(&self.scope),
            escape_metric_name(self.site),
            escape_metric_name(&self.domain),
            self.kind.as_str(),
            self.count,
            self.fuel,
            self.round_min,
            self.round_max,
        );
    }
}

impl fmt::Display for BlameEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} ({}, domain {}): count={} fuel={} rounds={}..{}",
            self.kind,
            self.scope,
            self.site,
            self.domain,
            self.count,
            self.fuel,
            self.round_min,
            self.round_max
        )
    }
}

/// The drained, ranked blame table: every aggregated loss row, most
/// blamed first (count, then fuel, then the deterministic key order).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlameTable {
    /// The ranked rows.
    pub entries: Vec<BlameEntry>,
}

impl BlameTable {
    /// The top `k` rows (all of them if fewer).
    pub fn top(&self, k: usize) -> &[BlameEntry] {
        &self.entries[..self.entries.len().min(k)]
    }

    /// The distinct [`LossKind`] strings present, for coverage checks.
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut kinds: Vec<&'static str> = self.entries.iter().map(|e| e.kind.as_str()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds
    }

    /// The rows whose scope is `proc` or nested under it, preserving
    /// rank — the events a regressed fact in `proc` joins against.
    pub fn for_scope<'a>(&'a self, proc: &str) -> impl Iterator<Item = &'a BlameEntry> + 'a {
        let proc = proc.to_string();
        let prefix = format!("{proc}/");
        self.entries
            .iter()
            .filter(move |e| e.scope == proc || e.scope.starts_with(&prefix))
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A deterministic JSON array of the ranked rows.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.to_json_into(&mut out);
        }
        out.push(']');
        out
    }
}

impl fmt::Display for BlameTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return writeln!(f, "(no loss events recorded)");
        }
        for (i, e) in self.entries.iter().enumerate() {
            writeln!(f, "#{} {}", i + 1, e)?;
        }
        Ok(())
    }
}

/// Drains every aggregated event into a ranked [`BlameTable`], clearing
/// the layer's state. Ranking is count (descending), then fuel
/// (descending), then the `(scope, site, domain, kind)` key — fully
/// deterministic, so two identical runs drain identical tables.
pub fn drain() -> BlameTable {
    let rows: BTreeMap<Key, Agg> =
        std::mem::take(&mut *TABLE.lock().unwrap_or_else(|e| e.into_inner()));
    let mut entries: Vec<BlameEntry> = rows
        .into_iter()
        .map(|((scope, site, domain, kind), agg)| BlameEntry {
            scope,
            site,
            domain,
            kind,
            count: agg.count,
            fuel: agg.fuel,
            round_min: agg.round_min,
            round_max: agg.round_max,
        })
        .collect();
    entries.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then(b.fuel.cmp(&a.fuel))
            .then_with(|| {
                (&a.scope, a.site, &a.domain, a.kind).cmp(&(&b.scope, b.site, &b.domain, b.kind))
            })
    });
    BlameTable { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// Serializes tests that toggle the global enabled flag / table.
    static LOCK: TestMutex<()> = TestMutex::new(());

    #[test]
    fn disabled_records_nothing_and_scope_is_free() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        drain();
        let _s = scope(|| unreachable!("label must not be evaluated when off"));
        record(LossKind::Widen, "analyzer/while", "interp", 3, 10);
        assert!(drain().is_empty());
    }

    #[test]
    fn events_aggregate_by_scope_site_domain_kind() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        drain();
        {
            let _p = scope(|| "f".to_string());
            let _l = scope(|| "loop#0".to_string());
            record(LossKind::Widen, "analyzer/while", "interp", 2, 5);
            record(LossKind::Widen, "analyzer/while", "interp", 4, 7);
            record(LossKind::NarrowFailed, "analyzer/narrow", "interp", 1, 3);
        }
        record(LossKind::Quarantine, "driver/supervisor", "driver", 0, 0);
        let t = drain();
        set_enabled(false);
        assert_eq!(t.entries.len(), 3);
        let widen = &t.entries[0];
        assert_eq!(widen.scope, "f/loop#0");
        assert_eq!(widen.kind, LossKind::Widen);
        assert_eq!((widen.count, widen.fuel), (2, 12));
        assert_eq!((widen.round_min, widen.round_max), (2, 4));
        assert_eq!(t.kinds(), vec!["narrow-failed", "quarantine", "widen"]);
        assert_eq!(t.for_scope("f").count(), 2);
        let json = t.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(r#""scope":"f/loop#0""#), "{json}");
    }

    #[test]
    fn scopes_restore_rounds_and_ranking_is_deterministic() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        drain();
        set_round(7);
        {
            let _p = scope(|| "g".to_string());
            set_round(2);
            record_at_current_round(LossKind::BudgetDegrade, "analyzer/while", "interp", 1);
        }
        // The enclosing round survives the inner scope.
        record_at_current_round(
            LossKind::BudgetDegrade,
            "driver/summary-fixpoint",
            "driver",
            1,
        );
        let t = drain();
        set_enabled(false);
        assert_eq!(t.entries.len(), 2);
        let by_scope: Vec<(&str, u64)> = t
            .entries
            .iter()
            .map(|e| (e.scope.as_str(), e.round_min))
            .collect();
        assert!(by_scope.contains(&("g", 2)));
        assert!(by_scope.contains(&("(top)", 7)));
        // Equal count+fuel falls back to key order: deterministic.
        assert_eq!(t.entries[0].scope, "(top)");
    }
}
