//! The one sanctioned door to the wall clock.
//!
//! Analysis *results* must never depend on wall-clock time, but two governed
//! features legitimately read it: `Budget` deadlines and the supervisor
//! watchdog (both opt-in, both documented to trade determinism for liveness).
//! They call [`now`] instead of `Instant::now()` so that `ci.sh` can grep the
//! rest of the workspace for stray clock reads.

use std::time::Instant;

/// Read the monotonic clock.
#[inline]
#[must_use]
pub fn now() -> Instant {
    Instant::now()
}
