//! Named metrics: counters, gauges, histograms, and subtractable snapshots.
//!
//! The process-wide registry ([`global`]) is the home for layer-wide
//! instrumentation (e-graph merges, fixpoint iterations, cache traffic, fuel
//! attribution). Handles are `Arc`-shared and cheap to clone; hot paths cache
//! one in a `OnceLock` via [`counter!`](crate::counter) so a bump costs a
//! single relaxed atomic add. Registration takes a mutex, bumping never does.
//!
//! [`Snapshot`]s are point-in-time, sorted, subtractable and renderable as a
//! stable text table or JSON — the substrate for `--obs-report`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A detached counter (not registered anywhere).
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A detached gauge (not registered anywhere).
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Bucket count for the log₂ histogram: bucket 0 holds the value 0,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`.
const HIST_BUCKETS: usize = 65;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Upper bound of bucket `i` — the representative value percentile
/// estimation reports for observations that landed in it.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug)]
struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistInner {
    fn default() -> HistInner {
        HistInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A histogram summarised as count / sum / min / max.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    /// A detached histogram (not registered anywhere).
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.min.fetch_min(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time summary. Percentiles come from the log₂ buckets:
    /// each reports the upper bound of the bucket holding its rank,
    /// clamped into `[min, max]`, so the estimate is within 2× of the
    /// true quantile and exact for single-valued buckets.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let count = self.inner.count.load(Ordering::Relaxed);
        let min = if count == 0 {
            0
        } else {
            self.inner.min.load(Ordering::Relaxed)
        };
        let max = self.inner.max.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = buckets.iter().sum();
        let percentile = |q: u64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Rank of the q-th percentile, 1-based: ceil(q% of total).
            let rank = (total * q).div_ceil(100).max(1);
            let mut seen = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_upper(i).clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum: self.inner.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: percentile(50),
            p95: percentile(95),
            p99: percentile(99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Estimated 50th-percentile value (log₂-bucket upper bound).
    pub p50: u64,
    /// Estimated 95th-percentile value (log₂-bucket upper bound).
    pub p95: u64,
    /// Estimated 99th-percentile value (log₂-bucket upper bound).
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

impl fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "count={} sum={} min={} max={} mean={} p50={} p95={} p99={}",
            self.count,
            self.sum,
            self.min,
            self.max,
            self.mean(),
            self.p50,
            self.p95,
            self.p99
        )
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A registry of named metrics.
///
/// Lookup-or-create takes a mutex; the returned handles are lock-free. A name
/// registered under one kind and requested as another yields a detached
/// handle (counting must never panic), so the registry stays kind-stable.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Metrics {
    /// An empty registry (tests use private registries; production code uses
    /// [`global`]).
    #[must_use]
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn map(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.map();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::new(),
        }
    }

    /// Get or create the gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.map();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// Get or create the histogram `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.map();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::new(),
        }
    }

    /// Point-in-time values of every registered metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let map = self.map();
        let entries = map
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => Value::Counter(c.get()),
                    Metric::Gauge(g) => Value::Gauge(g.get()),
                    Metric::Histogram(h) => Value::Histogram(h.summary()),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { entries }
    }
}

/// The process-wide registry.
pub fn global() -> &'static Metrics {
    static GLOBAL: OnceLock<Metrics> = OnceLock::new();
    GLOBAL.get_or_init(Metrics::new)
}

/// Cache a handle to a counter in the [`global`] registry.
///
/// ```
/// cai_obs::counter!("uf/egraph/merges").incr();
/// ```
///
/// The registry lookup happens once per call site; subsequent bumps are a
/// single relaxed atomic add.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<$crate::Counter> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Cache a handle to a histogram in the [`global`] registry (see
/// [`counter!`](crate::counter)).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<$crate::Histogram> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().histogram($name))
    }};
}

/// One metric's value inside a [`Snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Value {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// A point-in-time, name-sorted copy of a registry.
///
/// Snapshots subtract (`after.diff(&before)` or `&after - &before`) to scope
/// measurements to a region, and render as a stable sorted text table
/// (`Display`) or JSON ([`Snapshot::to_json`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    entries: BTreeMap<String, Value>,
}

impl Snapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Value by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Value> {
        self.entries.get(name).copied()
    }

    /// Counter value by name (0 when absent or not a counter).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(Value::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Iterate entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Value)> + '_ {
        self.entries.iter().map(|(name, v)| (name.as_str(), *v))
    }

    /// Insert (or add to) a counter entry — used to fold
    /// [`CounterFamily`](crate::CounterFamily) values into a report.
    pub fn add_counter(&mut self, name: &str, value: u64) {
        match self.entries.get_mut(name) {
            Some(Value::Counter(v)) => *v += value,
            _ => {
                self.entries.insert(name.to_string(), Value::Counter(value));
            }
        }
    }

    /// Entry-wise subtraction (`self - baseline`).
    ///
    /// Counters and histogram counts/sums subtract saturating; gauges and
    /// histogram min/max keep `self`'s value (they are not cumulative).
    /// Entries absent from `baseline` carry over unchanged.
    #[must_use]
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, value)| {
                let diffed = match (value, baseline.entries.get(name)) {
                    (Value::Counter(a), Some(Value::Counter(b))) => {
                        Value::Counter(a.saturating_sub(*b))
                    }
                    (Value::Histogram(a), Some(Value::Histogram(b))) => {
                        // Counts and sums are cumulative and subtract;
                        // min/max/percentiles are not and keep `self`'s.
                        Value::Histogram(HistogramSummary {
                            count: a.count.saturating_sub(b.count),
                            sum: a.sum.saturating_sub(b.sum),
                            ..*a
                        })
                    }
                    _ => *value,
                };
                (name.clone(), diffed)
            })
            .collect();
        Snapshot { entries }
    }
}

impl std::ops::Sub for &Snapshot {
    type Output = Snapshot;

    fn sub(self, baseline: &Snapshot) -> Snapshot {
        self.diff(baseline)
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .entries
            .keys()
            .map(|name| name.len())
            .max()
            .unwrap_or(0);
        for (name, value) in &self.entries {
            match value {
                Value::Counter(v) => writeln!(f, "{name:width$}  {v}")?,
                Value::Gauge(v) => writeln!(f, "{name:width$}  {v}")?,
                Value::Histogram(h) => writeln!(f, "{name:width$}  {h}")?,
            }
        }
        Ok(())
    }
}

/// Escapes a metric/scope name for use as a JSON key: ASCII
/// alphanumerics and the punctuation metric names legitimately use
/// (`/ - _ . # : ( ) = @` and space) pass through readable; everything
/// else — quotes, backslashes, control characters, non-ASCII — is
/// `\uXXXX`-escaped (surrogate pairs for non-BMP), so any name yields a
/// valid, unambiguous JSON string.
pub fn escape_metric_name(s: &str) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            c if c.is_ascii_alphanumeric() => out.push(c),
            '/' | '-' | '_' | '.' | '#' | ':' | '(' | ')' | '=' | '@' | ' ' => out.push(ch),
            c => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{unit:04x}");
                }
            }
        }
    }
    out
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Render as a JSON object: counters and gauges as numbers, histograms as
    /// `{count, sum, min, max, p50, p95, p99}` objects. Keys are sorted and
    /// name-escaped ([`escape_metric_name`]), so the rendering is stable and
    /// always valid JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_metric_name(name));
            out.push_str("\":");
            match value {
                Value::Counter(v) => out.push_str(&v.to_string()),
                Value::Gauge(v) => out.push_str(&v.to_string()),
                Value::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_shares_handles() {
        let m = Metrics::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(m.snapshot().counter("x"), 3);
    }

    #[test]
    fn kind_mismatch_yields_detached_handle() {
        let m = Metrics::new();
        m.counter("x").incr();
        let g = m.gauge("x");
        g.set(42);
        // The registry keeps the original kind; the mismatched handle is inert.
        assert_eq!(m.snapshot().counter("x"), 1);
    }

    #[test]
    fn snapshot_diff_subtracts_counters() {
        let m = Metrics::new();
        let c = m.counter("work");
        c.add(10);
        let before = m.snapshot();
        c.add(7);
        let after = m.snapshot();
        let delta = &after - &before;
        assert_eq!(delta.counter("work"), 7);
        // Subtracting in the wrong order saturates rather than wrapping.
        assert_eq!((&before - &after).counter("work"), 0);
    }

    #[test]
    fn snapshot_diff_histograms_and_gauges() {
        let m = Metrics::new();
        let h = m.histogram("lat");
        let g = m.gauge("depth");
        h.observe(5);
        g.set(3);
        let before = m.snapshot();
        h.observe(9);
        g.set(-2);
        let after = m.snapshot();
        let delta = after.diff(&before);
        match delta.get("lat") {
            Some(Value::Histogram(s)) => {
                assert_eq!(s.count, 1);
                assert_eq!(s.sum, 9);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(delta.get("depth"), Some(Value::Gauge(-2)));
    }

    #[test]
    fn rendering_is_sorted_and_stable() {
        let m = Metrics::new();
        m.counter("b/two").add(2);
        m.counter("a/one").incr();
        let snap = m.snapshot();
        let text = snap.to_string();
        let a = text.find("a/one").unwrap_or(usize::MAX);
        let b = text.find("b/two").unwrap_or(usize::MAX);
        assert!(a < b, "text rendering must be name-sorted:\n{text}");
        assert_eq!(snap.to_json(), r#"{"a/one":1,"b/two":2}"#);
    }

    #[test]
    fn histogram_summary() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
        h.observe(4);
        h.observe(10);
        let s = h.summary();
        assert_eq!((s.count, s.sum, s.min, s.max, s.mean()), (2, 14, 4, 10, 7));
    }

    #[test]
    fn histogram_percentiles_track_the_distribution() {
        let h = Histogram::new();
        // 98 fast observations, 2 slow ones: the p50 stays in the fast
        // bucket, the p99 reaches the slow one, and everything clamps
        // into [min, max].
        for _ in 0..98 {
            h.observe(3);
        }
        h.observe(1000);
        h.observe(1000);
        let s = h.summary();
        assert_eq!(s.p50, 3, "median stays in the fast bucket");
        assert_eq!(s.p95, 3);
        assert_eq!(s.p99, 1000, "p99 reaches the slow tail (clamped to max)");
        let rendered = s.to_string();
        assert!(rendered.contains("p50=3"), "{rendered}");
        assert!(rendered.contains("p99=1000"), "{rendered}");
    }

    #[test]
    fn histogram_json_includes_percentiles() {
        let m = Metrics::new();
        m.histogram("lat").observe(7);
        let json = m.snapshot().to_json();
        assert_eq!(
            json,
            r#"{"lat":{"count":1,"sum":7,"min":7,"max":7,"p50":7,"p95":7,"p99":7}}"#
        );
    }

    #[test]
    fn metric_names_are_escaped_in_json() {
        let m = Metrics::new();
        m.counter("weird \"name\"\nwith☃unicode").incr();
        m.counter("core/plain-name_1.x#y:z").add(2);
        let json = m.snapshot().to_json();
        // Safe punctuation stays readable; quotes, control characters,
        // and non-ASCII become \uXXXX escapes.
        assert!(json.contains(r#""core/plain-name_1.x#y:z":2"#), "{json}");
        assert!(
            json.contains(r#""weird \u0022name\u0022\u000awith\u2603unicode":1"#),
            "{json}"
        );
        assert!(!json.contains('\n'), "raw control chars must not leak");
    }
}
