//! The lists abstract domain: the logical lattice over the theory of
//! `cons`/`car`/`cdr` (one of the paper's §2 example theories).
//!
//! Implemented as congruence closure (reusing the [`cai_uf`] e-graph)
//! saturated with the selector axioms
//!
//! ```text
//! car(cons(a, b)) = a        cdr(cons(a, b)) = b
//! ```
//!
//! The theory of lists is convex, stably infinite, and disjoint from both
//! linear arithmetic and uninterpreted functions, so its logical products
//! with those domains enjoy the paper's completeness guarantees.

use cai_core::{AbstractDomain, Budget, Partition, TheoryProps};
use cai_term::{Atom, Conj, FnSym, Sig, Term, TheoryTag, Var, VarSet};
use cai_uf::{EGraph, NodeKey};
use std::fmt;

/// An element of the lists domain: a canonical conjunction of equalities
/// between list terms, or an explicit bottom (which, as for uninterpreted
/// functions, only arises by propagation).
#[derive(Clone, PartialEq, Debug)]
pub struct ListElem {
    eqs: Option<Vec<(Term, Term)>>,
}

impl ListElem {
    /// The top element.
    pub fn top() -> ListElem {
        ListElem {
            eqs: Some(Vec::new()),
        }
    }

    /// The bottom element.
    pub fn bottom() -> ListElem {
        ListElem { eqs: None }
    }

    /// Returns `true` if this is bottom.
    pub fn is_bottom(&self) -> bool {
        self.eqs.is_none()
    }

    /// The canonical equalities.
    pub fn equalities(&self) -> &[(Term, Term)] {
        self.eqs.as_deref().unwrap_or(&[])
    }

    /// The variables mentioned.
    pub fn vars(&self) -> VarSet {
        let mut out = VarSet::new();
        for (s, t) in self.equalities() {
            s.collect_vars(&mut out);
            t.collect_vars(&mut out);
        }
        out
    }

    /// The list-axiom-saturated congruence closure of the element,
    /// enriched with the selector terms of every constructor: for each
    /// `cons(a, b)` node, `car`/`cdr` applications are materialized (and
    /// immediately merged with `a`/`b` by the axioms). The enrichment is
    /// what makes quantification complete — erasing `b` from
    /// `l = cons(a, b)` must still yield `car(l) = a`.
    pub fn closure(&self) -> EGraph {
        self.closure_budgeted(&Budget::unlimited())
    }

    /// [`closure`](ListElem::closure) under a [`Budget`]: saturation
    /// rounds consume fuel and stop early (soundly — derived equalities
    /// are only *missed*, never invented) once it runs out.
    pub fn closure_budgeted(&self, budget: &Budget) -> EGraph {
        let mut g = EGraph::new();
        for (s, t) in self.equalities() {
            g.assert_eq(s, t);
        }
        saturate_list_axioms_budgeted(&mut g, budget);
        let cons_nodes: Vec<usize> = g
            .node_ids()
            .filter(|&id| matches!(g.key(id), NodeKey::App(f, _) if *f == FnSym::cons()))
            .collect();
        for id in cons_nodes {
            g.add_app(FnSym::car(), vec![id]);
            g.add_app(FnSym::cdr(), vec![id]);
        }
        saturate_list_axioms_budgeted(&mut g, budget);
        g
    }

    fn from_pairs(pairs: Vec<(Term, Term)>, max_size: usize, budget: &Budget) -> ListElem {
        let mut g = EGraph::new();
        for (s, t) in &pairs {
            g.assert_eq(s, t);
        }
        saturate_list_axioms_budgeted(&mut g, budget);
        let all = |_: Var| true;
        let eqs = g
            .emit_equalities(&all, max_size)
            .into_iter()
            .filter(|(s, t)| !is_list_tautology(s, t))
            .collect();
        ListElem { eqs: Some(eqs) }
    }
}

/// Returns `true` if `s = t` already follows from the list axioms alone
/// (e.g. `car(cons(a, b)) = a`) — such equalities carry no information and
/// are filtered from element presentations.
fn is_list_tautology(s: &Term, t: &Term) -> bool {
    let mut g = EGraph::new();
    let a = g.add(s);
    let b = g.add(t);
    saturate_list_axioms(&mut g);
    g.find(a) == g.find(b)
}

impl fmt::Display for ListElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.eqs {
            None => f.write_str("false"),
            Some(eqs) if eqs.is_empty() => f.write_str("true"),
            Some(eqs) => {
                for (i, (s, t)) in eqs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" & ")?;
                    }
                    write!(f, "{s} = {t}")?;
                }
                Ok(())
            }
        }
    }
}

/// Saturates a closure with the selector axioms: whenever a `car`/`cdr`
/// node's argument class contains a `cons`, the selector node is merged
/// with the corresponding component.
pub fn saturate_list_axioms(g: &mut EGraph) {
    saturate_list_axioms_budgeted(g, &Budget::unlimited())
}

/// [`saturate_list_axioms`] under a [`Budget`]: each saturation round
/// ticks fuel proportional to the e-graph size, and exhaustion stops the
/// fixpoint early. Stopping is sound — an under-saturated closure proves
/// *fewer* equalities, so every consumer (implication, join, exists,
/// variable equalities) degrades toward ⊤ / "unknown", never toward a
/// wrong fact. The early stop is recorded on the budget's degradation
/// log.
pub fn saturate_list_axioms_budgeted(g: &mut EGraph, budget: &Budget) {
    let car = FnSym::car();
    let cdr = FnSym::cdr();
    let cons = FnSym::cons();
    loop {
        if !budget.tick(1 + g.node_ids().count() as u64) {
            budget.degrade(
                "lists/saturate",
                "stopped selector-axiom saturation early; closure is under-approximated",
            );
            return;
        }
        let mut merges: Vec<(usize, usize)> = Vec::new();
        for id in g.node_ids() {
            let NodeKey::App(f, args) = g.key(id).clone() else {
                continue;
            };
            if f != car && f != cdr {
                continue;
            }
            let arg_root = g.find(args[0]);
            // Find a cons in the argument's class.
            for m in g.node_ids() {
                if g.find(m) != arg_root {
                    continue;
                }
                let NodeKey::App(mf, margs) = g.key(m).clone() else {
                    continue;
                };
                if mf != cons {
                    continue;
                }
                let target = if f == car { margs[0] } else { margs[1] };
                if g.find(id) != g.find(target) {
                    merges.push((id, target));
                }
                break;
            }
        }
        if merges.is_empty() {
            return;
        }
        for (a, b) in merges {
            g.merge(a, b);
        }
    }
}

/// The lists abstract domain.
///
/// ```
/// use cai_core::AbstractDomain;
/// use cai_lists::ListDomain;
/// use cai_term::parse::Vocab;
///
/// let vocab = Vocab::standard();
/// let d = ListDomain::new();
/// let e = d.from_conj(&vocab.parse_conj("l = cons(a, b)")?);
/// assert!(d.implies_atom(&e, &vocab.parse_atom("car(l) = a")?));
/// # Ok::<(), cai_term::parse::ParseError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ListDomain {
    max_term_size: usize,
    budget: Budget,
}

impl ListDomain {
    /// Creates the domain with the default term-size bound and an
    /// unlimited budget.
    pub fn new() -> ListDomain {
        ListDomain {
            max_term_size: 64,
            budget: Budget::unlimited(),
        }
    }

    /// Governs the domain's saturation fixpoints by `budget`: once the
    /// fuel runs out, axiom saturation stops early and the domain proves
    /// strictly less (a sound degradation recorded on the budget's
    /// report). Clone the analyzer's budget in to bound the whole
    /// analysis with one fuel counter.
    pub fn with_budget(mut self, budget: Budget) -> ListDomain {
        self.budget = budget;
        self
    }
}

impl Default for ListDomain {
    fn default() -> ListDomain {
        ListDomain::new()
    }
}

impl AbstractDomain for ListDomain {
    type Elem = ListElem;

    fn sig(&self) -> Sig {
        Sig::single(TheoryTag::LIST)
    }

    fn props(&self) -> TheoryProps {
        TheoryProps::nelson_oppen()
    }

    fn top(&self) -> ListElem {
        ListElem::top()
    }

    fn bottom(&self) -> ListElem {
        ListElem::bottom()
    }

    fn is_bottom(&self, e: &ListElem) -> bool {
        e.is_bottom()
    }

    fn meet_atom(&self, e: &ListElem, atom: &Atom) -> ListElem {
        let Atom::Eq(s, t) = atom else {
            panic!("atom `{atom}` is outside the lists signature")
        };
        if e.is_bottom() {
            return ListElem::bottom();
        }
        let mut pairs = e.equalities().to_vec();
        pairs.push((s.clone(), t.clone()));
        ListElem::from_pairs(pairs, self.max_term_size, &self.budget)
    }

    fn meet_all(&self, e: &ListElem, atoms: &[Atom]) -> ListElem {
        if e.is_bottom() {
            return ListElem::bottom();
        }
        let mut pairs = e.equalities().to_vec();
        for atom in atoms {
            let Atom::Eq(s, t) = atom else {
                panic!("atom `{atom}` is outside the lists signature")
            };
            pairs.push((s.clone(), t.clone()));
        }
        ListElem::from_pairs(pairs, self.max_term_size, &self.budget)
    }

    fn implies_atom(&self, e: &ListElem, atom: &Atom) -> bool {
        let Atom::Eq(s, t) = atom else {
            panic!("atom `{atom}` is outside the lists signature")
        };
        if e.is_bottom() {
            return true;
        }
        let mut g = e.closure_budgeted(&self.budget);
        let a = g.add(s);
        let b = g.add(t);
        saturate_list_axioms_budgeted(&mut g, &self.budget);
        g.find(a) == g.find(b)
    }

    fn join(&self, a: &ListElem, b: &ListElem) -> ListElem {
        if a.is_bottom() {
            return b.clone();
        }
        if b.is_bottom() {
            return a.clone();
        }
        let mut g1 = a.closure_budgeted(&self.budget);
        let mut g2 = b.closure_budgeted(&self.budget);
        let mut vars = a.vars();
        vars.extend(b.vars());
        let eqs = cai_uf::join_equalities(&mut g1, &mut g2, &vars, self.max_term_size);
        ListElem::from_pairs(eqs, self.max_term_size, &self.budget)
    }

    fn narrow(&self, _a: &ListElem, b: &ListElem) -> ListElem {
        // Descending-iteration narrowing: adopt the descended iterate
        // (`b ⊑ a` by the trait contract), recovering equalities a
        // budget-starved join dropped. The engine re-verifies the bracket
        // and bounds the rounds, so neither soundness nor termination
        // rests on this operator.
        b.clone()
    }

    fn exists(&self, e: &ListElem, vars: &VarSet) -> ListElem {
        if e.is_bottom() {
            return ListElem::bottom();
        }
        let g = e.closure_budgeted(&self.budget);
        let anchor = |v: Var| !vars.contains(&v);
        let eqs = g
            .emit_equalities(&anchor, self.max_term_size)
            .into_iter()
            .filter(|(s, t)| !is_list_tautology(s, t))
            .collect();
        ListElem { eqs: Some(eqs) }
    }

    fn var_equalities(&self, e: &ListElem) -> Partition {
        let mut p = Partition::new();
        if e.is_bottom() {
            return p;
        }
        let g = e.closure_budgeted(&self.budget);
        let mut by_root: std::collections::BTreeMap<usize, Var> = std::collections::BTreeMap::new();
        for (v, id) in g.vars() {
            let root = g.find(id);
            match by_root.get(&root) {
                Some(&first) => {
                    p.union(first, v);
                }
                None => {
                    by_root.insert(root, v);
                }
            }
        }
        p
    }

    fn alternate(&self, e: &ListElem, y: Var, avoid: &VarSet) -> Option<Term> {
        if e.is_bottom() {
            return None;
        }
        let mut g = e.closure_budgeted(&self.budget);
        let yid = g.add(&Term::var(y));
        let root = g.find(yid);
        let anchor = |v: Var| v != y && !avoid.contains(&v);
        g.representatives(&anchor, self.max_term_size)
            .get(&root)
            .cloned()
    }

    fn to_conj(&self, e: &ListElem) -> Conj {
        if e.is_bottom() {
            return Conj::of(Atom::eq(Term::int(0), Term::int(1)));
        }
        e.equalities()
            .iter()
            .map(|(s, t)| Atom::eq(s.clone(), t.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_term::parse::Vocab;

    fn d() -> ListDomain {
        ListDomain::new()
    }

    fn elem(src: &str) -> ListElem {
        let v = Vocab::standard();
        d().from_conj(&v.parse_conj(src).unwrap())
    }

    fn atom(src: &str) -> Atom {
        Vocab::standard().parse_atom(src).unwrap()
    }

    #[test]
    fn selector_axioms_fire() {
        let e = elem("l = cons(a, b)");
        assert!(d().implies_atom(&e, &atom("car(l) = a")));
        assert!(d().implies_atom(&e, &atom("cdr(l) = b")));
        assert!(!d().implies_atom(&e, &atom("car(l) = b")));
    }

    #[test]
    fn congruence_over_cons() {
        let e = elem("a = b & l = cons(a, t)");
        assert!(d().implies_atom(&e, &atom("l = cons(b, t)")));
    }

    #[test]
    fn nested_selectors() {
        let e = elem("l = cons(a, cons(b, t))");
        assert!(d().implies_atom(&e, &atom("car(cdr(l)) = b")));
        assert!(d().implies_atom(&e, &atom("cdr(cdr(l)) = t")));
    }

    #[test]
    fn join_keeps_common() {
        let a = elem("l = cons(x, t) & m = t");
        let b = elem("l = cons(x, u) & m = u");
        let j = d().join(&a, &b);
        // Common: the relation l = cons(x, m).
        assert!(d().implies_atom(&j, &atom("l = cons(x, m)")), "join = {j}");
        assert!(d().implies_atom(&j, &atom("car(l) = x")), "join = {j}");
    }

    #[test]
    fn exists_erases() {
        let e = elem("l = cons(a, t) & h = a");
        let vs: VarSet = [Var::named("a")].into_iter().collect();
        let q = d().exists(&e, &vs);
        assert!(d().implies_atom(&q, &atom("l = cons(h, t)")), "q = {q}");
        assert!(!q.vars().contains(&Var::named("a")));
    }

    #[test]
    fn var_equalities_via_selectors() {
        let e = elem("l = cons(a, b) & x = car(l) & y = a");
        let p = d().var_equalities(&e);
        assert!(p.same(Var::named("x"), Var::named("y")));
    }

    #[test]
    fn alternate_uses_selectors() {
        let e = elem("y = car(l)");
        let t = d().alternate(&e, Var::named("y"), &VarSet::new()).unwrap();
        assert_eq!(t.to_string(), "car(l)");
    }
}
