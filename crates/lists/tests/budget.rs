//! Fuel-exhaustion degradation tests for the lists domain, mirroring the
//! `ChaosDomain` contract: under any budget the domain must not panic,
//! must terminate, and must never prove a fact the unbudgeted domain
//! rejects — degradation only ever loses precision.

use cai_core::{AbstractDomain, Budget};
use cai_lists::ListDomain;
use cai_term::parse::Vocab;
use cai_term::{Var, VarSet};

const ELEMS: &[&str] = &[
    "l = cons(a, b)",
    "l = cons(a, cons(b, t))",
    "l = cons(x, t) & m = t",
    "l = cons(a, b) & x = car(l) & y = a",
    "h = car(l) & r = cdr(l) & l = cons(p, q)",
];

const CHECKS: &[&str] = &[
    "car(l) = a",
    "cdr(l) = b",
    "car(cdr(l)) = b",
    "l = cons(x, m)",
    "x = y",
    "h = p",
    "r = q",
];

#[test]
fn budgeted_domain_never_proves_more_than_the_clean_one() {
    let vocab = Vocab::standard();
    let clean = ListDomain::new();
    for fuel in 0..100u64 {
        let budget = Budget::fuel(fuel);
        let d = ListDomain::new().with_budget(budget.clone());
        for src in ELEMS {
            let conj = vocab.parse_conj(src).expect("conj parses");
            let degraded = d.from_conj(&conj);
            let exact = clean.from_conj(&conj);
            for check in CHECKS {
                let atom = vocab.parse_atom(check).expect("atom parses");
                if d.implies_atom(&degraded, &atom) {
                    assert!(
                        clean.implies_atom(&exact, &atom),
                        "fuel={fuel}: budgeted domain proved `{check}` from `{src}` \
                         which the exact domain rejects"
                    );
                }
            }
        }
    }
}

#[test]
fn budgeted_join_and_exists_stay_sound() {
    let vocab = Vocab::standard();
    let clean = ListDomain::new();
    let a_src = "l = cons(x, t) & m = t";
    let b_src = "l = cons(x, u) & m = u";
    let check = vocab.parse_atom("l = cons(x, m)").expect("atom parses");
    let erase: VarSet = [Var::named("a")].into_iter().collect();
    for fuel in 0..100u64 {
        let budget = Budget::fuel(fuel);
        let d = ListDomain::new().with_budget(budget.clone());
        let (ca, cb) = (
            vocab.parse_conj(a_src).expect("parses"),
            vocab.parse_conj(b_src).expect("parses"),
        );
        let j = d.join(&d.from_conj(&ca), &d.from_conj(&cb));
        if d.implies_atom(&j, &check) {
            let cj = clean.join(&clean.from_conj(&ca), &clean.from_conj(&cb));
            assert!(clean.implies_atom(&cj, &check), "fuel={fuel}: unsound join");
        }
        // exists must actually erase the requested variables even when
        // degraded (keeping a constraint on an erased variable would be
        // unsound scoping, not just imprecision).
        let e_src = vocab.parse_conj("l = cons(a, t) & h = a").expect("parses");
        let q = d.exists(&d.from_conj(&e_src), &erase);
        let vars: VarSet = d.to_conj(&q).vars();
        assert!(
            !vars.contains(&Var::named("a")),
            "fuel={fuel}: exists kept an erased variable"
        );
    }
}

#[test]
fn exhaustion_is_reported() {
    let vocab = Vocab::standard();
    let budget = Budget::fuel(1);
    let d = ListDomain::new().with_budget(budget.clone());
    let conj = vocab
        .parse_conj("l = cons(a, cons(b, cons(c, t)))")
        .expect("parses");
    let _ = d.from_conj(&conj);
    let report = budget.report();
    assert!(report.exhausted, "one tick cannot saturate that closure");
    assert!(report.degraded, "the early stop must be recorded");
    assert!(report.events.iter().any(|ev| ev.site == "lists/saturate"));
}

#[test]
fn unlimited_budget_changes_nothing() {
    let vocab = Vocab::standard();
    let clean = ListDomain::new();
    let budget = Budget::unlimited();
    let d = ListDomain::new().with_budget(budget.clone());
    for src in ELEMS {
        let conj = vocab.parse_conj(src).expect("parses");
        for check in CHECKS {
            let atom = vocab.parse_atom(check).expect("parses");
            assert_eq!(
                d.implies_atom(&d.from_conj(&conj), &atom),
                clean.implies_atom(&clean.from_conj(&conj), &atom),
                "{src} ⇒ {check}"
            );
        }
    }
    assert!(!budget.report().degraded);
}
