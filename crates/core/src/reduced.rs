//! The reduced product of abstract domains.
//!
//! The paper (§4) observes that its combination algorithms degrade to the
//! *reduced product* when the Figure 6 pair variables are omitted and when
//! `QSaturation` is skipped (`V2 := V1` in Figure 7). This module
//! implements exactly that degradation: elements are Nelson–Oppen-saturated
//! pairs of pure elements; the components exchange implied variable
//! equalities (the "reduction"), but no mixed facts are ever created.

use crate::budget::Budget;
use crate::direct::Pair;
use crate::domain::{AbstractDomain, TheoryProps};
use crate::partition::Partition;
use crate::saturate::no_saturate_budgeted;
use cai_term::{Atom, AtomSide, Conj, Purifier, Sig, Term, Var, VarSet};

/// The reduced product `L1 ⊓ L2`: component-wise elements kept mutually
/// saturated with shared variable equalities.
///
/// More precise than [`DirectProduct`](crate::DirectProduct) (the
/// components cooperate through equality exchange) but strictly less
/// precise than [`LogicalProduct`](crate::LogicalProduct) (no mixed facts
/// such as `d2 = F(d1 + 1)` can be represented).
#[derive(Clone, Debug)]
pub struct ReducedProduct<D1, D2> {
    d1: D1,
    d2: D2,
    budget: Budget,
}

impl<D1: AbstractDomain, D2: AbstractDomain> ReducedProduct<D1, D2> {
    /// Combines two domains into their reduced product (with an unlimited
    /// [`Budget`]).
    pub fn new(d1: D1, d2: D2) -> ReducedProduct<D1, D2> {
        ReducedProduct {
            d1,
            d2,
            budget: Budget::unlimited(),
        }
    }

    /// Governs this product's saturation loops by `budget`.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The first component domain.
    pub fn first(&self) -> &D1 {
        &self.d1
    }

    /// The second component domain.
    pub fn second(&self) -> &D2 {
        &self.d2
    }

    /// Re-establishes the saturation invariant (the reduction operator ρ).
    fn reduce(&self, e: Pair<D1::Elem, D2::Elem>) -> Pair<D1::Elem, D2::Elem> {
        let s = no_saturate_budgeted(&self.d1, e.left, &self.d2, e.right, &self.budget);
        Pair {
            left: s.left,
            right: s.right,
        }
    }
}

impl<D1: AbstractDomain, D2: AbstractDomain> AbstractDomain for ReducedProduct<D1, D2> {
    type Elem = Pair<D1::Elem, D2::Elem>;

    fn sig(&self) -> Sig {
        self.d1.sig().union(&self.d2.sig())
    }

    fn props(&self) -> TheoryProps {
        let (p1, p2) = (self.d1.props(), self.d2.props());
        TheoryProps {
            convex: p1.convex && p2.convex,
            stably_infinite: p1.stably_infinite && p2.stably_infinite,
        }
    }

    fn top(&self) -> Self::Elem {
        Pair {
            left: self.d1.top(),
            right: self.d2.top(),
        }
    }

    fn bottom(&self) -> Self::Elem {
        Pair {
            left: self.d1.bottom(),
            right: self.d2.bottom(),
        }
    }

    fn is_bottom(&self, e: &Self::Elem) -> bool {
        self.d1.is_bottom(&e.left) || self.d2.is_bottom(&e.right)
    }

    fn meet_atom(&self, e: &Self::Elem, atom: &Atom) -> Self::Elem {
        // Purify the (possibly mixed) atom, meet the pure parts, saturate so
        // the ghost variables' constraints propagate, then eliminate the
        // ghosts component-wise — the reduced product cannot retain them.
        let p = cai_term::purify(&Conj::of(atom.clone()), &self.d1.sig(), &self.d2.sig());
        let mut left = e.left.clone();
        for a in &p.left {
            left = self.d1.meet_atom(&left, a);
        }
        let mut right = e.right.clone();
        for a in &p.right {
            right = self.d2.meet_atom(&right, a);
        }
        let reduced = self.reduce(Pair { left, right });
        if p.fresh.is_empty() {
            return reduced;
        }
        let ghosts: VarSet = p.fresh.iter().copied().collect();
        self.reduce(Pair {
            left: self.d1.exists(&reduced.left, &ghosts),
            right: self.d2.exists(&reduced.right, &ghosts),
        })
    }

    fn implies_atom(&self, e: &Self::Elem, atom: &Atom) -> bool {
        if self.is_bottom(e) {
            return true;
        }
        // Purify the query atom against the element (sharing alien names is
        // irrelevant here since the element is already pure, but the ghost
        // definitions must be conjoined before deciding).
        let mut purifier = Purifier::new(&self.d1.sig(), &self.d2.sig());
        let (side, pure) = purifier.purify_atom(atom);
        let defs = purifier.finish();
        let mut left = e.left.clone();
        for a in &defs.left {
            left = self.d1.meet_atom(&left, a);
        }
        let mut right = e.right.clone();
        for a in &defs.right {
            right = self.d2.meet_atom(&right, a);
        }
        let s = no_saturate_budgeted(&self.d1, left, &self.d2, right, &self.budget);
        if s.bottom {
            return true;
        }
        match side {
            AtomSide::Left => self.d1.implies_atom(&s.left, &pure),
            AtomSide::Right => self.d2.implies_atom(&s.right, &pure),
            AtomSide::Both => {
                self.d1.implies_atom(&s.left, &pure) || self.d2.implies_atom(&s.right, &pure)
            }
        }
    }

    fn join(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        if self.is_bottom(a) {
            return b.clone();
        }
        if self.is_bottom(b) {
            return a.clone();
        }
        // Inputs hold the saturation invariant; join component-wise and
        // re-reduce the result.
        self.reduce(Pair {
            left: self.d1.join(&a.left, &b.left),
            right: self.d2.join(&a.right, &b.right),
        })
    }

    fn exists(&self, e: &Self::Elem, vars: &VarSet) -> Self::Elem {
        // Figure 7 with `V2 := V1`: component-wise quantification, no
        // definition recovery.
        self.reduce(Pair {
            left: self.d1.exists(&e.left, vars),
            right: self.d2.exists(&e.right, vars),
        })
    }

    fn var_equalities(&self, e: &Self::Elem) -> Partition {
        let mut p = self.d1.var_equalities(&e.left);
        p.merge(&self.d2.var_equalities(&e.right));
        p
    }

    fn alternate(&self, e: &Self::Elem, y: Var, avoid: &VarSet) -> Option<Term> {
        self.d1
            .alternate(&e.left, y, avoid)
            .or_else(|| self.d2.alternate(&e.right, y, avoid))
    }

    fn widen(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        if self.is_bottom(a) {
            return b.clone();
        }
        if self.is_bottom(b) {
            return a.clone();
        }
        // No reduction after widening: re-strengthening could defeat the
        // termination guarantee.
        Pair {
            left: self.d1.widen(&a.left, &b.left),
            right: self.d2.widen(&a.right, &b.right),
        }
    }

    fn narrow(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        // Component-wise narrowing, no reduction afterwards: the engine
        // re-verifies the `[b, a]` bracket, and a reduction step could
        // strengthen the result below `b`.
        Pair {
            left: self.d1.narrow(&a.left, &b.left),
            right: self.d2.narrow(&a.right, &b.right),
        }
    }

    fn to_conj(&self, e: &Self::Elem) -> Conj {
        self.d1.to_conj(&e.left).and(&self.d2.to_conj(&e.right))
    }
}
