//! `NOSaturation` — the Nelson–Oppen exchange of implied variable
//! equalities (§2, Property 1 of the paper).

use crate::budget::Budget;
use crate::domain::AbstractDomain;
use crate::partition::Partition;
use cai_term::Atom;

/// The result of saturating a purified pair of elements.
#[derive(Clone, Debug)]
pub struct Saturated<E1, E2> {
    /// The first element, strengthened with all shared equalities.
    pub left: E1,
    /// The second element, strengthened with all shared equalities.
    pub right: E2,
    /// The variable partition jointly implied by the conjunction.
    pub equalities: Partition,
    /// Whether the conjunction is unsatisfiable (both elements are bottom).
    pub bottom: bool,
    /// Whether the exchange stopped early on budget exhaustion. The
    /// elements are then sound but possibly under-saturated: each is the
    /// original strengthened with *some* (not necessarily all) implied
    /// equalities.
    pub degraded: bool,
    /// How many exchange rounds ran (observability; a cached split replays
    /// the stored result without re-running any).
    pub rounds: usize,
}

/// `NOSaturation(E1, E2)`: repeatedly propagates the variable equalities
/// implied by either element into the other until a fixpoint is reached.
///
/// For convex, stably infinite, disjoint theories, Property 1 of the paper
/// guarantees that afterwards each element *individually* implies every
/// pure fact of its theory that the conjunction `E1 ∧ E2` implies.
///
/// If either side becomes unsatisfiable, bottom is propagated to both.
///
/// The loop terminates because the joint partition only ever coarsens and
/// is bounded by the number of variables.
pub fn no_saturate<D1, D2>(
    d1: &D1,
    e1: D1::Elem,
    d2: &D2,
    e2: D2::Elem,
) -> Saturated<D1::Elem, D2::Elem>
where
    D1: AbstractDomain,
    D2: AbstractDomain,
{
    no_saturate_budgeted(d1, e1, d2, e2, &Budget::unlimited())
}

/// [`no_saturate`] governed by a [`Budget`]: each round ticks once per
/// `var_equalities` query and once per asserted equality. On exhaustion
/// the loop stops with the equalities propagated so far — a sound
/// under-saturation, flagged via [`Saturated::degraded`] and recorded on
/// the budget.
pub fn no_saturate_budgeted<D1, D2>(
    d1: &D1,
    mut e1: D1::Elem,
    d2: &D2,
    mut e2: D2::Elem,
    budget: &Budget,
) -> Saturated<D1::Elem, D2::Elem>
where
    D1: AbstractDomain,
    D2: AbstractDomain,
{
    let mut joint = Partition::new();
    let mut rounds = 0;
    loop {
        if d1.is_bottom(&e1) || d2.is_bottom(&e2) {
            return Saturated {
                left: d1.bottom(),
                right: d2.bottom(),
                equalities: joint,
                bottom: true,
                degraded: false,
                rounds,
            };
        }
        cai_obs::counter!("fuel/core.saturate").add(2);
        if !budget.tick(2) {
            budget.degrade("no_saturate", "stopped the equality exchange early");
            return Saturated {
                left: e1,
                right: e2,
                equalities: joint,
                bottom: false,
                degraded: true,
                rounds,
            };
        }
        rounds += 1;
        cai_obs::counter!("core/saturate/rounds").incr();
        let p1 = d1.var_equalities(&e1);
        let p2 = d2.var_equalities(&e2);
        let mut changed = joint.merge(&p1);
        changed |= joint.merge(&p2);
        if !changed {
            return Saturated {
                left: e1,
                right: e2,
                equalities: joint,
                bottom: false,
                degraded: false,
                rounds,
            };
        }
        // Assert every joint equality into both sides (meet is idempotent,
        // so re-asserting known equalities is harmless).
        for (x, y) in joint.pairs() {
            if !p1.same(x, y) {
                cai_obs::counter!("fuel/core.saturate").incr();
                budget.tick(1);
                e1 = d1.meet_atom(&e1, &Atom::var_eq(x, y));
            }
            if !p2.same(x, y) {
                cai_obs::counter!("fuel/core.saturate").incr();
                budget.tick(1);
                e2 = d2.meet_atom(&e2, &Atom::var_eq(x, y));
            }
        }
    }
}
