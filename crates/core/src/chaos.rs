//! Fault injection for robustness testing: a wrapper domain that
//! deterministically misbehaves in *sound* ways.
//!
//! [`ChaosDomain`] wraps any [`AbstractDomain`] and, driven by a seeded
//! splitmix64 stream (no external randomness), injects the failure modes a
//! production analysis must survive:
//!
//! - **spurious ⊤** from `join` / `widen` / `exists` (a component giving
//!   up),
//! - **skipped meets** (`meet_atom` ignoring its atom, as a degraded
//!   component does on exhaustion),
//! - **dropped equalities** from `var_equalities` and lost `alternate`
//!   definitions (an under-saturating component),
//! - **defective `Alternate` definitions** (the sound-but-cyclic `y = y`,
//!   violating the operator contract — the product's runtime check must
//!   skip these rather than trust them),
//! - **denied implications** (`implies_atom` answering "unknown"),
//! - **fuel exhaustion** of an attached [`Budget`] at a chosen tick,
//! - **panics** (`panic_permille`: an operation unwinds instead of
//!   returning — the crash-failure mode the driver's supervision layer
//!   must isolate, retry, and quarantine), and
//! - **stalls** (`stall_permille`: an operation spins until the attached
//!   budget is exhausted — a cooperative hang only a straggler watchdog
//!   or a budget deadline can break).
//!
//! The sound-misbehaviour faults *over-approximate* the exact answer, so
//! a correct combination engine must stay sound under any schedule of
//! them: results may only move up the lattice. The property tests in
//! `tests/chaos.rs` (and the full-analyzer tests in `cai-interp`) assert
//! exactly that, plus no-panic and bounded termination. Panics and stalls
//! are different: they model *engine-level* crash/hang failures and are
//! disabled by default — only a supervised harness (`cai-driver`'s
//! engine, or a test that joins a sacrificial worker thread) should
//! switch them on, and the contract it must then uphold is "no process
//! abort, quarantined results are ⊤-sound, outcomes deterministic for a
//! fixed seed".
//!
//! Determinism matters: a failing seed is a reproducible bug report.

use crate::budget::Budget;
use crate::domain::{AbstractDomain, TheoryProps};
use crate::partition::Partition;
use cai_num::prng::{mix, GAMMA};
use cai_term::{Atom, Conj, Sig, Term, Var, VarSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-fault injection rates, in permille (0 = never, 1000 = always).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChaosConfig {
    /// `join`/`widen` returns ⊤ instead of the real join.
    pub top_join_permille: u32,
    /// `exists` returns ⊤ instead of the real projection.
    pub top_exists_permille: u32,
    /// Each equality pair reported by `var_equalities` is dropped.
    pub drop_equality_permille: u32,
    /// `alternate` returns `None` (and `alternates` drops each entry).
    pub drop_alternate_permille: u32,
    /// `alternate`/`alternates` returns the *contract-violating*
    /// definition `y = y` — semantically sound (every element implies
    /// `y = y`) but cyclic, exercising the product's runtime
    /// Alternate-contract check (a trusting consumer would loop or leak
    /// the variable it was meant to eliminate).
    pub break_alternate_permille: u32,
    /// `meet_atom` ignores its atom (returns the element unchanged).
    pub skip_meet_permille: u32,
    /// `implies_atom` answers `false` regardless of the real answer.
    pub deny_implies_permille: u32,
    /// Any operation exhausts the attached budget (see
    /// [`ChaosDomain::with_budget`]) before running.
    pub exhaust_budget_permille: u32,
    /// Any operation panics instead of returning. **Off by default**:
    /// this is a crash fault, not a sound misbehaviour — only run it
    /// under a supervisor that catches unwinds (the driver's engine) or
    /// on a sacrificial thread. The panic fires *before* the wrapped
    /// domain mutates anything, so a caught unwind leaves the domain
    /// reusable; the PRNG state has already advanced, which is what makes
    /// a deterministic retry able to succeed.
    pub panic_permille: u32,
    /// Any operation stalls — spins, yielding, until the attached budget
    /// (see [`ChaosDomain::with_budget`]) reports exhaustion — before
    /// proceeding degraded. **Off by default.** Models a hung component
    /// that only cooperative cancellation (a straggler watchdog
    /// exhausting the budget, or the budget's own deadline) can break.
    /// Without an attached budget the fault is skipped rather than
    /// hanging the process unrecoverably.
    pub stall_permille: u32,
}

impl Default for ChaosConfig {
    /// Moderate chaos: every *sound* fault fires at 10% (budget
    /// exhaustion at 1%); the crash/hang faults (`panic_permille`,
    /// `stall_permille`) stay off and must be opted into.
    fn default() -> ChaosConfig {
        ChaosConfig {
            top_join_permille: 100,
            top_exists_permille: 100,
            drop_equality_permille: 100,
            drop_alternate_permille: 100,
            break_alternate_permille: 25,
            skip_meet_permille: 100,
            deny_implies_permille: 100,
            exhaust_budget_permille: 10,
            panic_permille: 0,
            stall_permille: 0,
        }
    }
}

impl ChaosConfig {
    /// No injections at all (the wrapper becomes transparent).
    pub fn quiet() -> ChaosConfig {
        ChaosConfig {
            top_join_permille: 0,
            top_exists_permille: 0,
            drop_equality_permille: 0,
            drop_alternate_permille: 0,
            break_alternate_permille: 0,
            skip_meet_permille: 0,
            deny_implies_permille: 0,
            exhaust_budget_permille: 0,
            panic_permille: 0,
            stall_permille: 0,
        }
    }
}

/// A deterministic fault-injecting wrapper around any abstract domain.
/// See the [module docs](self).
#[derive(Debug)]
pub struct ChaosDomain<D> {
    inner: D,
    /// splitmix64 state, advanced lock-free on each decision so the
    /// wrapper stays usable through `&self` like every other domain.
    state: AtomicU64,
    config: ChaosConfig,
    budget: Option<Budget>,
    injected: AtomicU64,
}

impl<D> ChaosDomain<D> {
    /// Wraps `inner`, drawing fault decisions from `seed` with the default
    /// (moderate) configuration.
    pub fn new(inner: D, seed: u64) -> ChaosDomain<D> {
        ChaosDomain {
            inner,
            state: AtomicU64::new(seed),
            config: ChaosConfig::default(),
            budget: None,
            injected: AtomicU64::new(0),
        }
    }

    /// Overrides the injection rates.
    pub fn with_config(mut self, config: ChaosConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches the budget that `exhaust_budget_permille` drains — pass a
    /// clone of the budget governing the engine under test.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The wrapped domain.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// How many faults have been injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// One seeded coin flip; `true` fires the fault.
    fn roll(&self, permille: u32) -> bool {
        if permille == 0 {
            return false;
        }
        let s = self
            .state
            .fetch_add(GAMMA, Ordering::Relaxed)
            .wrapping_add(GAMMA);
        let fire = mix(s) % 1000 < u64::from(permille);
        if fire {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Runs the operation-prelude faults shared by every operation:
    /// budget exhaustion, injected panic, injected stall — in that fixed
    /// order, so fault schedules are a pure function of the seed and the
    /// operation sequence. Each roll is skipped (without advancing the
    /// PRNG) when its rate is 0, so enabling a new fault mode does not
    /// perturb the schedule of runs that never used it.
    fn maybe_fault(&self) {
        if let Some(budget) = &self.budget {
            if self.roll(self.config.exhaust_budget_permille) {
                budget.exhaust();
            }
        }
        if self.roll(self.config.panic_permille) {
            // Fires before the wrapped domain touches anything, so a
            // supervisor that catches this unwind can keep using the
            // domain instance for the retry.
            panic!("cai-chaos: injected panic (seeded fault, supervised harness expected)");
        }
        if self.config.stall_permille > 0 && self.roll(self.config.stall_permille) {
            if let Some(budget) = &self.budget {
                // A cooperative hang: make no progress until someone —
                // the straggler watchdog, the budget's own deadline, or
                // a cancelled parent budget — exhausts the budget. Then
                // continue, degraded like any starved operation.
                while !budget.is_exhausted() {
                    std::thread::yield_now();
                }
            }
            // No attached budget: nothing could ever break the hang, so
            // the fault is skipped (documented on `stall_permille`).
        }
    }
}

impl<D: AbstractDomain> AbstractDomain for ChaosDomain<D> {
    type Elem = D::Elem;

    fn sig(&self) -> Sig {
        self.inner.sig()
    }

    fn props(&self) -> TheoryProps {
        self.inner.props()
    }

    fn top(&self) -> D::Elem {
        self.inner.top()
    }

    fn bottom(&self) -> D::Elem {
        self.inner.bottom()
    }

    fn is_bottom(&self, e: &D::Elem) -> bool {
        // Never injected: claiming ⊥ about a satisfiable element would be
        // unsound, and hiding a real ⊥ would break the callers' bottom
        // bookkeeping without modelling any real failure.
        self.inner.is_bottom(e)
    }

    fn meet_atom(&self, e: &D::Elem, atom: &Atom) -> D::Elem {
        self.maybe_fault();
        if self.roll(self.config.skip_meet_permille) {
            // e alone over-approximates e ∧ atom.
            return e.clone();
        }
        self.inner.meet_atom(e, atom)
    }

    fn implies_atom(&self, e: &D::Elem, atom: &Atom) -> bool {
        self.maybe_fault();
        if self.roll(self.config.deny_implies_permille) {
            // "Unknown" is always a sound answer to an implication query.
            return false;
        }
        self.inner.implies_atom(e, atom)
    }

    fn join(&self, a: &D::Elem, b: &D::Elem) -> D::Elem {
        self.maybe_fault();
        if self.roll(self.config.top_join_permille) {
            return self.inner.top();
        }
        self.inner.join(a, b)
    }

    fn exists(&self, e: &D::Elem, vars: &VarSet) -> D::Elem {
        self.maybe_fault();
        if self.roll(self.config.top_exists_permille) {
            // ⊤ is implied by e and mentions no variable at all.
            return self.inner.top();
        }
        self.inner.exists(e, vars)
    }

    fn var_equalities(&self, e: &D::Elem) -> Partition {
        self.maybe_fault();
        let full = self.inner.var_equalities(e);
        if self.config.drop_equality_permille == 0 {
            return full;
        }
        // Rebuild the partition, dropping generator pairs at the
        // configured rate — a coarser (weaker, still sound) partition.
        let mut out = Partition::new();
        for (a, b) in full.pairs() {
            if !self.roll(self.config.drop_equality_permille) {
                out.union(a, b);
            }
        }
        out
    }

    fn alternate(&self, e: &D::Elem, y: Var, avoid: &VarSet) -> Option<Term> {
        self.maybe_fault();
        if self.roll(self.config.drop_alternate_permille) {
            // `None` ("no definition found") is always within contract.
            return None;
        }
        if self.roll(self.config.break_alternate_permille) {
            // `y = y` is implied by every element but violates both
            // contract clauses (`t ≠ y` and `Vars(t) ∩ avoid = ∅`).
            return Some(Term::var(y));
        }
        self.inner.alternate(e, y, avoid)
    }

    fn alternates(
        &self,
        e: &D::Elem,
        targets: &VarSet,
        avoid: &VarSet,
    ) -> std::collections::BTreeMap<Var, Term> {
        self.maybe_fault();
        let mut out = self.inner.alternates(e, targets, avoid);
        if self.config.drop_alternate_permille > 0 {
            out.retain(|_, _| !self.roll(self.config.drop_alternate_permille));
        }
        if self.config.break_alternate_permille > 0 {
            for (y, t) in out.iter_mut() {
                if self.roll(self.config.break_alternate_permille) {
                    // Corrupt this definition into the cyclic `y = y`.
                    *t = Term::var(*y);
                }
            }
        }
        out
    }

    fn widen(&self, a: &D::Elem, b: &D::Elem) -> D::Elem {
        self.maybe_fault();
        if self.roll(self.config.top_join_permille) {
            // ⊤ is a stable point of any widening, so termination of the
            // enclosing fixpoint is preserved.
            return self.inner.top();
        }
        self.inner.widen(a, b)
    }

    fn narrow(&self, a: &D::Elem, b: &D::Elem) -> D::Elem {
        // Delegate without fault injection: a chaotic narrowing could
        // only be rejected by the engine's bracket check anyway, and the
        // wrapper must not make recovery behave differently from the
        // wrapped domain.
        self.inner.narrow(a, b)
    }

    fn to_conj(&self, e: &D::Elem) -> Conj {
        self.inner.to_conj(e)
    }

    fn from_conj(&self, c: &Conj) -> D::Elem {
        // Route through the wrapper's meet so construction is also chaotic.
        self.meet_all(&self.top(), c.atoms())
    }

    fn meet_all(&self, e: &D::Elem, atoms: &[Atom]) -> D::Elem {
        self.maybe_fault();
        if self.roll(self.config.skip_meet_permille) {
            // Drop one batched meet entirely.
            return e.clone();
        }
        self.inner.meet_all(e, atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial domain over no theory, for wrapper-level checks.
    #[derive(Clone, Copy, Debug)]
    struct Free;

    impl AbstractDomain for Free {
        type Elem = Conj;

        fn sig(&self) -> Sig {
            Sig::single(cai_term::TheoryTag::UF)
        }
        fn top(&self) -> Conj {
            Conj::new()
        }
        fn bottom(&self) -> Conj {
            Conj::of(Atom::eq(Term::int(0), Term::int(1)))
        }
        fn is_bottom(&self, e: &Conj) -> bool {
            e.iter().any(|a| *a == Atom::eq(Term::int(0), Term::int(1)))
        }
        fn meet_atom(&self, e: &Conj, atom: &Atom) -> Conj {
            let mut out = e.clone();
            out.push(atom.clone());
            out
        }
        fn implies_atom(&self, e: &Conj, atom: &Atom) -> bool {
            e.iter().any(|a| a == atom)
        }
        fn join(&self, a: &Conj, b: &Conj) -> Conj {
            a.iter()
                .filter(|x| b.iter().any(|y| y == *x))
                .cloned()
                .collect()
        }
        fn exists(&self, e: &Conj, vars: &VarSet) -> Conj {
            e.iter()
                .filter(|a| !a.mentions_any(vars))
                .cloned()
                .collect()
        }
        fn var_equalities(&self, _e: &Conj) -> Partition {
            Partition::new()
        }
        fn alternate(&self, _e: &Conj, _y: Var, _avoid: &VarSet) -> Option<Term> {
            None
        }
        fn to_conj(&self, e: &Conj) -> Conj {
            e.clone()
        }
    }

    #[test]
    fn same_seed_same_faults() {
        let atom = Atom::var_eq(Var::named("x"), Var::named("y"));
        let e = Conj::of(atom.clone());
        let runs: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                let d = ChaosDomain::new(Free, 7);
                (0..50).map(|_| d.implies_atom(&e, &atom)).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        // And a different seed gives a different schedule (with these many
        // trials the chance of collision is negligible).
        let d = ChaosDomain::new(Free, 8);
        let other: Vec<bool> = (0..50).map(|_| d.implies_atom(&e, &atom)).collect();
        assert_ne!(runs[0], other);
    }

    #[test]
    fn quiet_config_is_transparent() {
        let d = ChaosDomain::new(Free, 1).with_config(ChaosConfig::quiet());
        let atom = Atom::var_eq(Var::named("x"), Var::named("y"));
        let e = Conj::of(atom.clone());
        for _ in 0..100 {
            assert!(d.implies_atom(&e, &atom));
        }
        assert_eq!(d.injected(), 0);
    }

    /// Runs `f` on a sacrificial thread and reports whether it panicked
    /// (join returns `Err` for a panicked thread — no `catch_unwind`
    /// needed, which CI reserves for the driver's supervisor module).
    fn panics(f: impl FnOnce() + Send + 'static) -> bool {
        // Serialize hook swapping: the panic hook is process-global and
        // tests run in parallel.
        static HOOK_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = HOOK_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        // Silence the default "thread panicked" stderr noise for the
        // duration: chaos tests inject panics on purpose.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = std::thread::spawn(f).join().is_err();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn injected_panics_are_deterministic_per_seed() {
        let schedule = |seed: u64| -> Vec<bool> {
            (0..40)
                .map(|i| {
                    panics(move || {
                        let d = ChaosDomain::new(Free, seed).with_config(ChaosConfig {
                            panic_permille: 300,
                            ..ChaosConfig::quiet()
                        });
                        let atom = Atom::var_eq(Var::named("x"), Var::named("y"));
                        // Advance the stream to the i-th decision.
                        for _ in 0..=i {
                            let _ = d.implies_atom(&Conj::new(), &atom);
                        }
                    })
                })
                .collect()
        };
        let a = schedule(11);
        assert_eq!(a, schedule(11), "same seed, same panic schedule");
        assert!(a.iter().any(|p| *p), "rate 300‰ fires within 40 ops");
        assert!(!a.iter().all(|p| *p), "rate 300‰ also spares some ops");
    }

    #[test]
    fn panic_fires_before_the_wrapped_domain_runs() {
        // With panic at 1000‰ every operation unwinds, so the wrapped
        // domain is never consulted and stays reusable afterwards.
        assert!(panics(|| {
            let d = ChaosDomain::new(Free, 5).with_config(ChaosConfig {
                panic_permille: 1000,
                ..ChaosConfig::quiet()
            });
            let _ = d.join(&Conj::new(), &Conj::new());
        }));
    }

    #[test]
    fn stall_spins_until_the_budget_is_exhausted() {
        let budget = Budget::unlimited();
        let d = std::sync::Arc::new(
            ChaosDomain::new(Free, 9)
                .with_config(ChaosConfig {
                    stall_permille: 1000,
                    ..ChaosConfig::quiet()
                })
                .with_budget(budget.clone()),
        );
        let worker = {
            let d = d.clone();
            std::thread::spawn(move || {
                let atom = Atom::var_eq(Var::named("x"), Var::named("y"));
                d.meet_atom(&Conj::new(), &atom) // stalls until cancelled
            })
        };
        // The "watchdog": cancel the hung operation via its budget.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!worker.is_finished(), "operation is genuinely hung");
        budget.exhaust();
        let out = worker.join().expect("stalled op completes after cancel");
        assert_eq!(
            out.iter().count(),
            1,
            "op proceeds (degraded) after the stall"
        );
    }

    #[test]
    fn stall_without_a_budget_is_skipped() {
        // No attached budget: nothing could break the hang, so the fault
        // must not fire at all.
        let d = ChaosDomain::new(Free, 9).with_config(ChaosConfig {
            stall_permille: 1000,
            ..ChaosConfig::quiet()
        });
        let atom = Atom::var_eq(Var::named("x"), Var::named("y"));
        let out = d.meet_atom(&Conj::new(), &atom);
        assert_eq!(out.iter().count(), 1);
    }

    #[test]
    fn budget_drain_fires() {
        let budget = Budget::unlimited();
        let d = ChaosDomain::new(Free, 3)
            .with_config(ChaosConfig {
                exhaust_budget_permille: 1000,
                ..ChaosConfig::quiet()
            })
            .with_budget(budget.clone());
        let atom = Atom::var_eq(Var::named("x"), Var::named("y"));
        let _ = d.meet_atom(&Conj::new(), &atom);
        assert!(budget.is_exhausted());
    }
}
