//! Resource governance: fuel/deadline budgets with sound graceful
//! degradation.
//!
//! The combination algorithms are built from loops whose cost is easy to
//! underestimate — `NOSaturation` fixpoints, the quadratic pair-variable
//! join of Figure 6, `QSaturation`, Fourier–Motzkin elimination, and
//! congruence closure. A [`Budget`] bounds the total work those loops may
//! perform. When the bound is hit, every governed operation **degrades
//! soundly** instead of diverging: it returns an over-approximation of its
//! exact result (often ⊤, or it skips the refinement step) and records a
//! [`Degradation`] event, so callers can distinguish "proved" from "gave
//! up".
//!
//! A `Budget` is a shared handle: cloning it shares the same fuel counter
//! and deadline, which is how one budget governs a whole analysis — clone
//! it into each component domain, the product, and the analyzer, and
//! exhaustion anywhere stops work everywhere.
//!
//! ```
//! use cai_core::Budget;
//! let b = Budget::fuel(2);
//! assert!(b.tick(1));
//! assert!(b.tick(1));
//! assert!(!b.tick(1)); // exhausted — and stays exhausted
//! assert!(b.is_exhausted());
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often (in ticks) the wall-clock deadline is re-checked; checking
/// `Instant::now()` on every tick would dominate the hot loops.
const DEADLINE_CHECK_PERIOD: u64 = 256;

/// Cap on stored [`Degradation`] events; further events only bump a
/// counter so an exhausted analysis cannot itself exhaust memory.
const MAX_EVENTS: usize = 64;

/// A typed failure of the analysis engine.
///
/// Most governed operations never return this — they degrade to a sound
/// over-approximation instead. The error type exists for entry points that
/// prefer a hard stop (e.g. services enforcing request deadlines).
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum CaiError {
    /// The fuel counter or wall-clock deadline was exhausted at `site`.
    Exhausted {
        /// The governed loop that observed exhaustion.
        site: &'static str,
    },
    /// Input outside the supported fragment.
    Invalid {
        /// The operation that rejected the input.
        site: &'static str,
        /// What was wrong with it.
        detail: String,
    },
}

impl fmt::Display for CaiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaiError::Exhausted { site } => {
                write!(f, "resource budget exhausted in {site}")
            }
            CaiError::Invalid { site, detail } => {
                write!(f, "invalid input to {site}: {detail}")
            }
        }
    }
}

impl std::error::Error for CaiError {}

/// One recorded precision-loss event: a governed operation hit the budget
/// and substituted a sound over-approximation for its exact result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Degradation {
    /// The operation that degraded (e.g. `"logical-product/join"`).
    pub site: &'static str,
    /// What the operation fell back to.
    pub detail: String,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.site, self.detail)
    }
}

/// A summary of everything a budget observed: whether any governed
/// operation gave up, and where.
#[derive(Clone, Debug, Default)]
pub struct DegradationReport {
    /// `true` if any operation substituted an over-approximation.
    pub degraded: bool,
    /// `true` if the fuel counter or deadline ran out.
    pub exhausted: bool,
    /// Fuel ticks consumed so far.
    pub fuel_spent: u64,
    /// The recorded events, oldest first (at most [`MAX_EVENTS`] kept).
    pub events: Vec<Degradation>,
    /// Events beyond the storage cap (recorded only as a count).
    pub dropped_events: usize,
}

impl DegradationReport {
    /// Folds another report into this one (used when merging the
    /// per-worker budget slices of a parallel analysis): flags are OR-ed,
    /// fuel adds up, and events concatenate up to the storage cap (the
    /// rest only bump [`dropped_events`](DegradationReport::dropped_events)).
    pub fn merge(&mut self, other: &DegradationReport) {
        self.degraded |= other.degraded;
        self.exhausted |= other.exhausted;
        self.fuel_spent += other.fuel_spent;
        for ev in &other.events {
            if self.events.len() < MAX_EVENTS {
                self.events.push(ev.clone());
            } else {
                self.dropped_events += 1;
            }
        }
        self.dropped_events += other.dropped_events;
    }
}

#[derive(Debug, Default)]
struct Log {
    events: Vec<Degradation>,
    dropped: usize,
}

#[derive(Debug)]
struct BudgetInner {
    /// Remaining fuel; `None` means unlimited.
    fuel_left: Option<AtomicU64>,
    /// Total ticks consumed (kept even when unlimited, for reporting).
    spent: AtomicU64,
    deadline: Option<Instant>,
    /// Sticky exhaustion flag: once out, always out, so one governed loop
    /// bailing makes every later loop bail immediately.
    exhausted: AtomicBool,
    degraded: AtomicBool,
    /// Monotonic count of every `degrade` call (including events past the
    /// storage cap). Lets callers detect whether a computation degraded by
    /// comparing snapshots before and after — the memo layer uses this to
    /// refuse to cache results produced by a starved run.
    degrade_events: AtomicU64,
    log: Mutex<Log>,
}

/// A shared fuel counter and optional wall-clock deadline governing the
/// potentially-unbounded loops of the engine. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Budget {
    inner: Arc<BudgetInner>,
}

impl Budget {
    fn build(fuel: Option<u64>, deadline: Option<Duration>) -> Budget {
        Budget::build_at(fuel, deadline.map(|d| Instant::now() + d), false)
    }

    fn build_at(fuel: Option<u64>, deadline: Option<Instant>, exhausted: bool) -> Budget {
        Budget {
            inner: Arc::new(BudgetInner {
                fuel_left: fuel.map(AtomicU64::new),
                spent: AtomicU64::new(0),
                deadline,
                exhausted: AtomicBool::new(exhausted),
                degraded: AtomicBool::new(false),
                degrade_events: AtomicU64::new(0),
                log: Mutex::new(Log::default()),
            }),
        }
    }

    /// A budget that never exhausts (the default everywhere).
    pub fn unlimited() -> Budget {
        Budget::build(None, None)
    }

    /// A budget of `n` operation ticks.
    pub fn fuel(n: u64) -> Budget {
        Budget::build(Some(n), None)
    }

    /// A budget with a wall-clock deadline, measured from now.
    pub fn deadline(d: Duration) -> Budget {
        Budget::build(None, Some(d))
    }

    /// A budget with both a fuel cap and a wall-clock deadline.
    pub fn fuel_and_deadline(n: u64, d: Duration) -> Budget {
        Budget::build(Some(n), Some(d))
    }

    /// Consumes `cost` ticks. Returns `true` while within budget; once it
    /// returns `false` it returns `false` forever (exhaustion is sticky).
    pub fn tick(&self, cost: u64) -> bool {
        let inner = &*self.inner;
        if inner.exhausted.load(Ordering::Relaxed) {
            return false;
        }
        let spent = inner.spent.fetch_add(cost, Ordering::Relaxed) + cost;
        if let Some(left) = &inner.fuel_left {
            // Saturating decrement: `fetch_update` loops only under
            // contention, and the counter never wraps below zero.
            let out = left
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                    Some(cur.saturating_sub(cost))
                })
                .unwrap_or(0);
            if out < cost {
                inner.exhausted.store(true, Ordering::Relaxed);
                return false;
            }
        }
        if let Some(deadline) = inner.deadline {
            // Amortize the clock read; the first tick always checks.
            if (spent <= cost || spent % DEADLINE_CHECK_PERIOD < cost) && Instant::now() >= deadline
            {
                inner.exhausted.store(true, Ordering::Relaxed);
                return false;
            }
        }
        true
    }

    /// Exhausts the budget immediately (cooperative cancellation; also
    /// used by the chaos harness to inject fuel exhaustion at chosen
    /// ticks). Every governed loop sharing this budget degrades at its
    /// next check.
    pub fn exhaust(&self) {
        self.inner.exhausted.store(true, Ordering::Relaxed);
    }

    /// Whether the budget has run out (fuel or deadline).
    pub fn is_exhausted(&self) -> bool {
        if self.inner.exhausted.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.inner.exhausted.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Errors with [`CaiError::Exhausted`] if the budget has run out —
    /// for callers that want a hard stop instead of degradation.
    pub fn check(&self, site: &'static str) -> Result<(), CaiError> {
        if self.is_exhausted() {
            Err(CaiError::Exhausted { site })
        } else {
            Ok(())
        }
    }

    /// Total ticks consumed so far.
    pub fn spent(&self) -> u64 {
        self.inner.spent.load(Ordering::Relaxed)
    }

    /// Records that a governed operation substituted a sound
    /// over-approximation for its exact result.
    pub fn degrade(&self, site: &'static str, detail: impl Into<String>) {
        self.inner.degraded.store(true, Ordering::Relaxed);
        self.inner.degrade_events.fetch_add(1, Ordering::Relaxed);
        let mut log = self.inner.log.lock().unwrap_or_else(|e| e.into_inner());
        if log.events.len() < MAX_EVENTS {
            log.events.push(Degradation {
                site,
                detail: detail.into(),
            });
        } else {
            log.dropped += 1;
        }
    }

    /// `true` if any governed operation has degraded under this budget.
    pub fn degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::Relaxed)
    }

    /// Monotonic count of [`degrade`](Budget::degrade) calls so far
    /// (including events beyond the storage cap). Compare snapshots taken
    /// around a computation to learn whether *that* computation degraded.
    pub fn degrade_count(&self) -> u64 {
        self.inner.degrade_events.load(Ordering::Relaxed)
    }

    /// Splits the budget into `ways` *independent* slices for
    /// shared-nothing parallel workers: each slice gets an equal share of
    /// the fuel remaining right now (the first also gets the remainder),
    /// its own spent counter and degradation log, and the *same absolute*
    /// wall-clock deadline, so no worker outlives the parent's deadline.
    /// An unlimited parent yields unlimited slices; an already-exhausted
    /// parent yields already-exhausted slices. The parent keeps its own
    /// counters untouched — merge the slices' [`report`](Budget::report)s
    /// back with [`DegradationReport::merge`].
    pub fn split(&self, ways: usize) -> Vec<Budget> {
        let remaining = self
            .inner
            .fuel_left
            .as_ref()
            .map(|l| l.load(Ordering::Relaxed));
        let exhausted = self.is_exhausted();
        (0..ways)
            .map(|i| {
                let share = remaining.map(|r| {
                    let each = r / ways as u64;
                    if i == 0 {
                        each + r % ways as u64
                    } else {
                        each
                    }
                });
                Budget::build_at(share, self.inner.deadline, exhausted)
            })
            .collect()
    }

    /// A snapshot of everything observed so far.
    pub fn report(&self) -> DegradationReport {
        let log = self.inner.log.lock().unwrap_or_else(|e| e.into_inner());
        DegradationReport {
            degraded: self.degraded(),
            exhausted: self.inner.exhausted.load(Ordering::Relaxed),
            fuel_spent: self.spent(),
            events: log.events.clone(),
            dropped_events: log.dropped,
        }
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.tick(1));
        }
        assert!(!b.is_exhausted());
        assert_eq!(b.spent(), 10_000);
    }

    #[test]
    fn fuel_exhaustion_is_sticky() {
        let b = Budget::fuel(3);
        assert!(b.tick(2));
        assert!(!b.tick(2)); // only 1 left
        assert!(!b.tick(0)); // sticky even for free ticks
        assert!(b.is_exhausted());
        assert!(b.check("here").is_err());
    }

    #[test]
    fn clones_share_state() {
        let a = Budget::fuel(2);
        let b = a.clone();
        assert!(a.tick(1));
        assert!(b.tick(1));
        assert!(!a.tick(1));
        assert!(b.is_exhausted());
    }

    #[test]
    fn deadline_in_the_past_exhausts() {
        let b = Budget::deadline(Duration::ZERO);
        assert!(b.is_exhausted());
    }

    #[test]
    fn degradation_log_caps() {
        let b = Budget::unlimited();
        assert!(!b.degraded());
        for i in 0..(MAX_EVENTS + 10) {
            b.degrade("test", format!("event {i}"));
        }
        let r = b.report();
        assert!(r.degraded);
        assert_eq!(r.events.len(), MAX_EVENTS);
        assert_eq!(r.dropped_events, 10);
    }

    #[test]
    fn split_divides_remaining_fuel_independently() {
        let parent = Budget::fuel(10);
        assert!(parent.tick(3)); // 7 remaining
        let kids = parent.split(3);
        assert_eq!(kids.len(), 3);
        // Shares: 3 (2 + remainder 1), 2, 2 — and they are independent.
        assert!(kids[0].tick(3) && !kids[0].tick(1));
        assert!(kids[1].tick(2) && !kids[1].tick(1));
        assert!(kids[2].tick(2) && !kids[2].tick(1));
        assert!(!parent.is_exhausted(), "children don't drain the parent");
    }

    #[test]
    fn split_of_unlimited_is_unlimited() {
        let kids = Budget::unlimited().split(2);
        for k in &kids {
            assert!(k.tick(1_000_000));
            assert!(!k.is_exhausted());
        }
    }

    #[test]
    fn split_of_exhausted_is_exhausted() {
        let parent = Budget::fuel(1);
        parent.exhaust();
        for k in parent.split(4) {
            assert!(k.is_exhausted());
            assert!(!k.tick(1));
        }
    }

    #[test]
    fn split_shares_absolute_deadline() {
        let parent = Budget::deadline(Duration::ZERO);
        for k in parent.split(2) {
            assert!(k.is_exhausted());
        }
    }

    #[test]
    fn reports_merge() {
        let a = Budget::fuel(2);
        let b = Budget::fuel(1);
        assert!(a.tick(1));
        assert!(!b.tick(2));
        b.degrade("test/b", "gave up");
        let mut merged = a.report();
        merged.merge(&b.report());
        assert!(merged.degraded);
        assert!(merged.exhausted);
        assert_eq!(merged.fuel_spent, 3);
        assert_eq!(merged.events.len(), 1);
        assert_eq!(merged.dropped_events, 0);
    }

    #[test]
    fn error_displays() {
        let e = CaiError::Exhausted { site: "join" };
        assert!(e.to_string().contains("join"));
        let e = CaiError::Invalid {
            site: "parse",
            detail: "bad atom".into(),
        };
        assert!(e.to_string().contains("bad atom"));
    }
}
