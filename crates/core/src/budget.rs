//! Resource governance: fuel/deadline budgets with sound graceful
//! degradation.
//!
//! The combination algorithms are built from loops whose cost is easy to
//! underestimate — `NOSaturation` fixpoints, the quadratic pair-variable
//! join of Figure 6, `QSaturation`, Fourier–Motzkin elimination, and
//! congruence closure. A [`Budget`] bounds the total work those loops may
//! perform. When the bound is hit, every governed operation **degrades
//! soundly** instead of diverging: it returns an over-approximation of its
//! exact result (often ⊤, or it skips the refinement step) and records a
//! [`Degradation`] event, so callers can distinguish "proved" from "gave
//! up".
//!
//! A `Budget` is a shared handle: cloning it shares the same fuel counter
//! and deadline, which is how one budget governs a whole analysis — clone
//! it into each component domain, the product, and the analyzer, and
//! exhaustion anywhere stops work everywhere.
//!
//! ```
//! use cai_core::Budget;
//! let b = Budget::fuel(2);
//! assert!(b.tick(1));
//! assert!(b.tick(1));
//! assert!(!b.tick(1)); // exhausted — and stays exhausted
//! assert!(b.is_exhausted());
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cai_obs::{clock, provenance};

/// How often (in ticks) the wall-clock deadline is re-checked; reading the
/// clock on every tick would dominate the hot loops. (The clock is read via
/// [`cai_obs::clock::now`], the stack's single audited wall-clock door.)
const DEADLINE_CHECK_PERIOD: u64 = 256;

/// The domain path the blame layer attributes a degradation site to,
/// derived from the site-string prefix convention (`"logical-product/…"`,
/// `"analyzer/…"`, `"driver/…"`).
fn domain_for_site(site: &str) -> &'static str {
    match site.split('/').next() {
        Some("logical-product") => "logical",
        Some("analyzer") => "interp",
        Some("driver") => "driver",
        _ => "core",
    }
}

/// Cap on stored [`Degradation`] events; further events only bump a
/// counter so an exhausted analysis cannot itself exhaust memory.
const MAX_EVENTS: usize = 64;

/// Cap on stored [`Incident`]s, for the same reason: a chaos run that
/// panics thousands of times must not turn the report into the leak.
const MAX_INCIDENTS: usize = 64;

/// A typed failure of the analysis engine.
///
/// Most governed operations never return this — they degrade to a sound
/// over-approximation instead. The error type exists for entry points that
/// prefer a hard stop (e.g. services enforcing request deadlines).
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum CaiError {
    /// The fuel counter or wall-clock deadline was exhausted at `site`.
    Exhausted {
        /// The governed loop that observed exhaustion.
        site: &'static str,
    },
    /// Input outside the supported fragment.
    Invalid {
        /// The operation that rejected the input.
        site: &'static str,
        /// What was wrong with it.
        detail: String,
    },
}

impl fmt::Display for CaiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaiError::Exhausted { site } => {
                write!(f, "resource budget exhausted in {site}")
            }
            CaiError::Invalid { site, detail } => {
                write!(f, "invalid input to {site}: {detail}")
            }
        }
    }
}

impl std::error::Error for CaiError {}

/// One recorded precision-loss event: a governed operation hit the budget
/// and substituted a sound over-approximation for its exact result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Degradation {
    /// The operation that degraded (e.g. `"logical-product/join"`).
    pub site: &'static str,
    /// What the operation fell back to.
    pub detail: String,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.site, self.detail)
    }
}

/// What kind of failure an [`Incident`] records. Unlike a
/// [`Degradation`] — a *planned* precision loss inside a governed loop —
/// an incident is an engine-level fault the supervision layer absorbed:
/// the math never produces these, the messy world does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum IncidentKind {
    /// A per-procedure analysis panicked and was caught at the
    /// supervision boundary.
    Panic,
    /// The straggler watchdog fired: a procedure overran its deadline and
    /// its budget slice was exhausted to turn the hang into the graceful
    /// degradation path.
    Stall,
    /// A cached artifact failed its checksum and was rejected (then
    /// recomputed from scratch).
    CacheCorruption,
    /// A procedure exhausted its retry allowance and was pinned to the
    /// sound ⊤ summary for the rest of the batch.
    Quarantine,
}

impl fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IncidentKind::Panic => "panic",
            IncidentKind::Stall => "stall",
            IncidentKind::CacheCorruption => "cache-corruption",
            IncidentKind::Quarantine => "quarantine",
        })
    }
}

/// One structured record of a fault the supervision layer survived. The
/// contract mirrors [`Degradation`]: an incident never implies wrong
/// results, only that exactness was traded for survival somewhere.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Incident {
    /// What happened.
    pub kind: IncidentKind,
    /// Where — a procedure or cache-entry name, not a code location.
    pub subject: String,
    /// Free-form diagnostics (panic message, deadline, checksum pair).
    pub detail: String,
    /// Which supervised attempt observed it (0 = first try).
    pub attempt: u32,
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in `{}` (attempt {}): {}",
            self.kind, self.subject, self.attempt, self.detail
        )
    }
}

/// A summary of everything a budget observed: whether any governed
/// operation gave up, and where.
#[derive(Clone, Debug, Default)]
pub struct DegradationReport {
    /// `true` if any operation substituted an over-approximation.
    pub degraded: bool,
    /// `true` if the fuel counter or deadline ran out.
    pub exhausted: bool,
    /// Fuel ticks consumed so far.
    pub fuel_spent: u64,
    /// The recorded events, oldest first (at most [`MAX_EVENTS`] kept).
    pub events: Vec<Degradation>,
    /// Events beyond the storage cap (recorded only as a count).
    pub dropped_events: usize,
    /// Supervision incidents — caught panics, watchdog stalls, cache
    /// corruption, quarantines — oldest first (at most [`MAX_INCIDENTS`]
    /// kept).
    pub incidents: Vec<Incident>,
    /// Incidents beyond the storage cap (recorded only as a count).
    pub dropped_incidents: usize,
}

impl DegradationReport {
    /// Folds another report into this one (used when merging the
    /// per-job budget slices of a parallel analysis): flags are OR-ed,
    /// fuel adds up, and events/incidents concatenate up to their storage
    /// caps. Entries that do not fit — whether they overflow *this*
    /// report's cap or were already dropped by `other` — are preserved as
    /// counts, so merging N slices neither grows the logs unboundedly nor
    /// loses how much was cut.
    pub fn merge(&mut self, other: &DegradationReport) {
        self.degraded |= other.degraded;
        self.exhausted |= other.exhausted;
        self.fuel_spent = self.fuel_spent.saturating_add(other.fuel_spent);
        for ev in &other.events {
            if self.events.len() < MAX_EVENTS {
                self.events.push(ev.clone());
            } else {
                self.dropped_events += 1;
                cai_obs::counter!("core/budget/events-dropped").incr();
            }
        }
        self.dropped_events += other.dropped_events;
        for inc in &other.incidents {
            if self.incidents.len() < MAX_INCIDENTS {
                self.incidents.push(inc.clone());
            } else {
                // The overflow incident is dropped from storage here; the
                // global counter keeps the loss visible in `--obs-report`
                // (`other`'s own pre-merge drops were already counted at
                // their original drop points, so only the new ones count).
                self.dropped_incidents += 1;
                cai_obs::counter!("core/budget/incidents-dropped").incr();
            }
        }
        self.dropped_incidents += other.dropped_incidents;
    }

    /// Incidents of one kind, for counters and assertions.
    pub fn incidents_of(&self, kind: IncidentKind) -> impl Iterator<Item = &Incident> {
        self.incidents.iter().filter(move |i| i.kind == kind)
    }
}

#[derive(Debug, Default)]
struct Log {
    events: Vec<Degradation>,
    dropped: usize,
    incidents: Vec<Incident>,
    dropped_incidents: usize,
}

/// The *observation* side of a budget — degradation flags and the event/
/// incident log. Split out so a [`child`](Budget::child) budget can keep
/// its own fuel/deadline restriction while recording everything it
/// observes straight onto its parent's log: the supervisor hands each
/// retry attempt a fresh restriction, and every attempt's events still
/// land in the one report the driver merges.
#[derive(Debug, Default)]
struct Obs {
    degraded: AtomicBool,
    /// Monotonic count of every `degrade` call (including events past the
    /// storage cap). Lets callers detect whether a computation degraded by
    /// comparing snapshots before and after — the memo layer uses this to
    /// refuse to cache results produced by a starved run.
    degrade_events: AtomicU64,
    log: Mutex<Log>,
}

#[derive(Debug)]
struct BudgetInner {
    /// Remaining fuel; `None` means unlimited.
    fuel_left: Option<AtomicU64>,
    /// Total ticks consumed (kept even when unlimited, for reporting).
    spent: AtomicU64,
    deadline: Option<Instant>,
    /// Sticky exhaustion flag: once out, always out, so one governed loop
    /// bailing makes every later loop bail immediately.
    exhausted: AtomicBool,
    /// The budget this one is nested inside, if any. Work ticked here is
    /// charged to the parent too ([`child`](Budget::child)) or not
    /// ([`split`](Budget::split) slices, which own an independent fuel
    /// share), but in both cases parent exhaustion propagates down:
    /// cancelling the root budget cancels every slice and sub-task.
    parent: Option<Arc<BudgetInner>>,
    /// Whether ticks are forwarded to `parent` (true for `child`, false
    /// for `split` slices).
    charge_parent: bool,
    /// Cost accumulated since the wall-clock deadline was last checked.
    /// Starts at [`DEADLINE_CHECK_PERIOD`] so the first tick always
    /// checks; tracking cost-since-last-check (rather than a phase of the
    /// total `spent`) guarantees at most one period of work between clock
    /// reads even when a single tick's cost exceeds the period.
    since_deadline_check: AtomicU64,
    obs: Arc<Obs>,
}

impl BudgetInner {
    /// Whether this budget or any ancestor has been flagged exhausted
    /// (flags only — deadlines are checked by the owning [`Budget`]).
    fn lineage_exhausted(&self) -> bool {
        if self.exhausted.load(Ordering::Relaxed) {
            return true;
        }
        match &self.parent {
            Some(p) => p.lineage_exhausted(),
            None => false,
        }
    }

    fn tick(&self, cost: u64) -> bool {
        if self.lineage_exhausted() {
            self.exhausted.store(true, Ordering::Relaxed);
            return false;
        }
        self.spent.fetch_add(cost, Ordering::Relaxed);
        if let Some(left) = &self.fuel_left {
            // Saturating decrement: `fetch_update` loops only under
            // contention, and the counter never wraps below zero.
            let out = left
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                    Some(cur.saturating_sub(cost))
                })
                .unwrap_or(0);
            if out < cost {
                self.exhausted.store(true, Ordering::Relaxed);
                return false;
            }
        }
        if self.charge_parent {
            if let Some(parent) = &self.parent {
                // Charge the enclosing budget only after this budget's own
                // pool accepted the tick: a child is a *restriction*, and a
                // tick the child itself refuses is work that never happens,
                // so it must not cost the parent fuel. The parent running
                // dry still stops the child immediately.
                if !parent.tick(cost) {
                    self.exhausted.store(true, Ordering::Relaxed);
                    return false;
                }
            }
        }
        if let Some(deadline) = self.deadline {
            // Amortize the clock read on cost-since-last-check (the
            // counter starts at the period, so the first tick always
            // checks): at most one period of work passes between clock
            // reads, even when a single cost exceeds the whole period.
            let acc = self.since_deadline_check.fetch_add(cost, Ordering::Relaxed) + cost;
            if acc >= DEADLINE_CHECK_PERIOD {
                self.since_deadline_check.store(0, Ordering::Relaxed);
                if clock::now() >= deadline {
                    self.exhausted.store(true, Ordering::Relaxed);
                    return false;
                }
            }
        }
        true
    }
}

/// A shared fuel counter and optional wall-clock deadline governing the
/// potentially-unbounded loops of the engine. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Budget {
    inner: Arc<BudgetInner>,
}

impl Budget {
    fn build(fuel: Option<u64>, deadline: Option<Duration>) -> Budget {
        Budget::build_at(fuel, deadline.map(|d| clock::now() + d), false)
    }

    fn build_at(fuel: Option<u64>, deadline: Option<Instant>, exhausted: bool) -> Budget {
        Budget::assemble(fuel, deadline, exhausted, None, false, Arc::default())
    }

    fn assemble(
        fuel: Option<u64>,
        deadline: Option<Instant>,
        exhausted: bool,
        parent: Option<Arc<BudgetInner>>,
        charge_parent: bool,
        obs: Arc<Obs>,
    ) -> Budget {
        Budget {
            inner: Arc::new(BudgetInner {
                fuel_left: fuel.map(AtomicU64::new),
                spent: AtomicU64::new(0),
                deadline,
                exhausted: AtomicBool::new(exhausted),
                parent,
                charge_parent,
                since_deadline_check: AtomicU64::new(DEADLINE_CHECK_PERIOD),
                obs,
            }),
        }
    }

    /// A budget that never exhausts (the default everywhere).
    pub fn unlimited() -> Budget {
        Budget::build(None, None)
    }

    /// A budget of `n` operation ticks.
    pub fn fuel(n: u64) -> Budget {
        Budget::build(Some(n), None)
    }

    /// A budget with a wall-clock deadline, measured from now.
    pub fn deadline(d: Duration) -> Budget {
        Budget::build(None, Some(d))
    }

    /// A budget with both a fuel cap and a wall-clock deadline.
    pub fn fuel_and_deadline(n: u64, d: Duration) -> Budget {
        Budget::build(Some(n), Some(d))
    }

    /// Consumes `cost` ticks. Returns `true` while within budget; once it
    /// returns `false` it returns `false` forever (exhaustion is sticky).
    pub fn tick(&self, cost: u64) -> bool {
        self.inner.tick(cost)
    }

    /// Exhausts the budget immediately (cooperative cancellation; also
    /// used by the chaos harness to inject fuel exhaustion at chosen
    /// ticks). Every governed loop sharing this budget degrades at its
    /// next check.
    pub fn exhaust(&self) {
        self.inner.exhausted.store(true, Ordering::Relaxed);
    }

    /// Whether the budget has run out (fuel or deadline), or any budget
    /// it is nested inside has — cancelling a parent cancels the whole
    /// subtree at its next check.
    pub fn is_exhausted(&self) -> bool {
        if self.inner.lineage_exhausted() {
            self.inner.exhausted.store(true, Ordering::Relaxed);
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if clock::now() >= deadline {
                self.inner.exhausted.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Errors with [`CaiError::Exhausted`] if the budget has run out —
    /// for callers that want a hard stop instead of degradation.
    pub fn check(&self, site: &'static str) -> Result<(), CaiError> {
        if self.is_exhausted() {
            Err(CaiError::Exhausted { site })
        } else {
            Ok(())
        }
    }

    /// Total ticks consumed so far.
    pub fn spent(&self) -> u64 {
        self.inner.spent.load(Ordering::Relaxed)
    }

    /// Records that a governed operation substituted a sound
    /// over-approximation for its exact result.
    pub fn degrade(&self, site: &'static str, detail: impl Into<String>) {
        let obs = &*self.inner.obs;
        obs.degraded.store(true, Ordering::Relaxed);
        obs.degrade_events.fetch_add(1, Ordering::Relaxed);
        let mut log = obs.log.lock().unwrap_or_else(|e| e.into_inner());
        if log.events.len() < MAX_EVENTS {
            log.events.push(Degradation {
                site,
                detail: detail.into(),
            });
        } else {
            log.dropped += 1;
            cai_obs::counter!("core/budget/events-dropped").incr();
        }
        drop(log);
        // Every degradation is a precision loss: feed the blame layer
        // (no-op, one relaxed load, when it is off). The logical round
        // comes from the emitter's last `provenance::set_round`.
        provenance::record_at_current_round(
            provenance::LossKind::BudgetDegrade,
            site,
            domain_for_site(site),
            self.spent(),
        );
    }

    /// Records a supervision [`Incident`] — a caught panic, a watchdog
    /// stall, rejected cache corruption, or a quarantine. Like
    /// [`degrade`](Budget::degrade) this lands in the shared observation
    /// log ([`child`](Budget::child) budgets report onto their parent)
    /// and is capped in storage, never in count.
    pub fn incident(&self, incident: Incident) {
        // Deliberately does NOT set the `degraded` flag: a caught panic
        // whose retry succeeded produced the *exact* result. Supervision
        // paths that do lose precision (quarantine, stall) additionally
        // call [`degrade`](Budget::degrade).
        //
        // Every incident kind maps to one tagged tracer instant here —
        // the single place the mapping lives — using the same kind
        // strings the blame layer's JSON uses (`panic`, `stall`,
        // `cache-corruption`, `quarantine`), so Chrome traces and blame
        // reports cross-reference by name.
        cai_obs::instant!(
            "incident/{} {} attempt={}",
            incident.kind,
            incident.subject,
            incident.attempt
        );
        if incident.kind == IncidentKind::Quarantine {
            // A quarantine pins the procedure to the sound ⊤ summary:
            // attribute the loss to the procedure itself (the incident
            // is raised from the driver thread, outside the procedure's
            // provenance scope).
            provenance::record_scoped(
                &incident.subject,
                provenance::LossKind::Quarantine,
                "driver/supervisor",
                "driver",
                0,
                self.spent(),
            );
        }
        let obs = &*self.inner.obs;
        let mut log = obs.log.lock().unwrap_or_else(|e| e.into_inner());
        if log.incidents.len() < MAX_INCIDENTS {
            log.incidents.push(incident);
        } else {
            log.dropped_incidents += 1;
            cai_obs::counter!("core/budget/incidents-dropped").incr();
        }
    }

    /// `true` if any governed operation has degraded under this budget.
    pub fn degraded(&self) -> bool {
        self.inner.obs.degraded.load(Ordering::Relaxed)
    }

    /// Monotonic count of [`degrade`](Budget::degrade) calls so far
    /// (including events beyond the storage cap). Compare snapshots taken
    /// around a computation to learn whether *that* computation degraded.
    pub fn degrade_count(&self) -> u64 {
        self.inner.obs.degrade_events.load(Ordering::Relaxed)
    }

    /// The fuel still available, or `None` for unlimited. (A snapshot:
    /// concurrent workers may be draining it.)
    pub fn remaining_fuel(&self) -> Option<u64> {
        self.inner
            .fuel_left
            .as_ref()
            .map(|l| l.load(Ordering::Relaxed))
    }

    /// Splits the budget into `ways` *independent* slices for
    /// shared-nothing parallel workers: each slice gets an equal share of
    /// the fuel remaining right now (the remainder is spread round-robin,
    /// one extra tick to each of the first `r mod ways` slices, so shares
    /// differ by at most 1), its own spent counter and degradation log,
    /// and the *same absolute* wall-clock deadline, so no worker outlives
    /// the parent's deadline. An unlimited parent yields unlimited
    /// slices; an already-exhausted parent yields already-exhausted
    /// slices, and exhausting the parent *later* (cooperative
    /// cancellation) stops every slice at its next check. The parent
    /// keeps its own counters untouched — merge the slices'
    /// [`report`](Budget::report)s back with [`DegradationReport::merge`].
    ///
    /// Fuel invariant: when the remaining fuel `r` covers every slice
    /// (`r ≥ ways`), the slices' shares sum to exactly `r`. When it does
    /// not (`0 < r < ways`), every slice is still floored at 1 fuel — a
    /// deliberate overshoot totalling `ways` — so no slice is born
    /// exhausted and degrades before doing any work; the parent's own
    /// pool is untouched either way. `r = 0` yields slices with no fuel
    /// at all.
    pub fn split(&self, ways: usize) -> Vec<Budget> {
        let remaining = self
            .inner
            .fuel_left
            .as_ref()
            .map(|l| l.load(Ordering::Relaxed));
        let exhausted = self.is_exhausted();
        (0..ways)
            .map(|i| {
                let share = remaining.map(|r| {
                    let ways = ways as u64;
                    let each = r / ways + u64::from((i as u64) < r % ways);
                    // The minimum-viable-slice floor: a positive pool
                    // never produces a zero-fuel (born-degraded) slice.
                    if r > 0 {
                        each.max(1)
                    } else {
                        each
                    }
                });
                Budget::assemble(
                    share,
                    self.inner.deadline,
                    exhausted,
                    Some(self.inner.clone()),
                    false,
                    Arc::default(),
                )
            })
            .collect()
    }

    /// The weighted analogue of [`split`](Budget::split): one independent
    /// slice per entry of `weights`, each allotted remaining fuel in
    /// proportion to its weight (a weight of 0 is treated as 1 so every
    /// slice stays viable). The rounding leftover — always fewer ticks
    /// than there are slices — goes one tick apiece to the slices with
    /// the largest discarded fractional share, ties broken by index, so
    /// the allocation is a pure deterministic function of the remaining
    /// fuel and the weight vector. All the [`split`](Budget::split)
    /// invariants hold: shares sum to the remaining fuel `r` whenever the
    /// ≥1-fuel floor does not force an overshoot, an all-equal weight
    /// vector reproduces `split(weights.len())` exactly, and slices share
    /// the parent's absolute deadline and exhaustion lineage.
    pub fn split_weighted(&self, weights: &[u64]) -> Vec<Budget> {
        let remaining = self
            .inner
            .fuel_left
            .as_ref()
            .map(|l| l.load(Ordering::Relaxed));
        let exhausted = self.is_exhausted();
        let w: Vec<u128> = weights.iter().map(|&w| u128::from(w.max(1))).collect();
        let total: u128 = w.iter().sum::<u128>().max(1);
        let shares: Option<Vec<u64>> = remaining.map(|r| {
            let r_wide = u128::from(r);
            // Largest-remainder apportionment in u128 so `r * w` cannot
            // overflow: floor every proportional share, then hand the
            // leftover ticks to the largest fractional parts (stable sort
            // = ties by index).
            let mut shares: Vec<u64> = w
                .iter()
                .map(|wi| u64::try_from(r_wide * wi / total).unwrap_or(u64::MAX))
                .collect();
            let assigned: u64 = shares.iter().sum();
            let leftover = r.saturating_sub(assigned) as usize;
            let mut order: Vec<usize> = (0..w.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(r_wide * w[i] % total));
            for &i in order.iter().take(leftover) {
                shares[i] += 1;
            }
            if r > 0 {
                for s in &mut shares {
                    *s = (*s).max(1);
                }
            }
            shares
        });
        (0..weights.len())
            .map(|i| {
                Budget::assemble(
                    shares.as_ref().map(|s| s[i]),
                    self.inner.deadline,
                    exhausted,
                    Some(self.inner.clone()),
                    false,
                    Arc::default(),
                )
            })
            .collect()
    }

    /// An *independent* allowance for a bounded recovery pass (the
    /// post-widening narrowing iteration): `fuel` ticks of its own, this
    /// budget's absolute wall-clock deadline, and this budget's
    /// observation log. Unlike [`child`](Budget::child) it is
    /// deliberately *not* linked to this budget's fuel pool or exhaustion
    /// flag — recovery runs precisely when the main pool has run dry
    /// (budget-forced widening), re-earning precision under a fresh,
    /// strictly bounded allowance. The wall-clock deadline still binds,
    /// so the anytime contract survives: a deadline-exhausted analysis
    /// never starts a recovery pass.
    pub fn recovery_slice(&self, fuel: u64) -> Budget {
        Budget::assemble(
            Some(fuel),
            self.inner.deadline,
            false,
            None,
            false,
            self.inner.obs.clone(),
        )
    }

    /// A *restriction* of this budget for one supervised sub-task: at
    /// most `fuel` further ticks (`None` = no extra fuel cap) and at most
    /// `deadline` from now (`None` = no extra deadline), on top of
    /// everything this budget already enforces. Work ticked on the child
    /// is charged to this budget too; exhausting the child — including
    /// by a watchdog calling [`exhaust`](Budget::exhaust) on it — leaves
    /// this budget usable for the next attempt, while exhausting *this*
    /// budget stops the child at its next check. Degradations and
    /// incidents recorded on the child land in this budget's log, so one
    /// [`report`](Budget::report) covers every attempt.
    pub fn child(&self, fuel: Option<u64>, deadline: Option<Duration>) -> Budget {
        let child_deadline = deadline.map(|d| clock::now() + d);
        let deadline = match (self.inner.deadline, child_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Budget::assemble(
            fuel,
            deadline,
            self.is_exhausted(),
            Some(self.inner.clone()),
            true,
            self.inner.obs.clone(),
        )
    }

    /// A snapshot of everything observed so far.
    pub fn report(&self) -> DegradationReport {
        let log = self.inner.obs.log.lock().unwrap_or_else(|e| e.into_inner());
        DegradationReport {
            degraded: self.degraded(),
            exhausted: self.inner.exhausted.load(Ordering::Relaxed),
            fuel_spent: self.spent(),
            events: log.events.clone(),
            dropped_events: log.dropped,
            incidents: log.incidents.clone(),
            dropped_incidents: log.dropped_incidents,
        }
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.tick(1));
        }
        assert!(!b.is_exhausted());
        assert_eq!(b.spent(), 10_000);
    }

    #[test]
    fn fuel_exhaustion_is_sticky() {
        let b = Budget::fuel(3);
        assert!(b.tick(2));
        assert!(!b.tick(2)); // only 1 left
        assert!(!b.tick(0)); // sticky even for free ticks
        assert!(b.is_exhausted());
        assert!(b.check("here").is_err());
    }

    #[test]
    fn clones_share_state() {
        let a = Budget::fuel(2);
        let b = a.clone();
        assert!(a.tick(1));
        assert!(b.tick(1));
        assert!(!a.tick(1));
        assert!(b.is_exhausted());
    }

    #[test]
    fn deadline_in_the_past_exhausts() {
        let b = Budget::deadline(Duration::ZERO);
        assert!(b.is_exhausted());
    }

    #[test]
    fn degradation_log_caps() {
        let b = Budget::unlimited();
        assert!(!b.degraded());
        for i in 0..(MAX_EVENTS + 10) {
            b.degrade("test", format!("event {i}"));
        }
        let r = b.report();
        assert!(r.degraded);
        assert_eq!(r.events.len(), MAX_EVENTS);
        assert_eq!(r.dropped_events, 10);
    }

    #[test]
    fn split_divides_remaining_fuel_independently() {
        let parent = Budget::fuel(10);
        assert!(parent.tick(3)); // 7 remaining
        let kids = parent.split(3);
        assert_eq!(kids.len(), 3);
        // Shares: 3 (2 + one remainder tick), 2, 2 — and independent.
        assert!(kids[0].tick(3) && !kids[0].tick(1));
        assert!(kids[1].tick(2) && !kids[1].tick(1));
        assert!(kids[2].tick(2) && !kids[2].tick(1));
        assert!(!parent.is_exhausted(), "children don't drain the parent");
    }

    #[test]
    fn split_floors_every_slice_at_one_fuel() {
        // Remaining fuel (2) is positive but smaller than the number of
        // slices (4): every slice must still get at least 1 fuel so no
        // worker is born degraded. The total deliberately overshoots.
        let parent = Budget::fuel(2);
        let kids = parent.split(4);
        for k in &kids {
            assert!(!k.is_exhausted(), "no slice is born exhausted");
            assert!(k.tick(1), "every slice can do at least one unit of work");
        }
        // The documented invariant: sum = remaining when remaining >= ways…
        let wide = Budget::fuel(10).split(3);
        let total: u64 = wide.iter().map(|k| k.remaining_fuel().unwrap()).sum();
        assert_eq!(total, 10);
        // …and sum = ways (each slice exactly 1) when 0 < remaining < ways.
        let narrow = Budget::fuel(2).split(4);
        let total: u64 = narrow.iter().map(|k| k.remaining_fuel().unwrap()).sum();
        assert_eq!(total, 4, "remainder spreads, then every slice floors at 1");
        // A drained pool still yields fuel-less slices.
        let dry = Budget::fuel(0).split(3);
        assert!(dry.iter().all(|k| k.remaining_fuel() == Some(0)));
    }

    #[test]
    fn split_spreads_the_remainder_round_robin() {
        // 10 fuel over 4 slices: 3, 3, 2, 2 — never 4, 2, 2, 2. Shares
        // differ by at most one tick, so no worker is systematically
        // favoured by its slice index.
        let shares: Vec<u64> = Budget::fuel(10)
            .split(4)
            .iter()
            .map(|k| k.remaining_fuel().unwrap())
            .collect();
        assert_eq!(shares, vec![3, 3, 2, 2]);
        for ways in 1..=9 {
            let shares: Vec<u64> = Budget::fuel(23)
                .split(ways)
                .iter()
                .map(|k| k.remaining_fuel().unwrap())
                .collect();
            assert_eq!(shares.iter().sum::<u64>(), 23);
            let (lo, hi) = (shares.iter().min().unwrap(), shares.iter().max().unwrap());
            assert!(hi - lo <= 1, "shares {shares:?} differ by more than 1");
        }
    }

    #[test]
    fn split_weighted_is_proportional_and_deterministic() {
        let shares: Vec<u64> = Budget::fuel(100)
            .split_weighted(&[1, 2, 7])
            .iter()
            .map(|k| k.remaining_fuel().unwrap())
            .collect();
        assert_eq!(shares, vec![10, 20, 70]);
        // Rounding leftovers go to the largest fractional parts, ties by
        // index; the total is exact.
        let shares: Vec<u64> = Budget::fuel(10)
            .split_weighted(&[1, 1, 1])
            .iter()
            .map(|k| k.remaining_fuel().unwrap())
            .collect();
        assert_eq!(shares.iter().sum::<u64>(), 10);
        // Equal weights reproduce split() exactly (the flat-policy
        // bit-identity contract).
        for (w, s) in Budget::fuel(23)
            .split_weighted(&[1; 5])
            .iter()
            .zip(Budget::fuel(23).split(5))
        {
            assert_eq!(w.remaining_fuel(), s.remaining_fuel());
        }
        // Zero weights stay viable, and a positive pool floors at 1.
        let shares: Vec<u64> = Budget::fuel(8)
            .split_weighted(&[0, 1000])
            .iter()
            .map(|k| k.remaining_fuel().unwrap())
            .collect();
        assert!(shares[0] >= 1 && shares.iter().sum::<u64>() >= 8);
        // An unlimited parent yields unlimited slices.
        assert!(Budget::unlimited()
            .split_weighted(&[3, 1])
            .iter()
            .all(|k| k.remaining_fuel().is_none()));
    }

    #[test]
    fn child_refused_tick_does_not_charge_the_parent() {
        // Regression: the child's own pool is checked *first*, so a tick
        // the child refuses is work that never happens and must leave the
        // parent's fuel and spent counter untouched.
        let parent = Budget::fuel(100);
        let child = parent.child(Some(2), None);
        assert!(!child.tick(5), "child cap (2) refuses the tick");
        assert_eq!(parent.remaining_fuel(), Some(100), "parent fuel intact");
        assert_eq!(parent.report().fuel_spent, 0, "parent spent nothing");
        // Accepted ticks still charge through.
        let child = parent.child(Some(10), None);
        assert!(child.tick(4));
        assert_eq!(parent.remaining_fuel(), Some(96));
        assert_eq!(parent.report().fuel_spent, 4);
    }

    #[test]
    fn deadline_recheck_tracks_cost_since_last_check() {
        // Regression: the clock re-check amortizes on cost accumulated
        // since the last check, so a short deadline is detected promptly
        // even when individual costs exceed the whole check period.
        let b = Budget::deadline(Duration::from_millis(40));
        assert!(b.tick(1), "first tick always checks; deadline is ahead");
        std::thread::sleep(Duration::from_millis(90));
        assert!(
            !b.tick(DEADLINE_CHECK_PERIOD * 8),
            "a single oversized cost crosses the period and re-checks"
        );
        assert!(b.is_exhausted());
        // And small costs re-check within one period of accumulated work.
        let b = Budget::deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(20));
        let mut refused = false;
        for _ in 0..=DEADLINE_CHECK_PERIOD {
            if !b.tick(1) {
                refused = true;
                break;
            }
        }
        assert!(refused, "at most one period of cost passes between checks");
    }

    #[test]
    fn recovery_slice_is_fresh_fuel_with_the_shared_log() {
        let parent = Budget::fuel(1);
        assert!(!parent.tick(2));
        assert!(parent.is_exhausted());
        // Recovery runs precisely when the main pool is dry: the slice is
        // born usable, with its own strictly bounded allowance…
        let rec = parent.recovery_slice(3);
        assert!(!rec.is_exhausted());
        assert!(rec.tick(3));
        assert!(!rec.tick(1), "…which still exhausts on its own");
        // …and its degradations land in the parent's report.
        rec.degrade("test/narrow", "ran dry");
        assert!(parent
            .report()
            .events
            .iter()
            .any(|e| e.site == "test/narrow"));
        // A deadline-exhausted budget yields a deadline-exhausted slice:
        // the anytime contract survives recovery.
        let timed = Budget::deadline(Duration::ZERO);
        assert!(timed.recovery_slice(10).is_exhausted());
    }

    #[test]
    fn exhausting_the_parent_cancels_its_slices() {
        let parent = Budget::unlimited();
        let kids = parent.split(2);
        assert!(kids[0].tick(1));
        parent.exhaust();
        assert!(
            kids[0].is_exhausted(),
            "cancellation reaches running slices"
        );
        assert!(!kids[1].tick(1));
    }

    #[test]
    fn child_is_a_restriction_charged_to_the_parent() {
        let parent = Budget::fuel(10);
        let child = parent.child(Some(3), None);
        assert!(child.tick(2));
        assert_eq!(
            parent.remaining_fuel(),
            Some(8),
            "child work drains the parent"
        );
        assert!(!child.tick(2), "child cap (3) binds before parent fuel");
        assert!(child.is_exhausted());
        assert!(
            !parent.is_exhausted(),
            "an exhausted child leaves the parent usable for the next attempt"
        );
        // A second child sees the parent's remaining pool.
        let retry = parent.child(Some(4), None);
        assert!(retry.tick(4));
        // And exhausting the parent stops any live child.
        let live = parent.child(None, None);
        parent.exhaust();
        assert!(live.is_exhausted());
        assert!(!live.tick(1));
    }

    #[test]
    fn child_observations_land_in_the_parent_report() {
        let parent = Budget::unlimited();
        let child = parent.child(None, None);
        child.degrade("test/child", "gave up");
        child.incident(Incident {
            kind: IncidentKind::Panic,
            subject: "p0".into(),
            detail: "injected".into(),
            attempt: 1,
        });
        let r = parent.report();
        assert!(r.degraded);
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.incidents.len(), 1);
        assert_eq!(r.incidents[0].kind, IncidentKind::Panic);
        assert_eq!(parent.degrade_count(), child.degrade_count());
    }

    #[test]
    fn incidents_do_not_flag_degradation_by_themselves() {
        // A caught-and-recovered panic produced the exact result; only
        // the explicit degrade() paths may claim precision loss.
        let b = Budget::unlimited();
        b.incident(Incident {
            kind: IncidentKind::Panic,
            subject: "p".into(),
            detail: "recovered on retry".into(),
            attempt: 0,
        });
        assert!(!b.degraded());
        assert!(b.report().incidents.len() == 1);
    }

    #[test]
    fn merge_caps_incidents_and_keeps_drop_counts() {
        let mk = |n: usize, dropped: usize| DegradationReport {
            incidents: (0..n)
                .map(|i| Incident {
                    kind: IncidentKind::Stall,
                    subject: format!("p{i}"),
                    detail: "slow".into(),
                    attempt: 0,
                })
                .collect(),
            dropped_incidents: dropped,
            ..DegradationReport::default()
        };
        let before = cai_obs::global()
            .snapshot()
            .counter("core/budget/incidents-dropped");
        let mut merged = DegradationReport::default();
        for _ in 0..3 {
            merged.merge(&mk(40, 2));
        }
        assert_eq!(merged.incidents.len(), MAX_INCIDENTS);
        // 120 offered, 64 stored, 56 overflowed here, plus 3×2 already
        // dropped upstream: no incident is ever silently lost.
        assert_eq!(merged.dropped_incidents, 120 - MAX_INCIDENTS + 6);
        // The newly overflowed 56 also land on the global observability
        // counter (`>=`: other tests in this binary may bump it too).
        let after = cai_obs::global()
            .snapshot()
            .counter("core/budget/incidents-dropped");
        assert!(
            after >= before + (120 - MAX_INCIDENTS as u64),
            "global drop counter must surface merge overflow: {before} -> {after}"
        );
        assert_eq!(
            merged.incidents_of(IncidentKind::Stall).count(),
            MAX_INCIDENTS
        );
        assert_eq!(merged.incidents_of(IncidentKind::Panic).count(), 0);
    }

    #[test]
    fn incident_displays() {
        let i = Incident {
            kind: IncidentKind::Quarantine,
            subject: "loop_forever".into(),
            detail: "2 retries exhausted".into(),
            attempt: 2,
        };
        let s = i.to_string();
        assert!(s.contains("quarantine") && s.contains("loop_forever") && s.contains("attempt 2"));
    }

    #[test]
    fn split_of_unlimited_is_unlimited() {
        let kids = Budget::unlimited().split(2);
        for k in &kids {
            assert!(k.tick(1_000_000));
            assert!(!k.is_exhausted());
        }
    }

    #[test]
    fn split_of_exhausted_is_exhausted() {
        let parent = Budget::fuel(1);
        parent.exhaust();
        for k in parent.split(4) {
            assert!(k.is_exhausted());
            assert!(!k.tick(1));
        }
    }

    #[test]
    fn split_shares_absolute_deadline() {
        let parent = Budget::deadline(Duration::ZERO);
        for k in parent.split(2) {
            assert!(k.is_exhausted());
        }
    }

    #[test]
    fn reports_merge() {
        let a = Budget::fuel(2);
        let b = Budget::fuel(1);
        assert!(a.tick(1));
        assert!(!b.tick(2));
        b.degrade("test/b", "gave up");
        let mut merged = a.report();
        merged.merge(&b.report());
        assert!(merged.degraded);
        assert!(merged.exhausted);
        assert_eq!(merged.fuel_spent, 3);
        assert_eq!(merged.events.len(), 1);
        assert_eq!(merged.dropped_events, 0);
    }

    #[test]
    fn error_displays() {
        let e = CaiError::Exhausted { site: "join" };
        assert!(e.to_string().contains("join"));
        let e = CaiError::Invalid {
            site: "parse",
            detail: "bad atom".into(),
        };
        assert!(e.to_string().contains("bad atom"));
    }
}
