//! The abstract-domain interface that the combination algorithms consume.

use cai_term::{Atom, Conj, Sig, Term, Var, VarSet};
use std::fmt;

use crate::partition::Partition;

/// Semantic properties of the theory underlying a logical lattice.
///
/// The paper's completeness theorems (Theorems 3 and 5) require both
/// component theories to be *convex* and *stably infinite*, and their
/// signatures to be disjoint. Domains report the first two here; signature
/// disjointness is checked from [`AbstractDomain::sig`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TheoryProps {
    /// `φ ⇒ ⋁ xᵢ = yᵢ` implies `φ ⇒ xⱼ = yⱼ` for some `j`.
    pub convex: bool,
    /// Every satisfiable quantifier-free formula is satisfiable in an
    /// infinite model.
    pub stably_infinite: bool,
}

impl TheoryProps {
    /// Both properties hold (the common case for the paper's theories).
    pub fn nelson_oppen() -> TheoryProps {
        TheoryProps {
            convex: true,
            stably_infinite: true,
        }
    }
}

impl Default for TheoryProps {
    fn default() -> TheoryProps {
        TheoryProps::nelson_oppen()
    }
}

/// An abstract interpreter's domain-level operations over a logical lattice
/// (Definitions 1, 3, 4 of the paper).
///
/// Elements are abstractions of finite conjunctions of atomic facts over the
/// domain's signature. The trait bundles exactly the operators the paper's
/// combination methodology consumes:
///
/// | paper            | trait method                        |
/// |------------------|-------------------------------------|
/// | `J_L`            | [`join`](AbstractDomain::join)      |
/// | `Q_L`            | [`exists`](AbstractDomain::exists)  |
/// | `M_L`            | [`meet_atom`](AbstractDomain::meet_atom) |
/// | `⇒` (decision)   | [`implies_atom`](AbstractDomain::implies_atom) |
/// | `VE_T`           | [`var_equalities`](AbstractDomain::var_equalities) |
/// | `Alternate_T`    | [`alternate`](AbstractDomain::alternate) |
/// | widening `∇`     | [`widen`](AbstractDomain::widen)    |
///
/// The products in this crate implement `AbstractDomain` themselves, so
/// combinations nest: `(L1 ⋈ L2) ⋈ L3` is just another domain.
pub trait AbstractDomain {
    /// The lattice element type.
    type Elem: Clone + PartialEq + fmt::Debug + fmt::Display;

    /// The signature of symbols the domain understands.
    fn sig(&self) -> Sig;

    /// Semantic properties of the underlying theory.
    fn props(&self) -> TheoryProps {
        TheoryProps::nelson_oppen()
    }

    /// The top element (`true`).
    fn top(&self) -> Self::Elem;

    /// The bottom element (`false`).
    fn bottom(&self) -> Self::Elem;

    /// Returns `true` if the element is unsatisfiable.
    fn is_bottom(&self, e: &Self::Elem) -> bool;

    /// The meet `e ∧ atom` with one atomic fact over the domain's
    /// signature.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `atom` mentions symbols outside
    /// [`sig`](AbstractDomain::sig); callers route atoms via the signature
    /// first.
    fn meet_atom(&self, e: &Self::Elem, atom: &Atom) -> Self::Elem;

    /// Decides `e ⇒ atom` for an atomic fact over the domain's signature.
    fn implies_atom(&self, e: &Self::Elem, atom: &Atom) -> bool;

    /// The join (least upper bound) `J_L`.
    fn join(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// The existential-quantification operator `Q_L`: the strongest element
    /// implied by `e` that mentions no variable of `vars`.
    fn exists(&self, e: &Self::Elem, vars: &VarSet) -> Self::Elem;

    /// `VE_T`: the partition of variables into classes of provably equal
    /// variables. Unsatisfiable elements may return anything (callers check
    /// [`is_bottom`](AbstractDomain::is_bottom) first).
    fn var_equalities(&self, e: &Self::Elem) -> Partition;

    /// `Alternate_T(e, y, avoid)`: a term `t` with `e ⇒ y = t` and
    /// `Vars(t) ∩ (avoid ∪ {y}) = ∅`, or `None` if no such term is found.
    ///
    /// The logical product *checks* this contract at runtime and skips (with
    /// a budget degradation note) any definition that violates it — so a
    /// defective implementation costs precision, never soundness or
    /// termination of the combined quantification.
    fn alternate(&self, e: &Self::Elem, y: Var, avoid: &VarSet) -> Option<Term>;

    /// Batched `Alternate_T`: definitions for every variable of `targets`
    /// for which one exists, all avoiding `avoid` (`targets ⊆ avoid`).
    /// Domains whose per-call `alternate` rebuilds expensive state (e.g. a
    /// congruence closure) override this with a single-pass version.
    fn alternates(
        &self,
        e: &Self::Elem,
        targets: &VarSet,
        avoid: &VarSet,
    ) -> std::collections::BTreeMap<Var, Term> {
        targets
            .iter()
            .filter_map(|&y| self.alternate(e, y, avoid).map(|t| (y, t)))
            .collect()
    }

    /// Widening. Defaults to [`join`](AbstractDomain::join), which is a
    /// correct widening for finite-height domains.
    fn widen(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.join(a, b)
    }

    /// Narrowing `Δ` — the precision-recovery companion to
    /// [`widen`](AbstractDomain::widen). Called with a post-fixpoint `a`
    /// (typically a widened loop invariant) and a descended iterate `b`
    /// with `b ⊑ a`; returns an element `r` with `b ⊑ r ⊑ a`. The engine
    /// bounds the number of narrowing rounds by fuel, so implementations
    /// need not guarantee chain stabilization themselves — but they must
    /// stay inside the `[b, a]` interval (the engine re-verifies the
    /// bracket and inductiveness before adopting a narrowed invariant, so
    /// a defective implementation costs precision, never soundness).
    ///
    /// Defaults to the identity (`a`): sound for every domain, recovers
    /// nothing.
    fn narrow(&self, a: &Self::Elem, _b: &Self::Elem) -> Self::Elem {
        a.clone()
    }

    /// Renders the element as a conjunction of atomic facts over the
    /// domain's signature (its concretization's syntactic presentation).
    fn to_conj(&self, e: &Self::Elem) -> Conj;

    /// Builds the element abstracting a pure conjunction: the meet of `top`
    /// with every atom (batched, see
    /// [`meet_all`](AbstractDomain::meet_all)).
    #[allow(clippy::wrong_self_convention)] // the domain builds its elements
    fn from_conj(&self, c: &Conj) -> Self::Elem {
        self.meet_all(&self.top(), c.atoms())
    }

    /// Meets a batch of atoms at once. Equivalent to folding
    /// [`meet_atom`](AbstractDomain::meet_atom), but domains with an
    /// expensive per-meet normalization (e.g. congruence-closure
    /// re-canonicalization) override this to normalize once.
    fn meet_all(&self, e: &Self::Elem, atoms: &[Atom]) -> Self::Elem {
        let mut out = e.clone();
        for a in atoms {
            out = self.meet_atom(&out, a);
        }
        out
    }

    /// The lattice partial order: `a ⊑ b` (i.e. `a` implies `b`). The
    /// default decides each atom of `b`'s presentation against `a`.
    fn le(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        if self.is_bottom(a) {
            return true;
        }
        self.to_conj(b)
            .iter()
            .all(|atom| self.implies_atom(a, atom))
    }

    /// Semantic element equality (mutual implication). Structural
    /// `PartialEq` may be finer than this; fixpoint detection uses this
    /// method.
    fn equal_elems(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        self.le(a, b) && self.le(b, a)
    }
}

/// How precise a product combination is, given the component theories'
/// properties (paper §4, Theorems 3 and 5, and Figure 8).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Precision {
    /// The components are convex, stably infinite, and signature-disjoint:
    /// the combination operators are the most precise ones for the logical
    /// product lattice.
    Complete,
    /// The signatures share symbols (like parity and sign, Figure 8): the
    /// combination is a sound heuristic, no longer complete.
    HeuristicNonDisjoint,
    /// A component theory is non-convex or not stably infinite: the
    /// Nelson–Oppen exchange of variable equalities may be incomplete.
    HeuristicNonConvex,
}

/// Classifies the precision guarantee for combining two domains.
pub fn combination_precision<D1, D2>(d1: &D1, d2: &D2) -> Precision
where
    D1: AbstractDomain,
    D2: AbstractDomain,
{
    let p1 = d1.props();
    let p2 = d2.props();
    if !(p1.convex && p1.stably_infinite && p2.convex && p2.stably_infinite) {
        Precision::HeuristicNonConvex
    } else if !d1.sig().disjoint_symbols(&d2.sig()) {
        Precision::HeuristicNonDisjoint
    } else {
        Precision::Complete
    }
}
