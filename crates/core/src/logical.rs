//! The **logical product** `L1 ⋈ L2` — the paper's primary contribution
//! (Definition 2, Figures 6 and 7).
//!
//! Elements are finite conjunctions of *mixed* atomic facts over the union
//! of the component theories. The lattice operations are constructed
//! automatically from the component domains:
//!
//! - the join (Figure 6) purifies and NO-saturates both inputs, introduces
//!   a quadratic set of pair variables `⟨x, y⟩`, joins component-wise, and
//!   eliminates the pair variables with the combined quantification
//!   operator — recovering mixed facts such as `u = F(v + 1)`;
//! - existential quantification (Figure 7) purifies, NO-saturates, runs
//!   `QSaturation` to find definitions for eliminable variables via the
//!   theory-specific `Alternate` operators, quantifies component-wise, and
//!   substitutes the definitions back — again producing mixed facts.
//!
//! When the component theories are convex, stably infinite, and disjoint,
//! these operators are the most precise ones for the logical product
//! lattice (Theorems 3 and 5). Otherwise they remain sound and act as the
//! paper's "efficient heuristic" (see [`LogicalProduct::precision`]).

use crate::budget::Budget;
use crate::domain::{combination_precision, AbstractDomain, Precision, TheoryProps};
use crate::partition::Partition;
use crate::saturate::{no_saturate_budgeted, Saturated};
use cai_term::{purify, Atom, AtomSide, Conj, Purified, Purifier, Sig, Term, Var, VarSet};
use std::collections::BTreeMap;
use std::time::Instant;

/// Returns `true` when `CAI_TRACE` is set: the logical product then prints
/// per-phase timings of its join and quantification pipelines to stderr.
fn tracing() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("CAI_TRACE").is_some())
}

macro_rules! trace_phase {
    ($label:expr, $body:expr) => {{
        if tracing() {
            let start = Instant::now();
            let out = $body;
            eprintln!("[cai-trace] {}: {:?}", $label, start.elapsed());
            out
        } else {
            $body
        }
    }};
}

/// The logical product of two abstract domains.
///
/// ```
/// # fn main() {}
/// // let product = LogicalProduct::new(AffineEq::new(), UfDomain::new());
/// // Elements are `Conj` — conjunctions of mixed atomic facts.
/// ```
#[derive(Clone, Debug)]
pub struct LogicalProduct<D1, D2> {
    d1: D1,
    d2: D2,
    budget: Budget,
}

impl<D1: AbstractDomain, D2: AbstractDomain> LogicalProduct<D1, D2> {
    /// Combines two domains into their logical product (with an unlimited
    /// [`Budget`]).
    pub fn new(d1: D1, d2: D2) -> LogicalProduct<D1, D2> {
        LogicalProduct {
            d1,
            d2,
            budget: Budget::unlimited(),
        }
    }

    /// Governs this product's join, quantification, and saturation loops
    /// by `budget`. Clone one budget into the component domains and the
    /// analyzer as well to bound a whole analysis end to end.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The budget governing this product's operators.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The first component domain.
    pub fn first(&self) -> &D1 {
        &self.d1
    }

    /// The second component domain.
    pub fn second(&self) -> &D2 {
        &self.d2
    }

    /// The precision guarantee for this combination (Theorems 3 and 5
    /// versus the Figure 8 caveat).
    pub fn precision(&self) -> Precision {
        combination_precision(&self.d1, &self.d2)
    }

    /// Membership in `Terms_{T1,T2}(E)` (Definition 2): `t` occurs
    /// *semantically* in `E`, i.e. `E ⇒ t = t'` for some variable or alien
    /// term `t'` of `E`.
    pub fn in_terms(&self, e: &Conj, t: &Term) -> bool {
        let candidates: Vec<Term> = e
            .vars()
            .into_iter()
            .map(Term::var)
            .chain(cai_term::alien_terms(e, &self.d1.sig(), &self.d2.sig()))
            .collect();
        candidates
            .iter()
            .any(|c| self.implies_atom(e, &Atom::eq(t.clone(), c.clone())))
    }

    /// The partial order of Definition 2: implication *plus* the side
    /// condition `AlienTerms(b) ⊆ Terms(a)`, which is what turns the
    /// implication semi-lattice into a lattice (Theorem 1).
    ///
    /// [`AbstractDomain::le`] checks only implication; elements produced
    /// by this product's own operators satisfy the side condition by
    /// construction, but externally constructed pairs may not — use this
    /// method when Definition 2 is meant literally.
    pub fn le_defn2(&self, a: &Conj, b: &Conj) -> bool {
        if !self.le(a, b) {
            return false;
        }
        cai_term::alien_terms(b, &self.d1.sig(), &self.d2.sig())
            .iter()
            .all(|t| self.in_terms(a, t))
    }

    /// Lines 1–2 / 3–4 of Figure 6: purify a mixed conjunction into the
    /// component domains and NO-saturate.
    fn split(&self, e: &Conj) -> (Purified, Saturated<D1::Elem, D2::Elem>) {
        let p = purify(e, &self.d1.sig(), &self.d2.sig());
        let e1 = self.d1.from_conj(&p.left);
        let e2 = self.d2.from_conj(&p.right);
        let s = no_saturate_budgeted(&self.d1, e1, &self.d2, e2, &self.budget);
        (p, s)
    }

    /// Budget-exhaustion fallback for the join: the syntactic intersection
    /// of the two conjunctions. Sound — an atom present in both inputs is
    /// implied by each, hence by their join — but far less precise than
    /// Figure 6 (it discovers no new facts).
    fn fallback_join(&self, el: &Conj, er: &Conj) -> Conj {
        el.iter()
            .filter(|a| er.iter().any(|b| b == *a))
            .cloned()
            .collect()
    }

    /// Budget-exhaustion fallback for quantification: drop every atom
    /// mentioning a variable to eliminate. Sound (each kept atom is a
    /// conjunct of `e`) and `vars`-free by construction, but performs no
    /// definition recovery.
    fn fallback_exists(e: &Conj, vars: &VarSet) -> Conj {
        e.iter()
            .filter(|a| !a.mentions_any(vars))
            .cloned()
            .collect()
    }

    /// `QSaturation` (Figure 7, lines 1–10 of the right-hand algorithm):
    /// repeatedly finds definitions `y = t` for variables awaiting
    /// elimination, via either component's `Alternate` operator.
    fn q_saturation(
        &self,
        e1: &D1::Elem,
        e2: &D2::Elem,
        v1: &VarSet,
    ) -> (VarSet, BTreeMap<Var, Term>) {
        let mut v2 = v1.clone();
        let mut defs: BTreeMap<Var, Term> = BTreeMap::new();
        loop {
            if !self.budget.tick(1 + v2.len() as u64) {
                // Sound early exit: the variables still in V2 are simply
                // quantified component-wise instead of being substituted.
                self.budget.degrade("logical-product/q-saturation", {
                    format!("stopped with {} definitions pending", v2.len())
                });
                return (v2, defs);
            }
            let mut changed = false;
            // One batched Alternate pass per component per round; as
            // variables leave V2, later rounds may find more definitions.
            for round in [
                self.d1.alternates(e1, &v2, &v2),
                self.d2.alternates(e2, &v2, &v2),
            ] {
                for (y, t) in round {
                    if !v2.contains(&y) {
                        continue;
                    }
                    debug_assert!(
                        !t.mentions_any(&v2) && t.as_var() != Some(y),
                        "Alternate returned `{t}` for {y}, violating its contract"
                    );
                    defs.insert(y, t);
                    v2.remove(&y);
                    changed = true;
                }
            }
            if !changed {
                return (v2, defs);
            }
        }
    }

    /// Applies a definition map to a conjunction until fixpoint. The
    /// definitions discovered by `QSaturation` are acyclic (each avoids all
    /// variables removed after it), so this terminates; the budget guards
    /// against pathological definition chains anyway, dropping any atom
    /// that still mentions a defined variable when fuel runs out (sound:
    /// every kept atom is an instance of a conjunct of `c`).
    fn subst_defs(&self, mut c: Conj, defs: &BTreeMap<Var, Term>) -> Conj {
        if defs.is_empty() {
            return c;
        }
        loop {
            if !self.budget.tick(1 + c.len() as u64) {
                self.budget.degrade(
                    "logical-product/subst-defs",
                    "dropped atoms still mentioning defined variables",
                );
                let defined: VarSet = defs.keys().copied().collect();
                return Self::fallback_exists(&c, &defined);
            }
            let next = c.subst(defs);
            if next == c {
                return c;
            }
            c = next;
        }
    }

    /// The shared implementation of join and widening (the paper constructs
    /// the widening operator "in exactly the same way" as the join).
    fn join_impl(&self, el: &Conj, er: &Conj, widen: bool) -> Conj {
        if self.budget.is_exhausted() {
            self.budget.degrade(
                "logical-product/join",
                "fell back to syntactic intersection",
            );
            return self.fallback_join(el, er);
        }
        // Figure 6, lines 1–4.
        let (pl, sl) = trace_phase!("join/split-left", self.split(el));
        if sl.bottom {
            return er.clone();
        }
        let (pr, sr) = trace_phase!("join/split-right", self.split(er));
        if sr.bottom {
            return el.clone();
        }
        // Line 5: V := {⟨x, y⟩ | x ∈ Vℓ ∪ Vars(Eℓ), y ∈ Vr ∪ Vars(Er)}.
        // Two pair variables whose components are provably equal on their
        // respective sides are interchangeable, so one pair per
        // (left-class, right-class) suffices — an exactness-preserving
        // reduction of the quadratic set.
        let mut lvars: VarSet = el.vars();
        lvars.extend(pl.fresh.iter().copied());
        let mut rvars: VarSet = er.vars();
        rvars.extend(pr.fresh.iter().copied());

        // The pair-variable set is the quadratic heart of Figure 6 — charge
        // for it up front, and degrade to the syntactic join if the budget
        // cannot afford it.
        if !self.budget.tick((lvars.len() * rvars.len()) as u64) {
            self.budget.degrade("logical-product/join", {
                format!(
                    "pair-variable set of {}x{} exceeded the budget",
                    lvars.len(),
                    rvars.len()
                )
            });
            return self.fallback_join(el, er);
        }
        let mut pair_vars = VarSet::new();
        let mut seen: std::collections::BTreeSet<(Var, Var)> = std::collections::BTreeSet::new();
        let mut atoms_l: Vec<Atom> = Vec::new();
        let mut atoms_r: Vec<Atom> = Vec::new();
        for &x in &lvars {
            for &y in &rvars {
                let key = (sl.equalities.find(x), sr.equalities.find(y));
                if !seen.insert(key) {
                    continue;
                }
                let v = Var::fresh(&format!("<{},{}>", x.name(), y.name()));
                pair_vars.insert(v);
                // Lines 6–7: Eℓ2 := ⋀ x = ⟨x,y⟩ and Er2 := ⋀ y = ⟨x,y⟩,
                // met into both components of the respective side.
                atoms_l.push(Atom::var_eq(x, v));
                atoms_r.push(Atom::var_eq(y, v));
            }
        }
        let e1l = trace_phase!("join/meet-pairs-1l", self.d1.meet_all(&sl.left, &atoms_l));
        let e2l = trace_phase!("join/meet-pairs-2l", self.d2.meet_all(&sl.right, &atoms_l));
        let e1r = trace_phase!("join/meet-pairs-1r", self.d1.meet_all(&sr.left, &atoms_r));
        let e2r = trace_phase!("join/meet-pairs-2r", self.d2.meet_all(&sr.right, &atoms_r));
        // Lines 8–9: component joins (or widenings).
        let (j1, j2) = if widen {
            (
                trace_phase!("join/widen-1", self.d1.widen(&e1l, &e1r)),
                trace_phase!("join/widen-2", self.d2.widen(&e2l, &e2r)),
            )
        } else {
            (
                trace_phase!("join/join-1", self.d1.join(&e1l, &e1r)),
                trace_phase!("join/join-2", self.d2.join(&e2l, &e2r)),
            )
        };
        // Line 10: E := Q_{L1⋈L2}(E1 ∧ E2, V).
        let mixed = self.d1.to_conj(&j1).and(&self.d2.to_conj(&j2));
        if tracing() {
            eprintln!(
                "[cai-trace] join/sizes: pairs={} mixed_atoms={}",
                pair_vars.len(),
                mixed.len()
            );
        }
        trace_phase!("join/exists", self.exists(&mixed, &pair_vars))
    }
}

impl<D1: AbstractDomain, D2: AbstractDomain> AbstractDomain for LogicalProduct<D1, D2> {
    /// Elements are conjunctions of mixed atomic facts, exactly as in
    /// Definition 2. Unsatisfiability is represented by any conjunction the
    /// saturation refutes (the canonical bottom is `0 = 1`).
    type Elem = Conj;

    fn sig(&self) -> Sig {
        self.d1.sig().union(&self.d2.sig())
    }

    fn props(&self) -> TheoryProps {
        let (p1, p2) = (self.d1.props(), self.d2.props());
        TheoryProps {
            convex: p1.convex && p2.convex,
            stably_infinite: p1.stably_infinite && p2.stably_infinite,
        }
    }

    fn top(&self) -> Conj {
        Conj::new()
    }

    fn bottom(&self) -> Conj {
        Conj::of(Atom::eq(Term::int(0), Term::int(1)))
    }

    fn is_bottom(&self, e: &Conj) -> bool {
        self.split(e).1.bottom
    }

    fn meet_atom(&self, e: &Conj, atom: &Atom) -> Conj {
        // The meet operator for L1 ⋈ L2 is simply conjunction (§4).
        self.budget.tick(1);
        let mut out = e.clone();
        out.push(atom.clone());
        out
    }

    fn implies_atom(&self, e: &Conj, atom: &Atom) -> bool {
        // Purify the element and the query with a shared purifier so that
        // common alien terms receive common names, NO-saturate, then decide
        // on the hosting component (Property 1).
        let mut purifier = Purifier::new(&self.d1.sig(), &self.d2.sig());
        purifier.add_conj(e);
        let (side, pure) = purifier.purify_atom(atom);
        let p = purifier.finish();
        let e1 = self.d1.from_conj(&p.left);
        let e2 = self.d2.from_conj(&p.right);
        let s = no_saturate_budgeted(&self.d1, e1, &self.d2, e2, &self.budget);
        if s.bottom {
            return true;
        }
        match side {
            AtomSide::Left => self.d1.implies_atom(&s.left, &pure),
            AtomSide::Right => self.d2.implies_atom(&s.right, &pure),
            AtomSide::Both => {
                self.d1.implies_atom(&s.left, &pure) || self.d2.implies_atom(&s.right, &pure)
            }
        }
    }

    fn join(&self, a: &Conj, b: &Conj) -> Conj {
        self.join_impl(a, b, false)
    }

    fn exists(&self, e: &Conj, vars: &VarSet) -> Conj {
        if self.budget.is_exhausted() {
            self.budget.degrade(
                "logical-product/exists",
                "fell back to syntactic projection",
            );
            return Self::fallback_exists(e, vars);
        }
        // Figure 7, left-hand algorithm.
        let (p, s) = trace_phase!("exists/split", self.split(e));
        if s.bottom {
            return self.bottom();
        }
        // Line 3: V1 := V0 ∪ V.
        let mut v1: VarSet = vars.clone();
        v1.extend(p.fresh.iter().copied());
        if v1.is_empty() {
            return e.clone();
        }
        // Line 4: QSaturation.
        let (v2, defs) = trace_phase!("exists/qsat", self.q_saturation(&s.left, &s.right, &v1));
        // Lines 5–6: component quantification of the variables with no
        // definitions.
        let e12 = trace_phase!("exists/q1", self.d1.exists(&s.left, &v2));
        let e22 = trace_phase!("exists/q2", self.d2.exists(&s.right, &v2));
        // Lines 7–8: substitute the definitions back, producing mixed facts.
        let mixed = self.d1.to_conj(&e12).and(&self.d2.to_conj(&e22));
        trace_phase!("exists/subst-defs", self.subst_defs(mixed, &defs))
    }

    /// Batched implication: purify and saturate `a` once, then decide every
    /// atom of `b` against the shared saturated split.
    fn le(&self, a: &Conj, b: &Conj) -> bool {
        let mut purifier = Purifier::new(&self.d1.sig(), &self.d2.sig());
        purifier.add_conj(a);
        let queries: Vec<(AtomSide, Atom)> =
            b.iter().map(|atom| purifier.purify_atom(atom)).collect();
        let p = purifier.finish();
        let e1 = self.d1.from_conj(&p.left);
        let e2 = self.d2.from_conj(&p.right);
        let s = no_saturate_budgeted(&self.d1, e1, &self.d2, e2, &self.budget);
        if s.bottom {
            return true;
        }
        queries.into_iter().all(|(side, pure)| match side {
            AtomSide::Left => self.d1.implies_atom(&s.left, &pure),
            AtomSide::Right => self.d2.implies_atom(&s.right, &pure),
            AtomSide::Both => {
                self.d1.implies_atom(&s.left, &pure) || self.d2.implies_atom(&s.right, &pure)
            }
        })
    }

    fn var_equalities(&self, e: &Conj) -> Partition {
        let s = self.split(e).1;
        if s.bottom {
            return Partition::new();
        }
        s.equalities.restrict(&e.vars())
    }

    fn alternate(&self, e: &Conj, y: Var, avoid: &VarSet) -> Option<Term> {
        // Reduce to the combined quantification operator: name `y` with a
        // fresh variable `z`, eliminate `avoid ∪ {y}`, and look for a
        // definition of `z` in the result.
        let z = Var::fresh("alt");
        let mut ez = e.clone();
        ez.push(Atom::var_eq(z, y));
        let mut elim = avoid.clone();
        elim.insert(y);
        elim.remove(&z);
        let r = self.exists(&ez, &elim);
        let zt = Term::var(z);
        for atom in &r {
            if let Atom::Eq(s, t) = atom {
                if s == &zt && !t.vars().contains(&z) {
                    return Some(t.clone());
                }
                if t == &zt && !s.vars().contains(&z) {
                    return Some(s.clone());
                }
            }
        }
        None
    }

    fn widen(&self, a: &Conj, b: &Conj) -> Conj {
        self.join_impl(a, b, true)
    }

    fn to_conj(&self, e: &Conj) -> Conj {
        e.clone()
    }

    fn from_conj(&self, c: &Conj) -> Conj {
        c.clone()
    }
}
