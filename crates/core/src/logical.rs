//! The **logical product** `L1 ⋈ L2` — the paper's primary contribution
//! (Definition 2, Figures 6 and 7).
//!
//! Elements are finite conjunctions of *mixed* atomic facts over the union
//! of the component theories. The lattice operations are constructed
//! automatically from the component domains:
//!
//! - the join (Figure 6) purifies and NO-saturates both inputs, introduces
//!   a quadratic set of pair variables `⟨x, y⟩`, joins component-wise, and
//!   eliminates the pair variables with the combined quantification
//!   operator — recovering mixed facts such as `u = F(v + 1)`;
//! - existential quantification (Figure 7) purifies, NO-saturates, runs
//!   `QSaturation` to find definitions for eliminable variables via the
//!   theory-specific `Alternate` operators, quantifies component-wise, and
//!   substitutes the definitions back — again producing mixed facts.
//!
//! When the component theories are convex, stably infinite, and disjoint,
//! these operators are the most precise ones for the logical product
//! lattice (Theorems 3 and 5). Otherwise they remain sound and act as the
//! paper's "efficient heuristic" (see [`LogicalProduct::precision`]).
//!
//! # Performance
//!
//! Two amortizations keep the product fast inside analyzer fixpoints (see
//! DESIGN.md, "Join performance"):
//!
//! - a [`SplitCache`] memoizes the purify + NOSaturation front end per
//!   conjunction (keyed by structural fingerprint, verified against the
//!   stored conjunction), so re-visiting an invariant across fixpoint
//!   rounds costs a table lookup instead of a saturation fixpoint.
//!   Budget-degraded results are never cached, so a starved round cannot
//!   poison a later, better-funded one;
//! - the join charges and generates one pair variable per *equivalence
//!   class* pair, eliminates the whole batch with a single `QSaturation`
//!   plus a one-pass topologically-ordered substitution, and prunes pair
//!   variables that occur in neither component presentation (no
//!   `Alternate` definition can mention them, so dropping them is exact).
//!
//! [`JoinStats`] exposes counters for all of the above; set `CAI_TRACE`
//! (or enable the `cai-obs` tracer programmatically) for per-phase span
//! timings, or run `paper_eval --join-stats` for an end-to-end report.

use crate::budget::Budget;
use crate::cache::{cs, Cache, CacheConfig, CacheStats, StoreOutcome, TermMemo};
use crate::domain::{combination_precision, AbstractDomain, Precision, TheoryProps};
use crate::partition::Partition;
use crate::saturate::{no_saturate_budgeted, Saturated};
use cai_obs::{provenance, CounterFamily};
use cai_term::{
    fingerprint, purify, purify_memoized, Atom, AtomSide, Conj, Purified, Purifier, PurifyMemo,
    Sig, Term, Var, VarSet,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

/// [`JoinStats`] counter names, in cell order (indices in [`jc`]).
const JOIN_COUNTERS: &[&str] = &[
    "cache_hits",
    "cache_misses",
    "cache_skips",
    "cache_evictions",
    "pairs_considered",
    "pairs_generated",
    "pairs_pruned",
    "saturation_rounds",
    "qsat_rounds",
    "defs_found",
    "defs_rejected",
    "joins",
    "widens",
    "exists_ops",
    "fallbacks",
    "cache_partial_hits",
];

/// Cell indices into [`JOIN_COUNTERS`].
mod jc {
    pub const CACHE_HITS: usize = 0;
    pub const CACHE_MISSES: usize = 1;
    pub const CACHE_SKIPS: usize = 2;
    pub const CACHE_EVICTIONS: usize = 3;
    pub const PAIRS_CONSIDERED: usize = 4;
    pub const PAIRS_GENERATED: usize = 5;
    pub const PAIRS_PRUNED: usize = 6;
    pub const SATURATION_ROUNDS: usize = 7;
    pub const QSAT_ROUNDS: usize = 8;
    pub const DEFS_FOUND: usize = 9;
    pub const DEFS_REJECTED: usize = 10;
    pub const JOINS: usize = 11;
    pub const WIDENS: usize = 12;
    pub const EXISTS_OPS: usize = 13;
    pub const FALLBACKS: usize = 14;
    pub const CACHE_PARTIAL_HITS: usize = 15;
}

/// Shared observability counters for the logical product's join and
/// quantification pipelines — a thin facade over a
/// [`cai_obs::CounterFamily`]. Cloning shares the underlying counters, so
/// one `JoinStats` can aggregate over many products (e.g. every worker of
/// a parallel driver run).
#[derive(Clone, Debug)]
pub struct JoinStats {
    fam: CounterFamily,
}

impl Default for JoinStats {
    fn default() -> JoinStats {
        JoinStats {
            fam: CounterFamily::new(JOIN_COUNTERS),
        }
    }
}

impl JoinStats {
    /// Fresh counters, all zero.
    pub fn new() -> JoinStats {
        JoinStats::default()
    }

    fn add(&self, idx: usize, n: u64) {
        self.fam.add(idx, n);
    }

    /// Merge current values into an observability [`cai_obs::Snapshot`]
    /// under `"{prefix}/{counter}"` keys — how `--obs-report` folds the
    /// join pipeline into the process-wide table.
    pub fn export_into(&self, snap: &mut cai_obs::Snapshot, prefix: &str) {
        self.fam.export_into(snap, prefix);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> JoinStatsSnapshot {
        let get = |idx: usize| self.fam.get(idx);
        JoinStatsSnapshot {
            cache_hits: get(jc::CACHE_HITS),
            cache_misses: get(jc::CACHE_MISSES),
            cache_partial_hits: get(jc::CACHE_PARTIAL_HITS),
            cache_skips: get(jc::CACHE_SKIPS),
            cache_evictions: get(jc::CACHE_EVICTIONS),
            pairs_considered: get(jc::PAIRS_CONSIDERED),
            pairs_generated: get(jc::PAIRS_GENERATED),
            pairs_pruned: get(jc::PAIRS_PRUNED),
            saturation_rounds: get(jc::SATURATION_ROUNDS),
            qsat_rounds: get(jc::QSAT_ROUNDS),
            defs_found: get(jc::DEFS_FOUND),
            defs_rejected: get(jc::DEFS_REJECTED),
            joins: get(jc::JOINS),
            widens: get(jc::WIDENS),
            exists_ops: get(jc::EXISTS_OPS),
            fallbacks: get(jc::FALLBACKS),
        }
    }
}

/// A point-in-time copy of [`JoinStats`]. Plain data: subtract two
/// snapshots field-wise to meter a region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinStatsSnapshot {
    /// Split-cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Split-cache lookups that had to compute (and then stored).
    pub cache_misses: u64,
    /// Split-cache lookups answered by resuming saturation from a cached
    /// sub-structural base (a cached conjunction whose atoms are a subset
    /// of the query's) on the delta atoms only.
    pub cache_partial_hits: u64,
    /// Computed splits *not* stored because they were budget-degraded.
    pub cache_skips: u64,
    /// Times the cache was wiped because it reached capacity.
    pub cache_evictions: u64,
    /// Raw `|Vℓ| · |Vr|` pair-variable candidates across all joins.
    pub pairs_considered: u64,
    /// Pair variables actually created after equivalence-class dedup (what
    /// the budget is charged for).
    pub pairs_generated: u64,
    /// Eliminable variables dropped up front because no definition can
    /// mention them (absent from every relevant presentation).
    pub pairs_pruned: u64,
    /// NOSaturation exchange rounds actually run (cache hits replay none).
    pub saturation_rounds: u64,
    /// `QSaturation` rounds across all eliminations.
    pub qsat_rounds: u64,
    /// Definitions recovered by `Alternate` and substituted back.
    pub defs_found: u64,
    /// Definitions rejected by the runtime `Alternate`-contract check.
    pub defs_rejected: u64,
    /// Join operations.
    pub joins: u64,
    /// Widening operations.
    pub widens: u64,
    /// Combined-quantification operations.
    pub exists_ops: u64,
    /// Joins/quantifications that fell back to the syntactic
    /// approximation on budget exhaustion.
    pub fallbacks: u64,
}

impl JoinStatsSnapshot {
    /// Cache hits as a fraction of all lookups (0 when there were none).
    /// Partial hits count as lookups but not as full hits.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_partial_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Partial hits as a fraction of all lookups that were not full hits
    /// (how often a miss was rescued by the sub-structural memo).
    pub fn cache_partial_hit_rate(&self) -> f64 {
        let total = self.cache_partial_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_partial_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for JoinStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "joins={} widens={} exists={} fallbacks={} | cache hits={} partial={} misses={} \
             skips={} evictions={} hit-rate={:.1}% | pairs considered={} generated={} \
             pruned={} | saturation rounds={} qsat rounds={} defs found={} rejected={}",
            self.joins,
            self.widens,
            self.exists_ops,
            self.fallbacks,
            self.cache_hits,
            self.cache_partial_hits,
            self.cache_misses,
            self.cache_skips,
            self.cache_evictions,
            100.0 * self.cache_hit_rate(),
            self.pairs_considered,
            self.pairs_generated,
            self.pairs_pruned,
            self.saturation_rounds,
            self.qsat_rounds,
            self.defs_found,
            self.defs_rejected,
        )
    }
}

/// Default capacity of a [`SplitCache`] (entries, not bytes).
pub const DEFAULT_SPLIT_CACHE_CAPACITY: usize = 1024;

/// A memoized split: the purified conjunction and its saturated elements.
pub type Split<E1, E2> = (Purified, Saturated<E1, E2>);

struct SplitEntry<E1, E2> {
    /// The exact conjunction this entry was computed from — compared on
    /// every hit, so a fingerprint collision degrades to a miss instead of
    /// returning a wrong split.
    key: Conj,
    purified: Purified,
    saturated: Saturated<E1, E2>,
}

struct CacheShard<E1, E2> {
    map: HashMap<u64, SplitEntry<E1, E2>>,
    /// Sub-structural index: fingerprint of an entry's *sorted atom set*
    /// → the entry's whole-conjunction fingerprint. Lets a miss probe for
    /// a cached conjunction whose atoms are a subset of the query's (the
    /// query minus one atom, or a permutation of the query). Mappings can
    /// go stale when entries are overwritten; every candidate is verified
    /// by an actual set-inclusion check before use.
    by_atoms: HashMap<u64, u64>,
    capacity: usize,
    /// Fingerprint of the [`CacheConfig`] this cache was built with —
    /// [`SplitCache::reconfigure`] invalidates everything when it changes.
    config_fp: u64,
}

/// The result of probing the cache for a conjunction.
enum SplitLookup<E1, E2> {
    /// The exact conjunction was cached.
    Hit(Split<E1, E2>),
    /// A conjunction whose atom set is a subset of the probe's was cached;
    /// saturation can resume from it on the delta atoms.
    Partial(Split<E1, E2>),
    /// Nothing usable was cached.
    Miss,
}

/// Fingerprint of a conjunction's atoms *as a sorted set* — invariant
/// under atom order and duplicates, unlike [`Conj::fingerprint`].
fn atom_set_fp(atoms: &BTreeSet<&Atom>) -> u64 {
    fingerprint(atoms)
}

/// Memo cache for the purify + NOSaturation front end of the logical
/// product, keyed by [`Conj::fingerprint`], with a sub-structural
/// (per-alien-term) layer beneath it (see [`TermMemo`]).
///
/// # Sharing (the blessed way)
///
/// **`Clone` shares; it never snapshots.** A `SplitCache` is a handle to
/// `Arc`-shared tables: clones observe each other's inserts, and handing
/// clones of one cache to several products (or to every worker thread of a
/// driver run) is *the* supported way to share memoized splits across
/// rounds and threads. To start over, build a new cache (or call
/// [`clear`](SplitCache::clear)); there is deliberately no deep-copy —
/// a snapshot would silently stop receiving the other handles' work.
///
/// Entries produced under a degraded budget are never stored — see
/// [`LogicalProduct::with_split_cache`] for the invalidation rules.
///
/// Capacity 0 disables the cache. When a table reaches capacity it is
/// cleared wholesale ([`Eviction::ClearAll`](crate::cache::Eviction): the
/// working set of a fixpoint is small and cyclic, so LRU bookkeeping is
/// not worth its overhead).
pub struct SplitCache<E1, E2> {
    inner: Arc<Mutex<CacheShard<E1, E2>>>,
    /// The per-alien-term memo, sharing this cache's [`CacheStats`].
    term_memo: Arc<TermMemo>,
    stats: CacheStats,
}

impl<E1, E2> Clone for SplitCache<E1, E2> {
    /// Shares the underlying tables (see the type docs); cloning never
    /// copies entries.
    fn clone(&self) -> Self {
        SplitCache {
            inner: Arc::clone(&self.inner),
            term_memo: Arc::clone(&self.term_memo),
            stats: self.stats.clone(),
        }
    }
}

impl<E1, E2> fmt::Debug for SplitCache<E1, E2> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shard = self.lock();
        f.debug_struct("SplitCache")
            .field("len", &shard.map.len())
            .field("capacity", &shard.capacity)
            .field("term_memo", &self.term_memo)
            .finish()
    }
}

impl<E1, E2> Default for SplitCache<E1, E2> {
    fn default() -> Self {
        SplitCache::new()
    }
}

impl<E1, E2> SplitCache<E1, E2> {
    /// A cache with the default [`CacheConfig`].
    pub fn new() -> SplitCache<E1, E2> {
        SplitCache::with_config(&CacheConfig::default())
    }

    /// A cache holding at most `capacity` whole-conjunction splits
    /// (0 disables caching); the sub-structural layer keeps its default
    /// capacity. Kept as a thin wrapper over [`SplitCache::with_config`].
    pub fn with_capacity(capacity: usize) -> SplitCache<E1, E2> {
        SplitCache::with_config(&CacheConfig {
            split_capacity: capacity,
            ..CacheConfig::default()
        })
    }

    /// A cache configured by `cfg` — the one constructor the others wrap.
    pub fn with_config(cfg: &CacheConfig) -> SplitCache<E1, E2> {
        let stats = CacheStats::new();
        SplitCache {
            inner: Arc::new(Mutex::new(CacheShard {
                map: HashMap::new(),
                by_atoms: HashMap::new(),
                capacity: cfg.split_capacity,
                config_fp: cfg.fingerprint(),
            })),
            term_memo: Arc::new(TermMemo::with_capacity_and_stats(
                cfg.term_capacity,
                stats.clone(),
            )),
            stats,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheShard<E1, E2>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The number of cached whole-conjunction splits.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().map.is_empty()
    }

    /// The whole-conjunction capacity (0 means caching is disabled).
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// The sub-structural payload capacity (0 means the per-term layer is
    /// disabled and no partial hits are attempted).
    pub fn term_capacity(&self) -> usize {
        Cache::capacity(&*self.term_memo)
    }

    /// The per-alien-term memo beneath this cache.
    pub fn term_memo(&self) -> &TermMemo {
        &self.term_memo
    }

    /// This cache's shared counters (whole-conjunction *and* per-term —
    /// the two layers deliberately share one [`CacheStats`]).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Fingerprint of the [`CacheConfig`] this cache was built with.
    pub fn config_fingerprint(&self) -> u64 {
        self.lock().config_fp
    }

    /// Adopts `cfg`, invalidating every derived entry (whole-conjunction
    /// splits, the subset index, and per-term payloads — the name map
    /// persists, as names must) if and only if `cfg`'s fingerprint differs
    /// from the one the cache was built with. The split-cache counterpart
    /// of the driver's `config_fingerprint` invalidation.
    pub fn reconfigure(&self, cfg: &CacheConfig) {
        let mut shard = self.lock();
        if shard.config_fp == cfg.fingerprint() {
            return;
        }
        shard.map.clear();
        shard.by_atoms.clear();
        shard.capacity = cfg.split_capacity;
        shard.config_fp = cfg.fingerprint();
        drop(shard);
        self.term_memo.set_capacity(cfg.term_capacity);
        self.stats.bump(cs::INVALIDATIONS);
    }

    /// Drops every cached split and per-term payload (the per-term name
    /// map persists — names are stable for the life of the cache).
    pub fn clear(&self) {
        let mut shard = self.lock();
        shard.map.clear();
        shard.by_atoms.clear();
        drop(shard);
        self.term_memo.clear_payloads();
    }

    /// The term memo as the trait object the purifier consumes.
    fn memo_dyn(&self) -> Arc<dyn PurifyMemo> {
        Arc::clone(&self.term_memo) as Arc<dyn PurifyMemo>
    }
}

impl<E1: Clone, E2: Clone> SplitCache<E1, E2> {
    /// Looks up `key`, optionally probing the sub-structural index for a
    /// subset base on a whole-conjunction miss. Counts hits, partial hits
    /// and misses on [`SplitCache::stats`].
    fn probe(&self, fp: u64, key: &Conj, allow_partial: bool) -> SplitLookup<E1, E2> {
        let shard = self.lock();
        if let Some(entry) = shard.map.get(&fp) {
            if entry.key == *key {
                let out = (entry.purified.clone(), entry.saturated.clone());
                drop(shard);
                self.stats.bump(cs::HITS);
                return SplitLookup::Hit(out);
            }
        }
        if allow_partial {
            let atoms: BTreeSet<&Atom> = key.iter().collect();
            // Deterministic probe order: the full atom set first (catches
            // permutations and duplicate atoms), then each single-atom
            // deletion in sorted-atom order. Any verified subset works —
            // resumed saturation converges to the same canonical fixpoint
            // from any of them.
            let deletions = atoms.iter().map(|skip| {
                let rest: BTreeSet<&Atom> = atoms.iter().filter(|a| *a != skip).copied().collect();
                atom_set_fp(&rest)
            });
            let candidates: Vec<u64> = std::iter::once(atom_set_fp(&atoms))
                .chain(deletions)
                .collect();
            for set_fp in candidates {
                let Some(entry) = shard.by_atoms.get(&set_fp).and_then(|w| shard.map.get(w)) else {
                    continue;
                };
                // Verify real set inclusion — the index is only a hint.
                if entry.key.iter().all(|a| atoms.contains(a)) {
                    let out = (entry.purified.clone(), entry.saturated.clone());
                    drop(shard);
                    self.stats.bump(cs::PARTIAL_HITS);
                    return SplitLookup::Partial(out);
                }
            }
        }
        drop(shard);
        self.stats.bump(cs::MISSES);
        SplitLookup::Miss
    }

    /// Stores a split computed for `key` unless it was `degraded`
    /// (degradation-aware invalidation), maintaining the subset index.
    /// Counts skips and evictions on [`SplitCache::stats`].
    fn store_split(
        &self,
        fp: u64,
        key: &Conj,
        split: &Split<E1, E2>,
        degraded: bool,
    ) -> StoreOutcome {
        if degraded {
            self.stats.bump(cs::SKIPS);
            // Later rounds must re-purify and re-saturate from scratch —
            // the skipped store is where that recomputation was lost.
            provenance::record_at_current_round(
                provenance::LossKind::CacheSkippedDegraded,
                "logical-product/split-cache",
                "logical",
                0,
            );
            return StoreOutcome::SkippedDegraded;
        }
        let mut shard = self.lock();
        if shard.capacity == 0 {
            return StoreOutcome::Disabled;
        }
        let mut evicted = false;
        if shard.map.len() >= shard.capacity && !shard.map.contains_key(&fp) {
            shard.map.clear();
            shard.by_atoms.clear();
            evicted = true;
        }
        let set_fp = atom_set_fp(&key.iter().collect());
        shard.by_atoms.entry(set_fp).or_insert(fp);
        shard.map.insert(
            fp,
            SplitEntry {
                key: key.clone(),
                purified: split.0.clone(),
                saturated: split.1.clone(),
            },
        );
        drop(shard);
        if evicted {
            self.stats.bump(cs::EVICTIONS);
            StoreOutcome::StoredEvicting
        } else {
            StoreOutcome::Stored
        }
    }
}

impl<E1: Clone, E2: Clone> Cache for SplitCache<E1, E2> {
    type Key = Conj;
    type Value = Split<E1, E2>;

    fn lookup(&self, key: &Conj) -> Option<Split<E1, E2>> {
        match self.probe(key.fingerprint(), key, false) {
            SplitLookup::Hit(out) => Some(out),
            _ => None,
        }
    }

    fn store(&mut self, key: Conj, value: Split<E1, E2>, degraded: bool) -> StoreOutcome {
        self.store_split(key.fingerprint(), &key, &value, degraded)
    }

    fn invalidate(&mut self, key: &Conj) -> bool {
        let mut shard = self.lock();
        let fp = key.fingerprint();
        match shard.map.get(&fp) {
            Some(entry) if entry.key == *key => {
                let set_fp = atom_set_fp(&entry.key.iter().collect());
                shard.by_atoms.remove(&set_fp);
                shard.map.remove(&fp);
                true
            }
            _ => false,
        }
    }

    fn clear(&mut self) {
        SplitCache::clear(self);
    }

    fn len(&self) -> usize {
        SplitCache::len(self)
    }

    fn capacity(&self) -> usize {
        SplitCache::capacity(self)
    }

    fn stats(&self) -> &CacheStats {
        SplitCache::stats(self)
    }

    fn checksum(&self) -> u64 {
        crate::cache::fold_checksum(self.lock().map.values().map(|e| e.key.fingerprint()))
    }
}

/// One representative — the minimum member — per equivalence class of
/// `vars` under `classes`. Sorted-set iteration makes the first member of
/// each class its minimum, so the result is deterministic and matches the
/// first-occurrence dedup it replaces.
fn class_reps(vars: &VarSet, classes: &Partition) -> Vec<Var> {
    let mut seen: BTreeSet<Var> = BTreeSet::new();
    let mut reps = Vec::new();
    for &x in vars {
        if seen.insert(classes.find(x)) {
            reps.push(x);
        }
    }
    reps
}

/// The logical product of two abstract domains.
///
/// ```
/// # fn main() {}
/// // let product = LogicalProduct::new(AffineEq::new(), UfDomain::new());
/// // Elements are `Conj` — conjunctions of mixed atomic facts.
/// ```
#[derive(Clone, Debug)]
pub struct LogicalProduct<D1: AbstractDomain, D2: AbstractDomain> {
    d1: D1,
    d2: D2,
    budget: Budget,
    cache: SplitCache<D1::Elem, D2::Elem>,
    stats: JoinStats,
}

impl<D1: AbstractDomain, D2: AbstractDomain> LogicalProduct<D1, D2> {
    /// Combines two domains into their logical product (with an unlimited
    /// [`Budget`], a default-capacity [`SplitCache`], and fresh
    /// [`JoinStats`]).
    pub fn new(d1: D1, d2: D2) -> LogicalProduct<D1, D2> {
        LogicalProduct {
            d1,
            d2,
            budget: Budget::unlimited(),
            cache: SplitCache::new(),
            stats: JoinStats::new(),
        }
    }

    /// Governs this product's join, quantification, and saturation loops
    /// by `budget`. Clone one budget into the component domains and the
    /// analyzer as well to bound a whole analysis end to end.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The budget governing this product's operators.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Shares `cache` as this product's purification/saturation memo —
    /// e.g. one cache across the products of successive fixpoint rounds,
    /// or across re-analyses of the same procedure. Cloning a
    /// [`SplitCache`] shares its tables, so handing clones of one cache to
    /// many products is the blessed sharing idiom.
    ///
    /// Invalidation rules: a split computed while the budget degraded
    /// (its saturation stopped early, the budget exhausted, or *any*
    /// governed operation recorded a degradation during the computation)
    /// is returned but **not** stored, so a starved round never poisons a
    /// later, better-funded one. Hits are verified against the stored
    /// conjunction, so fingerprint collisions cost a recomputation rather
    /// than correctness.
    pub fn with_split_cache(mut self, cache: SplitCache<D1::Elem, D2::Elem>) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the split cache with one built from `cfg` — the unified
    /// configuration surface ([`CacheConfig`] rides through
    /// `AnalysisConfig`). The legacy builders
    /// ([`with_split_cache_capacity`](Self::with_split_cache_capacity))
    /// are thin wrappers over this.
    pub fn with_cache_config(self, cfg: &CacheConfig) -> Self {
        self.with_split_cache(SplitCache::with_config(cfg))
    }

    /// Replaces the split cache with one of the given whole-conjunction
    /// capacity (0 disables caching — used by A/B measurements). A thin
    /// wrapper over [`with_cache_config`](Self::with_cache_config), kept
    /// for source compatibility; results are identical either way.
    pub fn with_split_cache_capacity(self, capacity: usize) -> Self {
        self.with_cache_config(&CacheConfig {
            split_capacity: capacity,
            ..CacheConfig::default()
        })
    }

    /// The purification/saturation memo cache.
    pub fn split_cache(&self) -> &SplitCache<D1::Elem, D2::Elem> {
        &self.cache
    }

    /// Shares `stats` as this product's counter sink (e.g. one `JoinStats`
    /// aggregated across every worker of a parallel analysis).
    pub fn with_stats(mut self, stats: JoinStats) -> Self {
        self.stats = stats;
        self
    }

    /// This product's observability counters.
    pub fn stats(&self) -> &JoinStats {
        &self.stats
    }

    /// The first component domain.
    pub fn first(&self) -> &D1 {
        &self.d1
    }

    /// The second component domain.
    pub fn second(&self) -> &D2 {
        &self.d2
    }

    /// The precision guarantee for this combination (Theorems 3 and 5
    /// versus the Figure 8 caveat).
    pub fn precision(&self) -> Precision {
        combination_precision(&self.d1, &self.d2)
    }

    /// Membership in `Terms_{T1,T2}(E)` (Definition 2): `t` occurs
    /// *semantically* in `E`, i.e. `E ⇒ t = t'` for some variable or alien
    /// term `t'` of `E`.
    pub fn in_terms(&self, e: &Conj, t: &Term) -> bool {
        let candidates: Vec<Term> = e
            .vars()
            .into_iter()
            .map(Term::var)
            .chain(cai_term::alien_terms(e, &self.d1.sig(), &self.d2.sig()))
            .collect();
        candidates
            .iter()
            .any(|c| self.implies_atom(e, &Atom::eq(t.clone(), c.clone())))
    }

    /// The partial order of Definition 2: implication *plus* the side
    /// condition `AlienTerms(b) ⊆ Terms(a)`, which is what turns the
    /// implication semi-lattice into a lattice (Theorem 1).
    ///
    /// [`AbstractDomain::le`] checks only implication; elements produced
    /// by this product's own operators satisfy the side condition by
    /// construction, but externally constructed pairs may not — use this
    /// method when Definition 2 is meant literally.
    pub fn le_defn2(&self, a: &Conj, b: &Conj) -> bool {
        if !self.le(a, b) {
            return false;
        }
        cai_term::alien_terms(b, &self.d1.sig(), &self.d2.sig())
            .iter()
            .all(|t| self.in_terms(a, t))
    }

    /// Lines 1–2 / 3–4 of Figure 6: purify a mixed conjunction into the
    /// component domains and NO-saturate — memoized in the [`SplitCache`].
    ///
    /// Three outcomes, from cheapest to dearest: a *hit* replays the
    /// stored split verbatim; a *partial hit* finds a cached conjunction
    /// whose atoms are a subset of this one's, meets the delta atoms into
    /// its saturated elements, and resumes the (monotone) saturation from
    /// there — with ample budget this converges to the same canonical
    /// fixpoint a from-scratch split reaches, in fewer rounds; a *miss*
    /// computes from scratch. All three purify through the shared
    /// [`TermMemo`] (when enabled), so alien-term names are stable across
    /// entries — which is exactly what makes the delta well-defined.
    fn split(&self, e: &Conj) -> Split<D1::Elem, D2::Elem> {
        if self.cache.capacity() == 0 {
            return self.split_uncached(e);
        }
        let sub_structural = self.cache.term_capacity() > 0;
        let fp = e.fingerprint();
        let degrades_before = self.budget.degrade_count();
        let out = match self.cache.probe(fp, e, sub_structural) {
            SplitLookup::Hit(hit) => {
                self.stats.add(jc::CACHE_HITS, 1);
                return hit;
            }
            SplitLookup::Partial(base) => {
                self.stats.add(jc::CACHE_PARTIAL_HITS, 1);
                cai_obs::spanned!("split/resume", self.split_resumed(e, base))
            }
            SplitLookup::Miss => {
                self.stats.add(jc::CACHE_MISSES, 1);
                self.split_fresh(e, sub_structural.then(|| self.cache.memo_dyn()))
            }
        };
        // Never cache a split computed under duress: an under-saturated or
        // otherwise degraded result must not outlive its starved round.
        let degraded = out.1.degraded
            || self.budget.is_exhausted()
            || self.budget.degrade_count() != degrades_before;
        match self.cache.store_split(fp, e, &out, degraded) {
            StoreOutcome::SkippedDegraded => self.stats.add(jc::CACHE_SKIPS, 1),
            StoreOutcome::StoredEvicting => self.stats.add(jc::CACHE_EVICTIONS, 1),
            StoreOutcome::Stored | StoreOutcome::Disabled => {}
        }
        out
    }

    fn split_uncached(&self, e: &Conj) -> Split<D1::Elem, D2::Elem> {
        self.split_fresh(e, None)
    }

    fn split_fresh(
        &self,
        e: &Conj,
        memo: Option<Arc<dyn PurifyMemo>>,
    ) -> Split<D1::Elem, D2::Elem> {
        let p = match memo {
            Some(m) => purify_memoized(e, &self.d1.sig(), &self.d2.sig(), m),
            None => purify(e, &self.d1.sig(), &self.d2.sig()),
        };
        let e1 = self.d1.from_conj(&p.left);
        let e2 = self.d2.from_conj(&p.right);
        let s = no_saturate_budgeted(&self.d1, e1, &self.d2, e2, &self.budget);
        self.stats.add(jc::SATURATION_ROUNDS, s.rounds as u64);
        (p, s)
    }

    /// Resumes a cached split on a superset conjunction: re-purifies `e`
    /// through the shared term memo (names are stable, so the base's
    /// purified atoms are a subset of `e`'s), meets only the *delta* atoms
    /// into the base's already-saturated elements, and re-runs the
    /// NOSaturation exchange to its fixpoint. Saturation is monotone and
    /// both component representations are canonical, so with ample budget
    /// the result is bit-identical to a from-scratch split — only cheaper,
    /// because the base's equalities need no re-derivation. (Under
    /// starvation results may differ from scratch, exactly as whole-cache
    /// hits may; degraded results are never stored.)
    fn split_resumed(
        &self,
        e: &Conj,
        base: Split<D1::Elem, D2::Elem>,
    ) -> Split<D1::Elem, D2::Elem> {
        let (base_p, base_s) = base;
        let mut p = purify_memoized(e, &self.d1.sig(), &self.d2.sig(), self.cache.memo_dyn());
        let base_left: BTreeSet<&Atom> = base_p.left.iter().collect();
        let base_right: BTreeSet<&Atom> = base_p.right.iter().collect();
        let delta_l: Vec<Atom> = p
            .left
            .iter()
            .filter(|a| !base_left.contains(a))
            .cloned()
            .collect();
        let delta_r: Vec<Atom> = p
            .right
            .iter()
            .filter(|a| !base_right.contains(a))
            .cloned()
            .collect();
        let e1 = if delta_l.is_empty() {
            base_s.left
        } else {
            self.d1.meet_all(&base_s.left, &delta_l)
        };
        let e2 = if delta_r.is_empty() {
            base_s.right
        } else {
            self.d2.meet_all(&base_s.right, &delta_r)
        };
        let s = no_saturate_budgeted(&self.d1, e1, &self.d2, e2, &self.budget);
        self.stats.add(jc::SATURATION_ROUNDS, s.rounds as u64);
        // The resumed elements may mention the base's fresh names; make
        // sure every one of them is scheduled for elimination downstream.
        // (Shared atoms mean shared alien terms, so `p.fresh` already
        // covers `base_p.fresh` — this is a defensive union.)
        for v in &base_p.fresh {
            if !p.fresh.contains(v) {
                p.fresh.push(*v);
            }
        }
        (p, s)
    }

    /// Budget-exhaustion fallback for the join: the syntactic intersection
    /// of the two conjunctions. Sound — an atom present in both inputs is
    /// implied by each, hence by their join — but far less precise than
    /// Figure 6 (it discovers no new facts).
    fn fallback_join(&self, el: &Conj, er: &Conj) -> Conj {
        el.iter()
            .filter(|a| er.iter().any(|b| b == *a))
            .cloned()
            .collect()
    }

    /// Budget-exhaustion fallback for quantification: drop every atom
    /// mentioning a variable to eliminate. Sound (each kept atom is a
    /// conjunct of `e`) and `vars`-free by construction, but performs no
    /// definition recovery.
    fn fallback_exists(e: &Conj, vars: &VarSet) -> Conj {
        e.iter()
            .filter(|a| !a.mentions_any(vars))
            .cloned()
            .collect()
    }

    /// `QSaturation` (Figure 7, lines 1–10 of the right-hand algorithm):
    /// repeatedly finds definitions `y = t` for variables awaiting
    /// elimination, via either component's `Alternate` operator, over the
    /// whole pending set at once.
    ///
    /// Returns the still-undefined variables and the definitions in
    /// discovery order. That order is topological: each term avoids every
    /// variable still pending at its discovery, so it can only mention
    /// variables defined strictly earlier (or never) — which is what lets
    /// [`subst_defs`](Self::subst_defs) substitute in a single pass.
    ///
    /// The `Alternate` contract (`Vars(t) ∩ V2 = ∅`, `t ≠ y`) is enforced
    /// at *runtime*: a defective definition — a faulty domain, or
    /// fault-injection via `ChaosDomain` — is skipped with a degradation
    /// note instead of being trusted, since a cyclic definition would
    /// defeat the substitution pass. Skipping is sound: the variable is
    /// simply quantified component-wise like any other undefined one.
    fn q_saturation(
        &self,
        e1: &D1::Elem,
        e2: &D2::Elem,
        v1: &VarSet,
    ) -> (VarSet, Vec<(Var, Term)>) {
        let mut v2 = v1.clone();
        let mut defs: Vec<(Var, Term)> = Vec::new();
        loop {
            cai_obs::counter!("fuel/core.qsat").add(1 + v2.len() as u64);
            if !self.budget.tick(1 + v2.len() as u64) {
                // Sound early exit: the variables still in V2 are simply
                // quantified component-wise instead of being substituted.
                self.budget.degrade("logical-product/q-saturation", {
                    format!("stopped with {} definitions pending", v2.len())
                });
                return (v2, defs);
            }
            self.stats.add(jc::QSAT_ROUNDS, 1);
            let mut changed = false;
            // One batched Alternate pass per component per round; as
            // variables leave V2, later rounds may find more definitions.
            for round in [
                self.d1.alternates(e1, &v2, &v2),
                self.d2.alternates(e2, &v2, &v2),
            ] {
                for (y, t) in round {
                    if !v2.contains(&y) {
                        continue;
                    }
                    if t.as_var() == Some(y) || t.mentions_any(&v2) {
                        self.stats.add(jc::DEFS_REJECTED, 1);
                        self.budget.degrade("logical-product/q-saturation", {
                            format!("skipped defective Alternate definition {y} = {t}")
                        });
                        // The definition the Alternate would have
                        // transferred across the product is dropped.
                        provenance::record_at_current_round(
                            provenance::LossKind::AlternateSkipped,
                            "logical-product/q-saturation",
                            "logical.alt",
                            self.budget.spent(),
                        );
                        continue;
                    }
                    self.stats.add(jc::DEFS_FOUND, 1);
                    defs.push((y, t));
                    v2.remove(&y);
                    changed = true;
                }
            }
            if !changed {
                return (v2, defs);
            }
        }
    }

    /// Substitutes the definitions discovered by `QSaturation` into `c` in
    /// one topologically-ordered pass: resolving each definition against
    /// its predecessors (valid because `defs` is in discovery order and
    /// the runtime contract check guarantees acyclicity) yields a map
    /// whose right-hand sides mention no defined variable, so a single
    /// substitution replaces the old quadratic resubstitute-to-fixpoint
    /// loop.
    fn subst_defs(&self, c: Conj, defs: &[(Var, Term)]) -> Conj {
        if defs.is_empty() {
            return c;
        }
        cai_obs::counter!("fuel/core.subst").add(1 + c.len() as u64 + defs.len() as u64);
        if !self.budget.tick(1 + c.len() as u64 + defs.len() as u64) {
            self.budget.degrade(
                "logical-product/subst-defs",
                "dropped atoms still mentioning defined variables",
            );
            let defined: VarSet = defs.iter().map(|(y, _)| *y).collect();
            return Self::fallback_exists(&c, &defined);
        }
        let mut resolved: BTreeMap<Var, Term> = BTreeMap::new();
        for (y, t) in defs {
            let rt = t.subst(&resolved);
            resolved.insert(*y, rt);
        }
        c.subst(&resolved)
    }

    /// Lines 4–8 of Figure 7 on an already-saturated split: run
    /// `QSaturation` for the variables in `v1`, quantify the remainder
    /// component-wise, and substitute the recovered definitions back into
    /// the mixed result.
    fn eliminate(
        &self,
        s: &Saturated<D1::Elem, D2::Elem>,
        v1: &VarSet,
        label: &'static str,
    ) -> Conj {
        let (v2, defs) = cai_obs::spanned!(
            format!("{label}/qsat"),
            self.q_saturation(&s.left, &s.right, v1)
        );
        let e12 = cai_obs::spanned!(format!("{label}/q1"), self.d1.exists(&s.left, &v2));
        let e22 = cai_obs::spanned!(format!("{label}/q2"), self.d2.exists(&s.right, &v2));
        let mixed = self.d1.to_conj(&e12).and(&self.d2.to_conj(&e22));
        cai_obs::spanned!(format!("{label}/subst-defs"), self.subst_defs(mixed, &defs))
    }

    /// The shared implementation of join and widening (the paper constructs
    /// the widening operator "in exactly the same way" as the join).
    fn join_impl(&self, el: &Conj, er: &Conj, widen: bool) -> Conj {
        self.stats
            .add(if widen { jc::WIDENS } else { jc::JOINS }, 1);
        if self.budget.is_exhausted() {
            self.stats.add(jc::FALLBACKS, 1);
            self.budget.degrade(
                "logical-product/join",
                "fell back to syntactic intersection",
            );
            return self.fallback_join(el, er);
        }
        // Figure 6, lines 1–4.
        let (pl, sl) = cai_obs::spanned!("join/split-left", self.split(el));
        if sl.bottom {
            return er.clone();
        }
        let (pr, sr) = cai_obs::spanned!("join/split-right", self.split(er));
        if sr.bottom {
            return el.clone();
        }
        // Line 5: V := {⟨x, y⟩ | x ∈ Vℓ ∪ Vars(Eℓ), y ∈ Vr ∪ Vars(Er)}.
        // Two pair variables whose components are provably equal on their
        // respective sides are interchangeable, so one pair per
        // (left-class, right-class) suffices — an exactness-preserving
        // reduction of the quadratic set.
        let mut lvars: VarSet = el.vars();
        lvars.extend(pl.fresh.iter().copied());
        let mut rvars: VarSet = er.vars();
        rvars.extend(pr.fresh.iter().copied());
        self.stats
            .add(jc::PAIRS_CONSIDERED, (lvars.len() * rvars.len()) as u64);
        let lreps = class_reps(&lvars, &sl.equalities);
        let rreps = class_reps(&rvars, &sr.equalities);
        // The pair-variable set is the quadratic heart of Figure 6 —
        // charge for what is actually generated (the deduplicated
        // class-pair set, not the raw |Vℓ|·|Vr| square), and degrade to
        // the syntactic join if the budget cannot afford it.
        let npairs = (lreps.len() * rreps.len()) as u64;
        cai_obs::counter!("fuel/core.join-pairs").add(npairs);
        if !self.budget.tick(npairs) {
            self.stats.add(jc::FALLBACKS, 1);
            self.budget.degrade("logical-product/join", {
                format!(
                    "pair-variable set of {}x{} classes exceeded the budget",
                    lreps.len(),
                    rreps.len()
                )
            });
            return self.fallback_join(el, er);
        }
        self.stats.add(jc::PAIRS_GENERATED, npairs);
        let mut pair_vars = VarSet::new();
        let mut atoms_l: Vec<Atom> = Vec::new();
        let mut atoms_r: Vec<Atom> = Vec::new();
        for &x in &lreps {
            for &y in &rreps {
                let v = Var::fresh(&format!("<{},{}>", x.name(), y.name()));
                pair_vars.insert(v);
                // Lines 6–7: Eℓ2 := ⋀ x = ⟨x,y⟩ and Er2 := ⋀ y = ⟨x,y⟩,
                // met into both components of the respective side.
                atoms_l.push(Atom::var_eq(x, v));
                atoms_r.push(Atom::var_eq(y, v));
            }
        }
        let e1l = cai_obs::spanned!("join/meet-pairs-1l", self.d1.meet_all(&sl.left, &atoms_l));
        let e2l = cai_obs::spanned!("join/meet-pairs-2l", self.d2.meet_all(&sl.right, &atoms_l));
        let e1r = cai_obs::spanned!("join/meet-pairs-1r", self.d1.meet_all(&sr.left, &atoms_r));
        let e2r = cai_obs::spanned!("join/meet-pairs-2r", self.d2.meet_all(&sr.right, &atoms_r));
        // Lines 8–9: component joins (or widenings).
        let (j1, j2) = if widen {
            (
                cai_obs::spanned!("join/widen-1", self.d1.widen(&e1l, &e1r)),
                cai_obs::spanned!("join/widen-2", self.d2.widen(&e2l, &e2r)),
            )
        } else {
            (
                cai_obs::spanned!("join/join-1", self.d1.join(&e1l, &e1r)),
                cai_obs::spanned!("join/join-2", self.d2.join(&e2l, &e2r)),
            )
        };
        // Line 10: E := Q_{L1⋈L2}(E1 ∧ E2, V) — performed directly on the
        // joined component elements instead of re-purifying their mixed
        // presentation, skipping a purify + from_conj round-trip per join.
        let c1 = self.d1.to_conj(&j1);
        let c2 = self.d2.to_conj(&j2);
        // For overlapping signatures the old round-trip routed shared
        // atoms to both sides; re-absorb each presentation's atoms that
        // the *other* signature owns to keep that precision.
        let sig1 = self.d1.sig();
        let sig2 = self.d2.sig();
        let cross1: Vec<Atom> = c2.iter().filter(|a| sig1.owns_atom(a)).cloned().collect();
        let cross2: Vec<Atom> = c1.iter().filter(|a| sig2.owns_atom(a)).cloned().collect();
        let j1 = if cross1.is_empty() {
            j1
        } else {
            self.d1.meet_all(&j1, &cross1)
        };
        let j2 = if cross2.is_empty() {
            j2
        } else {
            self.d2.meet_all(&j2, &cross2)
        };
        let s = cai_obs::spanned!(
            "join/saturate",
            no_saturate_budgeted(&self.d1, j1, &self.d2, j2, &self.budget)
        );
        self.stats.add(jc::SATURATION_ROUNDS, s.rounds as u64);
        if s.bottom {
            return self.bottom();
        }
        // The inputs' purification names must be eliminated along with the
        // pair variables: when the split cache hands both sides the same
        // name for a shared alien term, facts about it become two-sided
        // and would otherwise survive the join (uncached splits mint
        // distinct names, making such facts one-sided and join-dropped).
        pair_vars.extend(pl.fresh.iter().copied());
        pair_vars.extend(pr.fresh.iter().copied());
        // Prune eliminable variables occurring in neither presentation:
        // `Alternate` derives definitions from the element's facts, so an
        // unmentioned variable can appear in no definition, and its
        // component-wise quantification is the identity — dropping it up
        // front is exact.
        let mut occurring: VarSet = c1.vars();
        occurring.extend(c2.vars());
        let all_pairs = pair_vars.len();
        pair_vars.retain(|v| occurring.contains(v));
        self.stats
            .add(jc::PAIRS_PRUNED, (all_pairs - pair_vars.len()) as u64);
        cai_obs::instant!(
            "join/sizes pairs={} pruned={} mixed_atoms={}",
            all_pairs,
            all_pairs - pair_vars.len(),
            c1.len() + c2.len()
        );
        if pair_vars.is_empty() {
            return c1.and(&c2);
        }
        let out = cai_obs::spanned!("join/eliminate", self.eliminate(&s, &pair_vars, "join"));
        // Safety net: the output may only mention the inputs' variables —
        // every pair variable and purification name must be gone. If a
        // component element carried a pruned variable that its
        // presentation omitted (a lossy `to_conj`), drop any atom still
        // mentioning one; for faithful presentations this never matches.
        let mut allowed: VarSet = el.vars();
        allowed.extend(er.vars());
        if out
            .iter()
            .all(|a| a.vars().iter().all(|v| allowed.contains(v)))
        {
            out
        } else {
            out.iter()
                .filter(|a| a.vars().iter().all(|v| allowed.contains(v)))
                .cloned()
                .collect()
        }
    }
}

impl<D1: AbstractDomain, D2: AbstractDomain> AbstractDomain for LogicalProduct<D1, D2> {
    /// Elements are conjunctions of mixed atomic facts, exactly as in
    /// Definition 2. Unsatisfiability is represented by any conjunction the
    /// saturation refutes (the canonical bottom is `0 = 1`).
    type Elem = Conj;

    fn sig(&self) -> Sig {
        self.d1.sig().union(&self.d2.sig())
    }

    fn props(&self) -> TheoryProps {
        let (p1, p2) = (self.d1.props(), self.d2.props());
        TheoryProps {
            convex: p1.convex && p2.convex,
            stably_infinite: p1.stably_infinite && p2.stably_infinite,
        }
    }

    fn top(&self) -> Conj {
        Conj::new()
    }

    fn bottom(&self) -> Conj {
        Conj::of(Atom::eq(Term::int(0), Term::int(1)))
    }

    fn is_bottom(&self, e: &Conj) -> bool {
        self.split(e).1.bottom
    }

    fn meet_atom(&self, e: &Conj, atom: &Atom) -> Conj {
        // The meet operator for L1 ⋈ L2 is simply conjunction (§4).
        self.budget.tick(1);
        let mut out = e.clone();
        out.push(atom.clone());
        out
    }

    fn implies_atom(&self, e: &Conj, atom: &Atom) -> bool {
        // Purify the element and the query with a shared purifier so that
        // common alien terms receive common names, NO-saturate, then decide
        // on the hosting component (Property 1).
        let mut purifier = Purifier::new(&self.d1.sig(), &self.d2.sig());
        purifier.add_conj(e);
        let (side, pure) = purifier.purify_atom(atom);
        let p = purifier.finish();
        let e1 = self.d1.from_conj(&p.left);
        let e2 = self.d2.from_conj(&p.right);
        let s = no_saturate_budgeted(&self.d1, e1, &self.d2, e2, &self.budget);
        if s.bottom {
            return true;
        }
        match side {
            AtomSide::Left => self.d1.implies_atom(&s.left, &pure),
            AtomSide::Right => self.d2.implies_atom(&s.right, &pure),
            AtomSide::Both => {
                self.d1.implies_atom(&s.left, &pure) || self.d2.implies_atom(&s.right, &pure)
            }
        }
    }

    fn join(&self, a: &Conj, b: &Conj) -> Conj {
        self.join_impl(a, b, false)
    }

    fn exists(&self, e: &Conj, vars: &VarSet) -> Conj {
        self.stats.add(jc::EXISTS_OPS, 1);
        if self.budget.is_exhausted() {
            self.stats.add(jc::FALLBACKS, 1);
            self.budget.degrade(
                "logical-product/exists",
                "fell back to syntactic projection",
            );
            return Self::fallback_exists(e, vars);
        }
        // Figure 7, left-hand algorithm.
        let (p, s) = cai_obs::spanned!("exists/split", self.split(e));
        if s.bottom {
            return self.bottom();
        }
        // Line 3: V1 := V0 ∪ V — restricted to the variables that occur in
        // `e`. A variable absent from the element can receive no
        // definition, and quantifying it component-wise is the identity,
        // so dropping it up front is exact.
        let evars = e.vars();
        let requested = vars.len();
        let mut v1: VarSet = vars.iter().copied().filter(|v| evars.contains(v)).collect();
        self.stats
            .add(jc::PAIRS_PRUNED, (requested - v1.len()) as u64);
        v1.extend(p.fresh.iter().copied());
        if v1.is_empty() {
            return e.clone();
        }
        self.eliminate(&s, &v1, "exists")
    }

    /// Batched implication: purify and saturate `a` once, then decide every
    /// atom of `b` against the shared saturated split.
    fn le(&self, a: &Conj, b: &Conj) -> bool {
        let mut purifier = Purifier::new(&self.d1.sig(), &self.d2.sig());
        purifier.add_conj(a);
        let queries: Vec<(AtomSide, Atom)> =
            b.iter().map(|atom| purifier.purify_atom(atom)).collect();
        let p = purifier.finish();
        let e1 = self.d1.from_conj(&p.left);
        let e2 = self.d2.from_conj(&p.right);
        let s = no_saturate_budgeted(&self.d1, e1, &self.d2, e2, &self.budget);
        if s.bottom {
            return true;
        }
        queries.into_iter().all(|(side, pure)| match side {
            AtomSide::Left => self.d1.implies_atom(&s.left, &pure),
            AtomSide::Right => self.d2.implies_atom(&s.right, &pure),
            AtomSide::Both => {
                self.d1.implies_atom(&s.left, &pure) || self.d2.implies_atom(&s.right, &pure)
            }
        })
    }

    fn var_equalities(&self, e: &Conj) -> Partition {
        let s = self.split(e).1;
        if s.bottom {
            return Partition::new();
        }
        s.equalities.restrict(&e.vars())
    }

    fn alternate(&self, e: &Conj, y: Var, avoid: &VarSet) -> Option<Term> {
        // Reduce to the combined quantification operator: name `y` with a
        // fresh variable `z`, eliminate `avoid ∪ {y}`, and look for a
        // definition of `z` in the result.
        let z = Var::fresh("alt");
        let mut ez = e.clone();
        ez.push(Atom::var_eq(z, y));
        let mut elim = avoid.clone();
        elim.insert(y);
        elim.remove(&z);
        let r = self.exists(&ez, &elim);
        let zt = Term::var(z);
        for atom in &r {
            if let Atom::Eq(s, t) = atom {
                if s == &zt && !t.vars().contains(&z) {
                    return Some(t.clone());
                }
                if t == &zt && !s.vars().contains(&z) {
                    return Some(s.clone());
                }
            }
        }
        None
    }

    fn widen(&self, a: &Conj, b: &Conj) -> Conj {
        self.join_impl(a, b, true)
    }

    fn narrow(&self, _a: &Conj, b: &Conj) -> Conj {
        // Descending-iteration narrowing: adopt the descended iterate.
        // The engine calls this with `b ⊑ a`, re-verifies the bracket and
        // inductiveness before adopting the result, and bounds the rounds
        // by its own fuel slice — so taking `b` recovers every fact the
        // widened join dropped without risking termination or soundness.
        b.clone()
    }

    fn to_conj(&self, e: &Conj) -> Conj {
        e.clone()
    }

    fn from_conj(&self, c: &Conj) -> Conj {
        c.clone()
    }
}
