//! Domain reductions (§5 of the paper): encoding commutative functions and
//! multi-arity uninterpreted functions into a *single unary* uninterpreted
//! function combined with linear arithmetic.
//!
//! Both encodings are injective and equivalence-preserving term mappings
//! (Claim 2), so an analysis for the logical product of the unary-UF
//! lattice and the linear-arithmetic lattice yields an analysis for the
//! source lattice.

use cai_term::{Atom, Conj, FnSym, Term, TermKind};
use std::collections::BTreeMap;

/// Which §5 encoding to apply.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeMode {
    /// §5.1: binary commutative functions `Gᵢ(t₁, t₂) ↦ F(i + M t₁ + M t₂)`.
    /// The symmetric sum bakes commutativity into the image.
    Commutative,
    /// §5.2: arbitrary-arity uninterpreted functions
    /// `Gᵢ(t₁, …, tₐ) ↦ F(i + 2¹·M t₁ + … + 2ᵃ·M tₐ)`.
    MultiArity,
}

/// The term transformer `M` of §5.
///
/// Function symbols are assigned distinct indices on first encounter; the
/// same encoder instance must be used for all terms of one analysis so that
/// indices are consistent.
///
/// ```
/// use cai_core::reduce::{EncodeMode, UnaryEncoder};
/// use cai_term::parse::Vocab;
///
/// let vocab = Vocab::standard();
/// let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
/// let ab = enc.encode_term(&vocab.parse_term("G(a, b)")?);
/// let ba = enc.encode_term(&vocab.parse_term("G(b, a)")?);
/// assert_eq!(ab, ba); // commutativity is free in the image
/// # Ok::<(), cai_term::parse::ParseError>(())
/// ```
#[derive(Debug)]
pub struct UnaryEncoder {
    mode: EncodeMode,
    f: FnSym,
    indices: BTreeMap<FnSym, i64>,
    next_index: i64,
}

impl UnaryEncoder {
    /// Creates an encoder targeting the canonical unary symbol `F#`.
    pub fn new(mode: EncodeMode) -> UnaryEncoder {
        UnaryEncoder::with_symbol(mode, FnSym::uf("F#", 1))
    }

    /// Creates an encoder targeting a caller-chosen unary symbol.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not unary.
    pub fn with_symbol(mode: EncodeMode, f: FnSym) -> UnaryEncoder {
        assert_eq!(f.arity(), 1, "the target symbol must be unary");
        UnaryEncoder {
            mode,
            f,
            indices: BTreeMap::new(),
            next_index: 1,
        }
    }

    /// The unary symbol all functions are encoded into.
    pub fn target(&self) -> FnSym {
        self.f
    }

    /// The index assigned to `g` (assigning a fresh one if unseen).
    pub fn index_of(&mut self, g: FnSym) -> i64 {
        if let Some(&i) = self.indices.get(&g) {
            return i;
        }
        let i = self.next_index;
        self.next_index += 1;
        self.indices.insert(g, i);
        i
    }

    /// Applies the mapping `M` to a term.
    ///
    /// # Panics
    ///
    /// In [`EncodeMode::Commutative`], panics if a function of arity other
    /// than 2 is encountered (the §5.1 language is binary).
    pub fn encode_term(&mut self, t: &Term) -> Term {
        match t.kind() {
            TermKind::Var(_) => t.clone(),
            TermKind::Lin(e) => {
                // Arithmetic structure is already in the target theory;
                // recurse into the atoms.
                let mut acc = cai_term::LinExpr::constant(e.constant_part().clone());
                for (atom, coeff) in e.iter() {
                    let m = self.encode_term(atom);
                    acc = acc.add(&m.to_lin().scale(coeff));
                }
                Term::lin(acc)
            }
            TermKind::App(g, args) => {
                if *g == self.f {
                    // Already in the image.
                    let inner = self.encode_term(&args[0]);
                    return Term::app(self.f, vec![inner]);
                }
                let i = self.index_of(*g);
                let mut sum = Term::int(i);
                match self.mode {
                    EncodeMode::Commutative => {
                        assert_eq!(
                            args.len(),
                            2,
                            "commutative encoding requires binary functions, got {:?}",
                            g
                        );
                        for a in args {
                            sum = Term::add(&sum, &self.encode_term(a));
                        }
                    }
                    EncodeMode::MultiArity => {
                        for (j, a) in args.iter().enumerate() {
                            let weight =
                                cai_num::Rat::from(cai_num::Int::from(2).pow(j as u32 + 1));
                            sum = Term::add(&sum, &Term::scale(&weight, &self.encode_term(a)));
                        }
                    }
                }
                Term::app(self.f, vec![sum])
            }
        }
    }

    /// Applies `M` to every term of an atom.
    pub fn encode_atom(&mut self, atom: &Atom) -> Atom {
        let args = atom.args().into_iter().cloned().collect::<Vec<_>>();
        atom.with_args(args.iter().map(|t| self.encode_term(t)).collect())
    }

    /// Applies `M` to every atom of a conjunction.
    pub fn encode_conj(&mut self, c: &Conj) -> Conj {
        c.iter().map(|a| self.encode_atom(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_term::parse::Vocab;

    #[test]
    fn commutative_images_coincide() {
        let vocab = Vocab::standard();
        let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
        let a = enc.encode_term(&vocab.parse_term("G(G(x, y), z)").unwrap());
        let b = enc.encode_term(&vocab.parse_term("G(z, G(y, x))").unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn commutative_distinct_functions_stay_distinct() {
        let vocab = Vocab::standard();
        let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
        let a = enc.encode_term(&vocab.parse_term("Ga(x, y)").unwrap());
        let b = enc.encode_term(&vocab.parse_term("Gb(x, y)").unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn multi_arity_argument_order_matters() {
        let vocab = Vocab::standard();
        let mut enc = UnaryEncoder::new(EncodeMode::MultiArity);
        let a = enc.encode_term(&vocab.parse_term("H(x, y)").unwrap());
        let b = enc.encode_term(&vocab.parse_term("H(y, x)").unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn multi_arity_shape() {
        let vocab = Vocab::standard();
        let mut enc = UnaryEncoder::new(EncodeMode::MultiArity);
        let t = enc.encode_term(&vocab.parse_term("K(x, y, z)").unwrap());
        assert_eq!(t.to_string(), "F#(2*x + 4*y + 8*z + 1)");
    }

    #[test]
    fn indices_are_stable_per_encoder() {
        let vocab = Vocab::standard();
        let mut enc = UnaryEncoder::new(EncodeMode::MultiArity);
        let a = enc.encode_term(&vocab.parse_term("P(x)").unwrap());
        let b = enc.encode_term(&vocab.parse_term("P(x)").unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn encode_atom_and_conj() {
        let vocab = Vocab::standard();
        let mut enc = UnaryEncoder::new(EncodeMode::MultiArity);
        let c = vocab.parse_conj("u = Q(x) & v <= Q(x) + 1").unwrap();
        let out = enc.encode_conj(&c);
        assert_eq!(out.len(), 2);
        let shown = out.to_string();
        assert!(shown.contains("F#("), "{shown}");
        assert!(!shown.contains("Q("), "{shown}");
    }
}
