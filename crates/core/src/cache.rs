//! The unified cache API shared by every memo table in the stack.
//!
//! Before this module, the two caches — the logical product's
//! [`SplitCache`](crate::logical::SplitCache) and the driver's summary
//! cache — each grew their own builder surface, counters, and invalidation
//! conventions. This module is the single vocabulary both speak:
//!
//! - [`Cache`]: keyed insert/lookup with verified hits, a capacity with a
//!   declared [`Eviction`] policy, degradation-aware invalidation (a value
//!   computed under a starved budget is returned but never stored), an
//!   FNV [`checksum`](Cache::checksum) hook for integrity audits, and
//!   [`CacheStats`] built on [`cai_obs::CounterFamily`];
//! - [`CacheConfig`]: the one knob block threaded through
//!   `AnalysisConfig`, replacing the per-cache builder methods. Its
//!   [`fingerprint`](CacheConfig::fingerprint) participates in
//!   invalidation: reconfiguring a cache with a different fingerprint
//!   clears derived entries, exactly as the driver's `config_fingerprint`
//!   clears summaries when the context cap changes;
//! - [`TermMemo`]: the sub-structural layer beneath the split cache — a
//!   [`cai_term::PurifyMemo`] keyed per canonicalized alien term (via
//!   `cai_term::fingerprint`), so two conjunctions sharing alien terms
//!   share their purification work and their fresh names. Stable names are
//!   what make *partial hits* possible: a cached split of `E ⊆ E'` can be
//!   resumed on the delta `E' \ E` instead of re-saturating from scratch.

use cai_obs::{CounterFamily, FamilySnapshot};
use cai_term::{fingerprint, PurifyMemo, Term, TermSplit, Var};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// [`CacheStats`] counter names, in cell order (indices in [`cs`]).
pub const CACHE_COUNTERS: &[&str] = &[
    "hits",
    "misses",
    "partial_hits",
    "skips",
    "evictions",
    "invalidations",
    "corruptions",
    "term_hits",
    "term_misses",
];

/// Cell indices into [`CACHE_COUNTERS`].
pub mod cs {
    /// Lookups answered verbatim from the cache.
    pub const HITS: usize = 0;
    /// Lookups that computed from scratch.
    pub const MISSES: usize = 1;
    /// Lookups answered by resuming from a sub-structural base entry.
    pub const PARTIAL_HITS: usize = 2;
    /// Computed values *not* stored because they were budget-degraded.
    pub const SKIPS: usize = 3;
    /// Entries dropped to make room (or because their inputs changed).
    pub const EVICTIONS: usize = 4;
    /// Wholesale clears due to a configuration-fingerprint change.
    pub const INVALIDATIONS: usize = 5;
    /// Entries rejected by a checksum integrity audit.
    pub const CORRUPTIONS: usize = 6;
    /// Per-alien-term memo lookups answered from the memo.
    pub const TERM_HITS: usize = 7;
    /// Per-alien-term memo lookups that recomputed.
    pub const TERM_MISSES: usize = 8;
}

/// Shared observability counters for a [`Cache`] — a thin facade over a
/// [`cai_obs::CounterFamily`]. Cloning shares the underlying cells, so one
/// `CacheStats` can aggregate over every handle to a shared cache.
#[derive(Clone, Debug)]
pub struct CacheStats {
    fam: CounterFamily,
}

impl Default for CacheStats {
    fn default() -> CacheStats {
        CacheStats {
            fam: CounterFamily::new(CACHE_COUNTERS),
        }
    }
}

impl CacheStats {
    /// Fresh counters, all zero.
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    /// Add `n` to the counter at [`cs`] index `idx`.
    #[inline]
    pub fn add(&self, idx: usize, n: u64) {
        self.fam.add(idx, n);
    }

    /// Add one to the counter at [`cs`] index `idx`.
    #[inline]
    pub fn bump(&self, idx: usize) {
        self.fam.bump(idx);
    }

    /// Current value of the counter at [`cs`] index `idx`.
    pub fn get(&self, idx: usize) -> u64 {
        self.fam.get(idx)
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> FamilySnapshot {
        self.fam.snapshot()
    }

    /// Whole-value hits as a fraction of all lookups (partial hits count
    /// as neither full hits nor misses in the numerator's favor).
    pub fn hit_rate(&self) -> f64 {
        let snap = self.snapshot();
        let hits = snap.get(cs::HITS);
        let total = hits + snap.get(cs::PARTIAL_HITS) + snap.get(cs::MISSES);
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                hits as f64 / total as f64
            }
        }
    }

    /// Merge current values into an observability [`cai_obs::Snapshot`]
    /// under `"{prefix}/{counter}"` keys.
    pub fn export_into(&self, snap: &mut cai_obs::Snapshot, prefix: &str) {
        self.fam.export_into(snap, prefix);
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// How a cache makes room once it reaches capacity.
///
/// The stack's working sets are small and cyclic (fixpoint rounds revisit
/// the same conjunctions; a module's procedure set is fixed), so the only
/// implemented policy is the cheapest one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Eviction {
    /// Clear the whole table and start refilling — no per-entry
    /// bookkeeping, and a fixpoint's working set repopulates in one round.
    #[default]
    ClearAll,
}

/// Default capacity of the per-alien-term memo (entries, not bytes).
pub const DEFAULT_TERM_MEMO_CAPACITY: usize = 4096;

/// Default capacity of the driver's summary cache (entries per procedure
/// name; effectively unbounded for realistic modules, but declared so the
/// eviction policy has a trigger).
pub const DEFAULT_SUMMARY_CACHE_CAPACITY: usize = 4096;

/// The one configuration block for every cache in the stack, threaded
/// through `AnalysisConfig`. [`CacheConfig::default`] reproduces the
/// pre-redesign behavior of all caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Whole-conjunction split-cache capacity; 0 disables split caching
    /// entirely (including the sub-structural layer).
    pub split_capacity: usize,
    /// Per-alien-term memo capacity; 0 disables the sub-structural layer
    /// (the split cache then degenerates to the whole-conjunction memo).
    pub term_capacity: usize,
    /// Driver summary-cache capacity (procedure summaries).
    pub summary_capacity: usize,
    /// How full tables make room.
    pub eviction: Eviction,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            split_capacity: crate::logical::DEFAULT_SPLIT_CACHE_CAPACITY,
            term_capacity: DEFAULT_TERM_MEMO_CAPACITY,
            summary_capacity: DEFAULT_SUMMARY_CACHE_CAPACITY,
            eviction: Eviction::ClearAll,
        }
    }
}

impl CacheConfig {
    /// A configuration with every cache disabled — the uncached baseline
    /// used by A/B measurements.
    pub fn disabled() -> CacheConfig {
        CacheConfig {
            split_capacity: 0,
            term_capacity: 0,
            summary_capacity: 0,
            eviction: Eviction::ClearAll,
        }
    }

    /// The whole-conjunction memo alone, with the sub-structural layer
    /// off — the pre-redesign split cache, used as the A/B midpoint.
    pub fn whole_only() -> CacheConfig {
        CacheConfig {
            term_capacity: 0,
            ..CacheConfig::default()
        }
    }

    /// An FNV fingerprint of the configuration. Caches remember the
    /// fingerprint they were built with; reconfiguring with a different
    /// one invalidates derived entries (see `SplitCache::reconfigure`),
    /// exactly as the driver's `config_fingerprint` invalidates summaries
    /// when the context cap changes.
    pub fn fingerprint(&self) -> u64 {
        fingerprint(self)
    }
}

/// The outcome of a [`Cache::store`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The value was stored.
    Stored,
    /// The value was stored after the table was cleared to make room.
    StoredEvicting,
    /// The value was computed under a degraded budget and deliberately not
    /// stored (degradation-aware invalidation: a starved round must not
    /// poison a later, better-funded one).
    SkippedDegraded,
    /// The cache is disabled (capacity 0); nothing was stored.
    Disabled,
}

/// The common surface of the stack's memo tables (the logical product's
/// split cache, the driver's summary cache, the per-alien-term memo).
///
/// Contract, shared by every implementation:
///
/// - **Verified hits**: keys are fingerprinted for the table, but a hit is
///   only returned after comparing the stored key — a fingerprint
///   collision reads as a miss, never as a wrong value.
/// - **Degradation-aware invalidation**: `store(…, degraded = true)` must
///   not persist the value ([`StoreOutcome::SkippedDegraded`]).
/// - **Capacity + eviction**: a full table makes room per its configured
///   [`Eviction`] policy; capacity 0 disables storage.
/// - **Checksum hook**: [`checksum`](Cache::checksum) is an FNV digest of
///   the table's keys, for cheap identity/integrity audits (two handles to
///   the same logical cache agree; a snapshot can be diffed later).
///
/// Lookup takes `&self` and store takes `&mut self` so that both
/// interior-mutable (`Arc`-shared) and plainly-owned tables can implement
/// the trait; the `Arc`-shared implementations also expose `&self` inherent
/// methods, which shared-cache call sites use directly.
pub trait Cache {
    /// The lookup key.
    type Key;
    /// The cached value.
    type Value;

    /// A verified lookup: `Some` only if the stored key equals `key`.
    fn lookup(&self, key: &Self::Key) -> Option<Self::Value>;

    /// Offers a value; `degraded = true` values are never stored.
    fn store(&mut self, key: Self::Key, value: Self::Value, degraded: bool) -> StoreOutcome;

    /// Drops the entry for `key`, if present.
    fn invalidate(&mut self, key: &Self::Key) -> bool;

    /// Drops every entry.
    fn clear(&mut self);

    /// The number of stored entries.
    fn len(&self) -> usize;

    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity (0 means storage is disabled).
    fn capacity(&self) -> usize;

    /// The cache's shared counters.
    fn stats(&self) -> &CacheStats;

    /// An FNV digest of the stored keys (order-independent).
    fn checksum(&self) -> u64;
}

/// Folds an iterator of per-entry digests into one order-independent
/// checksum (addition is commutative, so iteration order cannot matter).
pub fn fold_checksum(digests: impl Iterator<Item = u64>) -> u64 {
    let mut acc = 0u64;
    for d in digests {
        // Mix each digest before folding so that permuting *which* key
        // carries which digest still changes the sum.
        acc = acc.wrapping_add(fingerprint(&d));
    }
    acc
}

struct TermMemoInner {
    /// Stable fresh names, one per alien term ever seen. **Never
    /// evicted**: cached saturated elements mention these names, so a
    /// renamed term would leak stale variables into resumed splits.
    /// Names are two machine words per term; the map stays tiny.
    names: BTreeMap<Term, Var>,
    /// The replayable splits, keyed by term fingerprint and verified
    /// against the stored term on every hit. Capacity-bounded; dropping
    /// payloads is always safe because names persist (a recomputed split
    /// is bit-identical to the dropped one).
    splits: HashMap<u64, TermSplit>,
    capacity: usize,
}

/// The sub-structural memo: purification splits keyed per canonicalized
/// alien term. Implements [`cai_term::PurifyMemo`] (consulted by the
/// purifier for every alien term) and [`Cache`] (the unified surface).
///
/// Cloning shares the underlying tables — the blessed way to share the
/// memo across products, rounds, and threads.
#[derive(Clone)]
pub struct TermMemo {
    inner: Arc<Mutex<TermMemoInner>>,
    stats: CacheStats,
}

impl fmt::Debug for TermMemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("TermMemo")
            .field("names", &inner.names.len())
            .field("splits", &inner.splits.len())
            .field("capacity", &inner.capacity)
            .finish()
    }
}

impl Default for TermMemo {
    fn default() -> TermMemo {
        TermMemo::with_capacity(DEFAULT_TERM_MEMO_CAPACITY)
    }
}

impl TermMemo {
    /// A memo holding at most `capacity` splits; 0 disables the payload
    /// table (names are still minted stably when consulted).
    pub fn with_capacity(capacity: usize) -> TermMemo {
        TermMemo::with_capacity_and_stats(capacity, CacheStats::new())
    }

    /// Like [`with_capacity`](TermMemo::with_capacity), counting into the
    /// given (shared) stats — how the split cache and its term memo report
    /// through one [`CacheStats`].
    pub fn with_capacity_and_stats(capacity: usize, stats: CacheStats) -> TermMemo {
        TermMemo {
            inner: Arc::new(Mutex::new(TermMemoInner {
                names: BTreeMap::new(),
                splits: HashMap::new(),
                capacity,
            })),
            stats,
        }
    }

    fn lock(&self) -> MutexGuard<'_, TermMemoInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The number of distinct alien terms ever named.
    pub fn names_len(&self) -> usize {
        self.lock().names.len()
    }

    /// Drops every memoized split but **keeps the name map** (names must
    /// survive any eviction — see the field docs). Used by capacity
    /// eviction and configuration invalidation alike.
    pub fn clear_payloads(&self) {
        self.lock().splits.clear();
    }

    /// Changes the payload capacity, clearing the payload table.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity;
        inner.splits.clear();
    }
}

impl PurifyMemo for TermMemo {
    fn name_for(&self, t: &Term) -> Var {
        let mut inner = self.lock();
        if let Some(&v) = inner.names.get(t) {
            return v;
        }
        // Minted under the lock so concurrent purifiers agree on the name.
        let v = Var::fresh("t");
        inner.names.insert(t.clone(), v);
        v
    }

    fn lookup(&self, fp: u64, t: &Term) -> Option<TermSplit> {
        let inner = self.lock();
        let hit = inner
            .splits
            .get(&fp)
            .filter(|s| s.entries.last().is_some_and(|d| d.term == *t))
            .cloned();
        drop(inner);
        if hit.is_some() {
            self.stats.bump(cs::TERM_HITS);
        } else {
            self.stats.bump(cs::TERM_MISSES);
        }
        hit
    }

    fn store(&self, fp: u64, _t: &Term, split: &TermSplit) {
        let mut inner = self.lock();
        if inner.capacity == 0 {
            return;
        }
        if inner.splits.len() >= inner.capacity && !inner.splits.contains_key(&fp) {
            inner.splits.clear();
            drop(inner);
            self.stats.bump(cs::EVICTIONS);
            inner = self.lock();
        }
        inner.splits.insert(fp, split.clone());
    }
}

impl Cache for TermMemo {
    type Key = Term;
    type Value = TermSplit;

    fn lookup(&self, key: &Term) -> Option<TermSplit> {
        PurifyMemo::lookup(self, key.fingerprint(), key)
    }

    fn store(&mut self, key: Term, value: TermSplit, degraded: bool) -> StoreOutcome {
        if degraded {
            self.stats.bump(cs::SKIPS);
            return StoreOutcome::SkippedDegraded;
        }
        if self.capacity() == 0 {
            return StoreOutcome::Disabled;
        }
        let before = self.stats.get(cs::EVICTIONS);
        PurifyMemo::store(self, key.fingerprint(), &key, &value);
        if self.stats.get(cs::EVICTIONS) > before {
            StoreOutcome::StoredEvicting
        } else {
            StoreOutcome::Stored
        }
    }

    fn invalidate(&mut self, key: &Term) -> bool {
        self.lock().splits.remove(&key.fingerprint()).is_some()
    }

    fn clear(&mut self) {
        self.clear_payloads();
    }

    fn len(&self) -> usize {
        self.lock().splits.len()
    }

    fn capacity(&self) -> usize {
        self.lock().capacity
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn checksum(&self) -> u64 {
        fold_checksum(self.lock().splits.keys().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_fingerprint_distinguishes_fields() {
        let base = CacheConfig::default();
        let mut caps = base;
        caps.split_capacity += 1;
        let mut term = base;
        term.term_capacity = 0;
        assert_ne!(base.fingerprint(), caps.fingerprint());
        assert_ne!(base.fingerprint(), term.fingerprint());
        assert_eq!(base.fingerprint(), CacheConfig::default().fingerprint());
    }

    #[test]
    fn fold_checksum_is_order_independent() {
        let a = fold_checksum([1u64, 2, 3].into_iter());
        let b = fold_checksum([3u64, 1, 2].into_iter());
        assert_eq!(a, b);
        assert_ne!(a, fold_checksum([1u64, 2].into_iter()));
    }

    #[test]
    fn term_memo_names_survive_payload_eviction() {
        let memo = TermMemo::with_capacity(1);
        let t1 = Term::int(1);
        let t2 = Term::int(2);
        let n1 = memo.name_for(&t1);
        let s1 = TermSplit {
            entries: vec![cai_term::TermDef {
                term: t1.clone(),
                name: n1,
                side: cai_term::Side::Left,
                pure: t1.clone(),
            }],
        };
        PurifyMemo::store(&memo, t1.fingerprint(), &t1, &s1);
        assert_eq!(Cache::len(&memo), 1);
        // A second term evicts the payload table (capacity 1, ClearAll)…
        let n2 = memo.name_for(&t2);
        let s2 = TermSplit {
            entries: vec![cai_term::TermDef {
                term: t2.clone(),
                name: n2,
                side: cai_term::Side::Left,
                pure: t2.clone(),
            }],
        };
        PurifyMemo::store(&memo, t2.fingerprint(), &t2, &s2);
        assert!(PurifyMemo::lookup(&memo, t1.fingerprint(), &t1).is_none());
        // …but the names are stable forever.
        assert_eq!(memo.name_for(&t1), n1);
        assert_eq!(memo.name_for(&t2), n2);
        assert_eq!(memo.stats().get(cs::EVICTIONS), 1);
    }
}
