//! Adaptive budget policy: size-proportional fuel apportionment and the
//! knobs of the post-widening narrowing pass.
//!
//! A single flat fuel counter degrades *unfairly*: whichever governed
//! loop happens to run first eats the pool, large procedures starve
//! behind small ones, and one pathological loop can force every later
//! loop straight to ⊤. A [`BudgetPolicy`] instead derives each slice from
//! coarse program-size measures ([`SizeMeasures`]) so the precision loss
//! under pressure lands proportionally, and procedures with a recent
//! incident history (panics, stalls, quarantines) are deprioritized —
//! the first step of incident-rate-aware scheduling.
//!
//! The policy is a *pure deterministic function* of sizes, incident
//! counts, and remaining fuel: no clock, no randomness, no thread count.
//! [`BudgetPolicy::Flat`] reproduces the pre-policy behaviour bit for bit
//! (equal [`Budget::split`] shares, no per-loop slices, no narrowing) and
//! is the default everywhere.

use crate::budget::Budget;

/// Coarse, syntax-derived size measures of a program fragment (a loop
/// body, a procedure, or a whole SCC). Deliberately cheap to compute and
/// fully deterministic — these feed fuel apportionment, so they must
/// never depend on analysis results or timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SizeMeasures {
    /// Statements, counted recursively through branches and loop bodies.
    pub statements: u64,
    /// Loop headers (each one is a fixpoint the analyzer must run).
    pub loops: u64,
    /// Distinct variables mentioned (a proxy for live-state width).
    pub variables: u64,
    /// Call sites (each one may pull in a summary computation).
    pub calls: u64,
}

impl SizeMeasures {
    /// Component-wise sum, for aggregating procedures into an SCC.
    #[must_use]
    pub fn plus(&self, other: &SizeMeasures) -> SizeMeasures {
        SizeMeasures {
            statements: self.statements + other.statements,
            loops: self.loops + other.loops,
            variables: self.variables + other.variables,
            calls: self.calls + other.calls,
        }
    }

    /// Scalar scheduling weight: statements dominate; loops and calls are
    /// the expensive constructs (a fixpoint and a summary instantiation
    /// respectively); variables proxy the width of each abstract state.
    /// Always ≥ 1 so every fragment stays schedulable.
    pub fn weight(&self) -> u64 {
        self.statements
            .saturating_add(self.loops.saturating_mul(4))
            .saturating_add(self.calls.saturating_mul(2))
            .saturating_add(self.variables)
            .max(1)
    }
}

/// How fuel is apportioned across procedures and loops, and whether the
/// engine runs a bounded narrowing pass after a widened loop fixpoint.
/// See the [module docs](self).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BudgetPolicy {
    /// The pre-policy behaviour, bit for bit: per-job slices are equal
    /// [`Budget::split`] shares, loops share the analysis pool directly,
    /// and no narrowing runs.
    #[default]
    Flat,
    /// Size-proportional governance: per-job slices are weighted by
    /// procedure size and damped by recent incidents; every loop fixpoint
    /// runs under its own size-derived [`Budget::child`] slice; widened
    /// loop invariants get a bounded narrowing recovery pass.
    Adaptive {
        /// Fuel granted to a loop fixpoint per unit of body weight.
        loop_fuel_per_weight: u64,
        /// Maximum descending (narrowing) rounds after a widened fixpoint.
        narrow_rounds: u32,
        /// Fuel for the narrowing pass, per unit of body weight.
        narrow_fuel_per_weight: u64,
    },
}

impl BudgetPolicy {
    /// The flat (pre-policy, bit-identical) behaviour.
    pub fn flat() -> BudgetPolicy {
        BudgetPolicy::Flat
    }

    /// The adaptive policy with its default knobs.
    pub fn adaptive() -> BudgetPolicy {
        BudgetPolicy::Adaptive {
            loop_fuel_per_weight: 64,
            narrow_rounds: 2,
            narrow_fuel_per_weight: 32,
        }
    }

    /// Whether this is an adaptive (non-flat) policy.
    pub fn is_adaptive(&self) -> bool {
        !matches!(self, BudgetPolicy::Flat)
    }

    /// Maximum narrowing rounds after a widened loop fixpoint (0 = the
    /// pass never runs, the flat contract).
    pub fn narrow_rounds(&self) -> u32 {
        match self {
            BudgetPolicy::Flat => 0,
            BudgetPolicy::Adaptive { narrow_rounds, .. } => *narrow_rounds,
        }
    }

    /// Fuel slice for one loop fixpoint over a body of the given size, or
    /// `None` under the flat policy (the loop shares the enclosing pool
    /// unrestricted, exactly the pre-policy behaviour).
    pub fn loop_fuel(&self, body: &SizeMeasures) -> Option<u64> {
        match self {
            BudgetPolicy::Flat => None,
            BudgetPolicy::Adaptive {
                loop_fuel_per_weight,
                ..
            } => Some(loop_fuel_per_weight.saturating_mul(body.weight())),
        }
    }

    /// Fuel for the bounded narrowing pass over a body of the given size.
    pub fn narrow_fuel(&self, body: &SizeMeasures) -> u64 {
        match self {
            BudgetPolicy::Flat => 0,
            BudgetPolicy::Adaptive {
                narrow_fuel_per_weight,
                ..
            } => narrow_fuel_per_weight.saturating_mul(body.weight()),
        }
    }

    /// Scheduling weight of one job (procedure or SCC): its size weight,
    /// damped by the recent incident count so procedures that keep
    /// panicking, stalling, or quarantining stop soaking up fuel that
    /// well-behaved procedures could convert into precision. Always ≥ 1 —
    /// an incident-heavy procedure is deprioritized, never unscheduled.
    pub fn job_weight(&self, size: &SizeMeasures, incidents: u64) -> u64 {
        (size.weight() / incidents.saturating_add(1)).max(1)
    }

    /// Allocates the per-job budget slices for one batch: equal
    /// [`Budget::split`] shares under [`Flat`](BudgetPolicy::Flat)
    /// (bit-identical to the pre-policy driver), weight-proportional
    /// [`Budget::split_weighted`] shares under
    /// [`Adaptive`](BudgetPolicy::Adaptive). `weights` is one entry per
    /// job, in job order — determinism requires callers to build it in a
    /// thread-count-independent order.
    pub fn job_slices(&self, budget: &Budget, weights: &[u64]) -> Vec<Budget> {
        match self {
            BudgetPolicy::Flat => budget.split(weights.len()),
            BudgetPolicy::Adaptive { .. } => budget.split_weighted(weights),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_scales_with_size_and_floors_at_one() {
        assert_eq!(SizeMeasures::default().weight(), 1);
        let small = SizeMeasures {
            statements: 3,
            loops: 0,
            variables: 2,
            calls: 0,
        };
        let big = SizeMeasures {
            statements: 30,
            loops: 2,
            variables: 5,
            calls: 4,
        };
        assert!(big.weight() > small.weight());
        assert_eq!(small.plus(&big).statements, 33);
    }

    #[test]
    fn flat_policy_is_inert() {
        let p = BudgetPolicy::flat();
        let body = SizeMeasures {
            statements: 10,
            ..SizeMeasures::default()
        };
        assert!(!p.is_adaptive());
        assert_eq!(p.narrow_rounds(), 0);
        assert_eq!(p.loop_fuel(&body), None);
        assert_eq!(p.narrow_fuel(&body), 0);
        // Flat slices are exactly Budget::split, share for share.
        let a = p.job_slices(&Budget::fuel(23), &[5, 1, 9]);
        let b = Budget::fuel(23).split(3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.remaining_fuel(), y.remaining_fuel());
        }
    }

    #[test]
    fn adaptive_policy_scales_fuel_with_body_weight() {
        let p = BudgetPolicy::adaptive();
        let small = SizeMeasures {
            statements: 2,
            ..SizeMeasures::default()
        };
        let big = SizeMeasures {
            statements: 40,
            loops: 3,
            variables: 6,
            calls: 1,
        };
        assert!(p.loop_fuel(&big).unwrap() > p.loop_fuel(&small).unwrap());
        assert!(p.narrow_fuel(&big) > p.narrow_fuel(&small));
        assert!(p.narrow_rounds() > 0);
    }

    #[test]
    fn incidents_damp_the_job_weight_but_never_unschedule() {
        let p = BudgetPolicy::adaptive();
        let size = SizeMeasures {
            statements: 40,
            ..SizeMeasures::default()
        };
        let clean = p.job_weight(&size, 0);
        let flaky = p.job_weight(&size, 3);
        assert!(flaky < clean, "incident history deprioritizes");
        assert!(p.job_weight(&size, u64::MAX) >= 1, "floor at 1");
        // Adaptive slices are proportional to the damped weights.
        let slices = p.job_slices(&Budget::fuel(120), &[clean, flaky]);
        assert!(slices[0].remaining_fuel() > slices[1].remaining_fuel());
    }
}
