//! Partitions of variables into provably-equal classes (`VE_T` results).

use cai_term::{Var, VarSet};
use std::collections::BTreeMap;
use std::fmt;

/// A partition of a finite set of variables, produced by the `VE_T`
/// operator and consumed by Nelson–Oppen saturation.
///
/// Variables not mentioned are implicitly in singleton classes, so the
/// empty partition is the identity (no equalities known).
///
/// ```
/// use cai_core::Partition;
/// use cai_term::Var;
/// let (x, y, z) = (Var::named("x"), Var::named("y"), Var::named("z"));
/// let mut p = Partition::new();
/// p.union(x, y);
/// assert!(p.same(x, y));
/// assert!(!p.same(x, z));
/// ```
#[derive(Clone, Default)]
pub struct Partition {
    parent: BTreeMap<Var, Var>,
}

impl Partition {
    /// The identity partition.
    pub fn new() -> Partition {
        Partition::default()
    }

    /// The representative of `v`'s class.
    pub fn find(&self, v: Var) -> Var {
        let mut cur = v;
        while let Some(&p) = self.parent.get(&cur) {
            if p == cur {
                break;
            }
            cur = p;
        }
        cur
    }

    /// Merges the classes of `a` and `b`. Returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: Var, b: Var) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        // Keep the smaller representative for determinism.
        let (root, child) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(child, root);
        self.parent.entry(root).or_insert(root);
        true
    }

    /// Returns `true` if `a` and `b` are in the same class.
    pub fn same(&self, a: Var, b: Var) -> bool {
        self.find(a) == self.find(b)
    }

    /// Returns `true` if no two distinct variables are equated.
    pub fn is_identity(&self) -> bool {
        self.parent
            .iter()
            .all(|(v, p)| v == p || self.find(*v) == *v)
    }

    /// The non-singleton classes, each sorted, in sorted order.
    pub fn classes(&self) -> Vec<Vec<Var>> {
        let mut by_root: BTreeMap<Var, Vec<Var>> = BTreeMap::new();
        for &v in self.parent.keys() {
            by_root.entry(self.find(v)).or_default().push(v);
        }
        by_root.into_values().filter(|c| c.len() > 1).collect()
    }

    /// The equalities `(v, root)` for every variable that is not its own
    /// representative — a minimal generating set of the partition.
    pub fn pairs(&self) -> Vec<(Var, Var)> {
        let mut out = Vec::new();
        for &v in self.parent.keys() {
            let r = self.find(v);
            if r != v {
                out.push((v, r));
            }
        }
        out
    }

    /// Merges another partition into this one. Returns `true` if anything
    /// changed.
    pub fn merge(&mut self, other: &Partition) -> bool {
        let mut changed = false;
        for (a, b) in other.pairs() {
            changed |= self.union(a, b);
        }
        changed
    }

    /// Returns `true` if every equality of `other` already holds here.
    pub fn refines(&self, other: &Partition) -> bool {
        other.pairs().iter().all(|&(a, b)| self.same(a, b))
    }

    /// The partition restricted to `vars` (equalities among them only).
    pub fn restrict(&self, vars: &VarSet) -> Partition {
        let mut out = Partition::new();
        let mut by_root: BTreeMap<Var, Var> = BTreeMap::new();
        for &v in self.parent.keys() {
            if !vars.contains(&v) {
                continue;
            }
            let r = self.find(v);
            match by_root.get(&r) {
                Some(&first) => {
                    out.union(first, v);
                }
                None => {
                    by_root.insert(r, v);
                }
            }
        }
        out
    }
}

impl PartialEq for Partition {
    fn eq(&self, other: &Partition) -> bool {
        self.refines(other) && other.refines(self)
    }
}

impl Eq for Partition {}

impl fmt::Debug for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let classes = self.classes();
        if classes.is_empty() {
            return f.write_str("{identity}");
        }
        for (i, c) in classes.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            f.write_str("{")?;
            for (j, v) in c.iter().enumerate() {
                if j > 0 {
                    f.write_str(" = ")?;
                }
                write!(f, "{v}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::named(n)
    }

    #[test]
    fn union_find_basics() {
        let mut p = Partition::new();
        assert!(p.union(v("a"), v("b")));
        assert!(!p.union(v("a"), v("b")));
        assert!(p.union(v("b"), v("c")));
        assert!(p.same(v("a"), v("c")));
        assert!(!p.same(v("a"), v("d")));
    }

    #[test]
    fn identity_checks() {
        let mut p = Partition::new();
        assert!(p.is_identity());
        p.union(v("a"), v("a"));
        assert!(p.is_identity());
        p.union(v("a"), v("b"));
        assert!(!p.is_identity());
    }

    #[test]
    fn merge_and_refines() {
        let mut p = Partition::new();
        p.union(v("a"), v("b"));
        let mut q = Partition::new();
        q.union(v("b"), v("c"));
        assert!(!p.refines(&q));
        p.merge(&q);
        assert!(p.refines(&q));
        assert!(p.same(v("a"), v("c")));
        assert_ne!(p, q);
    }

    #[test]
    fn restrict_drops_outsiders() {
        let mut p = Partition::new();
        p.union(v("a"), v("b"));
        p.union(v("b"), v("c"));
        let keep: VarSet = [v("a"), v("c")].into_iter().collect();
        let r = p.restrict(&keep);
        assert!(r.same(v("a"), v("c")));
        assert!(!r.pairs().iter().any(|&(x, y)| x == v("b") || y == v("b")));
    }

    #[test]
    fn classes_sorted_nonsingleton() {
        let mut p = Partition::new();
        p.union(v("q"), v("p"));
        p.union(v("r"), v("q"));
        let classes = p.classes();
        assert_eq!(classes.len(), 1);
        let mut names: Vec<&str> = classes[0].iter().map(|v| v.name()).collect();
        names.sort();
        assert_eq!(names, ["p", "q", "r"]);
    }

    #[test]
    fn partition_equality_is_semantic() {
        let mut p = Partition::new();
        p.union(v("a"), v("b"));
        p.union(v("b"), v("c"));
        let mut q = Partition::new();
        q.union(v("c"), v("a"));
        q.union(v("a"), v("b"));
        assert_eq!(p, q);
    }
}
