//! Core machinery for *Combining Abstract Interpreters* (Gulwani & Tiwari,
//! PLDI 2006): the abstract-domain interface and the three product
//! combinators.
//!
//! # Overview
//!
//! A *logical lattice* over a theory `T` has conjunctions of atomic facts
//! as elements and implication as its partial order (Definition 1). An
//! abstract interpreter over such a lattice is captured by the
//! [`AbstractDomain`] trait: join `J_L`, existential quantification `Q_L`,
//! meet, an implication decision, the implied-variable-equalities operator
//! `VE_T`, and the theory-specific `Alternate_T`.
//!
//! Given two such domains this crate constructs, fully automatically:
//!
//! - [`DirectProduct`] — the component-wise baseline,
//! - [`ReducedProduct`] — components cooperate by exchanging implied
//!   variable equalities (Nelson–Oppen saturation), and
//! - [`LogicalProduct`] — the paper's contribution: elements are mixed
//!   conjunctions over the union theory; the join (Figure 6) and
//!   quantification (Figure 7) operators are assembled from the component
//!   operators and are the most precise ones when the component theories
//!   are convex, stably infinite, and disjoint (Theorems 2–5).
//!
//! The [`reduce`] module implements the §5 encodings of commutative
//! functions and multi-arity uninterpreted functions into unary-UF +
//! linear arithmetic.

mod budget;
pub mod cache;
pub mod chaos;
mod direct;
mod domain;
mod logical;
mod partition;
mod policy;
pub mod reduce;
mod reduced;
mod saturate;

pub use budget::{Budget, CaiError, Degradation, DegradationReport, Incident, IncidentKind};
pub use cache::{
    Cache, CacheConfig, CacheStats, Eviction, StoreOutcome, TermMemo,
    DEFAULT_SUMMARY_CACHE_CAPACITY, DEFAULT_TERM_MEMO_CAPACITY,
};
pub use chaos::{ChaosConfig, ChaosDomain};
pub use direct::{DirectProduct, Pair};
pub use domain::{combination_precision, AbstractDomain, Precision, TheoryProps};
pub use logical::{
    JoinStats, JoinStatsSnapshot, LogicalProduct, Split, SplitCache, DEFAULT_SPLIT_CACHE_CAPACITY,
};
pub use partition::Partition;
pub use policy::{BudgetPolicy, SizeMeasures};
pub use reduced::ReducedProduct;
pub use saturate::{no_saturate, no_saturate_budgeted, Saturated};
