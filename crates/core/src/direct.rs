//! The direct product of abstract domains — the baseline "independent
//! attribute" combination (Cousot & Cousot; paper §1).

use crate::domain::{AbstractDomain, TheoryProps};
use crate::partition::Partition;
use cai_term::{purify, Atom, Conj, Sig, Term, Var, VarSet};
use std::fmt;

/// A pair element of a [`DirectProduct`].
#[derive(Clone, PartialEq, Debug)]
pub struct Pair<E1, E2> {
    /// The first component.
    pub left: E1,
    /// The second component.
    pub right: E2,
}

impl<E1: fmt::Display, E2: fmt::Display> fmt::Display for Pair<E1, E2> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.left, self.right)
    }
}

/// The direct product `L1 × L2`: all lattice operations are performed
/// component-wise, with no information flowing between the components.
///
/// Mixed atomic facts are purified; the fresh variables naming alien terms
/// are existentially quantified away *component-wise and without
/// saturation*, so each component only retains what it can express about
/// the pure fragment it saw — exactly the "performing the analyses one
/// after another" behaviour the paper describes for direct products.
#[derive(Clone, Debug)]
pub struct DirectProduct<D1, D2> {
    d1: D1,
    d2: D2,
}

impl<D1: AbstractDomain, D2: AbstractDomain> DirectProduct<D1, D2> {
    /// Combines two domains into their direct product.
    pub fn new(d1: D1, d2: D2) -> DirectProduct<D1, D2> {
        DirectProduct { d1, d2 }
    }

    /// The first component domain.
    pub fn first(&self) -> &D1 {
        &self.d1
    }

    /// The second component domain.
    pub fn second(&self) -> &D2 {
        &self.d2
    }

    /// Routes a (possibly mixed) atom into both components: pure parts are
    /// met directly; alien-naming ghosts are eliminated component-wise.
    fn meet_routed(&self, e: &Pair<D1::Elem, D2::Elem>, atom: &Atom) -> Pair<D1::Elem, D2::Elem> {
        let s1 = self.d1.sig();
        let s2 = self.d2.sig();
        let p = purify(&Conj::of(atom.clone()), &s1, &s2);
        let mut left = e.left.clone();
        for a in &p.left {
            left = self.d1.meet_atom(&left, a);
        }
        let mut right = e.right.clone();
        for a in &p.right {
            right = self.d2.meet_atom(&right, a);
        }
        if !p.fresh.is_empty() {
            let ghosts: VarSet = p.fresh.iter().copied().collect();
            left = self.d1.exists(&left, &ghosts);
            right = self.d2.exists(&right, &ghosts);
        }
        Pair { left, right }
    }
}

impl<D1: AbstractDomain, D2: AbstractDomain> AbstractDomain for DirectProduct<D1, D2> {
    type Elem = Pair<D1::Elem, D2::Elem>;

    fn sig(&self) -> Sig {
        self.d1.sig().union(&self.d2.sig())
    }

    fn props(&self) -> TheoryProps {
        let (p1, p2) = (self.d1.props(), self.d2.props());
        TheoryProps {
            convex: p1.convex && p2.convex,
            stably_infinite: p1.stably_infinite && p2.stably_infinite,
        }
    }

    fn top(&self) -> Self::Elem {
        Pair {
            left: self.d1.top(),
            right: self.d2.top(),
        }
    }

    fn bottom(&self) -> Self::Elem {
        Pair {
            left: self.d1.bottom(),
            right: self.d2.bottom(),
        }
    }

    fn is_bottom(&self, e: &Self::Elem) -> bool {
        self.d1.is_bottom(&e.left) || self.d2.is_bottom(&e.right)
    }

    fn meet_atom(&self, e: &Self::Elem, atom: &Atom) -> Self::Elem {
        self.meet_routed(e, atom)
    }

    fn implies_atom(&self, e: &Self::Elem, atom: &Atom) -> bool {
        if self.is_bottom(e) {
            return true;
        }
        // Componentwise: no cooperation between the parts.
        (self.d1.sig().owns_atom(atom) && self.d1.implies_atom(&e.left, atom))
            || (self.d2.sig().owns_atom(atom) && self.d2.implies_atom(&e.right, atom))
    }

    fn join(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        if self.is_bottom(a) {
            return b.clone();
        }
        if self.is_bottom(b) {
            return a.clone();
        }
        Pair {
            left: self.d1.join(&a.left, &b.left),
            right: self.d2.join(&a.right, &b.right),
        }
    }

    fn exists(&self, e: &Self::Elem, vars: &VarSet) -> Self::Elem {
        Pair {
            left: self.d1.exists(&e.left, vars),
            right: self.d2.exists(&e.right, vars),
        }
    }

    fn var_equalities(&self, e: &Self::Elem) -> Partition {
        let mut p = self.d1.var_equalities(&e.left);
        p.merge(&self.d2.var_equalities(&e.right));
        p
    }

    fn alternate(&self, e: &Self::Elem, y: Var, avoid: &VarSet) -> Option<Term> {
        self.d1
            .alternate(&e.left, y, avoid)
            .or_else(|| self.d2.alternate(&e.right, y, avoid))
    }

    fn widen(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        if self.is_bottom(a) {
            return b.clone();
        }
        if self.is_bottom(b) {
            return a.clone();
        }
        Pair {
            left: self.d1.widen(&a.left, &b.left),
            right: self.d2.widen(&a.right, &b.right),
        }
    }

    fn narrow(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        // Component-wise, like every other operation of the direct
        // product: each component recovers what its own narrowing can.
        Pair {
            left: self.d1.narrow(&a.left, &b.left),
            right: self.d2.narrow(&a.right, &b.right),
        }
    }

    fn to_conj(&self, e: &Self::Elem) -> Conj {
        self.d1.to_conj(&e.left).and(&self.d2.to_conj(&e.right))
    }
}
