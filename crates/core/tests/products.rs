//! Integration tests: the product combinators over the real domains,
//! reproducing the paper's worked examples (Figures 3, 4, 6, and 7).

use cai_core::{
    combination_precision, AbstractDomain, DirectProduct, LogicalProduct, Precision, ReducedProduct,
};
use cai_linarith::{AffineEq, Polyhedra};
use cai_term::parse::Vocab;
use cai_term::{Atom, Conj, Var, VarSet};
use cai_uf::UfDomain;

fn vocab() -> Vocab {
    Vocab::standard()
}

fn conj(v: &Vocab, src: &str) -> Conj {
    v.parse_conj(src).unwrap()
}

fn atom(v: &Vocab, src: &str) -> Atom {
    v.parse_atom(src).unwrap()
}

fn logical_eq() -> LogicalProduct<AffineEq, UfDomain> {
    LogicalProduct::new(AffineEq::new(), UfDomain::new())
}

fn logical_poly() -> LogicalProduct<Polyhedra, UfDomain> {
    LogicalProduct::new(Polyhedra::new(), UfDomain::new())
}

#[test]
fn precision_classification() {
    assert_eq!(
        combination_precision(&AffineEq::new(), &UfDomain::new()),
        Precision::Complete
    );
}

/// Figure 3: in the logical product of linear arithmetic and UF, the join
/// of `x = a ∧ y = b` and `x = b ∧ y = a` is `x + y = a + b` (the linear
/// part) and nothing on the UF side.
#[test]
fn figure3_join_of_swapped_assignments() {
    let v = vocab();
    let d = logical_eq();
    let e1 = conj(&v, "x = a & y = b");
    let e2 = conj(&v, "x = b & y = a");
    let j = d.join(&e1, &e2);
    assert!(d.implies_atom(&j, &atom(&v, "x + y = a + b")), "join = {j}");
    assert!(!d.implies_atom(&j, &atom(&v, "x = a")), "join = {j}");
    assert!(!d.implies_atom(&j, &atom(&v, "x = y")), "join = {j}");
}

/// Figure 4: the logical-product join of the two branch postconditions
/// recovers the mixed fact `x = F(y + 1)` (but not the infinite family
/// that only the strict logical product could represent).
#[test]
fn figure4_mixed_join() {
    let v = vocab();
    let d = logical_eq();
    let e1 = conj(&v, "x = F(a + 1) & y = a");
    let e2 = conj(&v, "x = F(b + 1) & y = b");
    let j = d.join(&e1, &e2);
    assert!(d.implies_atom(&j, &atom(&v, "x = F(y + 1)")), "join = {j}");
    // The strict-logical-product-only fact is not implied.
    assert!(
        !d.implies_atom(&j, &atom(&v, "F(a) + F(b) = F(y) + F(a + b - y)")),
        "join = {j}"
    );
}

/// Figure 6(b): J(u = F(w) ∧ w = v + 1,  u = F(u) ∧ v = F(u) − 1)
/// = (u = F(v + 1)).
#[test]
fn figure6_join_trace() {
    let v = vocab();
    let d = logical_eq();
    let el = conj(&v, "u = F(w) & w = v + 1");
    let er = conj(&v, "u = F(u) & v = F(u) - 1");
    let j = d.join(&el, &er);
    assert!(d.implies_atom(&j, &atom(&v, "u = F(v + 1)")), "join = {j}");
    // Nothing stronger: the inputs disagree on everything else.
    assert!(!d.implies_atom(&j, &atom(&v, "u = F(w)")), "join = {j}");
    assert!(!d.implies_atom(&j, &atom(&v, "w = v + 1")), "join = {j}");
}

/// Figure 7(b): Q(x ≤ y ∧ y ≤ u ∧ x = F(F(1 + y)) ∧ v = F(y + 1), {x, y})
/// = (F(v) ≤ u).
#[test]
fn figure7_quantification_trace() {
    let v = vocab();
    let d = logical_poly();
    let e = conj(&v, "x <= y & y <= u & x = F(F(1 + y)) & v = F(y + 1)");
    let elim: VarSet = [Var::named("x"), Var::named("y")].into_iter().collect();
    let q = d.exists(&e, &elim);
    assert!(d.implies_atom(&q, &atom(&v, "F(v) <= u")), "Q = {q}");
    // No eliminated variable survives.
    let qvars = q.vars();
    assert!(!qvars.contains(&Var::named("x")), "Q = {q}");
    assert!(!qvars.contains(&Var::named("y")), "Q = {q}");
}

/// The reduced product cannot represent the Figure 6 mixed fact: its join
/// keeps only pure facts.
#[test]
fn reduced_join_loses_mixed_fact() {
    let v = vocab();
    let d = ReducedProduct::new(AffineEq::new(), UfDomain::new());
    let el = d.from_conj(&conj(&v, "u = F(w) & w = v + 1"));
    let er = d.from_conj(&conj(&v, "u = F(u) & v = F(u) - 1"));
    let j = d.join(&el, &er);
    assert!(
        !d.implies_atom(&j, &atom(&v, "u = F(v + 1)")),
        "reduced join unexpectedly proves the mixed fact: {j}"
    );
}

/// Reduced product cooperation: ghost variables introduced by purification
/// propagate equalities between the components.
#[test]
fn reduced_product_cooperates() {
    let v = vocab();
    let d = ReducedProduct::new(AffineEq::new(), UfDomain::new());
    // c1 = c2 and x = F(2*c1 - c2): since 2*c1 - c2 = c2, UF learns x = F(c2).
    let mut e = d.from_conj(&conj(&v, "c1 = c2"));
    e = d.meet_atom(&e, &atom(&v, "x = F(2*c1 - c2)"));
    assert!(d.implies_atom(&e, &atom(&v, "x = F(c2)")), "e = {e}");
    assert!(d.implies_atom(&e, &atom(&v, "x = F(c1)")), "e = {e}");
}

/// Direct product: no cooperation, so the same scenario proves nothing.
#[test]
fn direct_product_does_not_cooperate() {
    let v = vocab();
    let d = DirectProduct::new(AffineEq::new(), UfDomain::new());
    let mut e = d.from_conj(&conj(&v, "c1 = c2"));
    e = d.meet_atom(&e, &atom(&v, "x = F(2*c1 - c2)"));
    assert!(!d.implies_atom(&e, &atom(&v, "x = F(c2)")), "e = {e}");
    // The pure linear fact is still there.
    assert!(d.implies_atom(&e, &atom(&v, "c1 = c2")));
}

/// Logical product implication handles fully mixed facts.
#[test]
fn logical_mixed_implication() {
    let v = vocab();
    let d = logical_eq();
    let e = conj(&v, "d2 = F(d1 + 1)");
    assert!(d.implies_atom(&e, &atom(&v, "d2 = F(d1 + 1)")));
    let e2 = conj(&v, "d2 = F(w) & w = d1 + 1");
    assert!(d.implies_atom(&e2, &atom(&v, "d2 = F(d1 + 1)")));
    assert!(!d.implies_atom(&e2, &atom(&v, "d2 = F(d1)")));
}

/// Cross-theory contradiction detection through saturation.
#[test]
fn cross_theory_bottom() {
    let v = vocab();
    let d = logical_eq();
    // F injectivity is not assumed, but congruence + arithmetic clash:
    // x = y forces F(x) = F(y), i.e. a = b, contradicting a = b + 1.
    let e = conj(&v, "a = F(x) & b = F(y) & x = y & a = b + 1");
    assert!(d.is_bottom(&e), "expected bottom: {e}");
    let ok = conj(&v, "a = F(x) & b = F(y) & a = b + 1");
    assert!(!d.is_bottom(&ok));
}

/// Meet in the logical product is syntactic conjunction; join of an
/// element with itself is equivalent to the element.
#[test]
fn logical_join_idempotent() {
    let v = vocab();
    let d = logical_eq();
    let e = conj(&v, "x = F(y + 1) & y = 2*z");
    let j = d.join(&e, &e);
    assert!(d.equal_elems(&j, &e), "join(e, e) = {j} vs e = {e}");
}

/// Join is commutative (up to semantic equality).
#[test]
fn logical_join_commutative() {
    let v = vocab();
    let d = logical_eq();
    let a = conj(&v, "x = F(a + 1) & y = a");
    let b = conj(&v, "x = F(b + 1) & y = b");
    let ab = d.join(&a, &b);
    let ba = d.join(&b, &a);
    assert!(d.equal_elems(&ab, &ba), "ab = {ab} vs ba = {ba}");
}

/// Join with bottom and top behave as lattice identities.
#[test]
fn logical_lattice_identities() {
    let v = vocab();
    let d = logical_eq();
    let e = conj(&v, "x = F(y)");
    assert!(d.equal_elems(&d.join(&e, &d.bottom()), &e));
    assert!(d.equal_elems(&d.join(&d.bottom(), &e), &e));
    assert!(d.equal_elems(&d.join(&e, &d.top()), &d.top()));
}

/// Soundness of the join: both inputs imply every atom of the result.
#[test]
fn logical_join_sound() {
    let v = vocab();
    let d = logical_eq();
    let cases = [
        ("x = F(a + 1) & y = a", "x = F(b + 1) & y = b"),
        ("u = F(w) & w = v + 1", "u = F(u) & v = F(u) - 1"),
        ("x = 1 & y = F(F(x))", "x = 2 & y = F(F(x))"),
        ("p = q & r = F(p)", "p = q + 1 & r = F(p - 1)"),
    ];
    for (l, r) in cases {
        let el = conj(&v, l);
        let er = conj(&v, r);
        let j = d.join(&el, &er);
        for at in &j {
            assert!(d.implies_atom(&el, at), "left {l} does not imply {at}");
            assert!(d.implies_atom(&er, at), "right {r} does not imply {at}");
        }
    }
}

/// The combined Alternate operator resolves definitions across theories.
#[test]
fn logical_alternate() {
    let v = vocab();
    let d = logical_eq();
    let e = conj(&v, "y = F(a + 1) & a = b");
    let avoid: VarSet = [Var::named("a")].into_iter().collect();
    let t = d.alternate(&e, Var::named("y"), &avoid).unwrap();
    assert_eq!(t.to_string(), "F(b + 1)");
}

/// Nested products: (AffineEq ⋈ UF) ⋈ UF-with-lists-tag-like third domain
/// is exercised via a second logical product layer over the same pair —
/// the element type stays `Conj`, and operations still work.
#[test]
fn logical_products_nest() {
    let v = vocab();
    let inner = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    // The inner product is itself an AbstractDomain; joining Conj elements
    // through a second wrapper must agree with the inner join.
    let a = conj(&v, "x = F(y + 1)");
    let b = conj(&v, "x = F(y + 1) & y = 3");
    let j = inner.join(&a, &b);
    assert!(inner.implies_atom(&j, &atom(&v, "x = F(y + 1)")), "j = {j}");
}

/// Widening over the logical product terminates ascending chains that the
/// join alone would also terminate (equalities domain has finite height),
/// and is an upper bound.
#[test]
fn logical_widen_is_upper_bound() {
    let v = vocab();
    let d = logical_eq();
    let a = conj(&v, "x = 0 & y = F(x)");
    let b = conj(&v, "x = 1 & y = F(x)");
    let w = d.widen(&a, &b);
    for at in &w {
        assert!(d.implies_atom(&a, at), "a does not imply {at}");
        assert!(d.implies_atom(&b, at), "b does not imply {at}");
    }
}

/// Definition 2's side condition: the join result's alien terms occur
/// semantically in both inputs (the `Terms` closure, illustrated by the
/// paper right after Definition 2 with E1 = (x = F(a+1)) ∧ (y = a)).
#[test]
fn definition2_semantic_occurrence() {
    let v = vocab();
    let d = logical_eq();
    let e1 = conj(&v, "x = F(a + 1) & y = a");
    // y + 1 is not an alien term of e1 *syntactically*, but e1 implies
    // y + 1 = a + 1 and a + 1 is alien, so y + 1 ∈ Terms(e1).
    let t = v.parse_term("y + 1").unwrap();
    assert!(d.in_terms(&e1, &t));
    // A fresh unrelated alien is not in Terms(e1).
    let u = v.parse_term("z + 5").unwrap();
    assert!(!d.in_terms(&e1, &u));
    // The Definition 2 order holds between e1 and the join output.
    let e2 = conj(&v, "x = F(b + 1) & y = b");
    let j = d.join(&e1, &e2);
    assert!(d.le_defn2(&e1, &j), "join violates the Definition 2 order");
    assert!(d.le_defn2(&e2, &j));
    // An element with an alien foreign to e1 is NOT above e1 in the
    // Definition 2 order even though implication alone might allow it.
    let foreign = conj(&v, "F(z + 5) = F(z + 5)");
    assert!(d.le(&e1, &foreign)); // trivially implied (empty after dedup)
    assert!(d.le_defn2(&e1, &foreign) || foreign.is_empty());
}
