//! The split cache and the batched pair-variable elimination must be
//! invisible semantically: cached and uncached products return *identical*
//! conjunctions, a budget-degraded round must never poison the cache, and
//! the join's budget is charged for the deduplicated class-pair set it
//! actually generates.

use cai_core::cache::cs;
use cai_core::{AbstractDomain, Budget, Cache, CacheConfig, JoinStats, LogicalProduct, SplitCache};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_term::{Conj, VarSet};
use cai_uf::UfDomain;

fn conj(v: &Vocab, src: &str) -> Conj {
    v.parse_conj(src).expect("parses")
}

fn cached() -> LogicalProduct<AffineEq, UfDomain> {
    LogicalProduct::new(AffineEq::new(), UfDomain::new())
}

fn uncached() -> LogicalProduct<AffineEq, UfDomain> {
    LogicalProduct::new(AffineEq::new(), UfDomain::new()).with_split_cache_capacity(0)
}

/// A multi-round "fixpoint": repeatedly join the accumulator with the two
/// branch states and project a temporary — revisiting each conjunction
/// several times, exactly the workload the cache amortizes.
fn rounds(d: &LogicalProduct<AffineEq, UfDomain>, v: &Vocab) -> Vec<Conj> {
    let e1 = conj(v, "x = a & y = b & u = F(y + 1)");
    let e2 = conj(v, "x = b & y = a & u = F(y + 1)");
    let mut acc = e1.clone();
    let mut outs = Vec::new();
    for _ in 0..4 {
        acc = d.join(&acc, &e2);
        outs.push(acc.clone());
        acc = d.join(&acc, &e1);
        outs.push(acc.clone());
        let elim: VarSet = conj(v, "u = u & u = u").vars();
        outs.push(d.exists(&acc, &elim));
    }
    outs
}

#[test]
fn cached_and_uncached_rounds_are_bit_identical() {
    let v = Vocab::standard();
    let with_cache = cached();
    let without = uncached();
    let a = rounds(&with_cache, &v);
    let b = rounds(&without, &v);
    assert_eq!(a, b, "split cache changed an analysis result");
    let s = with_cache.stats().snapshot();
    assert!(
        s.cache_hits > 0,
        "repeated rounds produced no cache hits: {s}"
    );
    assert_eq!(
        without.stats().snapshot().cache_hits,
        0,
        "capacity 0 must disable the cache"
    );
}

#[test]
fn repeated_exists_hits_the_cache_with_identical_results() {
    let v = Vocab::standard();
    let d = cached();
    let e = conj(&v, "x = F(y + 1) & y = 2*z");
    let elim: VarSet = conj(&v, "y = y").vars();
    let first = d.exists(&e, &elim);
    let second = d.exists(&e, &elim);
    assert_eq!(first, second);
    assert!(d.stats().snapshot().cache_hits > 0);
    // The result must not leak the eliminated variable or any internal
    // (purification / pair) name.
    let evars = e.vars();
    for var in first.vars() {
        assert!(evars.contains(&var), "leaked internal variable {var}");
    }
}

/// A starved round degrades; its splits must not be cached, so a later
/// well-funded product sharing the same cache computes from scratch and
/// matches a completely fresh product bit-for-bit.
#[test]
fn degraded_round_never_poisons_the_cache() {
    let v = Vocab::standard();
    let e1 = conj(&v, "x = a & y = b & u = F(y + 1)");
    let e2 = conj(&v, "x = b & y = a & u = F(y + 1)");

    let shared: SplitCache<_, _> = SplitCache::new();
    let stats = JoinStats::new();
    // Round 1: starved. Enough fuel to get into the splits, not enough to
    // finish them.
    let starved = LogicalProduct::new(AffineEq::new(), UfDomain::new())
        .with_budget(Budget::fuel(4))
        .with_split_cache(shared.clone())
        .with_stats(stats.clone());
    let _ = starved.join(&e1, &e2);
    assert!(starved.budget().degraded(), "fuel 4 was expected to starve");
    // Splits that completed cleanly *before* exhaustion may be cached;
    // the one that degraded must have been skipped.
    assert!(
        stats.snapshot().cache_skips > 0,
        "the degraded computation was not recorded as a skip: {}",
        stats.snapshot()
    );

    // Round 2: well-funded, sharing the cache the starved round touched.
    let funded = LogicalProduct::new(AffineEq::new(), UfDomain::new())
        .with_split_cache(shared.clone())
        .with_stats(stats.clone());
    let fresh = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    assert_eq!(
        funded.join(&e1, &e2),
        fresh.join(&e1, &e2),
        "a poisoned cache entry leaked into a later round"
    );
    // And the now-cached healthy splits replay on a third round.
    let before = stats.snapshot().cache_hits;
    assert_eq!(funded.join(&e1, &e2), fresh.join(&e1, &e2));
    assert!(stats.snapshot().cache_hits > before);
}

/// Satellite contract for the unified cache API: `SplitCache::clone`
/// *shares* — it never snapshots. Entries stored through one product are
/// visible to a product holding a clone, and the shared [`cai_core::CacheStats`]
/// aggregates across both handles.
#[test]
fn split_cache_clones_share_one_table() {
    let v = Vocab::standard();
    let shared: SplitCache<_, _> = SplitCache::with_config(&CacheConfig::default());
    let a = LogicalProduct::new(AffineEq::new(), UfDomain::new()).with_split_cache(shared.clone());
    let b = LogicalProduct::new(AffineEq::new(), UfDomain::new()).with_split_cache(shared.clone());
    let e1 = conj(&v, "x = a & u = F(y + 1)");
    let e2 = conj(&v, "x = b & u = F(y + 1)");
    let r1 = a.join(&e1, &e2);
    assert!(Cache::len(&shared) > 0, "join stored nothing");
    let hits_before = shared.stats().get(cs::HITS);
    let r2 = b.join(&e1, &e2);
    assert_eq!(r1, r2);
    assert!(
        shared.stats().get(cs::HITS) > hits_before,
        "a product holding a clone must hit entries the other stored"
    );
}

/// Reconfiguring a split cache with a different [`CacheConfig`] must clear
/// every derived entry (the cache's `config_fingerprint` invalidation,
/// mirroring how the driver's summary cache invalidates when the context
/// cap changes); reconfiguring with an identical config is a no-op.
#[test]
fn reconfigure_invalidates_exactly_on_config_change() {
    let v = Vocab::standard();
    let e1 = conj(&v, "x = a & u = F(y + 1)");
    let e2 = conj(&v, "x = b & u = F(y + 1)");
    let shared: SplitCache<_, _> = SplitCache::with_config(&CacheConfig::default());
    let d = LogicalProduct::new(AffineEq::new(), UfDomain::new()).with_split_cache(shared.clone());
    let first = d.join(&e1, &e2);
    let len_before = Cache::len(&shared);
    assert!(len_before > 0);

    shared.reconfigure(&CacheConfig::default());
    assert_eq!(
        Cache::len(&shared),
        len_before,
        "an identical config must not invalidate"
    );
    assert_eq!(shared.stats().get(cs::INVALIDATIONS), 0);

    let bigger = CacheConfig {
        split_capacity: CacheConfig::default().split_capacity * 2,
        ..CacheConfig::default()
    };
    shared.reconfigure(&bigger);
    assert_eq!(
        Cache::len(&shared),
        0,
        "a config-fingerprint change must clear derived entries"
    );
    assert_eq!(shared.stats().get(cs::INVALIDATIONS), 1);
    assert_eq!(shared.config_fingerprint(), bigger.fingerprint());

    // Recomputation after the invalidation is bit-identical.
    let fresh = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    assert_eq!(d.join(&e1, &e2), first);
    assert_eq!(d.join(&e1, &e2), fresh.join(&e1, &e2));
}

/// A starved round must not poison the *per-term* entries either: the
/// sub-structural memo is written during purification, which consumes no
/// fuel, so names and splits minted while the whole-conjunction split was
/// degrading stay valid. A later well-funded product sharing the cache —
/// including on a conjunction that only *shares terms* with the starved
/// one — must match a completely fresh product bit-for-bit.
#[test]
fn starved_round_leaves_per_term_entries_healthy() {
    let v = Vocab::standard();
    let e1 = conj(&v, "x = a & y = b & u = F(y + 1)");
    let e2 = conj(&v, "x = b & y = a & u = F(y + 1)");
    // A superset of e1: resumes from e1's entry when that exists, and
    // reuses e1's per-term splits either way.
    let e3 = conj(&v, "x = a & y = b & u = F(y + 1) & w = F(u + 2)");

    let shared: SplitCache<_, _> = SplitCache::with_config(&CacheConfig::default());
    let starved = LogicalProduct::new(AffineEq::new(), UfDomain::new())
        .with_budget(Budget::fuel(4))
        .with_split_cache(shared.clone());
    let _ = starved.join(&e1, &e2);
    assert!(starved.budget().degraded(), "fuel 4 was expected to starve");
    assert!(
        shared.term_memo().names_len() > 0,
        "the starved round should still have minted per-term names"
    );

    let funded =
        LogicalProduct::new(AffineEq::new(), UfDomain::new()).with_split_cache(shared.clone());
    let fresh = || LogicalProduct::new(AffineEq::new(), UfDomain::new());
    assert_eq!(
        funded.join(&e1, &e2),
        fresh().join(&e1, &e2),
        "a poisoned whole-conjunction entry leaked into a later round"
    );
    assert_eq!(
        funded.join(&e3, &e2),
        fresh().join(&e3, &e2),
        "a poisoned per-term entry leaked into a sub-structural reuse"
    );
}

/// A sub-structural partial hit — the query's atoms are a superset of a
/// cached conjunction's — resumes saturation on the delta and must be
/// bit-identical to the uncached computation.
#[test]
fn partial_hit_resume_is_bit_identical() {
    let v = Vocab::standard();
    let base = conj(&v, "b = 0 & c = 0 & p = F(b) & q = F(c)");
    let grown = conj(&v, "b = 0 & c = 0 & p = F(b) & q = F(c) & r = p + 1");
    let other = conj(&v, "w = F(b + 5)");
    let d = cached();
    let seeded = d.join(&base, &other);
    assert_eq!(seeded, uncached().join(&base, &other));
    let got = d.join(&grown, &other);
    assert_eq!(got, uncached().join(&grown, &other));
    let s = d.stats().snapshot();
    assert!(
        s.cache_partial_hits > 0,
        "the grown conjunction should have resumed from the cached base: {s}"
    );
}

/// Regression for the pair-budget accounting: the join charges the
/// deduplicated class-pair count, not `|Vℓ| · |Vr|`. With ten mutually
/// equal variables per side the naive charge is over a hundred ticks at
/// the pair step alone; the corrected charge lets a budget of the actual
/// spend complete exactly (it previously forced the syntactic fallback).
#[test]
fn pair_budget_charges_deduplicated_classes() {
    let v = Vocab::standard();
    let chain = "x1 = x2 & x2 = x3 & x3 = x4 & x4 = x5 & x5 = x6 \
                 & x6 = x7 & x7 = x8 & x8 = x9 & x9 = x10";
    let el = conj(&v, &format!("{chain} & x1 = a"));
    let er = conj(&v, &format!("{chain} & x1 = b"));
    let naive_charge = (el.vars().len() * er.vars().len()) as u64; // 121

    let unlimited = cached();
    let exact = unlimited.join(&el, &er);
    let spent = unlimited.budget().spent();
    assert!(
        spent < naive_charge,
        "join spent {spent} ticks, at least the naive quadratic \
         pair charge of {naive_charge} — dedup accounting regressed"
    );
    let s = unlimited.stats().snapshot();
    assert!(
        s.pairs_generated < s.pairs_considered,
        "no dedup happened: {s}"
    );

    // The corrected charge is what makes this budget sufficient: under the
    // old up-front quadratic charge it exhausted inside the join.
    let pinned =
        LogicalProduct::new(AffineEq::new(), UfDomain::new()).with_budget(Budget::fuel(spent));
    assert_eq!(pinned.join(&el, &er), exact);
    let report = pinned.budget().report();
    assert!(
        !report.degraded && !report.exhausted,
        "budget of the actual spend still degraded: {report:?}"
    );
    // And the join is genuinely better than the syntactic fallback the old
    // accounting forced: the shared equality chain survives.
    let v10 = conj(&v, "x1 = x10");
    for atom in &v10 {
        assert!(unlimited.implies_atom(&exact, atom), "join = {exact}");
    }
}
