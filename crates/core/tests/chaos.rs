//! Fault-injection tests for the Nelson–Oppen exchange: `no_saturate`
//! over chaos-wrapped real domains must never panic, always terminate,
//! and only ever *lose* implied equalities — never invent them.

use cai_core::{no_saturate, no_saturate_budgeted, AbstractDomain, Budget, ChaosDomain};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

const SPLIT: u64 = 0x9E37_79B9_7F4A_7C15;

/// A conjunction whose full closure needs several exchange rounds
/// (chains through both theories, cf. the clean multi-round test).
const LIN_SIDE: &str = "a = b & p = q & t = r + 1 & u = s + 1";
const UF_SIDE: &str = "x = F(a) & y = F(b) & r = F(p) & s = F(q)";

#[test]
fn chaos_saturation_only_loses_equalities() {
    let v = Vocab::standard();
    let lin_conj = v.parse_conj(LIN_SIDE).expect("parses");
    let uf_conj = v.parse_conj(UF_SIDE).expect("parses");

    // Ground truth: the unlimited, fault-free closure.
    let lin = AffineEq::new();
    let uf = UfDomain::new();
    let clean = no_saturate(&lin, lin.from_conj(&lin_conj), &uf, uf.from_conj(&uf_conj));
    assert!(!clean.bottom);

    for seed in 0..120u64 {
        // A quarter of the runs are starved so exhaustion interleaves
        // with the injected faults.
        let fuel = if seed % 4 == 0 { 12 } else { 100_000 };
        let budget = Budget::fuel(fuel);
        let cl = ChaosDomain::new(AffineEq::new(), seed).with_budget(budget.clone());
        let cu = ChaosDomain::new(UfDomain::new(), seed ^ SPLIT).with_budget(budget.clone());
        let s = no_saturate_budgeted(
            &cl,
            cl.from_conj(&lin_conj),
            &cu,
            cu.from_conj(&uf_conj),
            &budget,
        );
        // Injections only weaken elements, so a satisfiable conjunction
        // must never be declared unsatisfiable.
        assert!(!s.bottom, "seed {seed}: chaos produced a spurious bottom");
        // Every equality the chaotic exchange reports is one the clean
        // closure knows: precision loss only.
        for (x, y) in s.equalities.pairs() {
            assert!(
                clean.equalities.same(x, y),
                "seed {seed}: chaos invented the equality {x} = {y}"
            );
        }
    }
}

#[test]
fn chaos_saturation_is_reproducible() {
    let v = Vocab::standard();
    let lin_conj = v.parse_conj(LIN_SIDE).expect("parses");
    let uf_conj = v.parse_conj(UF_SIDE).expect("parses");
    let run = |seed: u64| {
        let cl = ChaosDomain::new(AffineEq::new(), seed);
        let cu = ChaosDomain::new(UfDomain::new(), seed ^ SPLIT);
        let s = no_saturate(&cl, cl.from_conj(&lin_conj), &cu, cu.from_conj(&uf_conj));
        (s.equalities.pairs(), s.bottom, s.degraded)
    };
    for seed in [0u64, 17, 1 << 40] {
        assert_eq!(run(seed), run(seed), "seed {seed} not reproducible");
    }
}
