//! Fault-injection tests for the Nelson–Oppen exchange: `no_saturate`
//! over chaos-wrapped real domains must never panic, always terminate,
//! and only ever *lose* implied equalities — never invent them.

use cai_core::{
    no_saturate, no_saturate_budgeted, AbstractDomain, Budget, ChaosConfig, ChaosDomain,
    LogicalProduct,
};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_term::VarSet;
use cai_uf::UfDomain;

const SPLIT: u64 = 0x9E37_79B9_7F4A_7C15;

/// A conjunction whose full closure needs several exchange rounds
/// (chains through both theories, cf. the clean multi-round test).
const LIN_SIDE: &str = "a = b & p = q & t = r + 1 & u = s + 1";
const UF_SIDE: &str = "x = F(a) & y = F(b) & r = F(p) & s = F(q)";

#[test]
fn chaos_saturation_only_loses_equalities() {
    let v = Vocab::standard();
    let lin_conj = v.parse_conj(LIN_SIDE).expect("parses");
    let uf_conj = v.parse_conj(UF_SIDE).expect("parses");

    // Ground truth: the unlimited, fault-free closure.
    let lin = AffineEq::new();
    let uf = UfDomain::new();
    let clean = no_saturate(&lin, lin.from_conj(&lin_conj), &uf, uf.from_conj(&uf_conj));
    assert!(!clean.bottom);

    for seed in 0..120u64 {
        // A quarter of the runs are starved so exhaustion interleaves
        // with the injected faults.
        let fuel = if seed % 4 == 0 { 12 } else { 100_000 };
        let budget = Budget::fuel(fuel);
        let cl = ChaosDomain::new(AffineEq::new(), seed).with_budget(budget.clone());
        let cu = ChaosDomain::new(UfDomain::new(), seed ^ SPLIT).with_budget(budget.clone());
        let s = no_saturate_budgeted(
            &cl,
            cl.from_conj(&lin_conj),
            &cu,
            cu.from_conj(&uf_conj),
            &budget,
        );
        // Injections only weaken elements, so a satisfiable conjunction
        // must never be declared unsatisfiable.
        assert!(!s.bottom, "seed {seed}: chaos produced a spurious bottom");
        // Every equality the chaotic exchange reports is one the clean
        // closure knows: precision loss only.
        for (x, y) in s.equalities.pairs() {
            assert!(
                clean.equalities.same(x, y),
                "seed {seed}: chaos invented the equality {x} = {y}"
            );
        }
    }
}

#[test]
fn chaos_saturation_is_reproducible() {
    let v = Vocab::standard();
    let lin_conj = v.parse_conj(LIN_SIDE).expect("parses");
    let uf_conj = v.parse_conj(UF_SIDE).expect("parses");
    let run = |seed: u64| {
        let cl = ChaosDomain::new(AffineEq::new(), seed);
        let cu = ChaosDomain::new(UfDomain::new(), seed ^ SPLIT);
        let s = no_saturate(&cl, cl.from_conj(&lin_conj), &cu, cu.from_conj(&uf_conj));
        (s.equalities.pairs(), s.bottom, s.degraded)
    };
    for seed in [0u64, 17, 1 << 40] {
        assert_eq!(run(seed), run(seed), "seed {seed} not reproducible");
    }
}

/// Every `Alternate` definition is corrupted into the contract-violating
/// `y = y`. In release builds the old `debug_assert!` let those through,
/// handing `subst_defs` a cyclic definition; the runtime check must skip
/// them instead — panic-free, still sound (only weaker than the exact
/// result), and with no eliminated variable leaking into the output.
#[test]
fn chaos_defective_alternate_definitions_are_skipped() {
    let v = Vocab::standard();
    let e = v.parse_conj("x = F(y + 1) & y = 2*z").expect("parses");
    let el = v
        .parse_conj("x = a & y = b & u = F(y + 1)")
        .expect("parses");
    let er = v
        .parse_conj("x = b & y = a & u = F(y + 1)")
        .expect("parses");
    let elim: VarSet = v.parse_conj("y = y").expect("parses").vars();

    let clean = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    let exact_exists = clean.exists(&e, &elim);
    let exact_join = clean.join(&el, &er);

    let cfg = ChaosConfig {
        break_alternate_permille: 1000,
        ..ChaosConfig::quiet()
    };
    let mut rejected_somewhere = false;
    for seed in 0..40u64 {
        let d = LogicalProduct::new(
            ChaosDomain::new(AffineEq::new(), seed).with_config(cfg),
            ChaosDomain::new(UfDomain::new(), seed ^ SPLIT).with_config(cfg),
        );
        let r = d.exists(&e, &elim);
        // Sound: only precision may be lost relative to the exact result.
        assert!(
            clean.le(&exact_exists, &r),
            "seed {seed}: defective definitions made exists unsound: {r}"
        );
        // The eliminated variable must be gone even though every recovered
        // definition for it was defective.
        for var in r.vars() {
            assert!(
                !elim.contains(&var),
                "seed {seed}: eliminated variable {var} leaked into {r}"
            );
        }
        let j = d.join(&el, &er);
        assert!(
            clean.le(&exact_join, &j),
            "seed {seed}: defective definitions made the join unsound: {j}"
        );
        let inputs: VarSet = el.vars().union(&er.vars()).copied().collect();
        for var in j.vars() {
            assert!(
                inputs.contains(&var),
                "seed {seed}: internal variable {var} leaked into join {j}"
            );
        }
        rejected_somewhere |= d.stats().snapshot().defs_rejected > 0;
        // The degradation is reported, not silent.
        if d.stats().snapshot().defs_rejected > 0 {
            assert!(d.budget().degraded(), "seed {seed}: rejection unreported");
        }
    }
    assert!(
        rejected_somewhere,
        "full-rate corruption never produced a rejected definition"
    );
}
