//! Unit tests for `NOSaturation` (Property 1) and the direct/reduced
//! product plumbing over the real domains.

use cai_core::{no_saturate, AbstractDomain, DirectProduct, ReducedProduct};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_term::{Var, VarSet};
use cai_uf::UfDomain;

fn vocab() -> Vocab {
    Vocab::standard()
}

#[test]
fn saturation_exchanges_equalities_both_ways() {
    let v = vocab();
    let lin = AffineEq::new();
    let uf = UfDomain::new();
    // LA knows a = b; UF knows x = F(a), y = F(b). After saturation UF
    // must know x = y; that equality then flows back into LA.
    let e1 = lin.from_conj(&v.parse_conj("a = b").unwrap());
    let e2 = uf.from_conj(&v.parse_conj("x = F(a) & y = F(b)").unwrap());
    let s = no_saturate(&lin, e1, &uf, e2);
    assert!(!s.bottom);
    assert!(s.equalities.same(Var::named("a"), Var::named("b")));
    assert!(s.equalities.same(Var::named("x"), Var::named("y")));
    assert!(lin.implies_atom(&s.left, &v.parse_atom("x = y").unwrap()));
    assert!(uf.implies_atom(&s.right, &v.parse_atom("x = y").unwrap()));
}

#[test]
fn saturation_chains_through_multiple_rounds() {
    let v = vocab();
    let lin = AffineEq::new();
    let uf = UfDomain::new();
    // Round 1: LA derives p = q (from p = q + 0). UF then derives
    // F(p) = F(q), i.e. r = s; LA then derives t = u from r = s.
    let e1 = lin
        .from_conj(&v.parse_conj("p = q & t = r + 1 & u = s + 1").unwrap());
    let e2 = uf.from_conj(&v.parse_conj("r = F(p) & s = F(q)").unwrap());
    let s = no_saturate(&lin, e1, &uf, e2);
    assert!(s.equalities.same(Var::named("r"), Var::named("s")));
    assert!(s.equalities.same(Var::named("t"), Var::named("u")));
}

#[test]
fn saturation_propagates_bottom() {
    let v = vocab();
    let lin = AffineEq::new();
    let uf = UfDomain::new();
    // UF forces a = b; LA has a = b + 1: contradiction.
    let e1 = lin.from_conj(&v.parse_conj("a = b + 1").unwrap());
    let e2 = uf.from_conj(&v.parse_conj("a = F(x) & b = F(y) & x = y").unwrap());
    let s = no_saturate(&lin, e1, &uf, e2);
    assert!(s.bottom);
    assert!(lin.is_bottom(&s.left));
    assert!(uf.is_bottom(&s.right));
}

#[test]
fn saturation_is_idempotent() {
    let v = vocab();
    let lin = AffineEq::new();
    let uf = UfDomain::new();
    let e1 = lin.from_conj(&v.parse_conj("a = b").unwrap());
    let e2 = uf.from_conj(&v.parse_conj("x = F(a) & y = F(b)").unwrap());
    let s1 = no_saturate(&lin, e1, &uf, e2);
    let s2 = no_saturate(&lin, s1.left.clone(), &uf, s1.right.clone());
    assert!(lin.equal_elems(&s1.left, &s2.left));
    assert!(uf.equal_elems(&s1.right, &s2.right));
}

#[test]
fn direct_product_routes_and_projects_ghosts() {
    let v = vocab();
    let d = DirectProduct::new(AffineEq::new(), UfDomain::new());
    // Pure facts route to their side.
    let e = d.from_conj(&v.parse_conj("a = b + 1 & x = F(y)").unwrap());
    assert!(d.implies_atom(&e, &v.parse_atom("a = b + 1").unwrap()));
    assert!(d.implies_atom(&e, &v.parse_atom("x = F(y)").unwrap()));
    // A mixed fact decays: ghosts are eliminated component-wise.
    let e2 = d.meet_atom(&e, &v.parse_atom("z = F(a + b)").unwrap());
    assert!(!d.implies_atom(&e2, &v.parse_atom("z = F(a + b)").unwrap()));
    // The pure facts survive.
    assert!(d.implies_atom(&e2, &v.parse_atom("a = b + 1").unwrap()));
}

#[test]
fn direct_product_exists_and_join() {
    let v = vocab();
    let d = DirectProduct::new(AffineEq::new(), UfDomain::new());
    let a = d.from_conj(&v.parse_conj("p = 1 & x = F(p)").unwrap());
    let b = d.from_conj(&v.parse_conj("p = 1 & x = F(p) & q = 2").unwrap());
    let j = d.join(&a, &b);
    assert!(d.implies_atom(&j, &v.parse_atom("p = 1").unwrap()));
    assert!(d.implies_atom(&j, &v.parse_atom("x = F(p)").unwrap()));
    assert!(!d.implies_atom(&j, &v.parse_atom("q = 2").unwrap()));
    let elim: VarSet = [Var::named("p")].into_iter().collect();
    let q = d.exists(&j, &elim);
    assert!(!d.implies_atom(&q, &v.parse_atom("p = 1").unwrap()));
}

#[test]
fn reduced_product_le_and_bottom() {
    let v = vocab();
    let d = ReducedProduct::new(AffineEq::new(), UfDomain::new());
    let a = d.from_conj(&v.parse_conj("a = 1 & x = F(a)").unwrap());
    let b = d.from_conj(&v.parse_conj("x = F(a)").unwrap());
    assert!(d.le(&a, &b));
    assert!(!d.le(&b, &a));
    assert!(d.le(&d.bottom(), &a));
    assert!(d.is_bottom(&d.from_conj(&v.parse_conj("a = 1 & a = 2").unwrap())));
}

#[test]
fn reduced_product_var_equalities_merge_components() {
    let v = vocab();
    let d = ReducedProduct::new(AffineEq::new(), UfDomain::new());
    let e = d.from_conj(&v.parse_conj("a = b & x = F(a) & y = F(b)").unwrap());
    let p = d.var_equalities(&e);
    assert!(p.same(Var::named("a"), Var::named("b")));
    assert!(p.same(Var::named("x"), Var::named("y")));
}
