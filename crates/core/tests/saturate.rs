//! Unit tests for `NOSaturation` (Property 1) and the direct/reduced
//! product plumbing over the real domains.

use cai_core::{no_saturate, AbstractDomain, DirectProduct, ReducedProduct};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_term::{Var, VarSet};
use cai_uf::UfDomain;

fn vocab() -> Vocab {
    Vocab::standard()
}

#[test]
fn saturation_exchanges_equalities_both_ways() {
    let v = vocab();
    let lin = AffineEq::new();
    let uf = UfDomain::new();
    // LA knows a = b; UF knows x = F(a), y = F(b). After saturation UF
    // must know x = y; that equality then flows back into LA.
    let e1 = lin.from_conj(&v.parse_conj("a = b").unwrap());
    let e2 = uf.from_conj(&v.parse_conj("x = F(a) & y = F(b)").unwrap());
    let s = no_saturate(&lin, e1, &uf, e2);
    assert!(!s.bottom);
    assert!(s.equalities.same(Var::named("a"), Var::named("b")));
    assert!(s.equalities.same(Var::named("x"), Var::named("y")));
    assert!(lin.implies_atom(&s.left, &v.parse_atom("x = y").unwrap()));
    assert!(uf.implies_atom(&s.right, &v.parse_atom("x = y").unwrap()));
}

#[test]
fn saturation_chains_through_multiple_rounds() {
    let v = vocab();
    let lin = AffineEq::new();
    let uf = UfDomain::new();
    // Round 1: LA derives p = q (from p = q + 0). UF then derives
    // F(p) = F(q), i.e. r = s; LA then derives t = u from r = s.
    let e1 = lin.from_conj(&v.parse_conj("p = q & t = r + 1 & u = s + 1").unwrap());
    let e2 = uf.from_conj(&v.parse_conj("r = F(p) & s = F(q)").unwrap());
    let s = no_saturate(&lin, e1, &uf, e2);
    assert!(s.equalities.same(Var::named("r"), Var::named("s")));
    assert!(s.equalities.same(Var::named("t"), Var::named("u")));
}

#[test]
fn saturation_propagates_bottom() {
    let v = vocab();
    let lin = AffineEq::new();
    let uf = UfDomain::new();
    // UF forces a = b; LA has a = b + 1: contradiction.
    let e1 = lin.from_conj(&v.parse_conj("a = b + 1").unwrap());
    let e2 = uf.from_conj(&v.parse_conj("a = F(x) & b = F(y) & x = y").unwrap());
    let s = no_saturate(&lin, e1, &uf, e2);
    assert!(s.bottom);
    assert!(lin.is_bottom(&s.left));
    assert!(uf.is_bottom(&s.right));
}

#[test]
fn saturation_is_idempotent() {
    let v = vocab();
    let lin = AffineEq::new();
    let uf = UfDomain::new();
    let e1 = lin.from_conj(&v.parse_conj("a = b").unwrap());
    let e2 = uf.from_conj(&v.parse_conj("x = F(a) & y = F(b)").unwrap());
    let s1 = no_saturate(&lin, e1, &uf, e2);
    let s2 = no_saturate(&lin, s1.left.clone(), &uf, s1.right.clone());
    assert!(lin.equal_elems(&s1.left, &s2.left));
    assert!(uf.equal_elems(&s1.right, &s2.right));
}

#[test]
fn direct_product_routes_and_projects_ghosts() {
    let v = vocab();
    let d = DirectProduct::new(AffineEq::new(), UfDomain::new());
    // Pure facts route to their side.
    let e = d.from_conj(&v.parse_conj("a = b + 1 & x = F(y)").unwrap());
    assert!(d.implies_atom(&e, &v.parse_atom("a = b + 1").unwrap()));
    assert!(d.implies_atom(&e, &v.parse_atom("x = F(y)").unwrap()));
    // A mixed fact decays: ghosts are eliminated component-wise.
    let e2 = d.meet_atom(&e, &v.parse_atom("z = F(a + b)").unwrap());
    assert!(!d.implies_atom(&e2, &v.parse_atom("z = F(a + b)").unwrap()));
    // The pure facts survive.
    assert!(d.implies_atom(&e2, &v.parse_atom("a = b + 1").unwrap()));
}

#[test]
fn direct_product_exists_and_join() {
    let v = vocab();
    let d = DirectProduct::new(AffineEq::new(), UfDomain::new());
    let a = d.from_conj(&v.parse_conj("p = 1 & x = F(p)").unwrap());
    let b = d.from_conj(&v.parse_conj("p = 1 & x = F(p) & q = 2").unwrap());
    let j = d.join(&a, &b);
    assert!(d.implies_atom(&j, &v.parse_atom("p = 1").unwrap()));
    assert!(d.implies_atom(&j, &v.parse_atom("x = F(p)").unwrap()));
    assert!(!d.implies_atom(&j, &v.parse_atom("q = 2").unwrap()));
    let elim: VarSet = [Var::named("p")].into_iter().collect();
    let q = d.exists(&j, &elim);
    assert!(!d.implies_atom(&q, &v.parse_atom("p = 1").unwrap()));
}

#[test]
fn reduced_product_le_and_bottom() {
    let v = vocab();
    let d = ReducedProduct::new(AffineEq::new(), UfDomain::new());
    let a = d.from_conj(&v.parse_conj("a = 1 & x = F(a)").unwrap());
    let b = d.from_conj(&v.parse_conj("x = F(a)").unwrap());
    assert!(d.le(&a, &b));
    assert!(!d.le(&b, &a));
    assert!(d.le(&d.bottom(), &a));
    assert!(d.is_bottom(&d.from_conj(&v.parse_conj("a = 1 & a = 2").unwrap())));
}

/// Adversarial mock domains that stress the exchange loop's termination
/// and bottom handling beyond what the well-behaved real domains exercise.
mod adversarial {
    use cai_core::{no_saturate, no_saturate_budgeted, AbstractDomain, Budget, Partition};
    use cai_term::{Atom, Conj, Sig, Term, TheoryTag, Var, VarSet};
    use std::fmt;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// The trivial element: just a bottom flag.
    #[derive(Clone, PartialEq, Debug)]
    struct Mark(bool);

    impl fmt::Display for Mark {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(if self.0 { "false" } else { "mock" })
        }
    }

    /// A scriptable domain: `eqs` maps the `var_equalities` call index to
    /// the partition reported on that call, and `fragile` makes any
    /// equality meet collapse to bottom.
    struct Mock {
        tag: TheoryTag,
        eqs: Box<dyn Fn(u64) -> Partition>,
        calls: AtomicU64,
        fragile: bool,
    }

    impl Mock {
        fn new(tag: TheoryTag, eqs: impl Fn(u64) -> Partition + 'static) -> Mock {
            Mock {
                tag,
                eqs: Box::new(eqs),
                calls: AtomicU64::new(0),
                fragile: false,
            }
        }

        fn fragile(mut self) -> Mock {
            self.fragile = true;
            self
        }
    }

    impl AbstractDomain for Mock {
        type Elem = Mark;

        fn sig(&self) -> Sig {
            Sig::single(self.tag)
        }

        fn top(&self) -> Mark {
            Mark(false)
        }

        fn bottom(&self) -> Mark {
            Mark(true)
        }

        fn is_bottom(&self, e: &Mark) -> bool {
            e.0
        }

        fn meet_atom(&self, e: &Mark, atom: &Atom) -> Mark {
            if self.fragile && matches!(atom, Atom::Eq(..)) {
                Mark(true)
            } else {
                e.clone()
            }
        }

        fn implies_atom(&self, e: &Mark, _atom: &Atom) -> bool {
            e.0
        }

        fn join(&self, a: &Mark, b: &Mark) -> Mark {
            Mark(a.0 && b.0)
        }

        fn exists(&self, e: &Mark, _vars: &VarSet) -> Mark {
            e.clone()
        }

        fn var_equalities(&self, _e: &Mark) -> Partition {
            (self.eqs)(self.calls.fetch_add(1, Ordering::Relaxed))
        }

        fn alternate(&self, _e: &Mark, _y: Var, _avoid: &VarSet) -> Option<Term> {
            None
        }

        fn to_conj(&self, e: &Mark) -> Conj {
            if e.0 {
                Conj::of(Atom::eq(Term::int(0), Term::int(1)))
            } else {
                Conj::new()
            }
        }
    }

    fn inert(tag: TheoryTag) -> Mock {
        Mock::new(tag, |_| Partition::new())
    }

    /// A domain that invents a brand-new equality over fresh variables on
    /// every query never reaches the partition fixpoint; only the budget
    /// can stop it, and it must do so with a sound degraded result.
    #[test]
    fn budget_stops_endless_equality_stream() {
        let d1 = Mock::new(TheoryTag::LINARITH, |n| {
            let mut p = Partition::new();
            p.union(Var::named(&format!("g{n}")), Var::named(&format!("h{n}")));
            p
        });
        let d2 = inert(TheoryTag::UF);
        let budget = Budget::fuel(64);
        let s = no_saturate_budgeted(&d1, Mark(false), &d2, Mark(false), &budget);
        assert!(s.degraded, "exchange must stop via the budget");
        assert!(!s.bottom);
        assert!(budget.is_exhausted());
        let report = budget.report();
        assert!(report.events.iter().any(|e| e.site == "no_saturate"));
    }

    /// The exchanged equality itself produces bottom in the partner
    /// domain (a conjunction that is only jointly unsatisfiable): the
    /// next round must detect it and propagate bottom to both sides.
    #[test]
    fn exchanged_equality_can_produce_bottom() {
        let d1 = Mock::new(TheoryTag::LINARITH, |_| {
            let mut p = Partition::new();
            p.union(Var::named("a"), Var::named("b"));
            p
        });
        let d2 = inert(TheoryTag::UF).fragile();
        let s = no_saturate(&d1, Mark(false), &d2, Mark(false));
        assert!(s.bottom);
        assert!(d1.is_bottom(&s.left));
        assert!(d2.is_bottom(&s.right));
        assert!(s.equalities.same(Var::named("a"), Var::named("b")));
    }

    /// Two domains that each report a *different* single equality on every
    /// round — over a fixed, finite variable set. The joint partition only
    /// coarsens and is bounded, so the loop must still exit on its own,
    /// with every reported equality merged.
    #[test]
    fn disagreeing_rounds_converge_via_partition_bound() {
        let rotate = |n: u64| {
            let mut p = Partition::new();
            let i = (n % 3) as usize;
            p.union(
                Var::named(&format!("v{i}")),
                Var::named(&format!("v{}", i + 1)),
            );
            p
        };
        let d1 = Mock::new(TheoryTag::LINARITH, rotate);
        let d2 = Mock::new(TheoryTag::UF, move |n| rotate(n + 2));
        let s = no_saturate(&d1, Mark(false), &d2, Mark(false));
        assert!(!s.bottom);
        assert!(!s.degraded);
        // Everything the two streams ever reported ends up merged.
        for i in 0..3 {
            assert!(s.equalities.same(
                Var::named(&format!("v{i}")),
                Var::named(&format!("v{}", i + 1))
            ));
        }
    }
}

#[test]
fn reduced_product_var_equalities_merge_components() {
    let v = vocab();
    let d = ReducedProduct::new(AffineEq::new(), UfDomain::new());
    let e = d.from_conj(&v.parse_conj("a = b & x = F(a) & y = F(b)").unwrap());
    let p = d.var_equalities(&e);
    assert!(p.same(Var::named("a"), Var::named("b")));
    assert!(p.same(Var::named("x"), Var::named("y")));
}
