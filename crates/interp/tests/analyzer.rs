//! Integration tests of the abstract-interpretation engine across the
//! base domains: transfer-function behaviour, conditionals, widening, and
//! assertion checking.

use cai_core::{AbstractDomain, Budget, LogicalProduct};
use cai_interp::{parse_program, Analyzer};
use cai_linarith::{AffineEq, Polyhedra};
use cai_numeric::ParityDomain;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

fn verified(src: &str, run: impl Fn(&cai_interp::Program) -> Vec<bool>) -> Vec<bool> {
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, src).expect("program parses");
    run(&p)
}

fn with_affine(src: &str) -> Vec<bool> {
    verified(src, |p| {
        let d = AffineEq::new();
        let analysis = Analyzer::new(&d).run(p);
        analysis.assertions.iter().map(|a| a.verified).collect()
    })
}

fn with_poly(src: &str) -> Vec<bool> {
    verified(src, |p| {
        let d = Polyhedra::new();
        let analysis = Analyzer::new(&d).run(p);
        assert!(!analysis.diverged, "polyhedra analysis diverged");
        analysis.assertions.iter().map(|a| a.verified).collect()
    })
}

#[test]
fn straight_line_arithmetic() {
    assert_eq!(
        with_affine("x := 3; y := 2*x + 1; z := y - x; assert(z = 4); assert(y = 7);"),
        [true, true]
    );
}

#[test]
fn assignment_uses_pre_state() {
    // x on the right-hand side refers to the old value.
    assert_eq!(
        with_affine("x := 1; x := x + 1; x := x + x; assert(x = 4);"),
        [true]
    );
}

#[test]
fn self_referential_swap() {
    assert_eq!(
        with_affine(
            "a := 5; b := 7;
             t := a; a := b; b := t;
             assert(a = 7); assert(b = 5);"
        ),
        [true, true]
    );
}

#[test]
fn conditional_join_loses_branch_but_keeps_common() {
    assert_eq!(
        with_affine(
            "if (*) { x := 1; y := 2; } else { x := 3; y := 6; }
             assert(y = 2*x);
             assert(x = 1);"
        ),
        [true, false]
    );
}

#[test]
fn condition_atoms_are_assumed() {
    assert_eq!(
        with_poly(
            "x := *;
             if (x >= 5) { assert(x >= 5); assert(x >= 6); }
             else { assert(x <= 4); }"
        ),
        // Inside then: x >= 5 holds, x >= 6 does not; else: integer-style
        // negation gives x + 1 <= 5.
        [true, false, true]
    );
}

#[test]
fn widening_terminates_unbounded_counter() {
    // The polyhedra domain has infinite ascending chains; without
    // widening this loop would never stabilize.
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "x := 0;
         while (x < 100) { x := x + 1; }
         assert(x >= 100);
         assert(0 <= x);
         assert(x <= 100);",
    )
    .unwrap();
    let d = Polyhedra::new();
    let analysis = Analyzer::new(&d).run(&p);
    assert!(!analysis.diverged, "widening failed to terminate the loop");
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    // Exit knows ¬(x < 100) i.e. x >= 100, and the stable lower bound; the
    // upper bound x <= 100 requires narrowing, which the engine does not
    // do (standard widening-only behaviour).
    assert_eq!(got, [true, true, false]);
}

#[test]
fn havoc_forgets() {
    assert_eq!(
        with_affine("x := 1; y := x; x := *; assert(y = 1); assert(x = 1);"),
        [true, false]
    );
}

#[test]
fn assume_strengthens() {
    assert_eq!(
        with_affine("x := *; assume(x = 7); y := x + 1; assert(y = 8);"),
        [true]
    );
}

#[test]
fn unreachable_code_verifies_everything() {
    assert_eq!(
        with_affine("x := 1; assume(x = 2); assert(x = 99);"),
        [true]
    );
}

#[test]
fn parity_through_a_loop() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "x := 0;
         while (*) { x := x + 2; }
         assert(even(x));
         assert(odd(x + 1));",
    )
    .unwrap();
    let d = ParityDomain::new();
    let analysis = Analyzer::new(&d).run(&p);
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    assert_eq!(got, [true, true]);
}

#[test]
fn op_stats_are_recorded() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "x := 0; while (*) { x := x + 1; } if (*) { x := 0; } else { x := 1; }",
    )
    .unwrap();
    let d = AffineEq::new();
    let analysis = Analyzer::new(&d).run(&p);
    assert!(analysis.stats.joins >= 2);
    assert!(analysis.stats.exists >= 3);
    assert!(analysis.stats.meets >= 3);
}

#[test]
fn logical_product_keeps_mixed_invariants_through_branches() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "if (*) { k := 1; } else { k := 2; }
         r := F(k + 3);
         assert(r = F(k + 3));
         assert(r = F(4));",
    )
    .unwrap();
    let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    let analysis = Analyzer::new(&d).run(&p);
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    assert_eq!(got, [true, false]);
}

#[test]
fn entry_element_is_respected() {
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, "y := x + 1; assert(y = 11);").unwrap();
    let d = AffineEq::new();
    let entry = d.from_conj(&vocab.parse_conj("x = 10").unwrap());
    let analysis = Analyzer::new(&d).run_from(&p, entry);
    assert!(analysis.assertions[0].verified);
}

#[test]
fn iteration_cap_reports_divergence() {
    // A pathological setup: widening disabled (huge delay) on an
    // infinite-height domain; the engine must hit the cap and say so.
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, "x := 0; while (*) { x := x + 1; }").unwrap();
    let d = Polyhedra::new();
    let analysis = Analyzer::new(&d)
        .widen_delay(1000)
        .max_iterations(5)
        .run(&p);
    assert!(analysis.diverged);
}

#[test]
fn widen_delay_beyond_cap_still_terminates() {
    // The widening delay exceeds the iteration cap, so widening never
    // fires; the cap alone must stop the loop, flag divergence, and the
    // capped state cannot verify a fact that only holds on entry.
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, "x := 0; while (*) { x := x + 1; } assert(x = 0);").unwrap();
    let d = Polyhedra::new();
    let analysis = Analyzer::new(&d).widen_delay(50).max_iterations(3).run(&p);
    assert!(analysis.diverged);
    assert_eq!(analysis.loop_iterations, vec![3]);
    assert!(!analysis.assertions[0].verified);
}

#[test]
fn budget_exhaustion_forces_top_invariant_soundly() {
    // One budget governs both the engine and the domain. When it runs
    // out mid-fixpoint the loop invariant is forced to ⊤ — sound for any
    // loop — the run still terminates, and the degradation report names
    // the site.
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "x := 0; while (*) { x := x + 1; } assert(x = 0); assert(0 <= x);",
    )
    .unwrap();
    let budget = Budget::fuel(3);
    let d = Polyhedra::new().with_budget(budget.clone());
    let analysis = Analyzer::new(&d).with_budget(budget).run(&p);
    assert!(analysis.diverged);
    assert!(analysis.degradation.degraded);
    assert!(analysis.degradation.exhausted);
    assert!(analysis
        .degradation
        .events
        .iter()
        .any(|ev| ev.site == "analyzer/while"));
    // ⊤ verifies nothing specific about x: both assertions must fail
    // rather than be claimed unsoundly.
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    assert_eq!(got, [false, false]);
}

/// A wrapper domain whose widening degrades to ⊤ while exhausting the
/// shared budget — modelling a per-loop budget running out *inside* the
/// widen itself (sound: ⊤ over-approximates any widen result).
struct ExhaustingWiden {
    inner: AffineEq,
    budget: Budget,
}

impl AbstractDomain for ExhaustingWiden {
    type Elem = <AffineEq as AbstractDomain>::Elem;

    fn sig(&self) -> cai_term::Sig {
        self.inner.sig()
    }
    fn top(&self) -> Self::Elem {
        self.inner.top()
    }
    fn bottom(&self) -> Self::Elem {
        self.inner.bottom()
    }
    fn is_bottom(&self, e: &Self::Elem) -> bool {
        self.inner.is_bottom(e)
    }
    fn meet_atom(&self, e: &Self::Elem, atom: &cai_term::Atom) -> Self::Elem {
        self.inner.meet_atom(e, atom)
    }
    fn implies_atom(&self, e: &Self::Elem, atom: &cai_term::Atom) -> bool {
        self.inner.implies_atom(e, atom)
    }
    fn join(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.inner.join(a, b)
    }
    fn exists(&self, e: &Self::Elem, vars: &cai_term::VarSet) -> Self::Elem {
        self.inner.exists(e, vars)
    }
    fn var_equalities(&self, e: &Self::Elem) -> cai_core::Partition {
        self.inner.var_equalities(e)
    }
    fn alternate(
        &self,
        e: &Self::Elem,
        y: cai_term::Var,
        avoid: &cai_term::VarSet,
    ) -> Option<cai_term::Term> {
        self.inner.alternate(e, y, avoid)
    }
    fn to_conj(&self, e: &Self::Elem) -> cai_term::Conj {
        self.inner.to_conj(e)
    }
    fn widen(&self, _a: &Self::Elem, _b: &Self::Elem) -> Self::Elem {
        self.budget.exhaust();
        self.budget
            .degrade("test/widen", "budget ran out mid-widen; forced top");
        self.inner.top()
    }
}

#[test]
fn budget_exhaustion_during_final_widen_still_flags_divergence() {
    // Regression: when the budget runs out *inside* a widening that
    // degrades to ⊤ and the fixpoint test then succeeds in the same
    // round (⊤ ⊑ ⊤ here, since the entry state is already unconstrained),
    // the loop used to stabilize silently with `diverged = false`. The
    // divergence flag must also be set on this path, not only when the
    // iteration cap fires or exhaustion is observed at the top of a
    // round.
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, "while (*) { x := x + 1; }").unwrap();
    let budget = Budget::fuel(1_000_000);
    let d = ExhaustingWiden {
        inner: AffineEq::new(),
        budget: budget.clone(),
    };
    // widen_delay(0): the very first round widens, exhausting the budget
    // and returning ⊤, which is ⊑ the (already top) candidate invariant.
    let analysis = Analyzer::new(&d).widen_delay(0).with_budget(budget).run(&p);
    assert_eq!(analysis.loop_iterations, vec![1], "loop must stabilize");
    assert!(
        analysis.diverged,
        "budget exhaustion during the final widen must set `diverged`"
    );
    assert!(analysis.degradation.exhausted);
}

#[test]
fn exhausted_budget_on_logical_product_reports_and_terminates() {
    // The full combined analysis under a starvation budget: it must come
    // back (no divergence of the process itself), flag degradation, and
    // never verify an assertion that the unlimited run also rejects.
    let vocab = Vocab::standard();
    let src = "if (*) { k := 1; } else { k := 2; }
               r := F(k + 3);
               while (*) { r := F(r); }
               assert(r = F(4));";
    let p = parse_program(&vocab, src).unwrap();
    let clean_domain = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    let clean = Analyzer::new(&clean_domain).run(&p);
    let budget = Budget::fuel(5);
    let d = LogicalProduct::new(AffineEq::new(), UfDomain::new()).with_budget(budget.clone());
    let analysis = Analyzer::new(&d).with_budget(budget).run(&p);
    assert!(analysis.degradation.exhausted);
    for (starved, full) in analysis.assertions.iter().zip(&clean.assertions) {
        assert!(
            !starved.verified || full.verified,
            "starved run verified {} which the unlimited run rejects",
            starved.atom
        );
    }
}
