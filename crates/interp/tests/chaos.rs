//! Fault-injection acceptance tests: the full logical-product analyzer
//! run over chaos-wrapped component domains.
//!
//! [`ChaosDomain`] deterministically injects *sound* faults — spurious ⊤
//! results, skipped meets, dropped variable equalities, denied
//! implications, and budget exhaustion. Under any such fault stream the
//! analysis must (a) never panic, (b) terminate, and (c) only lose
//! precision: an assertion the chaotic run verifies must also be verified
//! by the clean run, because every injection only weakens elements and
//! all domain operators are monotone.

use cai_core::{Budget, ChaosDomain, LogicalProduct};
use cai_interp::{parse_program, Analyzer};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

/// Seed decorrelation between the two chaos wrappers of one run.
const SPLIT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Programs mixing branches, loops, linear arithmetic, and uninterpreted
/// functions, each with a blend of verifiable and unverifiable assertions.
const PROGRAMS: &[&str] = &[
    "if (*) { k := 1; } else { k := 2; }
     r := F(k + 3);
     assert(r = F(k + 3));
     assert(r = F(4));",
    "x := 0; s := x + 1;
     while (*) { x := x + 1; s := s + 1; }
     assert(s = x + 1);
     assert(x = 0);",
    "a := b;
     x := F(a); y := F(b);
     while (*) { x := F(x); y := F(y); }
     assert(x = y);
     assert(x = F(a));",
];

#[test]
fn chaos_analyzer_is_panic_free_terminating_and_sound() {
    let vocab = Vocab::standard();
    let mut cases = 0usize;
    for (pi, src) in PROGRAMS.iter().enumerate() {
        let p = parse_program(&vocab, src).expect("program parses");
        let clean_domain = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        let clean = Analyzer::new(&clean_domain).run(&p);
        for round in 0..40u64 {
            let seed = round * 1009 + pi as u64;
            // A third of the runs get a starvation budget so the
            // exhaustion/degradation paths are exercised too; the rest get
            // enough fuel that only the injected faults bite.
            let fuel = if round % 3 == 0 { 64 } else { 1_000_000 };
            let budget = Budget::fuel(fuel);
            let d = LogicalProduct::new(
                ChaosDomain::new(AffineEq::new(), seed).with_budget(budget.clone()),
                ChaosDomain::new(UfDomain::new(), seed ^ SPLIT).with_budget(budget.clone()),
            )
            .with_budget(budget.clone());
            let analysis = Analyzer::new(&d).with_budget(budget).run(&p);
            // Terminated (we are here) with the complete assertion record.
            assert_eq!(
                analysis.assertions.len(),
                clean.assertions.len(),
                "program {pi} seed {seed}: assertion record truncated"
            );
            // Only precision may be lost, never soundness.
            for (chaotic, full) in analysis.assertions.iter().zip(&clean.assertions) {
                assert!(
                    !chaotic.verified || full.verified,
                    "program {pi} seed {seed}: chaotic run verified `{}` \
                     which the clean run rejects",
                    chaotic.atom
                );
            }
            cases += 1;
        }
    }
    assert!(cases >= 100, "acceptance demands at least 100 seeded cases");
}

#[test]
fn chaos_runs_are_reproducible() {
    // The injector is a pure function of (seed, call index), so two runs
    // with the same seed produce identical outcomes — a failing seed can
    // be replayed exactly.
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, PROGRAMS[0]).expect("program parses");
    let verdicts = |seed: u64| -> (Vec<bool>, u64) {
        let d = LogicalProduct::new(
            ChaosDomain::new(AffineEq::new(), seed),
            ChaosDomain::new(UfDomain::new(), seed ^ SPLIT),
        );
        let analysis = Analyzer::new(&d).run(&p);
        let injected = d.first().injected() + d.second().injected();
        (
            analysis.assertions.iter().map(|a| a.verified).collect(),
            injected,
        )
    };
    for seed in [3u64, 77, 4096] {
        assert_eq!(
            verdicts(seed),
            verdicts(seed),
            "seed {seed} not reproducible"
        );
    }
}
