//! The logical product's split cache carried across analyzer fixpoint
//! rounds must be semantically invisible: cache on vs. off yields
//! bit-identical analyses — including after a budget-starved round — while
//! the multi-round fixpoint (join rounds, widening, and the recording
//! pass) actually exercises the cache.

use cai_core::{AbstractDomain, Budget, LogicalProduct, SplitCache};
use cai_interp::{parse_program, Analyzer, Program};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

/// The paper's Figure 1 loop: needs several fixpoint rounds, mixed
/// lin + UF facts, and a recording pass that revisits every statement
/// under the stable invariant.
const FIG1: &str = "
    a := 0; b := 0; s := 0; t := 0;
    while (*) {
        d := F(a);
        s := s + d;
        t := t + F(b);
        a := a + 1;
        b := b + 1;
    }
    assert(s = t);
";

fn program() -> (Vocab, Program) {
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, FIG1).expect("program parses");
    (vocab, p)
}

type Product = LogicalProduct<AffineEq, UfDomain>;

fn summary(
    a: &cai_interp::Analysis<<Product as AbstractDomain>::Elem>,
) -> (Vec<bool>, String, Vec<usize>, bool) {
    (
        a.assertions.iter().map(|x| x.verified).collect(),
        a.exit.to_string(),
        a.loop_iterations.clone(),
        a.diverged,
    )
}

#[test]
fn analysis_is_bit_identical_with_and_without_cache() {
    let (_v, p) = program();
    let with_cache = Product::new(AffineEq::new(), UfDomain::new());
    let without = Product::new(AffineEq::new(), UfDomain::new()).with_split_cache_capacity(0);

    let a = Analyzer::new(&with_cache).run(&p);
    let b = Analyzer::new(&without).run(&p);
    assert_eq!(summary(&a), summary(&b), "cache changed the analysis");
    assert_eq!(summary(&a).0, vec![true], "Figure 1 must verify");

    let s = with_cache.stats().snapshot();
    assert!(
        s.cache_hits > 0,
        "a multi-round fixpoint produced no cache hits: {s}"
    );
    assert_eq!(without.stats().snapshot().cache_hits, 0);
}

#[test]
fn cache_carries_across_analysis_rounds() {
    let (_v, p) = program();
    let d = Product::new(AffineEq::new(), UfDomain::new());
    let first = Analyzer::new(&d).run(&p);
    let misses_after_first = d.stats().snapshot().cache_misses;
    // Re-analysis with the same domain (the driver's incremental path)
    // replays the warmed cache: same result, few or no new misses.
    let second = Analyzer::new(&d).run(&p);
    assert_eq!(summary(&first), summary(&second));
    let s = d.stats().snapshot();
    assert!(
        s.cache_misses - misses_after_first < misses_after_first,
        "a warmed cache re-analysis recomputed most splits: {s}"
    );
}

/// A starved round must neither panic nor poison the cache for a later,
/// well-funded analysis sharing it.
#[test]
fn starved_round_does_not_poison_later_analyses() {
    let (_v, p) = program();
    let shared: SplitCache<_, _> = SplitCache::new();

    for fuel in [3, 10, 40, 200] {
        let budget = Budget::fuel(fuel);
        let starved = Product::new(AffineEq::new(), UfDomain::new())
            .with_budget(budget.clone())
            .with_split_cache(shared.clone());
        let a = Analyzer::new(&starved).with_budget(budget).run(&p);
        // Degraded, but sound: it may only fail to verify, never crash.
        assert!(!a.diverged || a.degradation.degraded);
    }

    let funded = Product::new(AffineEq::new(), UfDomain::new()).with_split_cache(shared);
    let fresh = Product::new(AffineEq::new(), UfDomain::new()).with_split_cache_capacity(0);
    let a = Analyzer::new(&funded).run(&p);
    let b = Analyzer::new(&fresh).run(&p);
    assert_eq!(
        summary(&a),
        summary(&b),
        "a cache touched by starved rounds changed a later analysis"
    );
    assert_eq!(summary(&a).0, vec![true]);
}
