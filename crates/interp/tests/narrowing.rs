//! Integration tests of the post-widening narrowing recovery pass: the
//! pinned precision-recovery case, its soundness bracket, recovery after
//! budget-forced widening, and the flat-policy bit-identity contract.

use cai_core::{AbstractDomain, Budget, BudgetPolicy};
use cai_interp::{parse_program, Analyzer, Program};
use cai_linarith::Polyhedra;
use cai_term::parse::Vocab;

/// The canonical widening-loss program: widening extrapolates the loop
/// invariant of `x` to an unbounded upper bound, so the exit state knows
/// `x >= 100` (loop-condition negation) and `x >= 0` but not `x <= 100`
/// — unless a descending (narrowing) pass recovers it.
const COUNTER_LOOP: &str = "x := 0;
     while (x < 100) { x := x + 1; }
     assert(x >= 100);
     assert(0 <= x);
     assert(x <= 100);";

fn counter_program() -> Program {
    parse_program(&Vocab::standard(), COUNTER_LOOP).expect("program parses")
}

#[test]
fn narrowing_recovers_the_widened_upper_bound() {
    // Pinned recovery case: under the flat policy the upper bound is
    // lost (see `widening_terminates_unbounded_counter` in analyzer.rs);
    // under the adaptive policy the bounded narrowing pass recovers
    // x <= 100, flipping the third assertion to verified.
    let p = counter_program();
    let d = Polyhedra::new();

    let flat = Analyzer::new(&d).run(&p);
    let flat_got: Vec<bool> = flat.assertions.iter().map(|a| a.verified).collect();
    assert_eq!(flat_got, [true, true, false], "flat loses the upper bound");
    assert_eq!(flat.stats.narrow_rounds, 0, "flat never narrows");

    let adaptive = Analyzer::new(&d)
        .with_policy(BudgetPolicy::adaptive())
        .run(&p);
    assert!(!adaptive.diverged);
    let got: Vec<bool> = adaptive.assertions.iter().map(|a| a.verified).collect();
    assert_eq!(got, [true, true, true], "narrowing recovers x <= 100");
    assert!(adaptive.stats.narrow_rounds > 0, "narrowing actually ran");
    assert_eq!(adaptive.stats.narrow_recoveries, 1, "one loop recovered");
}

#[test]
fn narrowed_invariant_is_sound_and_below_the_widened_one() {
    // The narrowing contract, checked on abstract elements: the narrowed
    // exit state must be ⊑ the widened one (narrowing only descends) and
    // must still over-approximate the concrete exit state x = 100.
    let p = counter_program();
    let d = Polyhedra::new();
    let widened = Analyzer::new(&d).run(&p).exit;
    let narrowed = Analyzer::new(&d)
        .with_policy(BudgetPolicy::adaptive())
        .run(&p)
        .exit;

    assert!(
        d.le(&narrowed, &widened),
        "narrowed exit must be below the widened exit"
    );
    assert!(
        !d.le(&widened, &narrowed),
        "recovery must be strict on this program"
    );
    // The concrete exit state: exactly x = 100.
    let concrete = parse_program(&Vocab::standard(), "x := 100;").expect("parses");
    let exact = Analyzer::new(&d).run(&concrete).exit;
    assert!(
        d.le(&exact, &narrowed),
        "narrowed exit must still cover the concrete fixpoint x = 100"
    );
}

#[test]
fn narrowing_recovers_after_budget_forced_widening() {
    // Starve the fixpoint so the loop is cut short by fuel exhaustion
    // (forced over-approximation) — the recovery slice is independent
    // fuel, so the narrowing pass still runs and still tightens.
    let p = counter_program();
    let d = Polyhedra::new();

    let starved_flat = Analyzer::new(&d).with_budget(Budget::fuel(40)).run(&p);
    let flat_got: Vec<bool> = starved_flat.assertions.iter().map(|a| a.verified).collect();
    assert!(
        !flat_got[2],
        "starved flat run must not verify the upper bound"
    );

    let starved_adaptive = Analyzer::new(&d)
        .with_budget(Budget::fuel(40))
        .with_policy(BudgetPolicy::adaptive())
        .run(&p);
    let got: Vec<bool> = starved_adaptive
        .assertions
        .iter()
        .map(|a| a.verified)
        .collect();
    assert_eq!(
        got,
        [true, true, true],
        "narrowing recovers even when the main pool ran dry"
    );
    assert!(starved_adaptive.stats.narrow_recoveries >= 1);
}

#[test]
fn flat_policy_is_bit_identical_to_the_default() {
    // BudgetPolicy::flat() must be indistinguishable from not setting a
    // policy at all: same verdicts, same exit element, same counters.
    let p = counter_program();
    let d = Polyhedra::new();
    let default_run = Analyzer::new(&d).run(&p);
    let flat_run = Analyzer::new(&d).with_policy(BudgetPolicy::flat()).run(&p);

    assert!(d.equal_elems(&default_run.exit, &flat_run.exit));
    let dv: Vec<bool> = default_run.assertions.iter().map(|a| a.verified).collect();
    let fv: Vec<bool> = flat_run.assertions.iter().map(|a| a.verified).collect();
    assert_eq!(dv, fv);
    assert_eq!(default_run.loop_iterations, flat_run.loop_iterations);
    assert_eq!(default_run.stats.joins, flat_run.stats.joins);
    assert_eq!(default_run.stats.widens, flat_run.stats.widens);
    assert_eq!(flat_run.stats.narrow_rounds, 0);
    assert_eq!(flat_run.stats.narrow_recoveries, 0);
}

#[test]
fn flat_policy_spends_identical_fuel() {
    // The fuel trace is part of the bit-identity contract: a flat-policy
    // run must tick exactly what the pre-policy engine ticked.
    let p = counter_program();
    let d = Polyhedra::new();
    let b_default = Budget::fuel(100_000);
    let b_flat = Budget::fuel(100_000);
    Analyzer::new(&d).with_budget(b_default.clone()).run(&p);
    Analyzer::new(&d)
        .with_budget(b_flat.clone())
        .with_policy(BudgetPolicy::flat())
        .run(&p);
    assert_eq!(b_default.report().fuel_spent, b_flat.report().fuel_spent);
    assert_eq!(b_default.remaining_fuel(), b_flat.remaining_fuel());
}
