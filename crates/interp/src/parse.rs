//! Parser for the small imperative language.
//!
//! Grammar (expressions and atoms use [`cai_term::parse`]):
//!
//! ```text
//! module  := proc*
//! proc    := 'proc' ident '(' (ident (',' ident)*)? ')' block
//! program := stmt*
//! stmt    := ident ':=' expr ';'
//!          | ident ':=' '*' ';'                 -- havoc
//!          | ident ':=' 'call' ident '(' (expr (',' expr)*)? ')' ';'
//!          | 'assume' '(' atom ')' ';'
//!          | 'assert' '(' atom ')' ';'
//!          | 'if' '(' cond ')' block ('else' block)?
//!          | 'while' '(' cond ')' block
//! block   := '{' stmt* '}'
//! cond    := '*' | atom
//! ```
//!
//! Line comments start with `//`.

use crate::ast::{Cond, Module, Procedure, Program, Stmt};
use cai_term::parse::Vocab;
use cai_term::Var;
use std::fmt;

/// A program-parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramParseError {
    msg: String,
    line: usize,
}

impl ProgramParseError {
    fn new(msg: impl Into<String>, line: usize) -> ProgramParseError {
        ProgramParseError {
            msg: msg.into(),
            line,
        }
    }
}

impl fmt::Display for ProgramParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ProgramParseError {}

/// Parses a program, resolving function symbols through `vocab`.
///
/// # Errors
///
/// Returns [`ProgramParseError`] on malformed input; the embedded term
/// grammar reports through the same error type.
pub fn parse_program(vocab: &Vocab, src: &str) -> Result<Program, ProgramParseError> {
    let mut p = ProgParser {
        vocab,
        src: &strip_comments(src),
        pos: 0,
    };
    let stmts = p.stmts(true)?;
    Ok(Program { stmts })
}

/// Parses a multi-procedure module: a sequence of `proc name(params)`
/// blocks. Procedure names must be unique.
///
/// # Errors
///
/// Returns [`ProgramParseError`] on malformed input or duplicate
/// procedure names.
pub fn parse_module(vocab: &Vocab, src: &str) -> Result<Module, ProgramParseError> {
    let stripped = strip_comments(src);
    let mut p = ProgParser {
        vocab,
        src: &stripped,
        pos: 0,
    };
    let mut procs: Vec<Procedure> = Vec::new();
    while !p.at_end() {
        let line = p.line();
        p.expect("proc")?;
        let name = p.ident()?;
        if procs.iter().any(|q| q.name == name) {
            return Err(ProgramParseError::new(
                format!("duplicate procedure `{name}`"),
                line,
            ));
        }
        p.expect("(")?;
        let mut params: Vec<Var> = Vec::new();
        if p.peek_byte() != Some(b')') {
            loop {
                let param = p.ident()?;
                params.push(Var::named(&param));
                if !p.eat(",") {
                    break;
                }
            }
        }
        p.expect(")")?;
        let stmts = p.block()?;
        procs.push(Procedure {
            name,
            params,
            body: Program { stmts },
        });
    }
    Ok(Module { procs })
}

fn strip_comments(src: &str) -> String {
    src.lines()
        .map(|l| match l.find("//") {
            Some(i) => &l[..i],
            None => l,
        })
        .collect::<Vec<_>>()
        .join("\n")
}

struct ProgParser<'a> {
    vocab: &'a Vocab,
    src: &'a str,
    pos: usize,
}

impl<'a> ProgParser<'a> {
    fn line(&self) -> usize {
        self.src[..self.pos].bytes().filter(|&b| b == b'\n').count() + 1
    }

    fn err(&self, msg: impl Into<String>) -> ProgramParseError {
        ProgramParseError::new(msg, self.line())
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }

    fn peek_byte(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.as_bytes().get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ProgramParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{token}`")))
        }
    }

    fn ident(&mut self) -> Result<String, ProgramParseError> {
        self.skip_ws();
        let bytes = self.src.as_bytes();
        let start = self.pos;
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_alphanumeric()
                || bytes[self.pos] == b'_'
                || bytes[self.pos] == b'\'')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected an identifier"));
        }
        Ok(self.src[start..self.pos].to_owned())
    }

    /// Consumes until `stop`, tracking parenthesis depth; returns the
    /// consumed slice (without the stop byte, which is consumed).
    fn until(&mut self, stop: u8) -> Result<&'a str, ProgramParseError> {
        self.skip_ws();
        let bytes = self.src.as_bytes();
        let start = self.pos;
        let mut depth = 0usize;
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            if b == b'(' {
                depth += 1;
            } else if b == b')' {
                if depth == 0 && stop == b')' {
                    let out = &self.src[start..self.pos];
                    self.pos += 1;
                    return Ok(out);
                }
                depth = depth.saturating_sub(1);
            } else if b == stop && depth == 0 {
                let out = &self.src[start..self.pos];
                self.pos += 1;
                return Ok(out);
            }
            self.pos += 1;
        }
        Err(self.err(format!("missing `{}`", stop as char)))
    }

    fn stmts(&mut self, top: bool) -> Result<Vec<Stmt>, ProgramParseError> {
        let mut out = Vec::new();
        loop {
            if self.at_end() {
                if top {
                    return Ok(out);
                }
                return Err(self.err("missing `}`"));
            }
            if !top && self.peek_byte() == Some(b'}') {
                return Ok(out);
            }
            out.push(self.stmt()?);
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ProgramParseError> {
        self.expect("{")?;
        let body = self.stmts(false)?;
        self.expect("}")?;
        Ok(body)
    }

    fn cond(&mut self) -> Result<Cond, ProgramParseError> {
        let inner = self.until(b')')?.trim().to_owned();
        if inner == "*" {
            return Ok(Cond::Nondet);
        }
        let atom = self
            .vocab
            .parse_atom(&inner)
            .map_err(|e| self.err(format!("in condition `{inner}`: {e}")))?;
        Ok(Cond::Atom(atom))
    }

    fn stmt(&mut self) -> Result<Stmt, ProgramParseError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.starts_with("if") && !ident_continues(rest, 2) {
            self.pos += 2;
            self.expect("(")?;
            let c = self.cond()?;
            let then = self.block()?;
            let els = if self.eat("else") {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(c, then, els));
        }
        if rest.starts_with("while") && !ident_continues(rest, 5) {
            self.pos += 5;
            self.expect("(")?;
            let c = self.cond()?;
            let body = self.block()?;
            return Ok(Stmt::While(c, body));
        }
        if rest.starts_with("assume") && !ident_continues(rest, 6) {
            self.pos += 6;
            self.expect("(")?;
            let inner = self.until(b')')?.trim().to_owned();
            let atom = self
                .vocab
                .parse_atom(&inner)
                .map_err(|e| self.err(format!("in assume `{inner}`: {e}")))?;
            self.expect(";")?;
            return Ok(Stmt::Assume(atom));
        }
        if rest.starts_with("assert") && !ident_continues(rest, 6) {
            self.pos += 6;
            self.expect("(")?;
            let inner = self.until(b')')?.trim().to_owned();
            let atom = self
                .vocab
                .parse_atom(&inner)
                .map_err(|e| self.err(format!("in assert `{inner}`: {e}")))?;
            self.expect(";")?;
            return Ok(Stmt::Assert(atom));
        }
        // Assignment, havoc, or procedure call.
        let name = self.ident()?;
        self.expect(":=")?;
        self.skip_ws();
        if self.peek_byte() == Some(b'*') {
            // `*` only counts as havoc when directly followed by `;`
            // (otherwise it would be a malformed expression anyway).
            self.pos += 1;
            self.expect(";")?;
            return Ok(Stmt::Havoc(Var::named(&name)));
        }
        let after = &self.src[self.pos..];
        if after.starts_with("call") && !ident_continues(after, 4) {
            self.pos += 4;
            let callee = self.ident()?;
            self.expect("(")?;
            let inner = self.until(b')')?.to_owned();
            self.expect(";")?;
            let mut args = Vec::new();
            for piece in split_top_level_commas(&inner) {
                let piece = piece.trim();
                if piece.is_empty() {
                    continue;
                }
                let t = self
                    .vocab
                    .parse_term(piece)
                    .map_err(|e| self.err(format!("in call argument `{piece}`: {e}")))?;
                args.push(t);
            }
            return Ok(Stmt::Call(Var::named(&name), callee, args));
        }
        let rhs_src = self.until(b';')?.trim().to_owned();
        let rhs = self
            .vocab
            .parse_term(&rhs_src)
            .map_err(|e| self.err(format!("in `{name} := {rhs_src}`: {e}")))?;
        Ok(Stmt::Assign(Var::named(&name), rhs))
    }
}

/// Splits on commas at parenthesis depth 0 (call arguments may contain
/// nested applications like `F(a, b)`).
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn ident_continues(s: &str, at: usize) -> bool {
    s.as_bytes()
        .get(at)
        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        parse_program(&Vocab::standard(), src).unwrap()
    }

    #[test]
    fn straight_line() {
        let p = parse("x := 1; y := x + 2; assert(y = 3);");
        assert_eq!(p.stmts.len(), 3);
        assert_eq!(p.assertion_count(), 1);
    }

    #[test]
    fn havoc_and_assume() {
        let p = parse("x := *; assume(x >= 0); assert(0 <= x);");
        assert!(matches!(p.stmts[0], Stmt::Havoc(_)));
        assert!(matches!(p.stmts[1], Stmt::Assume(_)));
    }

    #[test]
    fn nested_control_flow() {
        let p = parse(
            "while (*) {
               if (x < 10) { x := x + 1; } else { x := 0; }
             }
             assert(x = x);",
        );
        assert_eq!(p.stmts.len(), 2);
        let Stmt::While(Cond::Nondet, body) = &p.stmts[0] else {
            panic!("expected while")
        };
        assert!(matches!(body[0], Stmt::If(..)));
    }

    #[test]
    fn function_calls_in_expressions() {
        let p = parse("b2 := F(b2); c1 := F(2*c1 - c2);");
        assert_eq!(p.stmts.len(), 2);
        let Stmt::Assign(_, rhs) = &p.stmts[1] else {
            panic!()
        };
        assert_eq!(rhs.to_string(), "F(2*c1 - c2)");
    }

    #[test]
    fn comments_ignored() {
        let p = parse("// setup\nx := 1; // one\nassert(x = 1);");
        assert_eq!(p.stmts.len(), 2);
    }

    #[test]
    fn errors_carry_lines() {
        let e = parse_program(&Vocab::standard(), "x := 1;\ny := ;").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        assert!(parse_program(&Vocab::standard(), "if (x = 1) { x := 2;").is_err());
        assert!(parse_program(&Vocab::standard(), "assert(x + y);").is_err());
    }

    #[test]
    fn call_statements() {
        let p = parse("x := call f(a + 1, F(b, c)); y := call g();");
        let Stmt::Call(dst, name, args) = &p.stmts[0] else {
            panic!("expected call, got {:?}", p.stmts[0])
        };
        assert_eq!(dst.name(), "x");
        assert_eq!(name, "f");
        assert_eq!(args.len(), 2);
        assert_eq!(args[0].to_string(), "a + 1");
        assert_eq!(args[1].to_string(), "F(b, c)");
        let Stmt::Call(_, gname, gargs) = &p.stmts[1] else {
            panic!("expected call")
        };
        assert_eq!(gname, "g");
        assert!(gargs.is_empty());
        // `call` only triggers as a keyword: `caller` is a plain term.
        let p2 = parse("x := caller + 1;");
        assert!(matches!(p2.stmts[0], Stmt::Assign(..)));
    }

    #[test]
    fn modules_parse_and_roundtrip() {
        let src = "proc id(a) { ret := a; }
                   proc twice(a) { t := call id(a); ret := t + t; }";
        let m = parse_module(&Vocab::standard(), src).unwrap();
        assert_eq!(m.procs.len(), 2);
        assert_eq!(m.procs[0].name, "id");
        assert_eq!(m.procs[1].params.len(), 1);
        assert_eq!(m.procs[1].callees(), vec!["id".to_owned()]);
        let m2 = parse_module(&Vocab::standard(), &m.to_string()).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn module_errors() {
        let v = Vocab::standard();
        assert!(parse_module(&v, "proc f() { ret := 1; } proc f() {}").is_err());
        assert!(parse_module(&v, "x := 1;").is_err());
        assert!(parse_module(&v, "proc f( { }").is_err());
    }

    #[test]
    fn display_roundtrip() {
        let src = "x := 1;
while (x < 10) {
  x := x + 1;
}
assert(x = 10);
";
        let p = parse(src);
        let p2 = parse(&p.to_string());
        assert_eq!(p, p2);
    }
}
