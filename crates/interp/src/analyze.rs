//! The abstract-interpretation engine: forward analysis over the
//! flowchart nodes of the paper's Figure 5, with loop fixpoints and
//! widening (§4.3).

use crate::ast::{stmt_measures, Cond, Program, Stmt};
use cai_core::{
    AbstractDomain, Budget, BudgetPolicy, CacheConfig, DegradationReport, SizeMeasures,
};
use cai_obs::provenance;
use cai_term::{Atom, Conj, Term, Var, VarSet};
use std::collections::BTreeMap;

/// The verdict for one `assert` statement, in program order.
#[derive(Clone, Debug)]
pub struct AssertionOutcome {
    /// The asserted atomic fact.
    pub atom: Atom,
    /// Whether the inferred invariant implies it.
    pub verified: bool,
}

/// Aggregate operation counters (used by the complexity experiments).
#[derive(Clone, Copy, Debug, Default)]
pub struct OpStats {
    /// Join operations performed.
    pub joins: usize,
    /// Widening operations performed.
    pub widens: usize,
    /// Existential quantifications performed.
    pub exists: usize,
    /// Atom meets performed.
    pub meets: usize,
    /// Narrowing (descending) rounds run after widened loop fixpoints.
    pub narrow_rounds: usize,
    /// Loops whose widened invariant the narrowing pass strictly
    /// tightened (the adopted candidate passed the inductiveness
    /// re-check).
    pub narrow_recoveries: usize,
}

/// The result of analyzing a program.
#[derive(Clone, Debug)]
pub struct Analysis<E> {
    /// Assertion verdicts, in program order.
    pub assertions: Vec<AssertionOutcome>,
    /// The abstract state at program exit.
    pub exit: E,
    /// Fixpoint iteration counts, one per `while` loop in program order
    /// (the Theorem 6 measurement).
    pub loop_iterations: Vec<usize>,
    /// Whether any loop hit the iteration cap without stabilizing.
    pub diverged: bool,
    /// Operation counters.
    pub stats: OpStats,
    /// What the governing [`Budget`] observed: fuel spent and every place
    /// a governed operation substituted a sound over-approximation.
    pub degradation: DegradationReport,
}

impl<E> Analysis<E> {
    /// The number of verified assertions.
    pub fn verified_count(&self) -> usize {
        self.assertions.iter().filter(|a| a.verified).count()
    }
}

/// A forward abstract interpreter over any [`AbstractDomain`].
///
/// The transfer functions are the paper's:
///
/// - join nodes use `J_L`,
/// - the assignment `x := e` renames `x` to a fresh `x₀`, meets with
///   `x = e[x₀/x]` when the domain's signature understands `e` (otherwise
///   havocs), and existentially quantifies `x₀` with `Q_L`,
/// - conditional nodes meet with the branch atom (or its atomic negation)
///   when expressible, and
/// - loops iterate join to a fixpoint, switching to the widening operator
///   after [`Analyzer::widen_delay`] rounds.
///
/// An optional *expression view* rewrites every program term before it
/// reaches the domain — used to give a standalone UF analysis the
/// Herbrand (all-operators-uninterpreted) view of the program, as in the
/// paper's description of running the component analyses separately.
/// An expression view applied to every term before transfer (e.g. the
/// Herbrand view).
type TermView<'d> = Box<dyn Fn(&Term) -> Term + 'd>;

/// The knobs shared by every fixpoint entry point — the intra-procedure
/// [`Analyzer`] and the interprocedural driver both consume one of
/// these, so the two layers cannot drift apart.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Plain-join rounds before a loop fixpoint switches to widening.
    pub widen_delay: usize,
    /// Hard cap on fixpoint iterations per loop.
    pub max_iterations: usize,
    /// The governing budget: statement transfers tick it, and governed
    /// loops degrade soundly when it is exhausted.
    pub budget: Budget,
    /// How fuel is apportioned and whether widened loop invariants get a
    /// narrowing recovery pass. [`BudgetPolicy::Flat`] (the default)
    /// reproduces the pre-policy engine bit for bit: loops share the
    /// budget directly and no narrowing runs.
    pub policy: BudgetPolicy,
    /// The unified cache configuration ([`cai_core::cache`]): sizes the
    /// logical product's split cache + per-alien-term memo (consumers that
    /// build products pass this to `LogicalProduct::with_cache_config`)
    /// and the driver's summary cache. Defaults reproduce the
    /// pre-redesign behavior of every cache.
    pub cache: CacheConfig,
}

impl AnalysisConfig {
    /// The default configuration: widening after 4 rounds, iteration cap
    /// 60, unlimited budget, flat (non-adaptive) policy, default caches.
    pub fn new() -> AnalysisConfig {
        AnalysisConfig {
            widen_delay: 4,
            max_iterations: 60,
            budget: Budget::unlimited(),
            policy: BudgetPolicy::Flat,
            cache: CacheConfig::default(),
        }
    }

    /// Sets the widening delay.
    pub fn widen_delay(mut self, rounds: usize) -> Self {
        self.widen_delay = rounds;
        self
    }

    /// Sets the iteration cap.
    pub fn max_iterations(mut self, cap: usize) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Sets the governing budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the budget policy (see [`BudgetPolicy`]).
    pub fn with_policy(mut self, policy: BudgetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the cache configuration (see [`CacheConfig`]).
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig::new()
    }
}

/// One `dst := call name(args)` statement, bundled with the caller's
/// abstract state at the site. Resolvers receive the whole site — not
/// just the callee name and argument terms — so a context-sensitive
/// resolver can project what the caller knows onto the callee's formals
/// and specialize the callee on that entry condition.
pub struct CallSite<'c, D: AbstractDomain> {
    /// The caller's abstract state immediately before the call.
    pub state: D::Elem,
    /// The destination variable (its pre-state value may still be
    /// mentioned by the arguments).
    pub dst: Var,
    /// The callee name.
    pub name: &'c str,
    /// The argument terms, already rewritten by the expression view.
    pub args: &'c [Term],
}

/// Resolves `x := call f(…)` statements for the analyzer.
///
/// The interprocedural driver implements this over its procedure
/// summaries; the base analyzer has no resolver and conservatively
/// havocs the destination (sound for call-by-value calls, whose only
/// effect is on `x`).
pub trait CallResolver<D: AbstractDomain> {
    /// The abstract state after the call described by `site`, or `None`
    /// to fall back to the analyzer's conservative havoc.
    fn resolve_call(&self, domain: &D, site: CallSite<'_, D>) -> Option<D::Elem>;
}

pub struct Analyzer<'d, D: AbstractDomain> {
    domain: &'d D,
    view: Option<TermView<'d>>,
    calls: Option<&'d dyn CallResolver<D>>,
    cfg: AnalysisConfig,
}

impl<'d, D: AbstractDomain> Analyzer<'d, D> {
    /// Creates an analyzer over `domain` with the default
    /// [`AnalysisConfig`] (widening after 4 rounds, iteration cap 60,
    /// unlimited budget).
    pub fn new(domain: &'d D) -> Analyzer<'d, D> {
        Analyzer {
            domain,
            view: None,
            calls: None,
            cfg: AnalysisConfig::new(),
        }
    }

    /// Replaces the whole configuration at once (the driver shares one
    /// [`AnalysisConfig`] across every analyzer it spawns).
    pub fn with_config(mut self, cfg: AnalysisConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// Governs the analysis by `budget`: each statement transfer ticks it,
    /// and a loop fixpoint that observes exhaustion stops immediately with
    /// the invariant forced to ⊤ (sound, flagged via
    /// [`Analysis::diverged`] and the degradation report). Clone the same
    /// budget into the domain (see e.g. `Polyhedra::with_budget`) to bound
    /// the *whole* analysis with one fuel counter.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.cfg.budget = budget;
        self
    }

    /// The governing budget.
    pub fn budget(&self) -> &Budget {
        &self.cfg.budget
    }

    /// Sets the budget policy: [`BudgetPolicy::Adaptive`] gives every
    /// loop fixpoint its own size-derived fuel slice and runs a bounded
    /// narrowing recovery pass after widened (especially budget-forced)
    /// invariants; [`BudgetPolicy::Flat`] is the pre-policy behaviour,
    /// bit for bit.
    pub fn with_policy(mut self, policy: BudgetPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Installs an expression view applied to every term before transfer.
    pub fn with_view(mut self, view: impl Fn(&Term) -> Term + 'd) -> Self {
        self.view = Some(Box::new(view));
        self
    }

    /// Installs a [`CallResolver`] consulted for every `call` statement.
    /// Without one (or when it returns `None`), calls havoc their
    /// destination.
    pub fn with_calls(mut self, calls: &'d dyn CallResolver<D>) -> Self {
        self.calls = Some(calls);
        self
    }

    /// Sets the number of plain-join rounds before widening kicks in.
    pub fn widen_delay(mut self, rounds: usize) -> Self {
        self.cfg.widen_delay = rounds;
        self
    }

    /// Sets the hard cap on fixpoint iterations per loop.
    pub fn max_iterations(mut self, cap: usize) -> Self {
        self.cfg.max_iterations = cap;
        self
    }

    /// Analyzes a program starting from `top`.
    pub fn run(&self, program: &Program) -> Analysis<D::Elem> {
        self.run_from(program, self.domain.top())
    }

    /// Analyzes a program starting from a given entry element.
    pub fn run_from(&self, program: &Program, entry: D::Elem) -> Analysis<D::Elem> {
        let mut ctx = Ctx {
            analyzer: self,
            budget: self.cfg.budget.clone(),
            assertions: Vec::new(),
            loop_iterations: Vec::new(),
            next_loop_index: 0,
            diverged: false,
            stats: OpStats::default(),
        };
        let exit = ctx.exec_seq(&program.stmts, entry, true);
        Analysis {
            assertions: ctx.assertions,
            exit,
            loop_iterations: ctx.loop_iterations,
            diverged: ctx.diverged,
            stats: ctx.stats,
            degradation: self.cfg.budget.report(),
        }
    }

    fn apply_view(&self, t: &Term) -> Term {
        match &self.view {
            Some(f) => f(t),
            None => t.clone(),
        }
    }

    fn view_atom(&self, atom: &Atom) -> Atom {
        if self.view.is_none() {
            return atom.clone();
        }
        let args: Vec<Term> = atom
            .args()
            .into_iter()
            .map(|t| self.apply_view(t))
            .collect();
        atom.with_args(args)
    }
}

struct Ctx<'a, 'd, D: AbstractDomain> {
    analyzer: &'a Analyzer<'d, D>,
    /// The budget currently governing statement transfers. Starts as a
    /// clone of the configured budget (same shared counter — the flat
    /// policy is bit-identical to ticking the config budget directly);
    /// the adaptive policy swaps in a per-loop [`Budget::child`] slice
    /// for each fixpoint and a [`Budget::recovery_slice`] for each
    /// narrowing pass, so nested loops nest their slices too.
    budget: Budget,
    assertions: Vec<AssertionOutcome>,
    loop_iterations: Vec<usize>,
    /// Index of the next `while` encountered at the current nesting
    /// level — the `loop#N` label of the blame layer's scope. Reset to 0
    /// for each pass over a loop body, so a syntactic loop keeps one
    /// stable label no matter how many fixpoint rounds re-execute it.
    next_loop_index: usize,
    diverged: bool,
    stats: OpStats,
}

impl<'a, 'd, D: AbstractDomain> Ctx<'a, 'd, D> {
    fn domain(&self) -> &'d D {
        self.analyzer.domain
    }

    /// Renames `x` to `x0` by round-tripping through the conjunction
    /// presentation (exact for logical lattices).
    fn rename(&mut self, e: &D::Elem, x: Var, x0: Var) -> D::Elem {
        let d = self.domain();
        if d.is_bottom(e) {
            return d.bottom();
        }
        let c = d.to_conj(e);
        if !c.vars().contains(&x) {
            return e.clone();
        }
        let mut map = BTreeMap::new();
        map.insert(x, Term::var(x0));
        d.from_conj(&c.subst(&map))
    }

    fn meet_if_owned(&mut self, e: D::Elem, atom: &Atom) -> D::Elem {
        let d = self.domain();
        if d.sig().owns_atom(atom) {
            self.stats.meets += 1;
            d.meet_atom(&e, atom)
        } else {
            e
        }
    }

    fn assume_cond(&mut self, e: D::Elem, cond: &Cond, branch: bool) -> D::Elem {
        match cond {
            Cond::Nondet => e,
            Cond::Atom(a) => {
                let a = self.analyzer.view_atom(a);
                if branch {
                    self.meet_if_owned(e, &a)
                } else {
                    match a.negate() {
                        Some(n) => self.meet_if_owned(e, &n),
                        None => e,
                    }
                }
            }
        }
    }

    fn exec_seq(&mut self, stmts: &[Stmt], mut e: D::Elem, record: bool) -> D::Elem {
        for s in stmts {
            e = self.exec(s, e, record);
        }
        e
    }

    /// The bounded narrowing pass: descending iteration from a widened
    /// loop invariant, recovering precision the widening (especially a
    /// budget-forced ⊤) destroyed. Runs under its own
    /// [`Budget::recovery_slice`] — deliberately independent of the
    /// (possibly dry) loop pool, still bound by the wall-clock deadline.
    ///
    /// Soundness does not rest on the domain: a candidate is adopted only
    /// after (1) the descending step actually descended, (2) the
    /// [`narrow`](AbstractDomain::narrow) result sits inside the
    /// `[iterate, invariant]` bracket, and (3) a full body re-execution
    /// confirms the candidate is inductive (`entry ⊔ F(candidate ∧ c) ⊑
    /// candidate`), i.e. it over-approximates every reachable state of
    /// the loop. A defective narrowing costs recovery, never soundness.
    fn narrow_loop(
        &mut self,
        c: &Cond,
        body: &[Stmt],
        entry: &D::Elem,
        widened: D::Elem,
        body_size: &SizeMeasures,
    ) -> D::Elem {
        let d = self.domain();
        let policy = &self.analyzer.cfg.policy;
        cai_obs::counter!("interp/narrow/loops-attempted").incr();
        let _span = cai_obs::span!("interp/narrow-pass");
        let slice = self.budget.recovery_slice(policy.narrow_fuel(body_size));
        let outer_budget = std::mem::replace(&mut self.budget, slice.clone());
        let mut cur = widened;
        let mut adopted = false;
        let narrow_failed = |round: usize| {
            provenance::record(
                provenance::LossKind::NarrowFailed,
                "analyzer/narrow",
                "interp",
                round as u64,
                slice.spent(),
            );
        };
        for round in 1..=policy.narrow_rounds() as usize {
            provenance::set_round(round as u64);
            if !slice.tick(1) {
                slice.degrade("analyzer/narrow", "stopped the recovery pass early");
                narrow_failed(round);
                break;
            }
            cai_obs::counter!("interp/narrow/rounds").incr();
            self.stats.narrow_rounds += 1;
            // One descending iterate: y = entry ⊔ F(cur ∧ c).
            self.next_loop_index = 0;
            let enter = self.assume_cond(cur.clone(), c, true);
            let after = self.exec_seq(body, enter, false);
            self.stats.joins += 1;
            let y = d.join(entry, &after);
            if !d.le(&y, &cur) {
                // Not a descent (e.g. degraded domain operations under a
                // starved slice): keep what we have.
                narrow_failed(round);
                break;
            }
            let candidate = d.narrow(&cur, &y);
            if !(d.le(&y, &candidate) && d.le(&candidate, &cur)) {
                slice.degrade("analyzer/narrow", "rejected an out-of-bracket narrowing");
                narrow_failed(round);
                break;
            }
            if d.equal_elems(&candidate, &cur) {
                break; // stabilized: further rounds cannot make progress
            }
            // Adopt only verified-inductive candidates.
            self.next_loop_index = 0;
            let enter = self.assume_cond(candidate.clone(), c, true);
            let after = self.exec_seq(body, enter, false);
            self.stats.joins += 1;
            let check = d.join(entry, &after);
            if !d.le(&check, &candidate) {
                slice.degrade(
                    "analyzer/narrow",
                    "candidate failed the inductiveness re-check",
                );
                narrow_failed(round);
                break;
            }
            cur = candidate;
            adopted = true;
        }
        self.budget = outer_budget;
        if adopted {
            cai_obs::counter!("interp/narrow/loops-recovered").incr();
            self.stats.narrow_recoveries += 1;
        }
        cur
    }

    fn exec(&mut self, stmt: &Stmt, e: D::Elem, record: bool) -> D::Elem {
        let d = self.domain();
        // Charge one tick per statement transfer. No bail-out here: a
        // statement sequence is finite, and pressing on keeps the
        // assertion record complete — the governed loops below (and the
        // budgeted domain operations) are where exhaustion cuts work.
        cai_obs::counter!("fuel/interp.transfer").incr();
        self.budget.tick(1);
        match stmt {
            Stmt::Assign(x, rhs) => {
                let x0 = Var::fresh(&format!("{}0", x.name()));
                let renamed = self.rename(&e, *x, x0);
                let rhs = self.analyzer.apply_view(rhs);
                let mut map = BTreeMap::new();
                map.insert(*x, Term::var(x0));
                let atom = Atom::eq(Term::var(*x), rhs.subst(&map));
                let met = self.meet_if_owned(renamed, &atom);
                self.stats.exists += 1;
                let elim: VarSet = [x0].into_iter().collect();
                d.exists(&met, &elim)
            }
            Stmt::Havoc(x) => {
                self.stats.exists += 1;
                let elim: VarSet = [*x].into_iter().collect();
                d.exists(&e, &elim)
            }
            Stmt::Assume(a) => {
                let a = self.analyzer.view_atom(a);
                self.meet_if_owned(e, &a)
            }
            Stmt::Assert(a) => {
                if record {
                    let viewed = self.analyzer.view_atom(a);
                    let verified = d.sig().owns_atom(&viewed) && d.implies_atom(&e, &viewed);
                    self.assertions.push(AssertionOutcome {
                        atom: a.clone(),
                        verified,
                    });
                }
                e
            }
            Stmt::If(c, then, els) => {
                let et = self.assume_cond(e.clone(), c, true);
                let ef = self.assume_cond(e, c, false);
                let rt = self.exec_seq(then, et, record);
                let rf = self.exec_seq(els, ef, record);
                self.stats.joins += 1;
                d.join(&rt, &rf)
            }
            Stmt::While(c, body) => {
                // Fixpoint iteration (paper §4.3): silent rounds first.
                // Successive rounds (and the recording pass) revisit the
                // same body states, so a domain with a cross-round memo —
                // the logical product's split cache — amortizes its
                // purification/saturation work across the whole fixpoint.
                //
                // Under the adaptive policy the fixpoint runs on its own
                // size-derived fuel slice, so one runaway loop drains its
                // slice (and degrades) without starving every later loop;
                // nested loops slice the enclosing slice in turn. The
                // flat policy keeps the shared pool, bit for bit.
                let body_size = stmt_measures(body);
                let loop_budget = match self.analyzer.cfg.policy.loop_fuel(&body_size) {
                    Some(fuel) => self.budget.child(Some(fuel), None),
                    None => self.budget.clone(),
                };
                let outer_budget = std::mem::replace(&mut self.budget, loop_budget);
                // Blame scope: this syntactic loop's stable label. Inner
                // loops restart their numbering on every body pass, so the
                // label never depends on how many rounds the fixpoint took.
                let loop_index = self.next_loop_index;
                self.next_loop_index += 1;
                let _blame_scope = provenance::scope(|| format!("loop#{loop_index}"));
                let entry = e.clone();
                let mut inv = e;
                let mut iterations = 0usize;
                let mut widened = false;
                let mut forced_top = false;
                let _span = cai_obs::span!("interp/loop-fixpoint");
                loop {
                    if self.budget.is_exhausted() {
                        // ⊤ is an invariant of any loop, so stopping here
                        // is sound; it is also stable, so the recording
                        // pass below still terminates.
                        self.budget
                            .degrade("analyzer/while", "forced the loop invariant to top");
                        cai_obs::counter!("interp/fixpoint/budget-forced-top").incr();
                        inv = d.top();
                        self.diverged = true;
                        forced_top = true;
                        break;
                    }
                    iterations += 1;
                    cai_obs::counter!("interp/fixpoint/iterations").incr();
                    provenance::set_round(iterations as u64);
                    self.next_loop_index = 0;
                    let enter = self.assume_cond(inv.clone(), c, true);
                    let after = self.exec_seq(body, enter, false);
                    let next = if iterations <= self.analyzer.cfg.widen_delay {
                        self.stats.joins += 1;
                        cai_obs::counter!("interp/fixpoint/joins").incr();
                        d.join(&inv, &after)
                    } else {
                        self.stats.widens += 1;
                        cai_obs::counter!("interp/fixpoint/widenings").incr();
                        provenance::record(
                            provenance::LossKind::Widen,
                            "analyzer/while",
                            "interp",
                            iterations as u64,
                            self.budget.spent(),
                        );
                        widened = true;
                        d.widen(&inv, &after)
                    };
                    if d.le(&next, &inv) {
                        // A stable invariant — but if the budget ran out
                        // *during* this loop's rounds, the stabilization
                        // may be an artifact of degraded (over-approximate
                        // or forced-to-top) joins/widenings rather than a
                        // genuine fixpoint, so flag it as divergence too
                        // (not only the iteration cap or the entry check).
                        if self.budget.is_exhausted() {
                            self.diverged = true;
                            forced_top = true;
                        }
                        break;
                    }
                    inv = next;
                    if iterations >= self.analyzer.cfg.max_iterations {
                        self.diverged = true;
                        break;
                    }
                }
                drop(_span);
                self.loop_iterations.push(iterations);
                cai_obs::histogram!("interp/fixpoint/iterations-per-loop")
                    .observe(iterations as u64);
                if self.analyzer.cfg.policy.narrow_rounds() > 0 && (widened || forced_top) {
                    inv = self.narrow_loop(c, body, &entry, inv, &body_size);
                }
                self.budget = outer_budget;
                if record {
                    // One recording pass through the body under the stable
                    // invariant.
                    self.next_loop_index = 0;
                    let enter = self.assume_cond(inv.clone(), c, true);
                    let _ = self.exec_seq(body, enter, true);
                }
                // Sibling loops continue the numbering at this level.
                self.next_loop_index = loop_index + 1;
                self.assume_cond(inv, c, false)
            }
            Stmt::Call(x, name, args) => {
                let viewed: Vec<Term> = args.iter().map(|a| self.analyzer.apply_view(a)).collect();
                let resolved = self.analyzer.calls.and_then(|r| {
                    r.resolve_call(
                        d,
                        CallSite {
                            state: e.clone(),
                            dst: *x,
                            name,
                            args: &viewed,
                        },
                    )
                });
                match resolved {
                    Some(out) => out,
                    None => {
                        // No summary available: the call's only effect is
                        // on its destination, so havocing it is sound.
                        self.stats.exists += 1;
                        let elim: VarSet = [*x].into_iter().collect();
                        d.exists(&e, &elim)
                    }
                }
            }
        }
    }
}

/// Checks a conjunction against a domain element (convenience for tests
/// and examples): every atom owned by the signature must be implied.
pub fn implies_all<D: AbstractDomain>(d: &D, e: &D::Elem, c: &Conj) -> bool {
    c.iter()
        .all(|a| d.sig().owns_atom(a) && d.implies_atom(e, a))
}
