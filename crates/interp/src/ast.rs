//! The structured imperative program representation (the flowchart
//! language of the paper's Figure 5).

use cai_term::{Atom, Term, Var};
use std::fmt;

/// A branch or loop condition.
#[derive(Clone, PartialEq, Debug)]
pub enum Cond {
    /// A concrete condition; the abstract interpreter assumes the atom on
    /// the true branch and its atomic negation (if one exists, see
    /// [`Atom::negate`]) on the false branch.
    Atom(Atom),
    /// A non-deterministic condition (`*`): nothing is assumed on either
    /// branch. The paper abstracts unmodellable conditionals this way.
    Nondet,
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Atom(a) => write!(f, "{a}"),
            Cond::Nondet => f.write_str("*"),
        }
    }
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `x := e` — the paper's assignment node (Figure 5(b)).
    Assign(Var, Term),
    /// `x := *` — havoc: `x` becomes unconstrained.
    Havoc(Var),
    /// `assume(p)` — meet the current fact with `p`.
    Assume(Atom),
    /// `assert(p)` — check whether the current fact implies `p`.
    Assert(Atom),
    /// `if (c) { … } else { … }` — conditional node + join node
    /// (Figure 5(c) and 5(a)).
    If(Cond, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { … }` — loop: fixpoint over the paper's join/widen
    /// iteration (§4.3).
    While(Cond, Vec<Stmt>),
    /// `x := call f(e₁, …, eₙ)` — a procedure call whose result lands in
    /// `x`. The base analyzer treats an unresolved call conservatively as
    /// a havoc of `x`; an interprocedural driver resolves it through a
    /// [`CallResolver`](crate::CallResolver) summary.
    Call(Var, String, Vec<Term>),
}

impl Stmt {
    /// Convenience constructor for assignments.
    pub fn assign(x: &str, rhs: Term) -> Stmt {
        Stmt::Assign(Var::named(x), rhs)
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            Stmt::Assign(x, e) => writeln!(f, "{pad}{x} := {e};"),
            Stmt::Havoc(x) => writeln!(f, "{pad}{x} := *;"),
            Stmt::Assume(a) => writeln!(f, "{pad}assume({a});"),
            Stmt::Assert(a) => writeln!(f, "{pad}assert({a});"),
            Stmt::If(c, t, e) => {
                writeln!(f, "{pad}if ({c}) {{")?;
                for s in t {
                    s.fmt_indented(f, depth + 1)?;
                }
                if e.is_empty() {
                    writeln!(f, "{pad}}}")
                } else {
                    writeln!(f, "{pad}}} else {{")?;
                    for s in e {
                        s.fmt_indented(f, depth + 1)?;
                    }
                    writeln!(f, "{pad}}}")
                }
            }
            Stmt::While(c, body) => {
                writeln!(f, "{pad}while ({c}) {{")?;
                for s in body {
                    s.fmt_indented(f, depth + 1)?;
                }
                writeln!(f, "{pad}}}")
            }
            Stmt::Call(x, name, args) => {
                let shown: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                writeln!(f, "{pad}{x} := call {name}({});", shown.join(", "))
            }
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// A whole program: a statement sequence.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// The top-level statements.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// The number of `assert` statements, recursively.
    pub fn assertion_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Assert(_) => 1,
                    Stmt::If(_, t, e) => count(t) + count(e),
                    Stmt::While(_, b) => count(b),
                    _ => 0,
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// Rewrites every term of the program through `f` (conditions,
    /// assignment right-hand sides, assume/assert atoms). Used by the §5
    /// reductions to encode a program into a different theory.
    pub fn map_terms(&self, f: &mut dyn FnMut(&Term) -> Term) -> Program {
        fn map_atom(a: &Atom, f: &mut dyn FnMut(&Term) -> Term) -> Atom {
            let args: Vec<Term> = a.args().into_iter().map(&mut *f).collect();
            a.with_args(args)
        }
        fn map_cond(c: &Cond, f: &mut dyn FnMut(&Term) -> Term) -> Cond {
            match c {
                Cond::Atom(a) => Cond::Atom(map_atom(a, f)),
                Cond::Nondet => Cond::Nondet,
            }
        }
        fn walk(stmts: &[Stmt], f: &mut dyn FnMut(&Term) -> Term) -> Vec<Stmt> {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Assign(x, e) => Stmt::Assign(*x, f(e)),
                    Stmt::Havoc(x) => Stmt::Havoc(*x),
                    Stmt::Assume(a) => Stmt::Assume(map_atom(a, f)),
                    Stmt::Assert(a) => Stmt::Assert(map_atom(a, f)),
                    Stmt::If(c, t, e) => Stmt::If(map_cond(c, f), walk(t, f), walk(e, f)),
                    Stmt::While(c, b) => Stmt::While(map_cond(c, f), walk(b, f)),
                    Stmt::Call(x, name, args) => {
                        Stmt::Call(*x, name.clone(), args.iter().map(&mut *f).collect())
                    }
                })
                .collect()
        }
        Program {
            stmts: walk(&self.stmts, f),
        }
    }

    /// Coarse size measures of the program, for the adaptive
    /// [`BudgetPolicy`](cai_core::BudgetPolicy).
    pub fn measures(&self) -> cai_core::SizeMeasures {
        stmt_measures(&self.stmts)
    }

    /// All variables assigned or havoced anywhere in the program.
    pub fn assigned_vars(&self) -> cai_term::VarSet {
        fn walk(stmts: &[Stmt], out: &mut cai_term::VarSet) {
            for s in stmts {
                match s {
                    Stmt::Assign(x, _) | Stmt::Havoc(x) | Stmt::Call(x, ..) => {
                        out.insert(*x);
                    }
                    Stmt::If(_, t, e) => {
                        walk(t, out);
                        walk(e, out);
                    }
                    Stmt::While(_, b) => walk(b, out),
                    _ => {}
                }
            }
        }
        let mut out = cai_term::VarSet::new();
        walk(&self.stmts, &mut out);
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.stmts {
            s.fmt_indented(f, 0)?;
        }
        Ok(())
    }
}

/// The variable carrying a procedure's return value: the value of `ret`
/// at procedure exit is what a call `x := call f(…)` assigns to `x`.
pub const RETURN_VAR: &str = "ret";

/// A named procedure of a [`Module`]: `proc f(a, b) { … }`.
///
/// Parameters are ordinary variables bound at entry by the call
/// arguments; the body communicates its result by assigning
/// [`RETURN_VAR`]. Everything else the body mentions is local to the
/// procedure (summaries project it out).
#[derive(Clone, PartialEq, Debug)]
pub struct Procedure {
    /// The procedure name.
    pub name: String,
    /// The formal parameters, in declaration order.
    pub params: Vec<Var>,
    /// The body.
    pub body: Program,
}

impl Procedure {
    /// The names of procedures called (directly) anywhere in the body, in
    /// first-occurrence order, deduplicated.
    pub fn callees(&self) -> Vec<String> {
        fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
            for s in stmts {
                match s {
                    Stmt::Call(_, name, _) if !out.iter().any(|n| n == name) => {
                        out.push(name.clone());
                    }
                    Stmt::If(_, t, e) => {
                        walk(t, out);
                        walk(e, out);
                    }
                    Stmt::While(_, b) => walk(b, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body.stmts, &mut out);
        out
    }

    /// Coarse size measures of the procedure (body plus formals), for
    /// the adaptive [`BudgetPolicy`](cai_core::BudgetPolicy)'s
    /// size-proportional scheduling weights.
    pub fn measures(&self) -> cai_core::SizeMeasures {
        let mut m = self.body.measures();
        m.variables += self.params.len() as u64;
        m
    }
}

/// Coarse, purely syntactic size measures of a statement sequence:
/// statements counted recursively, loop headers, call sites, and
/// distinct assigned variables (a cheap deterministic proxy for
/// live-state width). These feed fuel apportionment, so they must be a
/// pure function of the AST — never of analysis results or timing.
pub fn stmt_measures(stmts: &[Stmt]) -> cai_core::SizeMeasures {
    fn walk(stmts: &[Stmt], m: &mut cai_core::SizeMeasures, vars: &mut cai_term::VarSet) {
        for s in stmts {
            m.statements += 1;
            match s {
                Stmt::Assign(x, _) | Stmt::Havoc(x) => {
                    vars.insert(*x);
                }
                Stmt::Call(x, ..) => {
                    vars.insert(*x);
                    m.calls += 1;
                }
                Stmt::If(_, t, e) => {
                    walk(t, m, vars);
                    walk(e, m, vars);
                }
                Stmt::While(_, b) => {
                    m.loops += 1;
                    walk(b, m, vars);
                }
                Stmt::Assume(_) | Stmt::Assert(_) => {}
            }
        }
    }
    let mut m = cai_core::SizeMeasures::default();
    let mut vars = cai_term::VarSet::new();
    walk(stmts, &mut m, &mut vars);
    m.variables = vars.len() as u64;
    m
}

impl fmt::Display for Procedure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params: Vec<&str> = self.params.iter().map(|p| p.name()).collect();
        writeln!(f, "proc {}({}) {{", self.name, params.join(", "))?;
        for s in &self.body.stmts {
            s.fmt_indented(f, 1)?;
        }
        writeln!(f, "}}")
    }
}

/// A multi-procedure compilation unit: the work format of the
/// interprocedural driver.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Module {
    /// The procedures, in declaration order. Names are unique.
    pub procs: Vec<Procedure>,
}

impl Module {
    /// Looks a procedure up by name.
    pub fn get(&self, name: &str) -> Option<&Procedure> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// The index of a procedure by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.procs.iter().position(|p| p.name == name)
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.procs.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}
