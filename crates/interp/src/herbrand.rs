//! The Herbrand (fully uninterpreted) expression view.
//!
//! A standalone global-value-numbering analysis ([12] in the paper) treats
//! *every* operator — including `+`, `-`, and numerals — as uninterpreted.
//! This module provides that view as a term rewriting: arithmetic
//! structure is encoded injectively into fresh uninterpreted symbols, so
//! the UF domain can absorb arbitrary program expressions.
//!
//! This is how "analysis over the uninterpreted-functions lattice" is run
//! on Figure 1, and how the component analyses of a *direct product* see
//! the program.

use cai_term::{FnSym, Term, TermKind, TheoryTag};

/// Rewrites a term so that all arithmetic structure becomes uninterpreted.
///
/// A linear expression `c₀ + Σ cᵢ·aᵢ` (atoms in canonical order) becomes
/// `lin#c₀#c₁#…#cₖ(a₁', …, aₖ')`, a `k`-ary uninterpreted symbol whose
/// name embeds the coefficient vector; the encoding is injective on
/// canonical linear expressions, so two program expressions are equated by
/// the UF domain exactly when their *normalized syntax* coincides.
///
/// ```
/// use cai_interp::herbrand_view;
/// use cai_term::parse::Vocab;
///
/// let v = Vocab::standard();
/// let a = herbrand_view(&v.parse_term("x + x + 1")?);
/// let b = herbrand_view(&v.parse_term("2*x + 1")?);
/// assert_eq!(a, b); // same canonical linear expression
/// let c = herbrand_view(&v.parse_term("x + 2")?);
/// assert_ne!(a, c);
/// # Ok::<(), cai_term::parse::ParseError>(())
/// ```
pub fn herbrand_view(t: &Term) -> Term {
    match t.kind() {
        TermKind::Var(_) => t.clone(),
        TermKind::App(f, args) => Term::app(*f, args.iter().map(herbrand_view).collect()),
        TermKind::Lin(e) => {
            let mut name = format!("lin#{}", e.constant_part());
            let mut children = Vec::with_capacity(e.num_atoms());
            for (atom, coeff) in e.iter() {
                name.push('#');
                name.push_str(&coeff.to_string());
                children.push(herbrand_view(atom));
            }
            let f = FnSym::new(&name, children.len(), TheoryTag::UF);
            Term::app(f, children)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_term::parse::Vocab;

    fn view(src: &str) -> Term {
        herbrand_view(&Vocab::standard().parse_term(src).unwrap())
    }

    #[test]
    fn variables_untouched() {
        assert_eq!(view("x").to_string(), "x");
    }

    #[test]
    fn constants_become_nullary_symbols() {
        let one = view("1");
        assert_eq!(one.to_string(), "lin#1()");
        assert_eq!(one, view("1"));
        assert_ne!(one, view("2"));
    }

    #[test]
    fn nested_apps_encoded_recursively() {
        let t = view("F(2*c1 - c2)");
        // F applied to the encoded linear expression.
        assert!(t.to_string().starts_with("F(lin#0#"), "{t}");
    }

    #[test]
    fn injective_on_distinct_expressions() {
        assert_ne!(view("x + y"), view("x - y"));
        assert_ne!(view("x + 1"), view("x"));
        assert_eq!(view("x + y"), view("y + x")); // canonical ordering
    }
}
