//! An imperative program IR, parser, and abstract-interpretation engine.
//!
//! This crate provides the program-analysis substrate of *Combining
//! Abstract Interpreters*: the flowchart language of the paper's Figure 5
//! ([`Stmt`], [`Program`]), a small text syntax ([`parse_program`]), and a
//! forward [`Analyzer`] that runs any [`cai_core::AbstractDomain`] over a
//! program — computing loop invariants by fixpoint iteration (with
//! widening, §4.3) and checking `assert` statements.
//!
//! # Examples
//!
//! ```
//! use cai_interp::{parse_program, Analyzer};
//! use cai_linarith::AffineEq;
//! use cai_term::parse::Vocab;
//!
//! let vocab = Vocab::standard();
//! let program = parse_program(&vocab, "
//!     x := 0; y := 0;
//!     while (*) { x := x + 1; y := y + 2; }
//!     assert(y = 2*x);
//! ")?;
//! let domain = AffineEq::new();
//! let analysis = Analyzer::new(&domain).run(&program);
//! assert!(analysis.assertions[0].verified);
//! # Ok::<(), cai_interp::ProgramParseError>(())
//! ```

mod analyze;
mod ast;
mod herbrand;
mod parse;

pub use analyze::{
    implies_all, Analysis, AnalysisConfig, Analyzer, AssertionOutcome, CallResolver, CallSite,
    OpStats,
};
pub use ast::{stmt_measures, Cond, Module, Procedure, Program, Stmt, RETURN_VAR};
pub use herbrand::herbrand_view;
pub use parse::{parse_module, parse_program, ProgramParseError};
