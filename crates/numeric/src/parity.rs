//! The parity domain: `even`/`odd` facts over integer-valued variables.

use cai_core::{AbstractDomain, Budget, Partition, TheoryProps};
use cai_linarith::AffExpr;
use cai_term::{Atom, Conj, PredSym, Sig, Term, TheoryTag, Var, VarSet};
use std::collections::BTreeMap;
use std::fmt;

/// An abstract parity value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Parity {
    /// Definitely even.
    Even,
    /// Definitely odd.
    Odd,
    /// Unknown.
    Top,
}

impl Parity {
    fn join(self, other: Parity) -> Parity {
        if self == other {
            self
        } else {
            Parity::Top
        }
    }

    /// The parity of `t + 1` given the parity of `t`.
    pub fn flip(self) -> Parity {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
            Parity::Top => Parity::Top,
        }
    }

    fn add(self, other: Parity) -> Parity {
        match (self, other) {
            (Parity::Top, _) | (_, Parity::Top) => Parity::Top,
            (a, b) if a == b => Parity::Even,
            _ => Parity::Odd,
        }
    }
}

/// A parity constraint: `parity(expr) = required`.
#[derive(Clone, PartialEq, Debug)]
struct Constraint {
    expr: AffExpr,
    required: Parity,
}

/// An element of the parity domain: a parity per variable plus the met
/// constraints (kept so refinement is order-insensitive), or bottom.
#[derive(Clone, PartialEq, Debug)]
pub struct ParityElem {
    state: Option<State>,
}

#[derive(Clone, PartialEq, Debug)]
struct State {
    map: BTreeMap<Var, Parity>,
    constraints: Vec<Constraint>,
}

impl ParityElem {
    /// The top element.
    pub fn top() -> ParityElem {
        ParityElem {
            state: Some(State {
                map: BTreeMap::new(),
                constraints: Vec::new(),
            }),
        }
    }

    /// The bottom element.
    pub fn bottom() -> ParityElem {
        ParityElem { state: None }
    }

    /// Returns `true` if this is bottom.
    pub fn is_bottom(&self) -> bool {
        self.state.is_none()
    }

    /// The parity recorded for `v`.
    pub fn parity_of(&self, v: Var) -> Parity {
        self.state
            .as_ref()
            .and_then(|s| s.map.get(&v).copied())
            .unwrap_or(Parity::Top)
    }

    fn eval(map: &BTreeMap<Var, Parity>, e: &AffExpr) -> Parity {
        let mut acc = rat_parity(e.constant_part());
        for (v, c) in e.iter() {
            let vp = map.get(v).copied().unwrap_or(Parity::Top);
            acc = acc.add(coeff_parity(c, vp));
        }
        acc
    }

    /// Re-runs constraint refinement to a fixpoint. Returns `false` if a
    /// contradiction is found. Each round ticks the budget; exhaustion
    /// stops refinement early — sound, since an unrefined map pins
    /// *fewer* parities (a weaker element) and reports no contradiction.
    fn refine(s: &mut State, budget: &Budget) -> bool {
        loop {
            if !budget.tick(1 + s.constraints.len() as u64) {
                budget.degrade(
                    "parity/refine",
                    "stopped parity constraint refinement early",
                );
                return true;
            }
            let mut changed = false;
            for c in &s.constraints {
                let cur = Self::eval(&s.map, &c.expr);
                if cur != Parity::Top {
                    if cur != c.required {
                        return false;
                    }
                    continue;
                }
                // Exactly one odd-coefficient variable with unknown parity
                // can be pinned down by the rest.
                let unknowns: Vec<(Var, &cai_num::Rat)> = c
                    .expr
                    .iter()
                    .filter(|(v, k)| {
                        s.map.get(v).copied().unwrap_or(Parity::Top) == Parity::Top
                            && rat_parity(k) != Parity::Even
                    })
                    .map(|(v, k)| (*v, k))
                    .collect();
                if unknowns.len() != 1 {
                    continue;
                }
                let (v, k) = unknowns[0];
                if rat_parity(k) != Parity::Odd {
                    continue; // non-integer coefficient: cannot conclude
                }
                // required = parity(rest) + parity(v); solve for v.
                let mut rest = c.expr.clone();
                rest.add_var(v, &-k.clone());
                let rest_p = Self::eval(&s.map, &rest);
                if rest_p == Parity::Top {
                    continue;
                }
                let vp = if rest_p == c.required {
                    Parity::Even
                } else {
                    Parity::Odd
                };
                s.map.insert(v, vp);
                changed = true;
            }
            if !changed {
                return true;
            }
        }
    }

    fn with_constraint(&self, c: Constraint, budget: &Budget) -> ParityElem {
        let Some(s) = &self.state else {
            return ParityElem::bottom();
        };
        let mut s = s.clone();
        if !s.constraints.contains(&c) {
            s.constraints.push(c);
        }
        if Self::refine(&mut s, budget) {
            ParityElem { state: Some(s) }
        } else {
            ParityElem::bottom()
        }
    }
}

fn rat_parity(r: &cai_num::Rat) -> Parity {
    if !r.is_integer() {
        return Parity::Top;
    }
    match r.numer().div_rem(&cai_num::Int::from(2)).1.is_zero() {
        true => Parity::Even,
        false => Parity::Odd,
    }
}

fn coeff_parity(c: &cai_num::Rat, vp: Parity) -> Parity {
    match rat_parity(c) {
        Parity::Even => Parity::Even,
        Parity::Odd => vp,
        Parity::Top => Parity::Top,
    }
}

impl fmt::Display for ParityElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.state {
            None => f.write_str("false"),
            Some(s) if s.map.is_empty() => f.write_str("true"),
            Some(s) => {
                for (i, (v, p)) in s.map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" & ")?;
                    }
                    match p {
                        Parity::Even => write!(f, "even({v})")?,
                        Parity::Odd => write!(f, "odd({v})")?,
                        Parity::Top => write!(f, "top({v})")?,
                    }
                }
                Ok(())
            }
        }
    }
}

/// The parity abstract domain over the theory
/// `{=, even, odd, +, -, 0, 1}`.
///
/// Deliberately *not* signature-disjoint from linear arithmetic or sign
/// (they share `+`, `-`, `0`, `1`), reproducing the Figure 8 hypothesis
/// violation.
#[derive(Clone, Debug, Default)]
pub struct ParityDomain {
    budget: Budget,
}

impl ParityDomain {
    /// Creates the domain (unlimited budget).
    pub fn new() -> ParityDomain {
        ParityDomain::default()
    }

    /// Governs the constraint-refinement fixpoint by `budget`: once the
    /// fuel runs out, refinement stops early and the domain pins fewer
    /// parities (a sound degradation recorded on the budget's report).
    pub fn with_budget(mut self, budget: Budget) -> ParityDomain {
        self.budget = budget;
        self
    }
}

fn atom_constraint(atom: &Atom) -> Option<Constraint> {
    match atom {
        Atom::Eq(s, t) => {
            let e = AffExpr::difference(s, t).ok()?;
            Some(Constraint {
                expr: e,
                required: Parity::Even,
            })
        }
        Atom::Pred(PredSym::Even, t) => {
            let e = AffExpr::try_from_term(t).ok()?;
            Some(Constraint {
                expr: e,
                required: Parity::Even,
            })
        }
        Atom::Pred(PredSym::Odd, t) => {
            let e = AffExpr::try_from_term(t).ok()?;
            Some(Constraint {
                expr: e,
                required: Parity::Odd,
            })
        }
        _ => None,
    }
}

impl AbstractDomain for ParityDomain {
    type Elem = ParityElem;

    fn sig(&self) -> Sig {
        Sig::single(TheoryTag::PARITY)
    }

    fn props(&self) -> TheoryProps {
        TheoryProps::nelson_oppen()
    }

    fn top(&self) -> ParityElem {
        ParityElem::top()
    }

    fn bottom(&self) -> ParityElem {
        ParityElem::bottom()
    }

    fn is_bottom(&self, e: &ParityElem) -> bool {
        e.is_bottom()
    }

    fn meet_atom(&self, e: &ParityElem, atom: &Atom) -> ParityElem {
        match atom_constraint(atom) {
            Some(c) => e.with_constraint(c, &self.budget),
            None => panic!("atom `{atom}` is outside the parity signature"),
        }
    }

    fn implies_atom(&self, e: &ParityElem, atom: &Atom) -> bool {
        if e.is_bottom() {
            return true;
        }
        if atom.is_trivial() {
            return true;
        }
        let Some(c) = atom_constraint(atom) else {
            panic!("atom `{atom}` is outside the parity signature")
        };
        match atom {
            // Parity cannot prove equalities.
            Atom::Eq(..) => false,
            _ => {
                let s = e.state.as_ref().expect("not bottom");
                ParityElem::eval(&s.map, &c.expr) == c.required
                    // Fall back to the met constraints (modulo negation of
                    // the expression, which preserves parity).
                    || s.constraints.iter().any(|k| {
                        k.required == c.required
                            && (k.expr == c.expr
                                || k.expr == c.expr.scale(&-cai_num::Rat::one()))
                    })
            }
        }
    }

    fn join(&self, a: &ParityElem, b: &ParityElem) -> ParityElem {
        let (Some(sa), Some(sb)) = (&a.state, &b.state) else {
            return if a.is_bottom() { b.clone() } else { a.clone() };
        };
        let mut map = BTreeMap::new();
        for (v, p) in &sa.map {
            if let Some(q) = sb.map.get(v) {
                let j = p.join(*q);
                if j != Parity::Top {
                    map.insert(*v, j);
                }
            }
        }
        // Keep constraints present in both (a sound common subset).
        let constraints: Vec<Constraint> = sa
            .constraints
            .iter()
            .filter(|c| sb.constraints.contains(c))
            .cloned()
            .collect();
        ParityElem {
            state: Some(State { map, constraints }),
        }
    }

    fn narrow(&self, a: &ParityElem, b: &ParityElem) -> ParityElem {
        // Mirror of the sign domain's narrowing: keep every parity `a`
        // still knows, adopt the descended iterate `b`'s parity exactly
        // where `a` was widened to ⊤, and accumulate both constraint
        // sets (`b ⊑ a`, so `b` satisfies all of them). Stays inside the
        // `[b, a]` bracket.
        let (Some(sa), Some(sb)) = (&a.state, &b.state) else {
            return b.clone();
        };
        let mut map = sa.map.clone();
        for (v, p) in &sb.map {
            map.entry(*v).or_insert(*p);
        }
        let mut constraints = sa.constraints.clone();
        for c in &sb.constraints {
            if !constraints.contains(c) {
                constraints.push(c.clone());
            }
        }
        ParityElem {
            state: Some(State { map, constraints }),
        }
    }

    fn exists(&self, e: &ParityElem, vars: &VarSet) -> ParityElem {
        let Some(s) = &e.state else {
            return ParityElem::bottom();
        };
        let mut s = s.clone();
        s.map.retain(|v, _| !vars.contains(v));
        s.constraints.retain(|c| c.expr.vars().is_disjoint(vars));
        ParityElem { state: Some(s) }
    }

    fn var_equalities(&self, _e: &ParityElem) -> Partition {
        // Parity facts never force variable equalities.
        Partition::new()
    }

    fn alternate(&self, _e: &ParityElem, _y: Var, _avoid: &VarSet) -> Option<Term> {
        None
    }

    fn to_conj(&self, e: &ParityElem) -> Conj {
        let Some(s) = &e.state else {
            return Conj::of(Atom::eq(Term::int(0), Term::int(1)));
        };
        let mut c = Conj::new();
        for (v, p) in &s.map {
            match p {
                Parity::Even => {
                    c.push(Atom::pred(PredSym::Even, Term::var(*v)));
                }
                Parity::Odd => {
                    c.push(Atom::pred(PredSym::Odd, Term::var(*v)));
                }
                Parity::Top => {}
            }
        }
        // The met constraints are part of the element's meaning: a
        // presentation that dropped them would make the default partial
        // order unsound (elements would look weaker than they are).
        for k in &s.constraints {
            if ParityElem::eval(&s.map, &k.expr) == k.required {
                continue; // already entailed by the per-variable facts
            }
            let p = match k.required {
                Parity::Even => PredSym::Even,
                Parity::Odd => PredSym::Odd,
                Parity::Top => continue,
            };
            c.push(Atom::pred(p, k.expr.to_term()));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_term::parse::Vocab;

    fn d() -> ParityDomain {
        ParityDomain::new()
    }

    fn elem(src: &str) -> ParityElem {
        let v = Vocab::standard();
        d().from_conj(&v.parse_conj(src).unwrap())
    }

    fn atom(src: &str) -> Atom {
        Vocab::standard().parse_atom(src).unwrap()
    }

    #[test]
    fn figure8_refinement() {
        // even(x0) & x = x0 - 1  implies  odd(x).
        let e = elem("even(x0) & x = x0 - 1");
        assert!(d().implies_atom(&e, &atom("odd(x)")));
        assert!(!d().implies_atom(&e, &atom("even(x)")));
    }

    #[test]
    fn refinement_is_order_insensitive() {
        let e = elem("x = x0 - 1 & even(x0)");
        assert!(d().implies_atom(&e, &atom("odd(x)")));
    }

    #[test]
    fn contradiction_detected() {
        let e = elem("even(x) & odd(x)");
        assert!(e.is_bottom());
        let e2 = elem("even(x) & x = y + 1 & even(y)");
        assert!(e2.is_bottom());
    }

    #[test]
    fn arithmetic_evaluation() {
        let e = elem("even(a) & odd(b)");
        assert!(d().implies_atom(&e, &atom("odd(a + b)")));
        assert!(d().implies_atom(&e, &atom("even(a + b + 1)")));
        assert!(d().implies_atom(&e, &atom("even(2*b)")));
        assert!(!d().implies_atom(&e, &atom("even(a + c)")));
    }

    #[test]
    fn join_pointwise() {
        let a = elem("even(x) & even(y)");
        let b = elem("even(x) & odd(y)");
        let j = d().join(&a, &b);
        assert!(d().implies_atom(&j, &atom("even(x)")));
        assert!(!d().implies_atom(&j, &atom("even(y)")));
        assert!(!d().implies_atom(&j, &atom("odd(y)")));
    }

    #[test]
    fn exists_drops() {
        let e = elem("even(x) & odd(y)");
        let vs: VarSet = [Var::named("y")].into_iter().collect();
        let q = d().exists(&e, &vs);
        assert!(d().implies_atom(&q, &atom("even(x)")));
        assert!(!d().implies_atom(&q, &atom("odd(y)")));
    }

    #[test]
    fn figure8_exists_on_parity_side() {
        // Q_parity(even(x0) & x = x0 - 1, {x0}) = odd(x).
        let e = elem("even(x0) & x = x0 - 1");
        let vs: VarSet = [Var::named("x0")].into_iter().collect();
        let q = d().exists(&e, &vs);
        assert!(d().implies_atom(&q, &atom("odd(x)")), "Q = {q}");
    }

    #[test]
    fn parity_cannot_prove_equalities() {
        let e = elem("even(x) & even(y)");
        assert!(!d().implies_atom(&e, &atom("x = y")));
        assert!(d().var_equalities(&e).is_identity());
    }

    #[test]
    fn non_integer_coefficients_are_top() {
        let e = elem("even(x)");
        // 1/2*x + 1/2*x normalizes to x, which is even.
        assert!(d().implies_atom(&e, &atom("even(1/2*x + 1/2*x)")));
    }
}

#[cfg(test)]
mod le_faithfulness_tests {
    use super::*;
    use cai_term::parse::Vocab;

    /// Regression: an element carrying a multi-variable constraint must
    /// not compare equal to top under the default partial order — the
    /// presentation has to expose the constraint.
    #[test]
    fn constraints_survive_presentation() {
        let d = ParityDomain::new();
        let v = Vocab::standard();
        let e = d.from_conj(&v.parse_conj("even(x + y)").unwrap());
        // Not entailed by per-variable parities (both are Top), so the
        // constraint itself must appear in the presentation...
        let shown = d.to_conj(&e);
        assert!(!shown.is_empty(), "presentation lost the constraint");
        // ... making the order faithful:
        assert!(
            !d.le(&d.top(), &e),
            "top compared below a constrained element"
        );
        assert!(d.le(&e, &d.top()));
        assert!(d.le(&e, &e), "reflexivity through the constraint fallback");
    }

    /// Round-trip: from_conj(to_conj(e)) is equivalent to e.
    #[test]
    fn presentation_roundtrip() {
        let d = ParityDomain::new();
        let v = Vocab::standard();
        for src in [
            "even(x + y) & odd(z)",
            "even(a) & x = a + 1",
            "odd(p + q + r)",
        ] {
            let e = d.from_conj(&v.parse_conj(src).unwrap());
            let e2 = d.from_conj(&d.to_conj(&e));
            assert!(d.equal_elems(&e, &e2), "{src}: {e:?} vs {e2:?}");
        }
    }
}
