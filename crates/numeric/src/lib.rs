//! Parity and sign abstract domains — the paper's non-disjoint example
//! theories (§2 and Figure 8).
//!
//! Both theories share the arithmetic symbols `+`, `-`, `0`, `1` with
//! linear arithmetic (and with each other), so combining them with the
//! logical-product machinery is *sound but incomplete* — exactly the
//! Figure 8 phenomenon this crate's tests and the `fig8` reproduction
//! exercise.

mod parity;
mod sign;

pub use parity::{Parity, ParityDomain, ParityElem};
pub use sign::{SignDomain, SignElem, SignVal};
