//! The sign domain: `positive`/`negative` facts over rational variables.

use cai_core::{AbstractDomain, Budget, Partition, TheoryProps};
use cai_linarith::AffExpr;
use cai_num::Rat;
use cai_term::{Atom, Conj, PredSym, Sig, Term, TheoryTag, Var, VarSet};
use std::collections::BTreeMap;
use std::fmt;

/// An abstract sign: a non-empty subset of `{negative, zero, positive}`.
///
/// The empty set is not representable — elements collapse to bottom
/// instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SignVal(u8);

const NEG: u8 = 0b001;
const ZERO: u8 = 0b010;
const POS: u8 = 0b100;

impl SignVal {
    /// Strictly negative.
    pub const NEGATIVE: SignVal = SignVal(NEG);
    /// Exactly zero.
    pub const IS_ZERO: SignVal = SignVal(ZERO);
    /// Strictly positive.
    pub const POSITIVE: SignVal = SignVal(POS);
    /// Unknown.
    pub const TOP: SignVal = SignVal(NEG | ZERO | POS);

    fn of_rat(r: &Rat) -> SignVal {
        match r.signum() {
            s if s < 0 => SignVal::NEGATIVE,
            0 => SignVal::IS_ZERO,
            _ => SignVal::POSITIVE,
        }
    }

    /// Set union (join).
    pub fn join(self, other: SignVal) -> SignVal {
        SignVal(self.0 | other.0)
    }

    /// Set intersection; `None` when empty (contradiction).
    pub fn meet(self, other: SignVal) -> Option<SignVal> {
        let m = self.0 & other.0;
        if m == 0 {
            None
        } else {
            Some(SignVal(m))
        }
    }

    /// Subset test.
    pub fn subset_of(self, other: SignVal) -> bool {
        self.0 & !other.0 == 0
    }

    fn neg(self) -> SignVal {
        let mut out = 0;
        if self.0 & NEG != 0 {
            out |= POS;
        }
        if self.0 & POS != 0 {
            out |= NEG;
        }
        if self.0 & ZERO != 0 {
            out |= ZERO;
        }
        SignVal(out)
    }

    /// Abstract addition.
    fn add(self, other: SignVal) -> SignVal {
        let mut out = 0u8;
        for a in [NEG, ZERO, POS] {
            if self.0 & a == 0 {
                continue;
            }
            for b in [NEG, ZERO, POS] {
                if other.0 & b == 0 {
                    continue;
                }
                out |= match (a, b) {
                    (NEG, NEG) => NEG,
                    (NEG, ZERO) | (ZERO, NEG) => NEG,
                    (ZERO, ZERO) => ZERO,
                    (POS, POS) => POS,
                    (POS, ZERO) | (ZERO, POS) => POS,
                    _ => NEG | ZERO | POS, // pos + neg
                };
            }
        }
        SignVal(out)
    }

    fn scale(self, c: &Rat) -> SignVal {
        match c.signum() {
            0 => SignVal::IS_ZERO,
            s if s > 0 => self,
            _ => self.neg(),
        }
    }
}

impl fmt::Display for SignVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self.0 {
            NEG => "-",
            ZERO => "0",
            POS => "+",
            0b011 => "<=0",
            0b110 => ">=0",
            0b101 => "!=0",
            _ => "?",
        };
        f.write_str(s)
    }
}

/// A sign constraint: `sign(expr) ⊆ required`.
#[derive(Clone, PartialEq, Debug)]
struct Constraint {
    expr: AffExpr,
    required: SignVal,
}

/// An element of the sign domain, or bottom.
#[derive(Clone, PartialEq, Debug)]
pub struct SignElem {
    state: Option<State>,
}

#[derive(Clone, PartialEq, Debug)]
struct State {
    map: BTreeMap<Var, SignVal>,
    constraints: Vec<Constraint>,
}

impl SignElem {
    /// The top element.
    pub fn top() -> SignElem {
        SignElem {
            state: Some(State {
                map: BTreeMap::new(),
                constraints: Vec::new(),
            }),
        }
    }

    /// The bottom element.
    pub fn bottom() -> SignElem {
        SignElem { state: None }
    }

    /// Returns `true` if this is bottom.
    pub fn is_bottom(&self) -> bool {
        self.state.is_none()
    }

    /// The sign recorded for `v`.
    pub fn sign_of(&self, v: Var) -> SignVal {
        self.state
            .as_ref()
            .and_then(|s| s.map.get(&v).copied())
            .unwrap_or(SignVal::TOP)
    }

    fn eval(map: &BTreeMap<Var, SignVal>, e: &AffExpr) -> SignVal {
        let mut acc = SignVal::of_rat(e.constant_part());
        for (v, c) in e.iter() {
            let vs = map.get(v).copied().unwrap_or(SignVal::TOP);
            acc = acc.add(vs.scale(c));
        }
        acc
    }

    /// Narrows variable signs to a fixpoint. Returns `false` if a
    /// contradiction is found. Each round ticks the budget; exhaustion
    /// stops refinement early — sound, since an unnarrowed map keeps
    /// *more* sign alternatives (a weaker element).
    fn refine(s: &mut State, budget: &Budget) -> bool {
        loop {
            if !budget.tick(1 + s.constraints.len() as u64) {
                budget.degrade("sign/refine", "stopped sign narrowing early");
                return true;
            }
            let mut changed = false;
            for ci in 0..s.constraints.len() {
                let c = s.constraints[ci].clone();
                let cur = Self::eval(&s.map, &c.expr);
                if cur.meet(c.required).is_none() {
                    return false;
                }
                // Narrow each variable: keep only the sign alternatives
                // compatible with the constraint given the others.
                for (v, k) in c.expr.clone().iter() {
                    let vs = s.map.get(v).copied().unwrap_or(SignVal::TOP);
                    let mut rest = c.expr.clone();
                    rest.add_var(*v, &-k.clone());
                    let rest_s = Self::eval(&s.map, &rest);
                    let mut keep = 0u8;
                    for bit in [NEG, ZERO, POS] {
                        if vs.0 & bit == 0 {
                            continue;
                        }
                        let contrib = SignVal(bit).scale(k);
                        if contrib.add(rest_s).meet(c.required).is_some() {
                            keep |= bit;
                        }
                    }
                    if keep == 0 {
                        return false;
                    }
                    if keep != vs.0 {
                        s.map.insert(*v, SignVal(keep));
                        changed = true;
                    }
                }
            }
            if !changed {
                return true;
            }
        }
    }

    fn with_constraint(&self, c: Constraint, budget: &Budget) -> SignElem {
        let Some(s) = &self.state else {
            return SignElem::bottom();
        };
        let mut s = s.clone();
        if !s.constraints.contains(&c) {
            s.constraints.push(c);
        }
        if Self::refine(&mut s, budget) {
            SignElem { state: Some(s) }
        } else {
            SignElem::bottom()
        }
    }
}

impl fmt::Display for SignElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.state {
            None => f.write_str("false"),
            Some(s) if s.map.is_empty() => f.write_str("true"),
            Some(s) => {
                for (i, (v, sv)) in s.map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" & ")?;
                    }
                    write!(f, "sign({v}) in {sv}")?;
                }
                Ok(())
            }
        }
    }
}

/// The sign abstract domain over the theory
/// `{=, positive, negative, +, -, 0, 1}` — like parity, deliberately not
/// signature-disjoint from linear arithmetic (Figure 8).
#[derive(Clone, Debug, Default)]
pub struct SignDomain {
    budget: Budget,
}

impl SignDomain {
    /// Creates the domain (unlimited budget).
    pub fn new() -> SignDomain {
        SignDomain::default()
    }

    /// Governs the sign-narrowing fixpoint by `budget`: once the fuel
    /// runs out, narrowing stops early and variables keep more sign
    /// alternatives (a sound degradation recorded on the budget's
    /// report).
    pub fn with_budget(mut self, budget: Budget) -> SignDomain {
        self.budget = budget;
        self
    }
}

fn atom_constraint(atom: &Atom) -> Option<Constraint> {
    match atom {
        Atom::Eq(s, t) => {
            let e = AffExpr::difference(s, t).ok()?;
            Some(Constraint {
                expr: e,
                required: SignVal::IS_ZERO,
            })
        }
        Atom::Pred(PredSym::Positive, t) => {
            let e = AffExpr::try_from_term(t).ok()?;
            Some(Constraint {
                expr: e,
                required: SignVal::POSITIVE,
            })
        }
        Atom::Pred(PredSym::Negative, t) => {
            let e = AffExpr::try_from_term(t).ok()?;
            Some(Constraint {
                expr: e,
                required: SignVal::NEGATIVE,
            })
        }
        _ => None,
    }
}

impl AbstractDomain for SignDomain {
    type Elem = SignElem;

    fn sig(&self) -> Sig {
        Sig::single(TheoryTag::SIGN)
    }

    fn props(&self) -> TheoryProps {
        TheoryProps::nelson_oppen()
    }

    fn top(&self) -> SignElem {
        SignElem::top()
    }

    fn bottom(&self) -> SignElem {
        SignElem::bottom()
    }

    fn is_bottom(&self, e: &SignElem) -> bool {
        e.is_bottom()
    }

    fn meet_atom(&self, e: &SignElem, atom: &Atom) -> SignElem {
        match atom_constraint(atom) {
            Some(c) => e.with_constraint(c, &self.budget),
            None => panic!("atom `{atom}` is outside the sign signature"),
        }
    }

    fn implies_atom(&self, e: &SignElem, atom: &Atom) -> bool {
        if e.is_bottom() || atom.is_trivial() {
            return true;
        }
        let Some(c) = atom_constraint(atom) else {
            panic!("atom `{atom}` is outside the sign signature")
        };
        let s = e.state.as_ref().expect("not bottom");
        let by_eval = match atom {
            // Sign facts only prove an equality if the difference is
            // forced to zero, which sign analysis cannot do for nontrivial
            // differences.
            Atom::Eq(..) => SignElem::eval(&s.map, &c.expr) == SignVal::IS_ZERO,
            _ => SignElem::eval(&s.map, &c.expr).subset_of(c.required),
        };
        // Fall back to the met constraints (a stronger or equal required
        // set on the same expression suffices; negating the expression
        // mirrors the sign).
        by_eval
            || s.constraints.iter().any(|k| {
                (k.expr == c.expr && k.required.subset_of(c.required))
                    || (k.expr == c.expr.scale(&-Rat::one())
                        && k.required.neg().subset_of(c.required))
            })
    }

    fn join(&self, a: &SignElem, b: &SignElem) -> SignElem {
        let (Some(sa), Some(sb)) = (&a.state, &b.state) else {
            return if a.is_bottom() { b.clone() } else { a.clone() };
        };
        let mut map = BTreeMap::new();
        for (v, p) in &sa.map {
            if let Some(q) = sb.map.get(v) {
                let j = p.join(*q);
                if j != SignVal::TOP {
                    map.insert(*v, j);
                }
            }
        }
        let constraints: Vec<Constraint> = sa
            .constraints
            .iter()
            .filter(|c| sb.constraints.contains(c))
            .cloned()
            .collect();
        SignElem {
            state: Some(State { map, constraints }),
        }
    }

    fn narrow(&self, a: &SignElem, b: &SignElem) -> SignElem {
        // Recover only what widening destroyed: variables `a` still
        // constrains keep `a`'s sign set; variables `a` lost to ⊤ adopt
        // the descended iterate `b`'s set. Constraints accumulate from
        // both sides — `b ⊑ a`, so `b` satisfies all of them. The result
        // sits in the `[b, a]` bracket the trait contract requires.
        let (Some(sa), Some(sb)) = (&a.state, &b.state) else {
            return b.clone();
        };
        let mut map = sa.map.clone();
        for (v, s) in &sb.map {
            map.entry(*v).or_insert(*s);
        }
        let mut constraints = sa.constraints.clone();
        for c in &sb.constraints {
            if !constraints.contains(c) {
                constraints.push(c.clone());
            }
        }
        SignElem {
            state: Some(State { map, constraints }),
        }
    }

    fn exists(&self, e: &SignElem, vars: &VarSet) -> SignElem {
        let Some(s) = &e.state else {
            return SignElem::bottom();
        };
        let mut s = s.clone();
        s.map.retain(|v, _| !vars.contains(v));
        s.constraints.retain(|c| c.expr.vars().is_disjoint(vars));
        SignElem { state: Some(s) }
    }

    fn var_equalities(&self, _e: &SignElem) -> Partition {
        Partition::new()
    }

    fn alternate(&self, _e: &SignElem, _y: Var, _avoid: &VarSet) -> Option<Term> {
        None
    }

    fn to_conj(&self, e: &SignElem) -> Conj {
        let Some(s) = &e.state else {
            return Conj::of(Atom::eq(Term::int(0), Term::int(1)));
        };
        let mut c = Conj::new();
        for (v, sv) in &s.map {
            if *sv == SignVal::POSITIVE {
                c.push(Atom::pred(PredSym::Positive, Term::var(*v)));
            } else if *sv == SignVal::NEGATIVE {
                c.push(Atom::pred(PredSym::Negative, Term::var(*v)));
            } else if *sv == SignVal::IS_ZERO {
                c.push(Atom::eq(Term::var(*v), Term::int(0)));
            }
        }
        // Constraints not already entailed by the per-variable facts are
        // part of the element's meaning (see the parity domain for the
        // soundness argument); only atom-expressible requirements are
        // presentable.
        for k in &s.constraints {
            if SignElem::eval(&s.map, &k.expr).subset_of(k.required) {
                continue;
            }
            if k.required == SignVal::POSITIVE {
                c.push(Atom::pred(PredSym::Positive, k.expr.to_term()));
            } else if k.required == SignVal::NEGATIVE {
                c.push(Atom::pred(PredSym::Negative, k.expr.to_term()));
            } else if k.required == SignVal::IS_ZERO {
                c.push(Atom::eq(k.expr.to_term(), Term::int(0)));
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_term::parse::Vocab;

    fn d() -> SignDomain {
        SignDomain::new()
    }

    fn elem(src: &str) -> SignElem {
        let v = Vocab::standard();
        d().from_conj(&v.parse_conj(src).unwrap())
    }

    fn atom(src: &str) -> Atom {
        Vocab::standard().parse_atom(src).unwrap()
    }

    #[test]
    fn basic_facts() {
        let e = elem("positive(x) & negative(y)");
        assert!(d().implies_atom(&e, &atom("positive(x)")));
        assert!(d().implies_atom(&e, &atom("negative(y - x)")));
        assert!(d().implies_atom(&e, &atom("positive(x - y)")));
        assert!(!d().implies_atom(&e, &atom("positive(x + y)")));
    }

    #[test]
    fn contradiction() {
        assert!(elem("positive(x) & negative(x)").is_bottom());
        assert!(elem("positive(x) & x = 0").is_bottom());
    }

    #[test]
    fn refinement_through_equalities() {
        // positive(x0) & x = x0 + 1  =>  positive(x).
        let e = elem("positive(x0) & x = x0 + 1");
        assert!(d().implies_atom(&e, &atom("positive(x)")));
    }

    #[test]
    fn figure8_sign_side_is_top() {
        // positive(x0) & x = x0 - 1: sign of x is unknown (pos + neg).
        let e = elem("positive(x0) & x = x0 - 1");
        assert!(!d().implies_atom(&e, &atom("positive(x)")));
        assert!(!d().implies_atom(&e, &atom("negative(x)")));
        // Q over {x0} gives nothing about x.
        let vs: VarSet = [Var::named("x0")].into_iter().collect();
        let q = d().exists(&e, &vs);
        assert!(!d().implies_atom(&q, &atom("positive(x)")));
    }

    #[test]
    fn join_pointwise() {
        let a = elem("positive(x)");
        let b = elem("x = 0");
        let j = d().join(&a, &b);
        // x is >= 0 (not representable as an atom, but meets with
        // negative(x) must be bottom).
        assert!(d().meet_atom(&j, &atom("negative(x)")).is_bottom());
        assert!(!d().implies_atom(&j, &atom("positive(x)")));
    }

    #[test]
    fn equality_gives_zero_sign() {
        let e = elem("x = 0 & y = x");
        assert!(d().implies_atom(&e, &atom("y = 0")));
    }

    #[test]
    fn exists_drops() {
        let e = elem("positive(x) & negative(y)");
        let vs: VarSet = [Var::named("x")].into_iter().collect();
        let q = d().exists(&e, &vs);
        assert!(!d().implies_atom(&q, &atom("positive(x)")));
        assert!(d().implies_atom(&q, &atom("negative(y)")));
    }
}

#[cfg(test)]
mod le_faithfulness_tests {
    use super::*;
    use cai_term::parse::Vocab;

    /// Regression: multi-variable sign constraints must survive the
    /// presentation so the default partial order stays sound.
    #[test]
    fn constraints_survive_presentation() {
        let d = SignDomain::new();
        let v = Vocab::standard();
        let e = d.from_conj(&v.parse_conj("positive(x + y)").unwrap());
        assert!(!d.to_conj(&e).is_empty());
        assert!(!d.le(&d.top(), &e));
        assert!(d.le(&e, &e));
    }

    #[test]
    fn presentation_roundtrip() {
        let d = SignDomain::new();
        let v = Vocab::standard();
        for src in [
            "positive(x + y)",
            "negative(a - b) & positive(c)",
            "x + y = 1",
        ] {
            let e = d.from_conj(&v.parse_conj(src).unwrap());
            let e2 = d.from_conj(&d.to_conj(&e));
            assert!(d.le(&e2, &e), "{src}: roundtrip weaker than allowed");
        }
    }
}
