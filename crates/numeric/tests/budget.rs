//! Fuel-exhaustion degradation tests for the parity and sign domains,
//! mirroring the `ChaosDomain` contract: under any budget the refinement
//! fixpoints must not panic, must terminate, and must never prove a fact
//! the unbudgeted domain rejects — they only pin fewer parities / keep
//! more sign alternatives.

use cai_core::{AbstractDomain, Budget};
use cai_numeric::{ParityDomain, SignDomain};
use cai_term::parse::Vocab;

const PARITY_ELEMS: &[&str] = &[
    "even(x0) & x = x0 - 1",
    "even(a) & odd(b)",
    "even(x) & x = y + 1",
    "odd(p) & q = p + p",
    "even(m) & n = m + 3 & k = n + 1",
];

const PARITY_CHECKS: &[&str] = &[
    "odd(x)",
    "even(x)",
    "odd(a + b)",
    "even(a + b + 1)",
    "odd(y)",
    "even(q)",
    "even(k)",
    "odd(n)",
];

#[test]
fn budgeted_parity_never_proves_more_than_the_clean_one() {
    let vocab = Vocab::standard();
    let clean = ParityDomain::new();
    for fuel in 0..100u64 {
        let budget = Budget::fuel(fuel);
        let d = ParityDomain::new().with_budget(budget.clone());
        for src in PARITY_ELEMS {
            let conj = vocab.parse_conj(src).expect("conj parses");
            let degraded = d.from_conj(&conj);
            let exact = clean.from_conj(&conj);
            for check in PARITY_CHECKS {
                let atom = vocab.parse_atom(check).expect("atom parses");
                if d.implies_atom(&degraded, &atom) {
                    assert!(
                        clean.implies_atom(&exact, &atom),
                        "fuel={fuel}: budgeted parity proved `{check}` from `{src}` \
                         which the exact domain rejects"
                    );
                }
            }
        }
    }
}

#[test]
fn budgeted_parity_may_miss_contradictions_but_not_invent_them() {
    let vocab = Vocab::standard();
    for fuel in 0..60u64 {
        let budget = Budget::fuel(fuel);
        let d = ParityDomain::new().with_budget(budget.clone());
        // Contradictory input: the budgeted domain may fail to notice
        // (sound over-approximation of ⊥) but must not crash.
        let contra = vocab
            .parse_conj("even(x) & x = y + 1 & even(y)")
            .expect("parses");
        let _ = d.from_conj(&contra);
        // Satisfiable input must never be reported bottom.
        let sat = vocab.parse_conj("even(x) & odd(y)").expect("parses");
        let e = d.from_conj(&sat);
        assert!(
            !d.is_bottom(&e),
            "fuel={fuel}: degradation invented a contradiction"
        );
    }
}

const SIGN_ELEMS: &[&str] = &[
    "positive(x) & y = x + 1",
    "negative(a) & b = 0 - a",
    "positive(p) & positive(q) & r = p + q",
    "x = 0 - z & negative(z) & w = x + 1",
];

const SIGN_CHECKS: &[&str] = &[
    "positive(y)",
    "positive(b)",
    "positive(r)",
    "negative(r)",
    "positive(x)",
    "positive(w)",
    "negative(a + b)",
];

#[test]
fn budgeted_sign_never_proves_more_than_the_clean_one() {
    let vocab = Vocab::standard();
    let clean = SignDomain::new();
    for fuel in 0..100u64 {
        let budget = Budget::fuel(fuel);
        let d = SignDomain::new().with_budget(budget.clone());
        for src in SIGN_ELEMS {
            let conj = vocab.parse_conj(src).expect("conj parses");
            let degraded = d.from_conj(&conj);
            let exact = clean.from_conj(&conj);
            for check in SIGN_CHECKS {
                let atom = vocab.parse_atom(check).expect("atom parses");
                if d.implies_atom(&degraded, &atom) {
                    assert!(
                        clean.implies_atom(&exact, &atom),
                        "fuel={fuel}: budgeted sign proved `{check}` from `{src}` \
                         which the exact domain rejects"
                    );
                }
            }
        }
    }
}

#[test]
fn exhaustion_is_reported_by_both_domains() {
    let vocab = Vocab::standard();
    let conj = vocab
        .parse_conj("even(x0) & x = x0 - 1 & y = x + 1 & z = y + 1")
        .expect("parses");
    let budget = Budget::fuel(1);
    let d = ParityDomain::new().with_budget(budget.clone());
    let _ = d.from_conj(&conj);
    let report = budget.report();
    assert!(report.exhausted);
    assert!(report.events.iter().any(|ev| ev.site == "parity/refine"));

    let sconj = vocab
        .parse_conj("positive(x) & y = x + 1 & z = y + x")
        .expect("parses");
    let sbudget = Budget::fuel(1);
    let sd = SignDomain::new().with_budget(sbudget.clone());
    let _ = sd.from_conj(&sconj);
    let sreport = sbudget.report();
    assert!(sreport.exhausted);
    assert!(sreport.events.iter().any(|ev| ev.site == "sign/refine"));
}

#[test]
fn unlimited_budget_changes_nothing() {
    let vocab = Vocab::standard();
    let clean = ParityDomain::new();
    let budget = Budget::unlimited();
    let d = ParityDomain::new().with_budget(budget.clone());
    for src in PARITY_ELEMS {
        let conj = vocab.parse_conj(src).expect("parses");
        for check in PARITY_CHECKS {
            let atom = vocab.parse_atom(check).expect("parses");
            assert_eq!(
                d.implies_atom(&d.from_conj(&conj), &atom),
                clean.implies_atom(&clean.from_conj(&conj), &atom),
                "{src} ⇒ {check}"
            );
        }
    }
    assert!(!budget.report().degraded);
}
