//! Exact arbitrary-precision arithmetic for the `cai` workspace.
//!
//! The abstract domains in this workspace (Karr's affine-equality domain,
//! the Fourier–Motzkin inequality domain) perform Gaussian elimination and
//! projection over the rationals, where intermediate coefficients routinely
//! overflow machine integers. This crate provides the two number types they
//! need, implemented from scratch with no external dependencies:
//!
//! - [`Int`]: a sign-and-magnitude arbitrary-precision integer, and
//! - [`Rat`]: a normalized rational built on top of [`Int`].
//!
//! # Examples
//!
//! ```
//! use cai_num::{Int, Rat};
//!
//! let a = Int::from(1_000_000_007i64);
//! let b = &a * &a;
//! assert_eq!(b.to_string(), "1000000014000000049");
//!
//! let third = Rat::new(Int::from(1), Int::from(3));
//! let sum = &third + &third + &third;
//! assert_eq!(sum, Rat::from(1));
//! ```

mod int;
pub mod prng;
mod rat;

pub use int::{Int, ParseIntError};
pub use prng::SplitMix64;
pub use rat::{ParseRatError, Rat};
