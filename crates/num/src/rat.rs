//! Normalized rational numbers over [`Int`].

use crate::Int;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// Invariants: the denominator is strictly positive and `gcd(num, den) = 1`
/// (with zero represented as `0/1`). All arithmetic re-normalizes, so two
/// `Rat`s are structurally equal iff they are mathematically equal, which
/// lets `Rat` serve as a hash-map key in the linear-expression layer.
///
/// ```
/// use cai_num::{Int, Rat};
/// let r = Rat::new(Int::from(4), Int::from(-6));
/// assert_eq!(r.to_string(), "-2/3");
/// assert_eq!(&r + &Rat::from(1), Rat::new(Int::from(1), Int::from(3)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: Int,
    den: Int, // always positive; 1 when num is 0
}

impl Default for Rat {
    /// The rational zero (`0/1`).
    fn default() -> Rat {
        Rat::zero()
    }
}

impl Rat {
    /// Creates a rational `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: Int, den: Int) -> Rat {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rat::zero();
        }
        let g = num.gcd(&den);
        let mut num = &num / &g;
        let mut den = &den / &g;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// The rational zero.
    pub fn zero() -> Rat {
        Rat {
            num: Int::zero(),
            den: Int::one(),
        }
    }

    /// The rational one.
    pub fn one() -> Rat {
        Rat {
            num: Int::one(),
            den: Int::one(),
        }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if the denominator is one.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> &Int {
        &self.den
    }

    /// The sign: -1, 0, or 1.
    pub fn signum(&self) -> i8 {
        self.num.signum()
    }

    /// The absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat::new(self.den.clone(), self.num.clone())
    }

    /// Converts to `i64` if the value is an integer that fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.is_integer() {
            self.num.to_i64()
        } else {
            None
        }
    }
}

impl From<Int> for Rat {
    fn from(num: Int) -> Rat {
        Rat {
            num,
            den: Int::one(),
        }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::from(Int::from(v))
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Rat {
        Rat::from(Int::from(v))
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(mut self) -> Rat {
        self.num = -self.num;
        self
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        -self.clone()
    }
}

impl Add for &Rat {
    type Output = Rat;
    fn add(self, other: &Rat) -> Rat {
        Rat::new(
            &(&self.num * &other.den) + &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, other: &Rat) -> Rat {
        self + &(-other)
    }
}

impl Mul for &Rat {
    type Output = Rat;
    fn mul(self, other: &Rat) -> Rat {
        if self.is_zero() || other.is_zero() {
            return Rat::zero();
        }
        Rat::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rat {
    type Output = Rat;
    fn div(self, other: &Rat) -> Rat {
        assert!(!other.is_zero(), "division by zero rational");
        Rat::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, other: Rat) -> Rat {
                (&self).$method(&other)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, other: &Rat) -> Rat {
                (&self).$method(other)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, other: Rat) -> Rat {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, other: &Rat) {
        *self = &*self + other;
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, other: &Rat) {
        *self = &*self - other;
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, other: &Rat) {
        *self = &*self * other;
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The error returned when parsing a [`Rat`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatError;

impl fmt::Display for ParseRatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid rational literal")
    }
}

impl std::error::Error for ParseRatError {}

impl FromStr for Rat {
    type Err = ParseRatError;

    /// Parses `"a"` or `"a/b"` where `a`, `b` are (signed) decimal integers.
    fn from_str(s: &str) -> Result<Rat, ParseRatError> {
        match s.split_once('/') {
            None => {
                let n: Int = s.trim().parse().map_err(|_| ParseRatError)?;
                Ok(Rat::from(n))
            }
            Some((a, b)) => {
                let n: Int = a.trim().parse().map_err(|_| ParseRatError)?;
                let d: Int = b.trim().parse().map_err(|_| ParseRatError)?;
                if d.is_zero() {
                    return Err(ParseRatError);
                }
                Ok(Rat::new(n, d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(Int::from(n), Int::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(r(4, 6), r(2, 3));
        assert_eq!(r(4, -6), r(-2, 3));
        assert_eq!(r(0, 17), Rat::zero());
        assert_eq!(r(-0, -5), Rat::zero());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
        assert_eq!(&r(1, 2) - &r(1, 3), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(2, 3) / &r(4, 3), r(1, 2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 1) > Rat::zero());
        assert_eq!(r(3, 9).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("2/4".parse::<Rat>().unwrap(), r(1, 2));
        assert_eq!("-3".parse::<Rat>().unwrap(), Rat::from(-3i64));
        assert_eq!(r(-2, 3).to_string(), "-2/3");
        assert_eq!(Rat::from(5i64).to_string(), "5");
        assert!("1/0".parse::<Rat>().is_err());
        assert!("x/2".parse::<Rat>().is_err());
    }

    #[test]
    fn recip() {
        assert_eq!(r(2, 3).recip(), r(3, 2));
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(Int::one(), Int::zero());
    }
}
