//! Sign-and-magnitude arbitrary-precision integers.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub};
use std::str::FromStr;

/// Base-2^32 little-endian magnitude. The invariant is that the highest limb
/// is nonzero (so zero is the empty vector).
type Limbs = Vec<u32>;

/// An arbitrary-precision signed integer.
///
/// `Int` is a compact sign-and-magnitude bignum sufficient for exact linear
/// algebra: addition, subtraction, multiplication, truncated division with
/// remainder, gcd, comparison, parsing and printing.
///
/// All binary operators are implemented for both owned values and
/// references, so expression-heavy code does not need explicit clones:
///
/// ```
/// use cai_num::Int;
/// let a = Int::from(7);
/// let b = Int::from(-3);
/// assert_eq!(&a + &b, Int::from(4));
/// assert_eq!(&a * &b, Int::from(-21));
/// assert_eq!((&a / &b, &a % &b), (Int::from(-2), Int::from(1)));
/// ```
#[derive(Clone, Default)]
pub struct Int {
    /// -1, 0, or 1; zero iff `mag` is empty.
    sign: i8,
    mag: Limbs,
}

impl Int {
    /// The integer zero.
    pub fn zero() -> Int {
        Int {
            sign: 0,
            mag: Vec::new(),
        }
    }

    /// The integer one.
    pub fn one() -> Int {
        Int {
            sign: 1,
            mag: vec![1],
        }
    }

    /// Returns `true` if this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// Returns `true` if this integer is one.
    pub fn is_one(&self) -> bool {
        self.sign == 1 && self.mag == [1]
    }

    /// Returns `true` if this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign < 0
    }

    /// Returns `true` if this integer is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign > 0
    }

    /// The sign of the integer: -1, 0, or 1.
    pub fn signum(&self) -> i8 {
        self.sign
    }

    /// The absolute value.
    pub fn abs(&self) -> Int {
        Int {
            sign: self.sign.abs(),
            mag: self.mag.clone(),
        }
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => Some(self.sign as i64 * self.mag[0] as i64),
            2 => {
                let m = (self.mag[1] as u64) << 32 | self.mag[0] as u64;
                if self.sign > 0 && m <= i64::MAX as u64 {
                    Some(m as i64)
                } else if self.sign < 0 && m <= i64::MAX as u64 + 1 {
                    Some((-(m as i128)) as i64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn from_u64(v: u64) -> Int {
        let mut mag = Vec::new();
        if v as u32 != 0 || v >> 32 != 0 {
            mag.push(v as u32);
        }
        if v >> 32 != 0 {
            mag.push((v >> 32) as u32);
        }
        Int {
            sign: if v == 0 { 0 } else { 1 },
            mag,
        }
    }

    /// Greatest common divisor; always non-negative, and `gcd(0, 0) = 0`.
    pub fn gcd(&self, other: &Int) -> Int {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r.abs();
        }
        a
    }

    /// Checked exponentiation by a small exponent.
    pub fn pow(&self, mut exp: u32) -> Int {
        let mut base = self.clone();
        let mut acc = Int::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i].cmp(&b[i]);
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Limbs {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let mut s = long[i] as u64 + carry;
            if i < short.len() {
                s += short[i] as u64;
            }
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Requires `a >= b` in magnitude.
    fn sub_mag(a: &[u32], b: &[u32]) -> Limbs {
        debug_assert!(Int::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for i in 0..a.len() {
            let mut d = a[i] as i64 - borrow;
            if i < b.len() {
                d -= b[i] as i64;
            }
            if d < 0 {
                d += 1i64 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Limbs {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Schoolbook long division of magnitudes: returns `(quotient, remainder)`.
    fn divmod_mag(a: &[u32], b: &[u32]) -> (Limbs, Limbs) {
        assert!(!b.is_empty(), "division by zero");
        if Int::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let d = b[0] as u64;
            let mut q = vec![0u32; a.len()];
            let mut rem = 0u64;
            for i in (0..a.len()).rev() {
                let cur = rem << 32 | a[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            while q.last() == Some(&0) {
                q.pop();
            }
            let r = if rem == 0 {
                Vec::new()
            } else {
                vec![rem as u32]
            };
            return (q, r);
        }
        // Knuth algorithm D with normalization so the divisor's top limb has
        // its high bit set.
        let shift = b.last().copied().map_or(0, u32::leading_zeros);
        let bn = Int::shl_bits(b, shift);
        let mut an = Int::shl_bits(a, shift);
        an.push(0); // room for the top partial remainder
        let n = bn.len();
        let m = an.len() - n - 1;
        let mut q = vec![0u32; m + 1];
        let btop = bn[n - 1] as u64;
        let bsecond = bn[n - 2] as u64;
        for j in (0..=m).rev() {
            let top2 = (an[j + n] as u64) << 32 | an[j + n - 1] as u64;
            let mut qhat = top2 / btop;
            let mut rhat = top2 % btop;
            while qhat >> 32 != 0 || qhat * bsecond > (rhat << 32 | an[j + n - 2] as u64) {
                qhat -= 1;
                rhat += btop;
                if rhat >> 32 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract qhat * bn from an[j .. j+n].
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * bn[i] as u64 + carry;
                carry = p >> 32;
                let mut d = an[j + i] as i64 - (p as u32) as i64 - borrow;
                if d < 0 {
                    d += 1i64 << 32;
                    borrow = 1;
                } else {
                    borrow = 0;
                }
                an[j + i] = d as u32;
            }
            let mut d = an[j + n] as i64 - carry as i64 - borrow;
            if d < 0 {
                // qhat was one too large: add divisor back.
                d += 1i64 << 32;
                qhat -= 1;
                let mut carry2 = 0u64;
                for i in 0..n {
                    let s = an[j + i] as u64 + bn[i] as u64 + carry2;
                    an[j + i] = s as u32;
                    carry2 = s >> 32;
                }
                d += carry2 as i64;
                d &= (1i64 << 32) - 1;
            }
            an[j + n] = d as u32;
            q[j] = qhat as u32;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        let mut r = Int::shr_bits(&an[..n], shift);
        while r.last() == Some(&0) {
            r.pop();
        }
        (q, r)
    }

    fn shl_bits(a: &[u32], shift: u32) -> Limbs {
        if shift == 0 {
            return a.to_vec();
        }
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u32;
        for &limb in a {
            out.push(limb << shift | carry);
            carry = limb >> (32 - shift);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    fn shr_bits(a: &[u32], shift: u32) -> Limbs {
        if shift == 0 {
            return a.to_vec();
        }
        let mut out = vec![0u32; a.len()];
        let mut carry = 0u32;
        for i in (0..a.len()).rev() {
            out[i] = a[i] >> shift | carry;
            carry = a[i] << (32 - shift);
        }
        out
    }

    fn normalized(sign: i8, mag: Limbs) -> Int {
        if mag.is_empty() {
            Int::zero()
        } else {
            Int { sign, mag }
        }
    }

    /// Truncated division with remainder: `self = q * other + r` with
    /// `|r| < |other|` and `r` carrying the sign of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &Int) -> (Int, Int) {
        assert!(!other.is_zero(), "division by zero");
        if self.is_zero() {
            return (Int::zero(), Int::zero());
        }
        let (q, r) = Int::divmod_mag(&self.mag, &other.mag);
        (
            Int::normalized(self.sign * other.sign, q),
            Int::normalized(self.sign, r),
        )
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Int {
        let mut n = Int::from_u64(v.unsigned_abs());
        if v < 0 {
            n.sign = -n.sign;
        }
        n
    }
}

impl From<i32> for Int {
    fn from(v: i32) -> Int {
        Int::from(v as i64)
    }
}

impl From<u32> for Int {
    fn from(v: u32) -> Int {
        Int::from(v as i64)
    }
}

impl From<usize> for Int {
    fn from(v: usize) -> Int {
        Int::from_u64(v as u64)
    }
}

impl PartialEq for Int {
    fn eq(&self, other: &Int) -> bool {
        self.sign == other.sign && self.mag == other.mag
    }
}

impl Eq for Int {}

impl Hash for Int {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.sign.hash(state);
        self.mag.hash(state);
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Int) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Int) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            ord => return ord,
        }
        let mag = Int::cmp_mag(&self.mag, &other.mag);
        if self.sign < 0 {
            mag.reverse()
        } else {
            mag
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(mut self) -> Int {
        self.sign = -self.sign;
        self
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        -self.clone()
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, other: &Int) -> Int {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        if self.sign == other.sign {
            Int {
                sign: self.sign,
                mag: Int::add_mag(&self.mag, &other.mag),
            }
        } else {
            match Int::cmp_mag(&self.mag, &other.mag) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int {
                    sign: self.sign,
                    mag: Int::sub_mag(&self.mag, &other.mag),
                },
                Ordering::Less => Int {
                    sign: other.sign,
                    mag: Int::sub_mag(&other.mag, &self.mag),
                },
            }
        }
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, other: &Int) -> Int {
        self + &(-other)
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, other: &Int) -> Int {
        Int::normalized(self.sign * other.sign, Int::mul_mag(&self.mag, &other.mag))
    }
}

impl Div for &Int {
    type Output = Int;
    fn div(self, other: &Int) -> Int {
        self.div_rem(other).0
    }
}

impl Rem for &Int {
    type Output = Int;
    fn rem(self, other: &Int) -> Int {
        self.div_rem(other).1
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Int {
            type Output = Int;
            fn $method(self, other: Int) -> Int {
                (&self).$method(&other)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, other: &Int) -> Int {
                (&self).$method(other)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, other: Int) -> Int {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);
forward_owned_binop!(Rem, rem);

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, other: &Int) {
        *self = &*self + other;
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        if self.sign < 0 {
            f.write_str("-")?;
        }
        // Repeated division by 10^9, collecting 9-digit chunks.
        let mut mag = self.mag.clone();
        let mut chunks = Vec::new();
        while !mag.is_empty() {
            let (q, r) = Int::divmod_mag(&mag, &[1_000_000_000]);
            chunks.push(if r.is_empty() { 0 } else { r[0] });
            mag = q;
        }
        let mut s = chunks.last().copied().unwrap_or(0).to_string();
        for chunk in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{:09}", chunk));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The error returned when parsing an [`Int`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntError;

impl fmt::Display for ParseIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid integer literal")
    }
}

impl std::error::Error for ParseIntError {}

impl FromStr for Int {
    type Err = ParseIntError;

    fn from_str(s: &str) -> Result<Int, ParseIntError> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseIntError);
        }
        // Split into a short leading chunk followed by exact 9-digit chunks,
        // folding with base 10^9.
        let billion = Int::from(1_000_000_000i64);
        let first_len = match digits.len() % 9 {
            0 => 9,
            r => r,
        };
        let (head, tail) = digits.split_at(first_len.min(digits.len()));
        let v: i64 = head.parse().map_err(|_| ParseIntError)?;
        let mut acc = Int::from(v);
        for chunk in tail.as_bytes().chunks(9) {
            let chunk_str = std::str::from_utf8(chunk).expect("ascii digits");
            let v: i64 = chunk_str.parse().map_err(|_| ParseIntError)?;
            acc = &(&acc * &billion) + &Int::from(v);
        }
        if neg {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arithmetic() {
        let a = Int::from(12);
        let b = Int::from(-5);
        assert_eq!(&a + &b, Int::from(7));
        assert_eq!(&a - &b, Int::from(17));
        assert_eq!(&a * &b, Int::from(-60));
        assert_eq!(&a / &b, Int::from(-2));
        assert_eq!(&a % &b, Int::from(2));
    }

    #[test]
    fn zero_behaviour() {
        assert!(Int::zero().is_zero());
        assert_eq!(Int::from(0), Int::zero());
        assert_eq!(&Int::from(5) + &Int::from(-5), Int::zero());
        assert_eq!(Int::zero().to_string(), "0");
        assert_eq!(-Int::zero(), Int::zero());
    }

    #[test]
    fn large_multiplication() {
        let a: Int = "123456789012345678901234567890".parse().unwrap();
        let b: Int = "987654321098765432109876543210".parse().unwrap();
        let p = &a * &b;
        assert_eq!(
            p.to_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
    }

    #[test]
    fn large_division_roundtrip() {
        let a: Int = "340282366920938463463374607431768211456".parse().unwrap();
        let b: Int = "18446744073709551629".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(Int::cmp_mag(&r.mag, &b.mag) == Ordering::Less);
    }

    #[test]
    fn division_signs_match_truncation() {
        for (x, y) in [(7i64, 3i64), (-7, 3), (7, -3), (-7, -3)] {
            let (q, r) = Int::from(x).div_rem(&Int::from(y));
            assert_eq!(q, Int::from(x / y), "{x}/{y}");
            assert_eq!(r, Int::from(x % y), "{x}%{y}");
        }
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(Int::from(12).gcd(&Int::from(18)), Int::from(6));
        assert_eq!(Int::from(-12).gcd(&Int::from(18)), Int::from(6));
        assert_eq!(Int::from(0).gcd(&Int::from(5)), Int::from(5));
        assert_eq!(Int::from(0).gcd(&Int::from(0)), Int::from(0));
    }

    #[test]
    fn ordering() {
        let mut v = [
            Int::from(3),
            Int::from(-10),
            Int::from(0),
            "100000000000000000000".parse::<Int>().unwrap(),
            Int::from(-1),
        ];
        v.sort();
        let shown: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        assert_eq!(shown, ["-10", "-1", "0", "3", "100000000000000000000"]);
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "999999999",
            "1000000000",
            "-123456789012345678901234567890",
        ] {
            let n: Int = s.parse().unwrap();
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Int>().is_err());
        assert!("12a".parse::<Int>().is_err());
        assert!("-".parse::<Int>().is_err());
        assert!("--3".parse::<Int>().is_err());
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(Int::from(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(Int::from(i64::MIN).to_i64(), Some(i64::MIN));
        let big = &Int::from(i64::MAX) + &Int::one();
        assert_eq!(big.to_i64(), None);
        assert_eq!((-big).to_i64(), Some(i64::MIN));
    }

    #[test]
    fn pow() {
        assert_eq!(Int::from(2).pow(10), Int::from(1024));
        assert_eq!(Int::from(10).pow(0), Int::one());
        assert_eq!(Int::from(3).pow(40).to_string(), "12157665459056928801");
    }
}
