//! A small deterministic pseudo-random generator (splitmix64).
//!
//! The workspace builds with no external dependencies, so workload
//! generation (benchmarks), property tests, and the fault-injection
//! harness all draw from this generator instead of the `rand` crate.
//! Splitmix64 (Steele, Lea & Flood, OOPSLA 2014) is tiny, passes BigCrush,
//! and — crucially for reproducible tests — is fully determined by its
//! 64-bit seed.

/// The splitmix64 additive constant (the "golden gamma").
pub const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 output mix: a bijective avalanche of one 64-bit state
/// word. Exposed so callers that keep their state in an `AtomicU64` (e.g.
/// the chaos harness) can advance by [`GAMMA`] and mix themselves.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded splitmix64 stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator fully determined by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// A uniform draw from `0..n` (`n > 0`; returns 0 for `n == 0`).
    ///
    /// Plain modulo — the bias for the small ranges used in tests and
    /// workload generation (n ≪ 2⁶⁴) is negligible.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// A uniform draw from the half-open range `lo..hi` (`lo < hi`).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// `true` with probability `num/den` (`den > 0`).
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        self.below(den.max(1)) < num
    }

    /// `true` with probability `permille/1000`.
    pub fn chance_permille(&mut self, permille: u32) -> bool {
        self.ratio(u64::from(permille), 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 0 from the splitmix64 reference code.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = g.range_i64(-4, 5);
            assert!((-4..5).contains(&v), "{v}");
            assert!(g.below(3) < 3);
        }
    }

    #[test]
    fn ratio_edges() {
        let mut g = SplitMix64::new(9);
        assert!(!g.ratio(0, 1000));
        assert!(g.ratio(1000, 1000));
        assert!(g.chance_permille(1000));
        assert!(!g.chance_permille(0));
    }
}
